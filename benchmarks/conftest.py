"""Shared helpers for the benchmark suite.

Every paper artifact (Fig. 3, 5, 6, 8 and the task-hour table) has one
benchmark module that (a) times the regeneration of that artifact on a
reduced-but-same-shape parameterization and (b) writes the regenerated
rows/series to ``results/bench_*.txt`` so the output survives pytest's
capture. Run with::

    pytest benchmarks/ --benchmark-only
"""

import os


RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "results")


def save_report(name: str, text: str) -> str:
    """Persist a regenerated artifact under results/ and echo it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print(text)
    return path
