"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation runs the quick elastic PrimeTester scenario with one
mechanism altered and reports the effect on constraint fulfillment,
resource consumption and scaling churn:

* **fitting coefficient** ``e_jv`` on vs. off (paper Sec. IV-C2: without
  it "the model might recommend a scale-down when a scale-up would
  actually be necessary");
* **queue-wait share** ``w_fraction`` (paper fixes 20 % for queueing /
  80 % for batching);
* **post-scale-up inactivity** (paper: 2 adjustment intervals).
"""

import pytest

from repro.core.constraints import LatencyConstraint
from repro.engine.engine import EngineConfig, StreamProcessingEngine
from repro.experiments.report import format_table
from repro.workloads.primetester import (
    PrimeTesterParams,
    build_primetester_job,
    primetester_constraint,
)

from conftest import save_report

WORKLOAD = PrimeTesterParams(
    n_sources=8,
    n_testers=8,
    n_sinks=2,
    tester_min=1,
    tester_max=64,
    warmup_rate=30.0,
    peak_rate=300.0,
    increment_steps=5,
    step_duration=8.0,
    tester_service_mean=0.0025,
    tester_service_cv=0.7,
)


def run_variant(**config_overrides):
    graph, profile = build_primetester_job(WORKLOAD)
    constraint = primetester_constraint(graph, 0.020)
    config = EngineConfig.nephele_adaptive(
        elastic=True,
        per_batch_overhead=0.0015,
        per_item_overhead=0.00002,
        queue_capacity=128,
        channel_capacity=16,
        seed=11,
        **config_overrides,
    )
    engine = StreamProcessingEngine(config)
    engine.submit(graph, [constraint])
    engine.run(profile.end_time + WORKLOAD.step_duration)
    tracker = engine.trackers[0]
    return {
        "fulfillment": tracker.fulfillment_ratio,
        "task_seconds": engine.resources.task_seconds(),
        "scaling_events": len(engine.scaler.events),
    }


@pytest.fixture(scope="module")
def ablation_results():
    return {
        "paper defaults": run_variant(),
        "no fitting (e=1)": run_variant(e_bounds=(1.0, 1.0)),
        "w_fraction=0.5": run_variant(w_fraction=0.5),
        "no inactivity": run_variant(inactivity_intervals=0),
    }


def test_bench_ablations(benchmark, ablation_results):
    """Time the default variant; report the ablation table."""
    result = benchmark.pedantic(run_variant, rounds=1, iterations=1)
    assert result["fulfillment"] > 0
    rows = [
        [name, f"{r['fulfillment'] * 100:.1f}%", round(r["task_seconds"]), r["scaling_events"]]
        for name, r in ablation_results.items()
    ]
    save_report(
        "bench_ablations.txt",
        format_table(
            ["variant", "fulfilled", "task-seconds", "scaling events"],
            rows,
            title="Ablations on the elastic PrimeTester (quick scenario)",
        ),
    )


def test_ablation_all_variants_complete(ablation_results):
    for name, result in ablation_results.items():
        assert result["fulfillment"] >= 0.5, name
        assert result["task_seconds"] > 0, name


def test_ablation_no_inactivity_scales_more_often(ablation_results):
    """Without the inactivity phase the scaler reacts (and churns) more."""
    assert (
        ablation_results["no inactivity"]["scaling_events"]
        >= ablation_results["paper defaults"]["scaling_events"]
    )
