"""Micro-benchmarks of the core machinery (not tied to one figure).

Times the hot paths a production deployment would care about: the DES
kernel, the latency-model evaluation, Rebalance at large scale-out
bounds, and the measurement pipeline's summary merge.
"""

import random

from repro.core.latency_model import SequenceLatencyModel, VertexModel, kingman_waiting_time
from repro.core.rebalance import rebalance
from repro.qos.stats import OnlineStats
from repro.qos.summary import EdgeSummary, PartialSummary, VertexSummary, merge_partial_summaries
from repro.simulation.kernel import Simulator


def test_bench_kernel_event_throughput(benchmark):
    """Raw DES event dispatch rate."""

    def run_events():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 50_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.001, tick)
        sim.run()
        return count[0]

    assert benchmark(run_events) == 50_000


def test_bench_kingman(benchmark):
    """Kingman formula evaluation (called per vertex per candidate p)."""

    def evaluate():
        total = 0.0
        for i in range(1000):
            total += kingman_waiting_time(50.0 + i * 0.1, 0.004, 1.0, 0.7)
        return total

    assert benchmark(evaluate) > 0


def test_bench_rebalance_wide_bounds(benchmark):
    """Rebalance over 6 vertices with p_max = 520 (the paper's bound)."""
    rng = random.Random(1)
    models = [
        VertexModel(
            f"v{i}", 1, 1, 520,
            arrival_rate=rng.uniform(50, 400),
            service_mean=rng.uniform(0.001, 0.01),
            variability=rng.uniform(0.2, 1.5),
        )
        for i in range(6)
    ]
    model = SequenceLatencyModel("big", models)
    result = benchmark(lambda: rebalance(model, 0.002))
    assert result.feasible


def test_bench_online_stats(benchmark):
    """Welford accumulation (called per sample on the hot path)."""

    def accumulate():
        stats = OnlineStats()
        for i in range(10_000):
            stats.add(i * 0.001)
        return stats.mean

    assert benchmark(accumulate) > 0


def test_bench_summary_merge(benchmark):
    """Merging 16 partial summaries of a 6-vertex job."""
    partials = []
    for m in range(16):
        partial = PartialSummary(0.0)
        for v in range(6):
            partial.vertices[f"v{v}"] = VertexSummary(
                f"v{v}", 0.001, 0.004, 0.7, 0.01, 1.0, n_tasks=4
            )
        for e in range(5):
            partial.edges[f"e{e}"] = EdgeSummary(f"e{e}", 0.005, 0.002, 8)
        partials.append(partial)
    merged = benchmark(lambda: merge_partial_summaries(0.0, partials))
    assert len(merged.vertices) == 6
