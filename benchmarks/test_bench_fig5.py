"""Benchmark + regeneration of Fig. 5 (solution-candidate surface)."""

import pytest

from repro.experiments.fig5_surface import Fig5Params, build_models, run
from repro.core.rebalance import rebalance

from conftest import save_report

PARAMS = Fig5Params()


@pytest.fixture(scope="module")
def fig5_result():
    return run(PARAMS)


def test_bench_fig5_surface(benchmark, fig5_result):
    """Time the full surface sweep + optimizer."""
    result = benchmark(lambda: run(PARAMS))
    save_report("bench_fig5.txt", fig5_result.report())
    assert result.surface


def test_bench_rebalance_only(benchmark):
    """Time a single Rebalance invocation on the Fig. 5 model."""
    model = build_models(PARAMS)
    result = benchmark(lambda: rebalance(model, PARAMS.wait_budget))
    assert result.feasible


def test_fig5_shape_multiple_optima(fig5_result):
    """The paper notes multiple optima may exist."""
    assert len(fig5_result.optima) >= 1
    assert fig5_result.brute_total is not None


def test_fig5_rebalance_hits_surface_minimum(fig5_result):
    assert fig5_result.rebalance_total <= fig5_result.brute_total + 1
