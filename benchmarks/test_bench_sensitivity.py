"""Sensitivity bench: robustness of the strategy to its own parameters.

Sweeps control knobs the paper fixes without discussion (ρ_max, the
queue-wait share) on the quick step-load scenario and records the
resulting fulfillment / resource / churn table under results/.
"""

import pytest

from repro.experiments.sensitivity import SensitivityParams, run, run_point

from conftest import save_report

PARAMS = SensitivityParams().quick()


@pytest.fixture(scope="module")
def sensitivity_result():
    return run(PARAMS)


def test_bench_sensitivity_sweep(benchmark, sensitivity_result):
    """Time one sweep point; report the whole grid."""
    point = benchmark.pedantic(
        lambda: run_point(PARAMS, w_fraction=0.2), rounds=1, iterations=1
    )
    assert point.task_seconds > 0
    save_report("bench_sensitivity.txt", sensitivity_result.report())


def test_all_points_completed(sensitivity_result):
    expected = sum(len(values) for values in PARAMS.sweeps.values())
    assert len(sensitivity_result.points) == expected
    for point in sensitivity_result.points:
        assert 0.0 <= point.fulfillment <= 1.0
        assert point.scaling_events > 0


def test_report_has_one_block_per_parameter(sensitivity_result):
    text = sensitivity_result.report()
    for parameter in PARAMS.sweeps:
        assert parameter in text
