"""Benchmark + regeneration of Fig. 6 (elastic vs. unelastic PrimeTester)."""

import pytest

from repro.experiments.fig6_primetester import Fig6Params, run, run_baseline, run_elastic

from conftest import save_report

PARAMS = Fig6Params().quick()


@pytest.fixture(scope="module")
def fig6_result():
    return run(PARAMS, sweep=False)


def test_bench_fig6_elastic_run(benchmark, fig6_result):
    """Time the elastic configuration's full phase plan."""
    result = benchmark.pedantic(lambda: run_elastic(PARAMS), rounds=1, iterations=1)
    assert result.fulfillment is not None
    save_report("bench_fig6.txt", fig6_result.report())


def test_fig6_shape_constraint_mostly_fulfilled(fig6_result):
    """Paper: the 20 ms constraint holds ~91 % of adjustment intervals."""
    assert fig6_result.elastic.fulfillment >= 0.75


def test_fig6_shape_elastic_adapts_parallelism(fig6_result):
    elastic = fig6_result.elastic
    assert elastic.min_parallelism < PARAMS.workload.n_testers
    assert elastic.max_parallelism > elastic.min_parallelism


def test_fig6_shape_baseline_latency_floor(fig6_result):
    """The throughput-tuned baseline cannot reach low latency (paper: >= 348 ms)."""
    baseline = fig6_result.baseline
    elastic = fig6_result.elastic
    assert baseline.min_mean_latency > 5 * elastic.min_mean_latency


def test_fig6_shape_task_hours_comparable(fig6_result):
    """Paper: elastic task-hours roughly match the hand-tuned baseline."""
    ratio = fig6_result.elastic.task_seconds / fig6_result.baseline.task_seconds
    assert 0.4 <= ratio <= 1.4
