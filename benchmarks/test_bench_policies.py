"""Policy comparison bench: the paper's strategy vs. related-work baselines.

The paper argues (Sec. VI) that related systems' scaling policies are
"designed to prevent overload/bottlenecks, conversely our policy is
designed to minimize the violation of user-defined latency constraints".
This bench runs :mod:`repro.experiments.compare_policies` (quick variant)
and asserts the claim's direction.
"""

import pytest

from repro.experiments.compare_policies import CompareParams, POLICIES, run, run_policy

from conftest import save_report

PARAMS = CompareParams().quick()


@pytest.fixture(scope="module")
def policy_results():
    return run(PARAMS)


def test_bench_policy_comparison(benchmark, policy_results):
    """Time the paper's policy run; report the comparison table."""
    outcome = benchmark.pedantic(
        lambda: run_policy(PARAMS, "scale-reactively"), rounds=1, iterations=1
    )
    assert outcome.fulfillment > 0
    save_report("bench_policies.txt", policy_results.report())


def test_paper_policy_beats_or_matches_baselines(policy_results):
    """Latency-driven scaling should fulfill the constraint at least as
    often as overload-prevention baselines (the paper's core claim)."""
    paper = policy_results.outcomes["scale-reactively"].fulfillment
    for baseline in ("cpu-threshold", "rate-based"):
        assert paper >= policy_results.outcomes[baseline].fulfillment - 0.05, baseline


def test_predictive_no_worse_than_reactive(policy_results):
    predictive = policy_results.outcomes["predictive"].fulfillment
    reactive = policy_results.outcomes["scale-reactively"].fulfillment
    assert predictive >= reactive - 0.10


def test_all_policies_scale(policy_results):
    for name in POLICIES:
        assert policy_results.outcomes[name].scaling_events > 0, name
