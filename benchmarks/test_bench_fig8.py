"""Benchmark + regeneration of Fig. 8 (TwitterSentiment with scaling)."""

import pytest

from repro.experiments.fig8_twitter import Fig8Params, run

from conftest import save_report

PARAMS = Fig8Params().quick()


@pytest.fixture(scope="module")
def fig8_result():
    return run(PARAMS)


def test_bench_fig8_run(benchmark, fig8_result):
    """Time the full (quick) TwitterSentiment run."""
    result = benchmark.pedantic(lambda: run(PARAMS), rounds=1, iterations=1)
    assert result.rows
    save_report("bench_fig8.txt", fig8_result.report())


def test_fig8_shape_constraints_mostly_fulfilled(fig8_result):
    """Paper: 93 % (hot topics) and 96 % (sentiment) fulfillment."""
    for name, ratio in fig8_result.fulfillment.items():
        assert ratio >= 0.7, (name, ratio)


def test_fig8_shape_sentiment_scales_up_at_burst(fig8_result):
    """Paper: the tweet burst triggers a significant Sentiment scale-up."""
    assert fig8_result.sentiment_burst_scaleup is not None
    assert fig8_result.sentiment_burst_scaleup >= 2


def test_fig8_shape_slight_overprovisioning(fig8_result):
    """Paper: mean task CPU utilization 55.7 % (system stays over-provisioned)."""
    assert 0.05 <= fig8_result.mean_cpu_utilization <= 0.9


def test_fig8_elastic_vertices_adapt(fig8_result):
    for vertex in ("HotTopics", "Sentiment"):
        low, high = fig8_result.parallelism_ranges[vertex]
        assert high > low, vertex
