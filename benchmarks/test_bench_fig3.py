"""Benchmark + regeneration of Fig. 3 (motivation: four static configs).

Uses the quick parameterization (same shape: step load, four batching
configurations); asserts the paper's qualitative orderings and records
the regenerated table under results/.
"""

import pytest

from repro.experiments.fig3_motivation import CONFIG_NAMES, Fig3Params, run

from conftest import save_report

PARAMS = Fig3Params().quick()


@pytest.fixture(scope="module")
def fig3_result():
    return run(PARAMS)


def test_bench_fig3_full_table(benchmark, fig3_result):
    """Time one configuration run; report the full regenerated table."""
    result = benchmark.pedantic(
        lambda: run(PARAMS, configs=("Nephele-20ms",)), rounds=1, iterations=1
    )
    assert result.configs["Nephele-20ms"].rows
    save_report("bench_fig3.txt", fig3_result.report())


def test_fig3_shape_warmup_latency_ordering(fig3_result):
    """Instant-flush warm-up latency << adaptive-20ms << fixed-16KiB."""
    configs = fig3_result.configs
    instant = configs["Nephele-IF"].warmup_latency
    adaptive = configs["Nephele-20ms"].warmup_latency
    assert instant < 0.020
    assert instant < adaptive <= 0.030


def test_fig3_shape_throughput_ordering(fig3_result):
    """Effective peak throughput: instant < adaptive <= fixed-16KiB."""
    configs = fig3_result.configs
    instant = max(
        configs["Storm"].peak_effective_rate, configs["Nephele-IF"].peak_effective_rate
    )
    adaptive = configs["Nephele-20ms"].peak_effective_rate
    fixed = configs["Nephele-16KiB"].peak_effective_rate
    assert fixed > instant * 1.1  # paper: +58 %
    assert adaptive > instant * 1.02  # paper: +30 %


def test_fig3_all_configs_ran_all_phases(fig3_result):
    for name in CONFIG_NAMES:
        rows = fig3_result.configs[name].rows
        assert rows[-1].time >= PARAMS.workload.step_duration * (
            2 * PARAMS.workload.increment_steps
        )
