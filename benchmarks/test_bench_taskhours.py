"""Benchmark + regeneration of the in-text task-hour table (Sec. V-A).

Paper: raising the constraint from 20 ms to 30/40/50/100 ms lowered task
hours to 46.4/44.3/41.8/37.6 — i.e. looser latency bounds buy resources.
The quick variant sweeps two bounds and asserts monotonicity.
"""

import pytest

from repro.experiments.fig6_primetester import Fig6Params, run_elastic
from repro.experiments.report import format_table

from conftest import save_report

PARAMS = Fig6Params().quick()
BOUNDS = (0.020, 0.060)


@pytest.fixture(scope="module")
def sweep_results():
    return {
        bound: run_elastic(PARAMS, bound, name=f"elastic-{bound * 1000:.0f}ms")
        for bound in BOUNDS
    }


def test_bench_taskhour_sweep(benchmark, sweep_results):
    """Time one sweep point; report the regenerated table."""
    result = benchmark.pedantic(
        lambda: run_elastic(PARAMS, 0.040), rounds=1, iterations=1
    )
    assert result.task_seconds > 0
    rows = [
        [f"{bound * 1000:.0f} ms", round(r.task_seconds), f"{(r.fulfillment or 0) * 100:.1f}%"]
        for bound, r in sorted(sweep_results.items())
    ]
    save_report(
        "bench_taskhours.txt",
        format_table(
            ["constraint", "task-seconds", "fulfilled"],
            rows,
            title="Task-hour sweep (paper: 46.4/44.3/41.8/37.6 for 30/40/50/100 ms)",
        ),
    )


def test_taskhours_decrease_with_looser_bound(sweep_results):
    tight = sweep_results[BOUNDS[0]].task_seconds
    loose = sweep_results[BOUNDS[-1]].task_seconds
    assert loose < tight


def test_looser_bound_still_fulfilled(sweep_results):
    assert sweep_results[BOUNDS[-1]].fulfillment >= 0.75
