"""Quickstart: a latency-constrained pipeline with reactive elastic scaling.

Builds a three-stage job (Source -> Analyzer -> Sink), declares a 30 ms
latency constraint over it, and runs it on the simulated engine with the
paper's reactive scaling strategy enabled. The load doubles twice; watch
the engine add Analyzer tasks to keep the constraint and remove them when
the load falls again.

Run:  python examples/quickstart.py
"""

from repro import (
    EngineConfig,
    Gamma,
    JobGraph,
    JobSequence,
    LatencyConstraint,
    MapUDF,
    PiecewiseRate,
    SinkUDF,
    SourceUDF,
    StreamProcessingEngine,
)


def build_job():
    """Source -> Analyzer (elastic, 4 ms/item) -> Sink."""
    graph = JobGraph("quickstart")
    source = graph.add_vertex(
        "Source", lambda: SourceUDF(lambda now, rng: rng.random())
    )
    analyzer = graph.add_vertex(
        "Analyzer",
        lambda: MapUDF(lambda x: x * x, service_dist=Gamma(0.004, 0.7)),
        parallelism=2,
        min_parallelism=1,
        max_parallelism=32,
    )
    sink = graph.add_vertex("Sink", lambda: SinkUDF())
    graph.connect(source, analyzer)
    graph.connect(analyzer, sink)

    # Load profile: 100/s, then 500/s, then 1 000/s, then back down.
    source.rate_profile = PiecewiseRate(
        [(0.0, 100.0), (40.0, 500.0), (80.0, 1000.0), (120.0, 200.0)]
    )
    return graph


def main():
    graph = build_job()
    # Constraint: <= 30 ms mean latency from Source exit to Sink entry.
    sequence = JobSequence.from_names(
        graph, ["Analyzer"], leading_edge=True, trailing_edge=True
    )
    constraint = LatencyConstraint(sequence, bound=0.030)

    engine = StreamProcessingEngine(EngineConfig.nephele_adaptive(elastic=True))
    engine.submit(graph, [constraint])

    print(f"{'time':>6}  {'rate/s':>7}  {'p(Analyzer)':>11}  {'mean latency':>12}")
    profile = graph.vertex("Source").rate_profile
    for _ in range(16):
        engine.run(10.0)
        tracker = engine.trackers[0]
        latest = tracker.history[-1] if tracker.history else None
        latency = f"{latest[1] * 1000:9.1f} ms" if latest else "warming up"
        print(
            f"{engine.now:6.0f}  {profile.rate(engine.now):7.0f}  "
            f"{engine.parallelism('Analyzer'):11d}  {latency:>12}"
        )

    tracker = engine.trackers[0]
    print()
    print(f"constraint fulfilled in {tracker.fulfillment_ratio * 100:.1f}% "
          f"of {tracker.intervals_observed} adjustment intervals")
    print(f"scaling actions taken: {len(engine.scaler.events)}")
    print(f"task-seconds consumed: {engine.resources.task_seconds():.0f}")


if __name__ == "__main__":
    main()
