"""The paper's TwitterSentiment application, scaled for a laptop (Sec. V-B).

Runs the six-vertex job of Fig. 7 against a synthetic tweet stream
(diurnal rate with a single-topic burst) under the paper's two latency
constraints (215 ms for the hot-topic pipeline, 30 ms for the sentiment
pipeline), with reactive elastic scaling. Prints the adaptation timeline,
per-constraint fulfillment, and the most talked-about topics with their
sentiment.

Run:  python examples/twitter_sentiment.py [--fast]
"""

import sys

from repro import EngineConfig, StreamProcessingEngine, TwitterSentimentParams
from repro.workloads.twitter_job import build_twitter_sentiment_job


def main(fast: bool = False) -> None:
    if fast:
        params = TwitterSentimentParams(
            period=120.0,
            bursts=((150.0, 25.0, 3.0),),
            topic_bursts=((150.0, 175.0, 0, 0.8),),
        )
        duration = 240.0
    else:
        params = TwitterSentimentParams()
        duration = 600.0

    graph, constraints = build_twitter_sentiment_job(params)
    engine = StreamProcessingEngine(EngineConfig.nephele_adaptive(elastic=True, seed=23))
    engine.submit(graph, constraints)

    profile = graph.vertex("TweetSource").rate_profile
    print(f"{'time':>6}  {'tweets/s':>8}  {'p(HT)':>5}  {'p(F)':>5}  {'p(S)':>5}")
    while engine.now < duration:
        engine.run(20.0)
        print(
            f"{engine.now:6.0f}  {profile.rate(engine.now) * params.n_sources:8.0f}  "
            f"{engine.parallelism('HotTopics'):5d}  "
            f"{engine.parallelism('Filter'):5d}  "
            f"{engine.parallelism('Sentiment'):5d}"
        )

    print()
    for tracker in engine.trackers:
        print(
            f"{tracker.constraint.name}: fulfilled "
            f"{tracker.fulfillment_ratio * 100:.1f}% of {tracker.intervals_observed} intervals"
        )

    # Aggregate sentiment across all sink tasks.
    counts = {}
    for task in engine.runtime.vertex("Sink").tasks:
        for (topic, label), n in task.udf.sentiment_counts.items():
            counts.setdefault(topic, {}).setdefault(label, 0)
            counts[topic][label] += n
    top = sorted(counts.items(), key=lambda kv: -sum(kv[1].values()))[:8]
    print()
    print("most discussed hot topics (positive/neutral/negative):")
    for topic, labels in top:
        total = sum(labels.values())
        print(
            f"  {topic:<12} {total:6d} tweets   "
            f"{labels.get('positive', 0):5d} / {labels.get('neutral', 0):5d} / "
            f"{labels.get('negative', 0):5d}"
        )


if __name__ == "__main__":
    main(fast="--fast" in sys.argv[1:])
