"""The paper's PrimeTester evaluation, scaled for a laptop (Sec. V-A).

Runs the PrimeTester job (Fig. 2) with a 20 ms latency constraint and the
reactive scaling strategy through the full warm-up / increment / plateau
/ decrement phase plan, then prints the adaptation timeline and the
headline numbers Fig. 6 reports (fulfillment ratio, task-seconds,
parallelism trajectory).

Run:  python examples/primetester_elastic.py [--fast]
"""

import sys

from repro import EngineConfig, PrimeTesterParams, StreamProcessingEngine, build_primetester_job
from repro.workloads.primetester import phase_boundaries, primetester_constraint


def main(fast: bool = False) -> None:
    params = PrimeTesterParams(
        n_sources=4,
        n_testers=8,
        tester_min=1,
        tester_max=64,
        warmup_rate=25.0,
        peak_rate=400.0,
        increment_steps=4 if fast else 6,
        step_duration=10.0 if fast else 20.0,
    )
    graph, profile = build_primetester_job(params)
    constraint = primetester_constraint(graph, bound=0.020)

    engine = StreamProcessingEngine(
        EngineConfig.nephele_adaptive(
            elastic=True,
            per_batch_overhead=0.0015,
            per_item_overhead=0.00002,
            seed=11,
        )
    )
    engine.submit(graph, [constraint])

    phases = phase_boundaries(params)
    print("phase plan:", ", ".join(f"{name}@{t:.0f}s" for name, t in phases))
    print()
    print(f"{'time':>6}  {'rate/src':>8}  {'p(PT)':>5}  {'mean lat':>10}  {'violated':>8}")

    duration = profile.end_time + params.step_duration
    step = 10.0
    while engine.now < duration:
        engine.run(step)
        tracker = engine.trackers[0]
        latest = tracker.history[-1] if tracker.history else None
        latency = f"{latest[1] * 1000:7.1f} ms" if latest else "-"
        violated = "yes" if latest and latest[2] else ""
        print(
            f"{engine.now:6.0f}  {profile.rate(engine.now):8.0f}  "
            f"{engine.parallelism('PrimeTester'):5d}  {latency:>10}  {violated:>8}"
        )

    tracker = engine.trackers[0]
    print()
    print(f"constraint (20 ms) fulfilled: {tracker.fulfillment_ratio * 100:.1f}% "
          f"of {tracker.intervals_observed} adjustment intervals  (paper: ~91%)")
    print(f"task-seconds: {engine.resources.task_seconds():.0f}")
    print(f"scaling actions: {len(engine.scaler.events)}")


if __name__ == "__main__":
    main(fast="--fast" in sys.argv[1:])
