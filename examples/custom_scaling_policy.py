"""Using the latency model and Rebalance as a standalone library.

The paper's core machinery — Kingman-based queue-wait prediction, the
fitting coefficient, and the Rebalance optimizer — is usable without the
simulated engine: feed it your own measurements (e.g. from a production
metrics system) and it returns minimal degrees of parallelism for a
latency budget.

This example (1) sizes a three-stage pipeline offline for several load
levels, and (2) shows a custom policy subclass that pads every Rebalance
decision with one standby task per vertex (a common "headroom" variant),
registered in the policy registry so jobs select it by name like any
built-in (see ``repro.core.policy``).

Run:  python examples/custom_scaling_policy.py
"""

from repro import (
    ScaleReactivelyPolicy,
    SequenceLatencyModel,
    VertexModel,
    kingman_waiting_time,
    rebalance,
)
from repro.core.policy import PolicyContext, register_policy


def offline_capacity_planning() -> None:
    """Size a parse -> enrich -> score pipeline for a 5 ms queue budget."""
    print("offline capacity planning (queue-wait budget: 5 ms)")
    print(f"{'load (items/s)':>14}  {'parse':>5}  {'enrich':>6}  {'score':>5}  {'total':>5}")
    for load in (500.0, 2000.0, 8000.0, 20000.0):
        # (service mean s, squared-CV variability term) per stage
        stages = [
            ("parse", 0.0004, 0.6),
            ("enrich", 0.0015, 1.0),
            ("score", 0.0008, 0.8),
        ]
        models = [
            VertexModel(
                name,
                p_current=1,
                p_min=1,
                p_max=512,
                arrival_rate=load,  # per task at p=1; scales with 1/p*
                service_mean=service,
                variability=variability,
            )
            for name, service, variability in stages
        ]
        result = rebalance(SequenceLatencyModel("pipeline", models), wait_limit=0.005)
        p = result.parallelism
        print(
            f"{load:14.0f}  {p['parse']:5d}  {p['enrich']:6d}  {p['score']:5d}"
            f"  {result.total_parallelism:5d}"
        )
    print()


def kingman_sanity_check() -> None:
    """Show the super-linear queue growth the paper's Sec. III-C measures."""
    print("Kingman queue wait vs. utilization (service 2 ms, cA=cS=1):")
    for utilization in (0.3, 0.6, 0.8, 0.9, 0.95, 0.99):
        rate = utilization / 0.002
        wait = kingman_waiting_time(rate, 0.002, 1.0, 1.0)
        print(f"  rho = {utilization:4.2f}  ->  W = {wait * 1000:8.2f} ms")
    print()


class HeadroomPolicy(ScaleReactivelyPolicy):
    """ScaleReactively with standby tasks of headroom per vertex.

    A minimal example of customizing the paper's Algorithm 2: decisions
    are computed exactly as in the paper, then padded to absorb small
    bursts without a reactive round trip.
    """

    name = "headroom"

    def __init__(self, constraints, headroom: int = 1, **kwargs):
        super().__init__(constraints, **kwargs)
        self.headroom = headroom

    def knobs(self):
        merged = dict(super().knobs())
        merged["headroom"] = self.headroom
        return merged

    def decide(self, summary, current_parallelism):
        decision = super().decide(summary, current_parallelism)
        for name in list(decision.parallelism):
            decision.parallelism[name] += self.headroom
        return decision


# Registering makes "headroom" selectable anywhere a policy name is
# accepted: builder.scale(), engine.submit(policy=...), --policy flags.
@register_policy(HeadroomPolicy.name)
def _build_headroom(context: PolicyContext, **knobs) -> HeadroomPolicy:
    return HeadroomPolicy(context.constraints, **knobs)


def custom_policy_demo() -> None:
    """Run the elastic PrimeTester with the headroom policy variant."""
    from repro import EngineConfig, PrimeTesterParams, StreamProcessingEngine, build_primetester_job
    from repro.workloads.primetester import primetester_constraint

    params = PrimeTesterParams(
        n_sources=4, n_testers=4, tester_min=1, tester_max=32,
        warmup_rate=50.0, peak_rate=300.0, increment_steps=3, step_duration=10.0,
    )
    graph, profile = build_primetester_job(params)
    constraint = primetester_constraint(graph, 0.025)
    engine = StreamProcessingEngine(EngineConfig.nephele_adaptive(elastic=True))
    engine.submit(graph, [constraint], policy="headroom:headroom=1")
    engine.run(profile.end_time + params.step_duration)
    tracker = engine.trackers[0]
    print("custom HeadroomPolicy on PrimeTester:")
    print(
        f"  fulfilled {tracker.fulfillment_ratio * 100:.1f}% of "
        f"{tracker.intervals_observed} intervals, final p = "
        f"{engine.parallelism('PrimeTester')}, "
        f"task-seconds = {engine.resources.task_seconds():.0f}"
    )


if __name__ == "__main__":
    kingman_sanity_check()
    offline_capacity_planning()
    custom_policy_demo()
