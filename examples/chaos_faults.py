"""Chaos run: deterministic fault injection against an elastic pipeline.

Builds the quickstart-style pipeline, then arms a deterministic fault
plan: a task crash at t=30 s (restarted 2 s later), a QoS measurement
dropout from t=30-50 s, and a 3x service-time spike at t=70 s. Because
the fault schedule rides the same simulation event heap as everything
else, re-running with the same seeds reproduces the run exactly — the
printed fault timeline and parallelism trace are byte-identical across
invocations.

Watch the graceful-degradation paths engage:
 - the crashed task is restarted and its QoS reporter re-registered;
 - the scaler skips constraints whose measurements went stale during
   the dropout (``skipped_stale``) instead of acting on bad data;
 - scale-downs are suppressed for a cooldown after each fault event
   (``suppressed_scale_downs``), so the system never shrinks on the
   artificially low post-crash measurements.

Run:  python examples/chaos_faults.py
"""

from repro import (
    ConstantRate,
    EngineConfig,
    Gamma,
    MeasurementDropout,
    PipelineBuilder,
    ServiceSpike,
    StreamProcessingEngine,
    TaskCrash,
)
from repro.experiments.recording import SeriesRecorder


def build_pipeline():
    """Source (400/s) -> worker (elastic, 4 ms/item) -> sink, 30 ms bound."""
    return (
        PipelineBuilder("chaos-demo")
        .source(lambda now, rng: rng.random(), rate=ConstantRate(400.0))
        .map("worker", lambda x: x * x, service=Gamma(0.004, 0.7),
             parallelism=(4, 1, 32))
        .sink()
        .constrain(bound=0.030)
        .inject(
            TaskCrash(at=30.0, vertex="worker", restart_delay=2.0),
            MeasurementDropout(at=30.0, duration=20.0),
            ServiceSpike(at=70.0, vertex="worker", factor=3.0, duration=10.0),
            seed=0,
        )
        .build()
    )


def main():
    pipeline = build_pipeline()
    engine = StreamProcessingEngine(EngineConfig(elastic=True, seed=7))
    recorder = SeriesRecorder(engine, interval=5.0, source_vertex="source",
                              source_profile=ConstantRate(400.0))
    job = engine.submit(pipeline)
    engine.run(120.0)

    print("fault timeline:")
    for at, kind, target, detail in job.fault_injector.trace():
        print(f"  t={at:7.2f}  {kind:<20s} {target:<16s} {detail}")

    print()
    print("worker parallelism (5 s samples):")
    print("  " + " ".join(str(p) for _, p in recorder.parallelism_series("worker")))

    scaler = engine.scaler
    tracker = engine.trackers[0]
    print()
    print(f"scaler activations:        {len(scaler.events)}")
    print(f"stale constraints skipped: {scaler.skipped_stale}")
    print(f"scale-downs suppressed:    {scaler.suppressed_scale_downs}")
    print(f"constraint fulfilled in {tracker.fulfillment_ratio * 100:.1f}% "
          f"of {len(tracker.history)} adjustment intervals")


if __name__ == "__main__":
    main()
