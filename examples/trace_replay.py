"""Replaying a multi-day rate trace, compressed — like the paper's replay.

The paper replays two weeks of tweets within a 100-minute experiment
("at the correct historic rates or a multiple thereof"). This example
synthesizes a 14-day diurnal rate trace, saves/reloads it as CSV, then
replays it compressed ~2000x (into ~10 minutes) through the elastic
TwitterSentiment job.

Run:  python examples/trace_replay.py [--fast]
"""

import os
import sys
import tempfile

from repro import (
    EngineConfig,
    StreamProcessingEngine,
    TraceRateProfile,
    TwitterSentimentParams,
    generate_diurnal_trace,
    load_trace,
    save_trace,
)
from repro.workloads.twitter_job import build_twitter_sentiment_job


def main(fast: bool = False) -> None:
    days = 4 if fast else 14
    replay_seconds = 120.0 if fast else 600.0

    # 1. Synthesize and persist the trace (stand-in for the 69 GB dataset).
    trace = generate_diurnal_trace(
        days=days,
        base_rate=4000.0,           # "historic" aggregate tweets/s
        daily_amplitude=0.6,
        bursts=[(days * 86_400 * 0.6, 3600.0, 2.5)],  # one viral hour
        seed=7,
    )
    path = os.path.join(tempfile.gettempdir(), "repro_tweet_trace.csv")
    save_trace(path, trace)
    print(f"trace: {len(trace)} samples over {days} days -> {path}")

    # 2. Reload and wrap it as a compressed, scaled rate profile.
    loaded = load_trace(path)
    compression = days * 86_400 / replay_seconds
    params = TwitterSentimentParams()
    # scale historic aggregate rates down to the simulation's regime and
    # split across the source tasks
    rate_scale = 0.05 / params.n_sources
    profile = TraceRateProfile(loaded, compression=compression, rate_scale=rate_scale)
    print(
        f"replaying {days} days in {profile.replay_duration:.0f}s "
        f"(compression {compression:.0f}x, rate scale {rate_scale:.3f})"
    )

    # 3. Run the TwitterSentiment job against the replayed trace.
    graph, constraints = build_twitter_sentiment_job(params)
    graph.vertex("TweetSource").rate_profile = profile
    engine = StreamProcessingEngine(EngineConfig.nephele_adaptive(elastic=True, seed=3))
    engine.submit(graph, constraints)

    print(f"{'time':>6}  {'tweets/s':>8}  {'p(HT)':>5}  {'p(F)':>5}  {'p(S)':>5}")
    step = replay_seconds / 12
    while engine.now < replay_seconds:
        engine.run(step)
        print(
            f"{engine.now:6.0f}  {profile.rate(engine.now) * params.n_sources:8.0f}  "
            f"{engine.parallelism('HotTopics'):5d}  "
            f"{engine.parallelism('Filter'):5d}  "
            f"{engine.parallelism('Sentiment'):5d}"
        )

    print()
    for tracker in engine.trackers:
        print(
            f"{tracker.constraint.name}: fulfilled "
            f"{tracker.fulfillment_ratio * 100:.1f}% of {tracker.intervals_observed} intervals"
        )
    print(f"task-seconds: {engine.resources.task_seconds():.0f}")


if __name__ == "__main__":
    main(fast="--fast" in sys.argv[1:])
