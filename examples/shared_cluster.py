"""Two elastic jobs sharing one worker pool.

The paper's closing argument: with latency-constraint-driven elasticity,
"no permanent peak load provisioning is required" — so a cluster can
host several jobs whose peaks do not coincide. This example runs two
latency-constrained pipelines with *anti-phased* load on one engine: when
job A peaks, job B idles, and the shared pool absorbs both within a
capacity that static peak provisioning for both would exceed.

Run:  python examples/shared_cluster.py
"""

from repro import (
    ConstantRate,
    EngineConfig,
    Gamma,
    PipelineBuilder,
    PiecewiseRate,
    StreamProcessingEngine,
)


def build_job(name: str, segments) -> "BuiltPipeline":
    return (
        PipelineBuilder(name)
        .source(lambda now, rng: rng.random(), rate=PiecewiseRate(segments))
        .map(
            f"{name}-analyze",
            lambda x: x * x,
            service=Gamma(0.004, 0.7),
            parallelism=(2, 1, 24),
        )
        .sink()
        .constrain(bound=0.030)
        .build()
    )


def main() -> None:
    # Anti-phased step loads: A peaks while B idles and vice versa.
    job_a_load = [(0.0, 150.0), (60.0, 900.0), (120.0, 150.0), (180.0, 900.0)]
    job_b_load = [(0.0, 900.0), (60.0, 150.0), (120.0, 900.0), (180.0, 150.0)]
    # Pool sized for ONE peak plus change — static provisioning of both
    # jobs at peak would not fit.
    config = EngineConfig.nephele_adaptive(elastic=True, worker_pool=10, seed=17)
    engine = StreamProcessingEngine(config)
    job_a = engine.submit(*_parts(build_job("alpha", job_a_load)))
    job_b = engine.submit(*_parts(build_job("beta", job_b_load)))

    print(f"shared pool: {config.worker_pool} workers x {config.slots_per_worker} slots")
    print(f"{'time':>5}  {'p(alpha)':>8}  {'p(beta)':>7}  {'leased workers':>14}  {'slots free':>10}")
    for _ in range(16):
        engine.run(15.0)
        print(
            f"{engine.now:5.0f}  {job_a.parallelism('alpha-analyze'):8d}  "
            f"{job_b.parallelism('beta-analyze'):7d}  "
            f"{engine.resources.leased_workers:14d}  "
            f"{engine.resources.free_slots_available():10d}"
        )

    print()
    for job in (job_a, job_b):
        tracker = job.trackers[0]
        print(
            f"{job.job_graph.name}: constraint fulfilled "
            f"{tracker.fulfillment_ratio * 100:.1f}% of {tracker.intervals_observed} intervals"
        )
    print(f"total task-seconds: {engine.resources.task_seconds():.0f}")
    print(f"worker-hours: {engine.resources.worker_hours() * 3600:.0f} worker-seconds")


def _parts(built):
    return built.graph, built.constraints


if __name__ == "__main__":
    main()
