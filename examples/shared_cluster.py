"""Two elastic jobs sharing one pool — with admission arbitration.

The paper's closing argument: with latency-constraint-driven elasticity,
"no permanent peak load provisioning is required" — so a cluster can
host several jobs whose peaks do not coincide. This example runs the
repo's canonical shared-cluster scenario: two latency-constrained
pipelines (``alpha``, weight 3, and ``beta``, weight 1) with anti-phased
load peaks plus one coincident window on a pool deliberately too small
for both peaks at once.

Under weighted fair-share admission the run exercises every contention
outcome the resource manager supports:

* ``beta`` peaks first and grows past its fair share of the pool;
* when ``alpha`` ramps up while still under *its* share, arbitration
  **preempts** ``beta``'s reducible tasks to make room;
* requests the pool cannot cover even after preemption are **denied**
  at admission time — the scaler records them as unresolvable and
  retries on later rounds (no partially-wired scale-up can ever occur,
  because slots are reserved before a scale-up is reported applied).

Run:  python examples/shared_cluster.py
"""

from repro.workloads.multi_job import (
    SharedClusterParams,
    build_shared_cluster_engine,
    collect_shared_cluster_result,
)


def main() -> None:
    params = SharedClusterParams(duration=240.0)
    engine, jobs = build_shared_cluster_engine(params)
    alpha, beta = jobs

    print(
        f"shared pool: {params.workers} workers x {params.slots_per_worker} "
        f"slots, admission={params.admission} "
        f"(weights alpha={params.alpha_weight:g}, beta={params.beta_weight:g})"
    )
    print(f"{'time':>5}  {'p(alpha)':>8}  {'p(beta)':>7}  "
          f"{'denials':>7}  {'preempted':>9}  {'slots free':>10}")
    resources = engine.resources
    for _ in range(16):
        engine.run(params.duration / 16.0)
        print(
            f"{engine.now:5.0f}  {alpha.parallelism('worker'):8d}  "
            f"{beta.parallelism('worker'):7d}  "
            f"{resources.admission_denials:7d}  "
            f"{resources.preempted_tasks:9d}  "
            f"{resources.free_slots_available():10d}"
        )

    result = collect_shared_cluster_result(engine, jobs, params)
    print()
    for job in result["jobs"]:
        account = job["account"]
        print(
            f"{job['job']}: fulfillment {job['fulfillment'] * 100:.1f}%, "
            f"{account['denials']} denials, "
            f"{account['preemptions_suffered']} tasks preempted away, "
            f"{account['preemptions_inflicted']} preemptions inflicted"
        )
    cluster = result["cluster"]
    print(f"fairness (Jain, per-job fulfillment): {result['fairness']:.4f}")
    print(
        f"cluster: {cluster['admission_denials']} admission denials, "
        f"{cluster['preempted_tasks']} preempted tasks, "
        f"{cluster['task_hours'] * 3600:.0f} task-seconds"
    )

    # The scenario is only demonstrative if contention actually happened.
    assert cluster["admission_denials"] > 0, "expected at least one denial"
    assert cluster["preempted_tasks"] > 0, "expected at least one preemption"


if __name__ == "__main__":
    main()
