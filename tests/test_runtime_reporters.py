"""Unit tests for the runtime graph registry and the QoS reporters.

Both modules sit on the engine's hot path but previously had only
integration coverage; these tests pin their contracts directly.
"""

from __future__ import annotations

import pytest

from conftest import make_linear_job
from repro.engine.runtime import RuntimeGraph, RuntimeVertex
from repro.engine.task import CREATED, DRAINING, RUNNING, STOPPED
from repro.qos.reporter import ChannelReporter, TaskReporter


class FakeTask:
    """Just enough of RuntimeTask for the registry's state filters."""

    def __init__(self, state: str) -> None:
        self.state = state


class FakeChannel:
    def __init__(self, edge_name: str) -> None:
        self.edge_name = edge_name


@pytest.fixture
def graph():
    return make_linear_job(n_workers=3)


@pytest.fixture
def runtime(graph):
    return RuntimeGraph(graph)


class TestRuntimeVertex:
    def test_subtask_indices_are_monotonic(self, graph):
        vertex = RuntimeVertex(graph.vertices["Worker"])
        assert [vertex.next_subtask_index() for _ in range(4)] == [0, 1, 2, 3]

    def test_parallelism_counts_running_and_created_only(self, graph):
        vertex = RuntimeVertex(graph.vertices["Worker"])
        vertex.tasks = [
            FakeTask(RUNNING),
            FakeTask(CREATED),
            FakeTask(DRAINING),
            FakeTask(STOPPED),
        ]
        assert vertex.parallelism == 2
        assert len(vertex.active_tasks()) == 2
        assert len(vertex.draining_tasks()) == 1

    def test_target_parallelism_includes_pending_additions(self, graph):
        vertex = RuntimeVertex(graph.vertices["Worker"])
        vertex.tasks = [FakeTask(RUNNING)]
        vertex.pending_additions = 2
        assert vertex.parallelism == 1
        assert vertex.target_parallelism == 3


class TestRuntimeGraph:
    def test_vertices_mirror_the_job_graph(self, runtime):
        assert set(runtime.vertices) == {"Source", "Worker", "Sink"}
        assert runtime.vertex("Worker").name == "Worker"
        assert runtime.parallelism("Worker") == 0  # nothing deployed yet

    def test_all_tasks_spans_vertices(self, runtime):
        runtime.vertex("Source").tasks = [FakeTask(RUNNING)]
        runtime.vertex("Worker").tasks = [FakeTask(RUNNING), FakeTask(DRAINING)]
        assert len(runtime.all_tasks()) == 3
        assert runtime.total_parallelism() == 2  # draining excluded

    def test_channel_registry_register_unregister(self, runtime, graph):
        edge_name = graph.edges[0].name
        channel = FakeChannel(edge_name)
        runtime.register_channel(channel)
        assert runtime.channels_of_edge(edge_name) == [channel]
        runtime.unregister_channel(channel)
        assert runtime.channels_of_edge(edge_name) == []
        # Unregistering twice (or an unknown channel) is a no-op.
        runtime.unregister_channel(channel)
        runtime.unregister_channel(FakeChannel("nonexistent-edge"))

    def test_channels_of_edge_returns_copy(self, runtime, graph):
        edge_name = graph.edges[0].name
        runtime.register_channel(FakeChannel(edge_name))
        listing = runtime.channels_of_edge(edge_name)
        listing.clear()
        assert len(runtime.channels_of_edge(edge_name)) == 1

    def test_unknown_edge_has_no_channels(self, runtime):
        assert runtime.channels_of_edge("no-such-edge") == []


class TestTaskReporter:
    def test_flush_freezes_and_resets(self):
        reporter = TaskReporter("Worker", "Worker-0")
        for value in (0.010, 0.020, 0.030):
            reporter.record_task_latency(value)
        reporter.record_service_time(0.002)
        reporter.record_interarrival(0.005)
        reporter.record_interarrival(0.007)

        measurement = reporter.flush(now=42.0)
        assert measurement.vertex_name == "Worker"
        assert measurement.task_id == "Worker-0"
        assert measurement.timestamp == 42.0
        assert measurement.task_latency.count == 3
        assert measurement.task_latency.mean == pytest.approx(0.020)
        assert measurement.service_time.count == 1
        assert measurement.service_time.mean == pytest.approx(0.002)
        assert measurement.interarrival.count == 2
        assert measurement.interarrival.mean == pytest.approx(0.006)

        # flush() reset the accumulators: the next interval starts empty.
        empty = reporter.flush(now=43.0)
        assert empty.task_latency.count == 0
        assert empty.service_time.count == 0
        assert empty.interarrival.count == 0

    def test_intervals_are_independent(self):
        reporter = TaskReporter("Worker", "Worker-0")
        reporter.record_service_time(1.0)
        reporter.flush(now=1.0)
        reporter.record_service_time(3.0)
        second = reporter.flush(now=2.0)
        assert second.service_time.count == 1
        assert second.service_time.mean == pytest.approx(3.0)


class TestChannelReporter:
    def test_flush_freezes_and_resets(self):
        reporter = ChannelReporter("Source->Worker", 7)
        reporter.record_channel_latency(0.004)
        reporter.record_channel_latency(0.006)
        reporter.record_output_batch_latency(0.001)

        measurement = reporter.flush(now=10.0)
        assert measurement.edge_name == "Source->Worker"
        assert measurement.channel_id == 7
        assert measurement.timestamp == 10.0
        assert measurement.channel_latency.count == 2
        assert measurement.channel_latency.mean == pytest.approx(0.005)
        assert measurement.output_batch_latency.count == 1

        empty = reporter.flush(now=11.0)
        assert empty.channel_latency.count == 0
        assert empty.output_batch_latency.count == 0

    def test_variance_survives_flush(self):
        reporter = ChannelReporter("edge", 0)
        for value in (1.0, 2.0, 3.0):
            reporter.record_channel_latency(value)
        measurement = reporter.flush(now=0.0)
        assert measurement.channel_latency.variance == pytest.approx(1.0)
