"""Sweep orchestrator: grid expansion, crash isolation, resume, merging.

The acceptance scenario from the issue: a sweep of >= 8 shards run with
two workers produces a merged aggregate byte-identical to the serial run
of the same grid; killing a worker mid-sweep and re-running with resume
skips completed shards and yields the same aggregate.
"""

from __future__ import annotations

import json
import os
import shutil

import pytest

from repro import cli
from repro.experiments.dashboard import SweepDashboard
from repro.experiments.report import write_json
from repro.obs.manifest import MANIFEST_FILE, RunManifest
from repro.sweep import (
    ShardSpec,
    SweepError,
    SweepGrid,
    merge_shard_results,
    read_aggregate,
    run_sweep,
    run_shard,
)
from repro.sweep.report import AGGREGATE_FILE, group_key
from repro.sweep.shard import (
    RESULT_FILE,
    execute_shard,
    load_shard_result,
    shard_key,
)


def tiny_grid(**overrides):
    """A 2-shard grid small enough for unit tests."""
    kwargs = dict(
        name="tiny", seeds=(1, 2), rates=(250.0,), bounds=(0.030,),
        workloads=("steady",), actuation=(False,), duration=4.0,
    )
    kwargs.update(overrides)
    return SweepGrid(**kwargs)


def read_bytes(path):
    with open(path, "rb") as handle:
        return handle.read()


# ----------------------------------------------------------------------
# grid expansion
# ----------------------------------------------------------------------


class TestSweepGrid:
    def test_quick_grid_has_eight_shards(self):
        grid = SweepGrid.quick()
        assert len(grid) == 8
        assert len(grid.expand()) == 8

    def test_expansion_is_ordered_by_key_and_unique(self):
        grid = SweepGrid(seeds=(3, 1, 2), rates=(400.0, 250.0),
                         workloads=("spike", "steady"), actuation=(True, False))
        keys = [spec.key for spec in grid.expand()]
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys)
        assert len(keys) == 3 * 2 * 2 * 2

    def test_describe_roundtrips_through_from_dict(self):
        grid = SweepGrid(seeds=(5, 6), rates=(300.0,), duration=12.0)
        clone = SweepGrid.from_dict(grid.describe())
        assert clone.describe() == grid.describe()

    def test_grid_file_roundtrip(self, tmp_path):
        grid = tiny_grid()
        path = str(tmp_path / "grid.json")
        write_json(path, grid.describe())
        assert SweepGrid.from_file(path).describe() == grid.describe()

    @pytest.mark.parametrize("kwargs", [
        {"seeds": ()},
        {"rates": ()},
        {"bounds": ()},
        {"workloads": ()},
        {"actuation": ()},
        {"workloads": ("nope",)},
        {"duration": 0.0},
        {"duration": float("inf")},
        {"rates": (-1.0,)},
        {"name": ""},
    ])
    def test_invalid_grid_rejected(self, kwargs):
        with pytest.raises((ValueError, TypeError)):
            tiny_grid(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"seeds": (1.5,)},
        {"seeds": (True,)},
        {"actuation": (1,)},
        {"duration": "10"},
    ])
    def test_wrong_types_rejected(self, kwargs):
        with pytest.raises(TypeError):
            tiny_grid(**kwargs)

    def test_unknown_grid_file_keys_rejected(self):
        with pytest.raises(ValueError):
            SweepGrid.from_dict({"name": "x", "surprise": 1})

    def test_unsupported_schema_rejected(self):
        with pytest.raises(ValueError):
            SweepGrid.from_dict({"schema": 99})


# ----------------------------------------------------------------------
# single shards
# ----------------------------------------------------------------------


class TestShard:
    def test_key_is_stable_and_filesystem_safe(self):
        key = shard_key("steady", 250.0, 0.030, False, 7)
        assert key == "steady-r250-b30ms-sync-scale-reactively-s0007"
        assert "/" not in key and " " not in key
        assert ShardSpec(7, 250.0, 0.030).key == key

    def test_key_carries_the_policy_token(self):
        key = shard_key("steady", 250.0, 0.030, False, 7, policy="drs")
        assert key == "steady-r250-b30ms-sync-drs-s0007"
        # knobbed specs hash their knobs into the token (filesystem-safe)
        knobbed = shard_key(
            "steady", 250.0, 0.030, False, 7, policy="drs:target_fraction=0.9"
        )
        assert knobbed.startswith("steady-r250-b30ms-sync-drs+")
        assert knobbed != key
        assert "/" not in knobbed and "=" not in knobbed

    def test_run_shard_is_deterministic(self):
        spec = ShardSpec(seed=3, rate=250.0, bound=0.030, duration=4.0)
        assert run_shard(spec) == run_shard(spec)

    def test_result_contains_the_merge_fields(self):
        spec = ShardSpec(seed=3, rate=250.0, bound=0.030, duration=4.0)
        result = run_shard(spec)
        assert result["key"] == spec.key
        assert result["params"] == spec.params()
        assert result["constraints"][0]["name"] == "e2e"
        assert "worker" in result["final_parallelism"]
        assert result["series"]["intervals"] >= 0
        json.dumps(result)  # checkpoint-serializable

    def test_actuation_shard_records_reconciler_summary(self):
        spec = ShardSpec(seed=3, rate=250.0, bound=0.030, duration=4.0,
                         actuation=True)
        result = run_shard(spec)
        assert result["actuation"] is not None
        assert "requests" in result["actuation"]

    def test_execute_shard_checkpoints_result_and_manifest(self, tmp_path):
        spec = ShardSpec(seed=2, rate=250.0, bound=0.030, duration=4.0)
        shard_dir = str(tmp_path / spec.key)
        result = execute_shard(spec, shard_dir)
        assert load_shard_result(shard_dir, spec) == result
        manifest = RunManifest.read(os.path.join(shard_dir, MANIFEST_FILE))
        assert manifest["sweep"] == {"shard": spec.key, "params": spec.params()}
        assert manifest["wall_time_s"] == 0.0  # pinned for byte-identity

    def test_load_rejects_checkpoint_of_different_params(self, tmp_path):
        spec = ShardSpec(seed=2, rate=250.0, bound=0.030, duration=4.0)
        shard_dir = str(tmp_path / spec.key)
        execute_shard(spec, shard_dir)
        changed = ShardSpec(seed=2, rate=250.0, bound=0.030, duration=6.0)
        assert load_shard_result(shard_dir, changed) is None
        assert load_shard_result(shard_dir, spec) is not None

    def test_load_rejects_garbage(self, tmp_path):
        shard_dir = str(tmp_path / "shard")
        os.makedirs(shard_dir)
        assert load_shard_result(shard_dir) is None  # missing
        with open(os.path.join(shard_dir, RESULT_FILE), "w") as handle:
            handle.write("{not json")
        assert load_shard_result(shard_dir) is None

    def test_fail_once_marker_not_recorded_in_params(self):
        spec = ShardSpec(seed=1, rate=250.0, bound=0.030,
                         fail_once_marker="/tmp/marker")
        assert "fail_once_marker" not in spec.params()
        assert spec.to_dict()["fail_once_marker"] == "/tmp/marker"
        assert ShardSpec.from_dict(spec.to_dict()).fail_once_marker == "/tmp/marker"


# ----------------------------------------------------------------------
# orchestration: parallel == serial, resume, crash isolation
# ----------------------------------------------------------------------


class TestOrchestrator:
    def test_parallel_aggregate_byte_identical_to_serial(self, tmp_path):
        """Issue acceptance: >= 8 shards, --workers 2 == --workers 1."""
        grid = SweepGrid.quick()
        assert len(grid) >= 8
        serial = run_sweep(grid, str(tmp_path / "serial"), workers=1)
        parallel = run_sweep(grid, str(tmp_path / "parallel"), workers=2)
        assert serial.stats.done == parallel.stats.done == 8
        assert read_bytes(serial.aggregate_path) == read_bytes(parallel.aggregate_path)

    def test_resume_skips_completed_shards_same_aggregate(self, tmp_path):
        out = str(tmp_path / "sweep")
        grid = tiny_grid()
        first = run_sweep(grid, out, workers=2)
        before = read_bytes(first.aggregate_path)
        victim = first.aggregate["shards"][0]["key"]
        shutil.rmtree(os.path.join(out, "shards", victim))
        second = run_sweep(grid, out, workers=2, resume=True)
        assert second.stats.skipped == len(grid) - 1
        assert second.stats.done == len(grid)
        assert read_bytes(second.aggregate_path) == before

    def test_existing_checkpoints_require_resume(self, tmp_path):
        out = str(tmp_path / "sweep")
        grid = tiny_grid()
        run_sweep(grid, out, workers=1)
        with pytest.raises(SweepError, match="resume"):
            run_sweep(grid, out, workers=1)

    def test_resume_with_different_grid_rejected(self, tmp_path):
        out = str(tmp_path / "sweep")
        run_sweep(tiny_grid(), out, workers=1)
        with pytest.raises(SweepError, match="grid mismatch"):
            run_sweep(tiny_grid(duration=6.0), out, workers=1, resume=True)

    def test_crashed_worker_is_retried_without_aborting(self, tmp_path):
        """A killed worker fails only its shard; the retry completes it."""
        grid = tiny_grid()
        clean = run_sweep(grid, str(tmp_path / "clean"), workers=2)
        specs = grid.expand()
        specs[0].fail_once_marker = str(tmp_path / "crash-once")
        crashy = tiny_grid()
        crashy.expand = lambda: specs  # inject the fail-once shard
        crashed = run_sweep(crashy, str(tmp_path / "crashy"), workers=2)
        assert crashed.stats.retried == 1
        assert crashed.stats.failed == 0
        assert crashed.stats.done == len(grid)
        assert read_bytes(crashed.aggregate_path) == read_bytes(clean.aggregate_path)

    def test_shard_failing_every_attempt_is_reported_not_fatal(self, tmp_path):
        grid = tiny_grid()
        specs = grid.expand()
        # a marker path that can never be created -> crashes every attempt
        specs[0].fail_once_marker = str(tmp_path / "missing-dir" / "marker")
        grid.expand = lambda: specs
        result = run_sweep(grid, str(tmp_path / "out"), workers=2, max_retries=1)
        assert result.stats.failed == 1
        assert result.stats.done == len(specs) - 1
        failed_keys = [o.key for o in result.outcomes if o.status == "failed"]
        assert failed_keys == [specs[0].key]
        merged_keys = [shard["key"] for shard in result.aggregate["shards"]]
        assert specs[0].key not in merged_keys

    def test_invalid_workers_rejected(self, tmp_path):
        with pytest.raises(SweepError):
            run_sweep(tiny_grid(), str(tmp_path / "x"), workers=0)
        with pytest.raises(SweepError):
            run_sweep(tiny_grid(), str(tmp_path / "x"), workers=2, max_retries=-1)

    def test_stats_are_emitted(self, tmp_path):
        out = str(tmp_path / "sweep")
        result = run_sweep(tiny_grid(), out, workers=2)
        stats = result.stats.to_dict()
        assert stats["done"] == 2 and stats["failed"] == 0
        assert stats["speedup"] > 0
        with open(os.path.join(out, "sweep_stats.json")) as handle:
            assert json.load(handle)["done"] == 2
        assert "shards done" in result.stats.describe()


# ----------------------------------------------------------------------
# merge + rendering
# ----------------------------------------------------------------------


class TestMergeAndReport:
    def make_results(self):
        specs = tiny_grid().expand()
        return [run_shard(spec) for spec in specs]

    def test_merge_orders_by_key_not_input_order(self):
        results = self.make_results()
        grid_desc = tiny_grid().describe()
        shuffled = list(reversed(results))
        merged = merge_shard_results(grid_desc, shuffled)
        assert [s["key"] for s in merged["shards"]] == sorted(
            r["key"] for r in results
        )
        assert merged == merge_shard_results(grid_desc, results)

    def test_merge_rejects_duplicate_keys(self):
        results = self.make_results()
        with pytest.raises(ValueError, match="duplicate"):
            merge_shard_results(tiny_grid().describe(), results + results[:1])

    def test_group_summary_aggregates_across_seeds(self):
        results = self.make_results()
        merged = merge_shard_results(tiny_grid().describe(), results)
        key = group_key(results[0]["params"])
        group = merged["summary"][key]
        assert group["seeds"] == [1, 2]
        assert 0.0 <= group["mean_fulfillment"] <= 1.0

    def test_read_aggregate_schema_guard(self, tmp_path):
        path = str(tmp_path / "aggregate.json")
        write_json(path, {"schema": 99})
        with pytest.raises(ValueError, match="schema"):
            read_aggregate(path)

    def test_dashboard_renders_aggregate(self, tmp_path):
        result = run_sweep(tiny_grid(), str(tmp_path / "out"), workers=1)
        rendered = SweepDashboard(result.aggregate).render()
        assert "sweep 'tiny'" in rendered
        assert "steady-r250-b30ms-sync-scale-reactively-s0001" in rendered
        assert "across seeds:" in rendered
        assert "fulfillment by shard:" in rendered

    def test_dashboard_handles_empty_aggregate(self):
        rendered = SweepDashboard({"grid": {}, "shards": [], "summary": {}}).render()
        assert "(no completed shards)" in rendered


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestSweepCli:
    def test_sweep_command_runs_and_writes_aggregate(self, tmp_path, capsys):
        out = str(tmp_path / "out")
        code = cli.main([
            "sweep", "--seeds", "1,2", "--rates", "250", "--duration", "4",
            "--workers", "2", "--out", out,
        ])
        assert code == 0
        assert os.path.exists(os.path.join(out, AGGREGATE_FILE))
        printed = capsys.readouterr().out
        assert "shards done" in printed
        assert "aggregate:" in printed

    def test_resume_flag_skips_checkpoints(self, tmp_path, capsys):
        out = str(tmp_path / "out")
        argv = ["sweep", "--seeds", "1,2", "--rates", "250", "--duration", "4",
                "--workers", "1", "--out", out]
        assert cli.main(argv) == 0
        aggregate = read_bytes(os.path.join(out, AGGREGATE_FILE))
        capsys.readouterr()
        assert cli.main(argv + ["--resume"]) == 0
        assert "resumed" in capsys.readouterr().out
        assert read_bytes(os.path.join(out, AGGREGATE_FILE)) == aggregate

    def test_populated_out_without_resume_fails_cleanly(self, tmp_path, capsys):
        out = str(tmp_path / "out")
        argv = ["sweep", "--seeds", "1", "--rates", "250", "--duration", "4",
                "--workers", "1", "--out", out]
        assert cli.main(argv) == 0
        assert cli.main(argv) == 2
        assert "--resume" in capsys.readouterr().out

    def test_grid_and_quick_conflict(self, tmp_path):
        with pytest.raises(SystemExit):
            cli.main(["sweep", "--grid", "g.json", "--quick",
                      "--out", str(tmp_path / "out")])

    def test_grid_file_with_flag_overrides(self, tmp_path):
        grid_path = str(tmp_path / "grid.json")
        write_json(grid_path, tiny_grid().describe())
        out = str(tmp_path / "out")
        code = cli.main([
            "sweep", "--grid", grid_path, "--seeds", "5", "--workers", "1",
            "--out", out,
        ])
        assert code == 0
        aggregate = read_aggregate(os.path.join(out, AGGREGATE_FILE))
        assert [s["params"]["seed"] for s in aggregate["shards"]] == [5]
