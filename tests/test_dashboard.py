"""Tests for the textual operations dashboard."""

import pytest

from repro.core.constraints import LatencyConstraint
from repro.engine.engine import EngineConfig, StreamProcessingEngine
from repro.experiments.dashboard import Dashboard
from repro.experiments.recording import SeriesRecorder
from repro.graphs.sequences import JobSequence

from conftest import make_linear_job


@pytest.fixture
def running_setup():
    engine = StreamProcessingEngine(EngineConfig.nephele_adaptive(elastic=True, seed=4))
    graph = make_linear_job(source_rate=300.0, service_mean=0.004,
                            worker_min=1, worker_max=16)
    js = JobSequence.from_names(graph, ["Worker"], leading_edge=True, trailing_edge=True)
    constraint = LatencyConstraint(js, 0.030)
    recorder = SeriesRecorder(engine, interval=5.0, source_vertex="Source",
                              source_profile=graph.vertex("Source").rate_profile)
    recorder.add_sink_feed("e2e", "Sink")
    engine.submit(graph, [constraint])
    engine.run(30.0)
    return engine, recorder


class TestDashboard:
    def test_header(self, running_setup):
        engine, recorder = running_setup
        header = Dashboard(engine, recorder).header()
        assert "t=30s" in header
        assert "jobs=1" in header

    def test_constraints_table(self, running_setup):
        engine, recorder = running_setup
        table = Dashboard(engine, recorder).constraints_table()
        assert "30 ms" in table
        assert "fulfilled" in table

    def test_parallelism_table(self, running_setup):
        engine, recorder = running_setup
        table = Dashboard(engine, recorder).parallelism_table()
        assert "Worker" in table
        assert "elastic" in table
        assert "fixed" in table

    def test_series_section(self, running_setup):
        engine, recorder = running_setup
        section = Dashboard(engine, recorder).series_section()
        assert "effective rate" in section
        assert "e2e mean (ms)" in section
        assert "p(Worker)" in section

    def test_events_section(self, running_setup):
        engine, recorder = running_setup
        section = Dashboard(engine, recorder).events_section()
        # under this load the scaler acts at least once
        assert "scaling" in section

    def test_full_render(self, running_setup):
        engine, recorder = running_setup
        text = Dashboard(engine, recorder).render()
        assert "t=30s" in text
        assert "Worker" in text
        assert "assumptions" in text or "assumption findings" in text

    def test_without_recorder(self, running_setup):
        engine, _ = running_setup
        text = Dashboard(engine).render()
        assert "(no recorder attached)" in text

    def test_before_submit(self):
        engine = StreamProcessingEngine(EngineConfig())
        dash = Dashboard(engine)
        assert "(no constraints)" in dash.constraints_table()
        assert "(no job)" in dash.parallelism_table()
        assert "(no scaling events)" in dash.events_section()
        assert dash.diagnostics_section() == ""
