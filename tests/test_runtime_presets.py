"""Unit tests: runtime-graph bookkeeping, engine presets, count windows."""

import pytest

from repro.engine.batching import (
    AdaptiveDeadlineBatching,
    FixedSizeBatching,
    InstantFlush,
)
from repro.engine.engine import EngineConfig, StreamProcessingEngine
from repro.engine.operators import CountWindowUDF
from repro.engine.runtime import RuntimeGraph
from repro.engine.udf import MapUDF

from conftest import make_linear_job, run_linear


class TestEngineConfigPresets:
    def test_storm_like(self):
        config = EngineConfig.storm_like(seed=99)
        assert isinstance(config.batching, InstantFlush)
        assert config.seed == 99
        assert config.per_batch_overhead > EngineConfig().per_batch_overhead

    def test_nephele_instant_flush(self):
        config = EngineConfig.nephele_instant_flush()
        assert isinstance(config.batching, InstantFlush)
        assert not config.elastic

    def test_nephele_fixed_buffer(self):
        config = EngineConfig.nephele_fixed_buffer(8 * 1024)
        assert isinstance(config.batching, FixedSizeBatching)
        assert config.batching.buffer_bytes == 8 * 1024

    def test_nephele_adaptive_elastic(self):
        config = EngineConfig.nephele_adaptive(elastic=True, rho_max=0.95)
        assert isinstance(config.batching, AdaptiveDeadlineBatching)
        assert config.elastic
        assert config.rho_max == 0.95

    def test_overrides_reach_engine(self):
        config = EngineConfig.nephele_adaptive(queue_capacity=42)
        engine = StreamProcessingEngine(config)
        engine.submit(make_linear_job())
        worker = engine.runtime.vertex("Worker").tasks[0]
        assert worker.input_queue.capacity == 42

    def test_paper_defaults(self):
        config = EngineConfig()
        assert config.measurement_interval == 1.0
        assert config.adjustment_interval == 5.0
        assert config.w_fraction == 0.2
        assert config.batch_fraction == 0.8
        assert config.inactivity_intervals == 2
        assert config.worker_pool == 130
        assert config.slots_per_worker == 4


class TestRuntimeGraph:
    def make(self):
        graph = make_linear_job(n_workers=3)
        return graph, RuntimeGraph(graph)

    def test_vertices_mirrored(self):
        graph, runtime = self.make()
        assert set(runtime.vertices) == set(graph.vertices)
        assert runtime.vertex("Worker").job_vertex is graph.vertex("Worker")

    def test_edge_registry_initialized(self):
        _, runtime = self.make()
        assert set(runtime.edge_channels) == {"Source->Worker", "Worker->Sink"}

    def test_parallelism_of_empty_vertex_is_zero(self):
        _, runtime = self.make()
        assert runtime.parallelism("Worker") == 0
        assert runtime.total_parallelism() == 0

    def test_subtask_indices_monotone(self):
        _, runtime = self.make()
        rv = runtime.vertex("Worker")
        assert [rv.next_subtask_index() for _ in range(3)] == [0, 1, 2]

    def test_live_engine_registry_consistent(self):
        engine = run_linear(duration=3.0, n_workers=3)
        runtime = engine.runtime
        assert runtime.total_parallelism() == 5
        assert len(runtime.all_tasks()) == 5
        assert len(runtime.channels_of_edge("Source->Worker")) == 3
        for channel in runtime.channels_of_edge("Source->Worker"):
            assert not channel.closed


class TestCountWindow:
    def make(self, size=3):
        return CountWindowUDF(
            size,
            create=list,
            add=lambda acc, x: acc + [x],
            finalize=lambda acc: [tuple(acc)],
        )

    def test_emits_every_n_items(self):
        udf = self.make(3)
        assert list(udf.process(1)) == []
        assert list(udf.process(2)) == []
        assert list(udf.process(3)) == [(1, 2, 3)]
        assert list(udf.process(4)) == []

    def test_flush_partial(self):
        udf = self.make(3)
        udf.process(1)
        assert udf.flush_partial() == ((1,),)
        assert udf.flush_partial() == ()

    def test_read_ready_mode(self):
        assert self.make().latency_mode == "RR"
        assert not self.make().is_windowed

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            self.make(0)

    def test_runs_in_engine(self):
        from repro.engine.udf import SinkUDF, SourceUDF
        from repro.graphs.job_graph import JobGraph
        from repro.workloads.rates import ConstantRate

        graph = JobGraph("count")
        src = graph.add_vertex("Src", lambda: SourceUDF(lambda now, rng: 1))
        win = graph.add_vertex(
            "Win",
            lambda: CountWindowUDF(
                10, create=lambda: 0, add=lambda a, x: a + x, finalize=lambda a: [a]
            ),
        )
        collected = []
        sink = graph.add_vertex("Snk", lambda: SinkUDF(on_item=collected.append))
        graph.connect(src, win)
        graph.connect(win, sink)
        src.rate_profile = ConstantRate(100.0, jitter="deterministic")
        engine = StreamProcessingEngine(EngineConfig(seed=1))
        engine.submit(graph)
        engine.run(5.0)
        assert collected
        assert all(value == 10 for value in collected)
