"""Unit tests for channels, output gates and the network model."""

import random

import pytest

from repro.engine.batching import AdaptiveDeadlineBatching, FixedSizeBatching, InstantFlush
from repro.engine.channel import NetworkModel, RuntimeChannel
from repro.engine.items import DataItem
from repro.engine.task import OutputGate, RuntimeTask
from repro.engine.udf import SinkUDF
from repro.simulation.kernel import Simulator


@pytest.fixture
def setup():
    """A producer gate wired to one consumer task over one channel."""
    sim = Simulator()
    network = NetworkModel(base_latency=0.001, per_batch_overhead=0.0, per_item_overhead=0.0)
    consumer = RuntimeTask(sim, "C", 0, SinkUDF(), random.Random(1), queue_capacity=4)
    consumer.state = "running"
    producer = RuntimeTask(sim, "P", 0, SinkUDF(), random.Random(2))
    channel = RuntimeChannel(sim, consumer, network, "P->C", capacity=8)
    channel.producer = producer
    consumer.in_channels.append(channel)
    return sim, producer, consumer, channel


def item(payload="x", created=0.0):
    return DataItem(payload, created)


class TestNetworkModel:
    def test_transfer_time(self):
        net = NetworkModel(base_latency=0.001, bandwidth=1_000_000)
        assert net.transfer_time(1000) == pytest.approx(0.002)

    def test_shipping_overhead(self):
        net = NetworkModel(per_batch_overhead=0.001, per_item_overhead=0.0001)
        assert net.shipping_overhead(10) == pytest.approx(0.002)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth=0)
        with pytest.raises(ValueError):
            NetworkModel(base_latency=-1)
        with pytest.raises(ValueError):
            NetworkModel(per_item_overhead=-1)


class TestChannelDelivery:
    def test_ship_delivers_after_transfer_time(self, setup):
        sim, producer, consumer, channel = setup
        it = item()
        assert channel.accept(it)
        channel.ship([it], batch_bytes=256)
        assert len(consumer.input_queue) == 0
        sim.run()
        # Item arrives, consumer (sink, zero service) processes it.
        assert consumer.items_processed == 1
        assert channel.items_delivered == 1
        assert channel.outstanding == 0

    def test_accept_stamps_emitted_at(self, setup):
        sim, _, _, channel = setup
        sim.schedule(2.0, lambda: None)
        sim.run()
        it = item()
        channel.accept(it)
        assert it.emitted_at == 2.0

    def test_accept_refuses_beyond_capacity(self, setup):
        sim, _, _, channel = setup
        accepted = [channel.accept(item()) for _ in range(10)]
        assert accepted.count(True) == 8
        assert accepted.count(False) == 2

    def test_full_queue_parks_items(self, setup):
        sim, producer, consumer, channel = setup
        consumer.state = "created"  # not running: nothing consumes
        items = [item() for _ in range(6)]
        for it in items:
            channel.accept(it)
        channel.ship(items, 256 * 6)
        sim.run()
        assert len(consumer.input_queue) == 4  # queue capacity
        assert channel.outstanding == 2  # the two parked items still hold credits

    def test_unblock_waiter_fires_on_release(self, setup):
        sim, _, consumer, channel = setup
        for _ in range(8):
            channel.accept(item())
        fired = []
        channel.add_unblock_waiter(lambda: fired.append(sim.now))
        channel.ship([item("y", 0.0)], 256)  # not accepted items; simulate release path
        # Release happens when enqueued; ship the accepted ones instead:
        assert not fired
        channel._release_one()
        assert fired

    def test_close_releases_blocked_producer(self, setup):
        sim, _, _, channel = setup
        for _ in range(8):
            channel.accept(item())
        fired = []
        channel.add_unblock_waiter(lambda: fired.append(True))
        channel.close()
        assert fired == [True]
        assert channel.closed
        assert channel.outstanding == 0

    def test_closed_channel_accepts_and_drops(self, setup):
        sim, _, consumer, channel = setup
        channel.close()
        assert channel.accept(item())
        channel.ship([item()], 256)
        sim.run()
        assert consumer.items_processed == 0


class TestOutputGate:
    def make_gate(self, setup, strategy):
        sim, producer, consumer, channel = setup
        gate = OutputGate(
            sim, producer, "P->C", "round_robin", strategy,
            channel.network,
        )
        gate.set_channels([channel])
        producer.out_gates.append(gate)
        return gate

    def test_instant_flush_ships_immediately(self, setup):
        sim, producer, consumer, channel = setup
        gate = self.make_gate(setup, InstantFlush())
        assert gate.emit(channel, item())
        assert gate.buffered_items == 0
        assert channel.batches_shipped == 1

    def test_fixed_size_waits_for_bytes(self, setup):
        sim, producer, consumer, channel = setup
        gate = self.make_gate(setup, FixedSizeBatching(1024))
        for _ in range(3):
            gate.emit(channel, item())
        assert channel.batches_shipped == 0
        assert gate.buffered_items == 3
        gate.emit(channel, item())  # 4 x 256 = 1024
        assert channel.batches_shipped == 1
        assert gate.buffered_items == 0

    def test_deadline_timer_flushes(self, setup):
        sim, producer, consumer, channel = setup
        gate = self.make_gate(setup, AdaptiveDeadlineBatching(initial_deadline=0.05))
        gate.emit(channel, item())
        assert channel.batches_shipped == 0
        sim.run(until=0.049)
        assert channel.batches_shipped == 0
        sim.run(until=0.051)
        assert channel.batches_shipped == 1

    def test_set_deadline_delegates_to_strategy(self, setup):
        gate = self.make_gate(setup, AdaptiveDeadlineBatching(initial_deadline=0.05))
        gate.set_deadline(0.02)
        assert gate.strategy.deadline == pytest.approx(0.02)

    def test_set_deadline_noop_for_fixed(self, setup):
        gate = self.make_gate(setup, FixedSizeBatching(1024))
        gate.set_deadline(0.02)  # must not raise

    def test_flush_now_ships_partial_buffer(self, setup):
        sim, producer, consumer, channel = setup
        gate = self.make_gate(setup, FixedSizeBatching(16 * 1024))
        gate.emit(channel, item())
        gate.flush_now()
        assert channel.batches_shipped == 1

    def test_flush_charges_producer_overhead(self, setup):
        sim, producer, consumer, channel = setup
        channel.network.per_batch_overhead = 0.002
        channel.network.per_item_overhead = 0.0001
        gate = self.make_gate(setup, InstantFlush())
        gate.emit(channel, item())
        assert producer._overhead_debt == pytest.approx(0.0021)

    def test_write_stall_forces_flush(self, setup):
        sim, producer, consumer, channel = setup
        consumer.state = "created"
        gate = self.make_gate(setup, FixedSizeBatching(16 * 1024))
        results = [gate.emit(channel, item()) for _ in range(8)]
        assert all(results)
        # 9th accept refused -> gate flushes the 8 buffered, retries: the
        # retry is also refused (credits still held by in-flight items).
        assert gate.emit(channel, item()) is False
        assert channel.batches_shipped == 1

    def test_partitioner_rebuilt_on_set_channels(self, setup):
        sim, producer, consumer, channel = setup
        gate = self.make_gate(setup, InstantFlush())
        other = RuntimeChannel(sim, consumer, channel.network, "P->C")
        gate.set_channels([channel, other])
        assert gate.partitioner.fanout == 2
        picks = {gate.select_channels("x")[0] for _ in range(4)}
        assert picks == {channel, other}
