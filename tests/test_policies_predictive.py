"""Tests for baseline policies (Sec. VI related work) and the predictive
extension (the paper's future-work direction)."""

import pytest

from repro.core.constraints import LatencyConstraint
from repro.core.policies import CpuThresholdPolicy, RateBasedPolicy, StaticPolicy
from repro.core.predictive import HoltForecaster, PredictiveScaleReactivelyPolicy
from repro.core.scale_reactively import ScaleReactivelyPolicy
from repro.engine.udf import MapUDF, SinkUDF, SourceUDF
from repro.graphs.job_graph import JobGraph
from repro.graphs.sequences import JobSequence
from repro.qos.summary import EdgeSummary, GlobalSummary, VertexSummary


def make_graph(worker_max=32):
    graph = JobGraph("g")
    src = graph.add_vertex("Src", lambda: SourceUDF(lambda n, r: 0))
    worker = graph.add_vertex(
        "Worker", lambda: MapUDF(lambda x: x),
        parallelism=4, min_parallelism=1, max_parallelism=worker_max,
    )
    sink = graph.add_vertex("Snk", lambda: SinkUDF())
    graph.connect(src, worker)
    graph.connect(worker, sink)
    return graph


def summary_with(service=0.004, interarrival=0.02, cv=1.0, latency=0.004):
    s = GlobalSummary(0.0)
    s.vertices["Worker"] = VertexSummary("Worker", latency, service, cv, interarrival, cv, 4)
    s.edges["Src->Worker"] = EdgeSummary("Src->Worker", 0.003, 0.001, 4)
    s.edges["Worker->Snk"] = EdgeSummary("Worker->Snk", 0.002, 0.001, 4)
    return s


class TestCpuThresholdPolicy:
    def policy(self, graph, **kwargs):
        return CpuThresholdPolicy([graph.vertex("Worker")], **kwargs)

    def test_scales_out_above_high(self):
        graph = make_graph()
        # rho = 0.85 per task at p=4 -> busy 3.4 -> target 0.6 -> ceil(5.67)=6
        summary = summary_with(service=0.017, interarrival=0.02)
        decision = self.policy(graph).decide(summary, {"Worker": 4})
        assert decision.parallelism["Worker"] == 6

    def test_scales_in_below_low(self):
        graph = make_graph()
        # rho = 0.1 -> busy 0.4 -> ceil(0.67) = 1
        summary = summary_with(service=0.002, interarrival=0.02)
        decision = self.policy(graph).decide(summary, {"Worker": 4})
        assert decision.parallelism["Worker"] == 1

    def test_no_action_in_band(self):
        graph = make_graph()
        summary = summary_with(service=0.01, interarrival=0.02)  # rho = 0.5
        decision = self.policy(graph).decide(summary, {"Worker": 4})
        assert not decision.has_actions

    def test_clamped_to_bounds(self):
        graph = make_graph(worker_max=5)
        summary = summary_with(service=0.019, interarrival=0.02)
        decision = self.policy(graph).decide(summary, {"Worker": 4})
        assert decision.parallelism["Worker"] == 5

    def test_unmeasured_vertex_skipped(self):
        graph = make_graph()
        decision = self.policy(graph).decide(GlobalSummary(0.0), {"Worker": 4})
        assert not decision.has_actions
        assert decision.skipped_constraints == ["Worker"]

    def test_invalid_thresholds_rejected(self):
        graph = make_graph()
        with pytest.raises(ValueError):
            self.policy(graph, high=0.5, low=0.6, target=0.55)


class TestRateBasedPolicy:
    def test_sizes_for_rate_plus_headroom(self):
        graph = make_graph()
        # total rate = 50/task * 4 = 200/s; busy = 200 * 0.01 = 2
        summary = summary_with(service=0.01, interarrival=0.02)
        policy = RateBasedPolicy([graph.vertex("Worker")], headroom=0.5)
        decision = policy.decide(summary, {"Worker": 4})
        assert decision.parallelism["Worker"] == 3  # ceil(2 * 1.5)

    def test_zero_headroom(self):
        graph = make_graph()
        summary = summary_with(service=0.01, interarrival=0.02)
        policy = RateBasedPolicy([graph.vertex("Worker")], headroom=0.0)
        decision = policy.decide(summary, {"Worker": 4})
        assert decision.parallelism["Worker"] == 2

    def test_negative_headroom_rejected(self):
        with pytest.raises(ValueError):
            RateBasedPolicy([], headroom=-0.1)


class TestStaticPolicy:
    def test_never_acts(self):
        decision = StaticPolicy().decide(summary_with(), {"Worker": 4})
        assert not decision.has_actions


class TestHoltForecaster:
    def test_first_observation_sets_level(self):
        f = HoltForecaster()
        f.observe(10.0)
        assert f.level == 10.0
        assert f.forecast(1.0) == 10.0

    def test_tracks_linear_trend(self):
        f = HoltForecaster(alpha=0.8, beta=0.5)
        for i in range(20):
            f.observe(100.0 + 10.0 * i)
        assert f.forecast(1.0) == pytest.approx(100.0 + 10.0 * 20, rel=0.1)

    def test_constant_series_flat_forecast(self):
        f = HoltForecaster()
        for _ in range(10):
            f.observe(42.0)
        assert f.forecast(5.0) == pytest.approx(42.0, rel=0.01)

    def test_forecast_never_negative(self):
        f = HoltForecaster(alpha=0.9, beta=0.9)
        for v in (100.0, 50.0, 10.0, 1.0):
            f.observe(v)
        assert f.forecast(10.0) >= 0.0

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            HoltForecaster(alpha=0.0)
        with pytest.raises(ValueError):
            HoltForecaster(beta=1.5)


class TestPredictivePolicy:
    def make_policy(self, graph, horizon=1.0):
        js = JobSequence.from_names(graph, ["Worker"], leading_edge=True, trailing_edge=True)
        constraint = LatencyConstraint(js, 0.020)
        return constraint, PredictiveScaleReactivelyPolicy([constraint], horizon=horizon)

    def test_rising_rates_scale_earlier_than_reactive(self):
        graph = make_graph()
        constraint, predictive = self.make_policy(graph)
        reactive = ScaleReactivelyPolicy([constraint])
        # Feed a steep ramp: interarrival shrinking each round.
        decisions = {}
        for policy, name in ((predictive, "predictive"), (reactive, "reactive")):
            last = None
            for interarrival in (0.05, 0.025, 0.0125, 0.008):
                last = policy.decide(
                    summary_with(service=0.006, interarrival=interarrival),
                    {"Worker": 4},
                )
            decisions[name] = last.parallelism.get("Worker", 0)
        assert decisions["predictive"] >= decisions["reactive"]

    def test_forecast_never_below_measurement(self):
        graph = make_graph()
        _, policy = self.make_policy(graph)
        # Falling rates: forecast must not undercut the measurement.
        for interarrival in (0.01, 0.02, 0.04):
            policy.decide(summary_with(interarrival=interarrival), {"Worker": 4})
        for vertex, measured, forecast in policy.forecast_log:
            assert forecast >= measured - 1e-9

    def test_zero_horizon_matches_reactive(self):
        graph = make_graph()
        constraint, predictive = self.make_policy(graph, horizon=0.0)
        reactive = ScaleReactivelyPolicy([constraint])
        summary = summary_with(service=0.008, interarrival=0.01)
        a = predictive.decide(summary, {"Worker": 4})
        b = reactive.decide(summary, {"Worker": 4})
        assert a.parallelism == b.parallelism

    def test_forecast_log_populated(self):
        graph = make_graph()
        _, policy = self.make_policy(graph)
        policy.decide(summary_with(), {"Worker": 4})
        assert policy.forecast_log
        assert policy.forecast_log[0][0] == "Worker"

    def test_invalid_horizon_rejected(self):
        graph = make_graph()
        js = JobSequence.from_names(graph, ["Worker"], leading_edge=True, trailing_edge=True)
        with pytest.raises(ValueError):
            PredictiveScaleReactivelyPolicy([LatencyConstraint(js, 0.02)], horizon=-1.0)
