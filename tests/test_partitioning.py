"""Unit and property tests for stream partitioners."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.partitioning import (
    BroadcastPartitioner,
    KeyPartitioner,
    Partitioner,
    RoundRobinPartitioner,
    make_partitioner,
)


class TestRoundRobin:
    def test_cycles_through_targets(self):
        p = RoundRobinPartitioner(3)
        picks = [p.select(None)[0] for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_start_offset(self):
        p = RoundRobinPartitioner(3, start=2)
        assert [p.select(None)[0] for _ in range(3)] == [2, 0, 1]

    def test_resize_keeps_cursor_valid(self):
        p = RoundRobinPartitioner(5)
        for _ in range(4):
            p.select(None)
        p.resize(2)
        picks = [p.select(None)[0] for _ in range(4)]
        assert all(0 <= i < 2 for i in picks)

    def test_balanced_distribution(self):
        p = RoundRobinPartitioner(4)
        counts = [0] * 4
        for _ in range(400):
            counts[p.select(None)[0]] += 1
        assert counts == [100] * 4

    @given(st.integers(min_value=1, max_value=16), st.integers(min_value=1, max_value=100))
    @settings(max_examples=50, deadline=None)
    def test_always_in_range(self, fanout, n):
        p = RoundRobinPartitioner(fanout)
        for _ in range(n):
            (i,) = p.select(None)
            assert 0 <= i < fanout


class TestKeyPartitioner:
    def test_same_key_same_target(self):
        p = KeyPartitioner(7, key_fn=lambda x: x)
        assert p.select("abc") == p.select("abc")

    def test_key_fn_extracts(self):
        p = KeyPartitioner(4, key_fn=lambda x: x["user"])
        a = p.select({"user": "u1", "v": 1})
        b = p.select({"user": "u1", "v": 2})
        assert a == b

    def test_requires_key_fn(self):
        with pytest.raises(ValueError):
            KeyPartitioner(4, key_fn=None)

    def test_spreads_keys(self):
        p = KeyPartitioner(8, key_fn=lambda x: x)
        targets = {p.select(f"key-{i}")[0] for i in range(200)}
        assert len(targets) >= 6  # nearly all partitions hit

    @given(st.integers(min_value=1, max_value=32), st.text(max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_in_range(self, fanout, key):
        p = KeyPartitioner(fanout, key_fn=lambda x: x)
        (i,) = p.select(key)
        assert 0 <= i < fanout


class TestBroadcast:
    def test_selects_all(self):
        p = BroadcastPartitioner(4)
        assert list(p.select("x")) == [0, 1, 2, 3]

    def test_resize(self):
        p = BroadcastPartitioner(2)
        p.resize(5)
        assert list(p.select("x")) == [0, 1, 2, 3, 4]


class TestFactory:
    def test_round_robin(self):
        assert isinstance(make_partitioner("round_robin", 2), RoundRobinPartitioner)

    def test_key(self):
        assert isinstance(make_partitioner("key", 2, key_fn=lambda x: x), KeyPartitioner)

    def test_key_without_fn_rejected(self):
        with pytest.raises(ValueError):
            make_partitioner("key", 2)

    def test_broadcast(self):
        assert isinstance(make_partitioner("broadcast", 2), BroadcastPartitioner)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_partitioner("nope", 2)

    def test_invalid_fanout_rejected(self):
        with pytest.raises(ValueError):
            make_partitioner("round_robin", 0)

    def test_base_class_abstract(self):
        with pytest.raises(NotImplementedError):
            Partitioner(2).select(None)
