"""Integration tests: the adaptive output-batching control loop at runtime."""

import pytest

from repro.core.constraints import LatencyConstraint
from repro.engine.engine import EngineConfig, StreamProcessingEngine
from repro.graphs.sequences import JobSequence

from conftest import make_linear_job


def adaptive_engine(bound, source_rate=100.0, qos_managers=4, seed=6,
                    deadline_factor=0.9):
    config = EngineConfig.nephele_adaptive(
        elastic=False, seed=seed, qos_managers=qos_managers,
        deadline_factor=deadline_factor,
    )
    engine = StreamProcessingEngine(config)
    graph = make_linear_job(source_rate=source_rate, service_mean=0.002)
    js = JobSequence.from_names(graph, ["Worker"], leading_edge=True, trailing_edge=True)
    constraint = LatencyConstraint(js, bound)
    engine.submit(graph, [constraint])
    return engine, constraint


def gate_deadlines(engine, edge_name):
    deadlines = []
    for task in engine.runtime.all_tasks():
        for gate in task.out_gates:
            if gate.edge_name == edge_name and hasattr(gate.strategy, "deadline"):
                deadlines.append(gate.strategy.deadline)
    return deadlines


class TestAdaptiveBatchingRuntime:
    def test_deadlines_converge_towards_slack_share(self):
        engine, constraint = adaptive_engine(bound=0.050)
        engine.run(30.0)
        deadlines = gate_deadlines(engine, "Source->Worker")
        assert deadlines
        # slack ~ 48 ms, 80 % batching share over 2 edges, x0.9 factor
        expected = 0.9 * 0.8 * (0.050 - 0.002) / 2
        for deadline in deadlines:
            assert deadline == pytest.approx(expected, rel=0.25)

    def test_larger_bound_larger_deadlines(self):
        tight_engine, _ = adaptive_engine(bound=0.020)
        loose_engine, _ = adaptive_engine(bound=0.200)
        tight_engine.run(30.0)
        loose_engine.run(30.0)
        tight = max(gate_deadlines(tight_engine, "Source->Worker"))
        loose = max(gate_deadlines(loose_engine, "Source->Worker"))
        assert loose > 3 * tight

    def test_mean_latency_respects_bound_steady_state(self):
        for bound in (0.020, 0.060):
            engine, constraint = adaptive_engine(bound=bound)
            engine.run(40.0)
            tracker = engine.tracker_for(constraint)
            assert tracker.fulfillment_ratio >= 0.85, bound

    def test_batching_exploits_most_of_the_slack(self):
        """Larger bounds must actually be *used* for batching (bigger
        obl), not just tolerated — that is the throughput lever."""
        engine, _ = adaptive_engine(bound=0.100, source_rate=200.0)
        engine.run(40.0)
        es = engine.last_summary.edge("Source->Worker")
        assert es.output_batch_latency > 0.010

    def test_all_gates_of_edge_get_same_deadline(self):
        engine, _ = adaptive_engine(bound=0.050)
        engine.run(20.0)
        deadlines = set(round(d, 9) for d in gate_deadlines(engine, "Worker->Sink"))
        assert len(deadlines) == 1

    def test_manager_count_does_not_change_behaviour(self):
        """Partial-summary merging must be transparent: 1 manager vs 8
        managers give the same measurements for the same run."""
        one, c1 = adaptive_engine(bound=0.050, qos_managers=1, seed=12)
        many, c2 = adaptive_engine(bound=0.050, qos_managers=8, seed=12)
        one.run(25.0)
        many.run(25.0)
        vs_one = one.last_summary.vertex("Worker")
        vs_many = many.last_summary.vertex("Worker")
        assert vs_one.service_mean == pytest.approx(vs_many.service_mean, rel=1e-6)
        assert vs_one.arrival_rate == pytest.approx(vs_many.arrival_rate, rel=1e-6)
        es_one = one.last_summary.edge("Source->Worker")
        es_many = many.last_summary.edge("Source->Worker")
        assert es_one.channel_latency == pytest.approx(es_many.channel_latency, rel=1e-6)

    def test_unconstrained_job_keeps_initial_deadline(self):
        config = EngineConfig.nephele_adaptive(elastic=False, seed=6)
        engine = StreamProcessingEngine(config)
        engine.submit(make_linear_job(source_rate=100.0))
        engine.run(15.0)
        deadlines = gate_deadlines(engine, "Source->Worker")
        initial = config.batching.deadline
        assert all(d == pytest.approx(initial) for d in deadlines)
