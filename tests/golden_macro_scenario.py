"""The pinned macro (TwitterSentiment) scenario behind its byte-identity test.

``tests/golden/macro/`` holds the ``export_run`` artifacts (manifest,
scaler decision trace, metrics) of a short elastic TwitterSentiment run —
the same six-vertex job the macro benchmark and the paper's Fig. 8 use,
compressed to two synthetic "days" with a load burst and a topic burst.
This is the determinism wall for the vectorized engine fast path: the
source→channel→task hot path, block-sampled service times and deferred
reporter statistics all feed these bytes, so any change to event
ordering or RNG stream consumption shows up as a diff.

``tests/test_macro_determinism.py`` replays the scenario on every run,
diffs the export byte-for-byte against the golden copies, and replays it
again with ``vectorized_sampling=False`` to prove the vectorized path is
bit-identical to scalar draws end to end.

Regenerating the goldens (only when a PR *intentionally* changes
behavior — say so in the PR description)::

    PYTHONPATH=src python tests/golden_macro_scenario.py --write
"""

from __future__ import annotations

import os
import sys

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden", "macro")

#: the export files pinned by the golden copies
GOLDEN_FILES = ("manifest.json", "trace.jsonl", "metrics.jsonl")

SCENARIO_SEED = 23
SCENARIO_DURATION = 40.0
#: total tweet rate across the two sources (tweets/s)
SCENARIO_RATE = 200.0


def run_scenario(export_dir: str, vectorized: bool = True):
    """Run the pinned macro scenario and export into ``export_dir``.

    A 40 s elastic TwitterSentiment run (two sources at 100 tweets/s
    base each, two synthetic days, one load burst and one topic burst at
    mid-run) with both paper constraints active. ``vectorized=False``
    replays it with block sampling off — the export must not change.
    """
    from repro.actuation.config import ActuationConfig  # noqa: F401 (import parity)
    from repro.builder import BuiltPipeline
    from repro.engine.engine import EngineConfig, StreamProcessingEngine
    from repro.obs.config import ObservabilityConfig
    from repro.workloads.twitter_job import (
        TwitterSentimentParams,
        build_twitter_sentiment_job,
    )

    params = TwitterSentimentParams(
        base_rate=SCENARIO_RATE / 2.0,
        period=SCENARIO_DURATION / 2.0,
        bursts=((SCENARIO_DURATION * 0.5, SCENARIO_DURATION * 0.15, 2.5),),
        topic_bursts=((SCENARIO_DURATION * 0.5, SCENARIO_DURATION * 0.65, 0, 0.8),),
    )
    graph, constraints = build_twitter_sentiment_job(params)
    pipeline = BuiltPipeline(
        graph,
        constraints,
        observability=ObservabilityConfig(export_dir=export_dir, pin_wall_time=True),
    )
    engine = StreamProcessingEngine(
        EngineConfig.nephele_adaptive(
            elastic=True, seed=SCENARIO_SEED, vectorized_sampling=vectorized
        )
    )
    engine.submit(pipeline)
    engine.run(SCENARIO_DURATION)
    return engine.export_run()


def main(argv) -> int:
    if "--write" not in argv:
        print(__doc__)
        return 2
    paths = run_scenario(GOLDEN_DIR)
    for kind, path in sorted(paths.items()):
        print(f"wrote {kind}: {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
