"""Unit tests for the QoS measurement pipeline (reporters -> summaries)."""

import pytest

from repro.qos.manager import QoSManager
from repro.qos.reporter import ChannelReporter, TaskReporter
from repro.qos.stats import OnlineStats
from repro.qos.summary import (
    EdgeSummary,
    GlobalSummary,
    PartialSummary,
    VertexSummary,
    merge_partial_summaries,
)


class FakeTask:
    _uid = 1000

    def __init__(self, vertex="V", state="running"):
        FakeTask._uid += 1
        self.uid = FakeTask._uid
        self.vertex_name = vertex
        self.task_id = f"{vertex}#{self.uid}"
        self.state = state
        self.out_gates = []


class FakeChannel:
    _cid = 1000

    def __init__(self, edge="E", closed=False):
        FakeChannel._cid += 1
        self.channel_id = FakeChannel._cid
        self.edge_name = edge
        self.closed = closed


class TestTaskReporter:
    def test_flush_snapshots_and_resets(self):
        r = TaskReporter("V", "V[0]")
        r.record_service_time(0.01)
        r.record_service_time(0.03)
        r.record_interarrival(0.005)
        r.record_task_latency(0.02)
        m = r.flush(now=1.0)
        assert m.service_time.count == 2
        assert m.service_time.mean == pytest.approx(0.02)
        assert m.interarrival.count == 1
        assert m.task_latency.mean == pytest.approx(0.02)
        # reset
        assert r.flush(now=2.0).service_time.count == 0

    def test_measurement_carries_identity(self):
        m = TaskReporter("V", "V[3]").flush(0.5)
        assert (m.vertex_name, m.task_id, m.timestamp) == ("V", "V[3]", 0.5)


class TestChannelReporter:
    def test_flush(self):
        r = ChannelReporter("E", 7)
        r.record_channel_latency(0.01)
        r.record_output_batch_latency(0.004)
        m = r.flush(1.0)
        assert m.channel_latency.mean == pytest.approx(0.01)
        assert m.output_batch_latency.mean == pytest.approx(0.004)
        assert (m.edge_name, m.channel_id) == ("E", 7)


class TestQoSManager:
    def make_manager(self, n_tasks=2, window=3):
        manager = QoSManager(0, window=window)
        pairs = []
        for _ in range(n_tasks):
            task = FakeTask()
            reporter = TaskReporter(task.vertex_name, task.task_id)
            manager.attach_task(task, reporter)
            pairs.append((task, reporter))
        return manager, pairs

    def feed(self, manager, pairs, service, interarrival, now):
        for (task, reporter), s in zip(pairs, service):
            reporter.record_service_time(s)
            reporter.record_interarrival(interarrival)
            reporter.record_task_latency(s)
        manager.collect(now)

    def test_partial_summary_averages_tasks(self):
        manager, pairs = self.make_manager(2)
        self.feed(manager, pairs, [0.010, 0.030], 0.01, 1.0)
        summary = manager.partial_summary(1.0)
        vs = summary.vertices["V"]
        assert vs.service_mean == pytest.approx(0.020)
        assert vs.n_tasks == 2
        assert vs.arrival_rate == pytest.approx(100.0)

    def test_windowing_pools_past_measurements(self):
        manager, pairs = self.make_manager(1, window=2)
        self.feed(manager, pairs, [0.010], 0.01, 1.0)
        self.feed(manager, pairs, [0.030], 0.01, 2.0)
        vs = manager.partial_summary(2.0).vertices["V"]
        assert vs.service_mean == pytest.approx(0.020)

    def test_window_evicts_old_measurements(self):
        manager, pairs = self.make_manager(1, window=1)
        self.feed(manager, pairs, [0.010], 0.01, 1.0)
        self.feed(manager, pairs, [0.030], 0.01, 2.0)
        vs = manager.partial_summary(2.0).vertices["V"]
        assert vs.service_mean == pytest.approx(0.030)

    def test_stopped_tasks_evicted(self):
        manager, pairs = self.make_manager(2)
        pairs[0][0].state = "stopped"
        manager.collect(1.0)
        assert manager.task_count == 1

    def test_channel_summary(self):
        manager = QoSManager(0)
        channel = FakeChannel("E")
        reporter = ChannelReporter("E", channel.channel_id)
        manager.attach_channel(channel, reporter)
        reporter.record_channel_latency(0.02)
        reporter.record_output_batch_latency(0.008)
        manager.collect(1.0)
        es = manager.partial_summary(1.0).edges["E"]
        assert es.channel_latency == pytest.approx(0.02)
        assert es.output_batch_latency == pytest.approx(0.008)
        assert es.queueing_time == pytest.approx(0.012)

    def test_closed_channels_evicted(self):
        manager = QoSManager(0)
        channel = FakeChannel("E", closed=True)
        manager.attach_channel(channel, ChannelReporter("E", channel.channel_id))
        manager.collect(1.0)
        assert manager.channel_count == 0

    def test_empty_intervals_do_not_pollute(self):
        manager, pairs = self.make_manager(1)
        self.feed(manager, pairs, [0.010], 0.01, 1.0)
        manager.collect(2.0)  # nothing recorded this interval
        vs = manager.partial_summary(2.0).vertices["V"]
        assert vs.service_mean == pytest.approx(0.010)


class TestMergePartialSummaries:
    def vertex(self, name, service, n):
        return VertexSummary(name, 0.0, service, 0.5, 0.01, 1.0, n_tasks=n)

    def test_weighted_vertex_merge(self):
        p1 = PartialSummary(1.0)
        p1.vertices["V"] = self.vertex("V", 0.010, 1)
        p2 = PartialSummary(1.0)
        p2.vertices["V"] = self.vertex("V", 0.040, 3)
        merged = merge_partial_summaries(1.0, [p1, p2])
        vs = merged.vertices["V"]
        assert vs.service_mean == pytest.approx((0.010 * 1 + 0.040 * 3) / 4)
        assert vs.n_tasks == 4

    def test_edge_merge(self):
        p1 = PartialSummary(1.0)
        p1.edges["E"] = EdgeSummary("E", 0.02, 0.01, 2)
        p2 = PartialSummary(1.0)
        p2.edges["E"] = EdgeSummary("E", 0.05, 0.02, 2)
        merged = merge_partial_summaries(1.0, [p1, p2])
        es = merged.edges["E"]
        assert es.channel_latency == pytest.approx(0.035)
        assert es.n_channels == 4

    def test_disjoint_vertices_preserved(self):
        p1 = PartialSummary(1.0)
        p1.vertices["A"] = self.vertex("A", 0.01, 1)
        p2 = PartialSummary(1.0)
        p2.vertices["B"] = self.vertex("B", 0.02, 1)
        merged = merge_partial_summaries(1.0, [p1, p2])
        assert set(merged.vertices) == {"A", "B"}

    def test_empty_merge(self):
        merged = merge_partial_summaries(5.0, [])
        assert merged.vertices == {}
        assert merged.timestamp == 5.0


class TestSummaryTypes:
    def test_vertex_summary_derived_quantities(self):
        vs = VertexSummary("V", 0.001, 0.004, 0.5, 0.01, 1.0, n_tasks=2)
        assert vs.arrival_rate == pytest.approx(100.0)
        assert vs.utilization == pytest.approx(0.4)
        assert vs.service_rate == pytest.approx(250.0)

    def test_zero_interarrival_means_no_arrivals(self):
        vs = VertexSummary("V", 0.0, 0.004, 0.5, 0.0, 0.0, n_tasks=1)
        assert vs.arrival_rate == 0.0
        assert vs.utilization == 0.0

    def test_zero_service_rate_infinite(self):
        vs = VertexSummary("V", 0.0, 0.0, 0.0, 0.01, 0.0, n_tasks=1)
        assert vs.service_rate == float("inf")

    def test_edge_queueing_time_clamped(self):
        es = EdgeSummary("E", 0.001, 0.002, 1)  # obl > latency (noise)
        assert es.queueing_time == 0.0

    def test_global_summary_lookup(self):
        g = GlobalSummary(1.0)
        assert g.vertex("missing") is None
        assert g.edge("missing") is None
