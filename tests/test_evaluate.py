"""Evaluation platform: tolerances, baselines, comparisons, CLI, history.

Covers the tolerance spec format (parsing, validation, inclusive
checks), metric extraction from sweep aggregates, the baseline file
round-trip, pass/fail edge cases (exactly-at-bound, missing metric,
NaN), suggest-mode determinism across seeds, the run-history index, and
the ``repro compare`` / ``repro runs`` CLI round-trip on a tiny sweep
fixture. The golden-comparison regression test pins the committed
Twitter baseline: compared against itself it must stay fully green with
byte-identical comparison JSON.
"""

from __future__ import annotations

import json
import math
import os

import pytest

from repro import cli
from repro.evaluate import (
    Baseline,
    Candidate,
    RunIndex,
    ToleranceSpec,
    compare_runs,
    extract_metrics,
    limit_value,
    metric_direction,
    render_comparison,
    render_comparison_html,
    suggest_from_runs,
    suggest_tolerance,
    within_tolerance,
    write_comparison_html,
)
from repro.evaluate.metrics import MetricSeries, metrics_from_stats
from repro.experiments.ascii import spread_bar
from repro.experiments.dashboard import ComparisonDashboard
from repro.experiments.report import write_json
from repro.obs.manifest import git_provenance
from repro.sweep import SweepGrid, run_sweep

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TWITTER_BASELINE = os.path.join(REPO_ROOT, "baselines", "twitter.json")


def make_aggregate(latencies=(0.010, 0.012, 0.011), fulfillment=1.0, name="tiny"):
    """A synthetic merged sweep aggregate with one shard per latency."""
    shards = []
    for i, latency in enumerate(latencies):
        shards.append({
            "key": f"tiny-s{i:04d}",
            "params": {"seed": i},
            "final_parallelism": {"worker": 4},
            "constraints": [{
                "name": "e2e", "bound": 0.03,
                "fulfillment_ratio": fulfillment,
                "violations": 0, "intervals": 8,
            }],
            "series": {
                "feeds": {"e2e": {"mean_latency": latency,
                                  "max_p95_latency": latency * 2}},
                "task_seconds": 100.0 + i,
                "mean_cpu_utilization": 0.5,
            },
        })
    return {"grid": {"name": name, "shards": len(shards)}, "shards": shards}


def read_bytes(path):
    with open(path, "rb") as handle:
        return handle.read()


class TestToleranceSpec:
    def test_parses_default_and_per_metric_entries(self):
        spec = ToleranceSpec.from_dict({
            "schema": 1,
            "mode": "relative",
            "default": {"avg": 0.05, "p95": 0.1},
            "metrics": {"latency/e2e/mean": {"mode": "absolute", "avg": 0.002}},
        })
        assert spec.for_metric("anything")["mode"] == "relative"
        assert spec.for_metric("latency/e2e/mean")["mode"] == "absolute"
        assert spec.bounded_stats("anything") == ("avg", "p95")
        assert spec.bounded_stats("latency/e2e/mean") == ("avg",)

    def test_describe_round_trips(self):
        data = {
            "schema": 1, "mode": "absolute",
            "default": {"avg": 0.01, "max": "inf"},
            "metrics": {"m": {"mode": "relative", "p95": 0.5}},
        }
        spec = ToleranceSpec.from_dict(data)
        again = ToleranceSpec.from_dict(spec.describe())
        assert again.describe() == spec.describe()
        assert math.isinf(spec.for_metric("x")["bounds"]["max"])

    @pytest.mark.parametrize("bad", [
        {"schema": 2},
        {"typo": 1},
        {"mode": "sideways"},
        {"default": {"count": 0.1}},
        {"default": {"avg": -0.1}},
        {"default": {"avg": float("nan")}},
        {"default": {"avg": "huge"}},
        {"default": {"avg": True}},
        {"metrics": {"m": {"weird": 0.1}}},
        {"metrics": {"m": "not-an-object"}},
    ])
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ValueError):
            ToleranceSpec.from_dict(bad)

    def test_exactly_at_bound_passes_inclusively(self):
        # lower-is-better, relative: limit = 100 * 1.05
        assert within_tolerance(105.0, 100.0, 0.05, "relative", "lower")
        assert not within_tolerance(105.0000001, 100.0, 0.05, "relative", "lower")
        # higher-is-better, absolute: limit = 1.0 - 0.2
        assert within_tolerance(0.8, 1.0, 0.2, "absolute", "higher")
        assert not within_tolerance(0.79999, 1.0, 0.2, "absolute", "higher")

    def test_limit_moves_in_the_bad_direction_only(self):
        assert limit_value(10.0, 0.1, "relative", "lower") == pytest.approx(11.0)
        assert limit_value(10.0, 0.1, "relative", "higher") == pytest.approx(9.0)
        assert limit_value(-10.0, 0.1, "relative", "lower") == pytest.approx(-9.0)
        assert limit_value(10.0, 0.5, "absolute", "lower") == pytest.approx(10.5)
        with pytest.raises(ValueError):
            limit_value(1.0, 0.1, "sideways", "lower")
        with pytest.raises(ValueError):
            limit_value(1.0, 0.1, "relative", "diagonal")

    def test_suggest_tolerance_admits_and_is_deterministic(self):
        for candidate, baseline, mode, direction in [
            (105.0, 100.0, "relative", "lower"),
            (0.123456789, 0.1, "absolute", "lower"),
            (0.7, 0.9, "relative", "higher"),
            (0.7, 0.9, "absolute", "higher"),
        ]:
            first = suggest_tolerance(candidate, baseline, mode, direction)
            second = suggest_tolerance(candidate, baseline, mode, direction)
            assert first == second
            assert within_tolerance(candidate, baseline, first, mode, direction)

    def test_suggest_tolerance_edges(self):
        assert suggest_tolerance(99.0, 100.0, "relative", "lower") == 0.0
        assert suggest_tolerance(100.0, 100.0, "relative", "lower") == 0.0
        assert suggest_tolerance(1.0, 0.0, "relative", "lower") is None
        assert suggest_tolerance(1.0, 0.0, "absolute", "lower") == pytest.approx(1.0)


class TestMetrics:
    def test_direction_from_name(self):
        assert metric_direction("latency/e2e/mean") == "lower"
        assert metric_direction("cost/task_seconds") == "lower"
        assert metric_direction("violation_rate/e2e") == "lower"
        assert metric_direction("fulfillment/e2e") == "higher"
        assert metric_direction("utilization/cpu") == "higher"

    def test_series_filters_none_and_counts_non_finite(self):
        series = MetricSeries("latency/x", [1.0, None, float("nan"), 2.0, float("inf")])
        assert series.values == [1.0, 2.0]
        assert series.dropped_non_finite == 2
        stats = series.stats()
        assert stats["count"] == 2
        assert stats["avg"] == pytest.approx(1.5)

    def test_empty_series_stats_are_none(self):
        stats = MetricSeries("latency/x", [None, None]).stats()
        assert stats["count"] == 0
        assert stats["avg"] is None and stats["p95"] is None

    def test_extract_metrics_covers_the_canonical_names(self):
        series = extract_metrics(make_aggregate())
        assert set(series) == {
            "fulfillment/e2e", "violation_rate/e2e",
            "latency/e2e/mean", "latency/e2e/p95",
            "cost/task_seconds", "utilization/cpu", "cost/parallelism/worker",
        }
        assert series["latency/e2e/mean"].stats()["count"] == 3
        assert series["violation_rate/e2e"].stats()["avg"] == 0.0

    def test_metrics_from_stats_rejects_junk(self):
        with pytest.raises(ValueError):
            metrics_from_stats({"m": {"avgg": 1.0}})
        with pytest.raises(ValueError):
            metrics_from_stats({"m": {"direction": "diagonal", "avg": 1.0}})
        with pytest.raises(ValueError):
            metrics_from_stats({"m": {"avg": float("nan")}})


class TestBaseline:
    def test_round_trips_through_file(self, tmp_path):
        baseline = Baseline.from_aggregate("tiny", make_aggregate())
        path = baseline.write(str(tmp_path / "tiny.json"))
        again = Baseline.read(path)
        assert again.describe() == baseline.describe()
        assert again.scenario == {"grid": {"name": "tiny", "shards": 3}}

    @pytest.mark.parametrize("bad", [
        {"schema": 9, "metrics": {"m": {"avg": 1.0}}},
        {"metrics": {}},
        {"name": "x"},
        {"metrics": {"m": {"avg": 1.0}}, "surprise": 1},
        "not-an-object",
    ])
    def test_rejects_malformed_files(self, bad):
        with pytest.raises(ValueError):
            Baseline.from_dict(bad)

    def test_with_tolerance_replaces_only_the_spec(self):
        baseline = Baseline.from_aggregate("tiny", make_aggregate())
        widened = baseline.with_tolerance(
            {"schema": 1, "mode": "absolute", "default": {"avg": 9.0}, "metrics": {}}
        )
        assert widened.metrics == baseline.metrics
        assert widened.tolerance.mode == "absolute"


class TestCompare:
    def test_self_comparison_is_green(self):
        aggregate = make_aggregate()
        baseline = Baseline.from_aggregate("tiny", aggregate)
        comparison = compare_runs(baseline, [Candidate.from_aggregate("c", aggregate)])
        assert comparison.passed
        assert comparison.failed_metrics() == []
        assert comparison.checks and all(c.passed for c in comparison.checks)

    def test_regression_fails_and_names_the_metric(self):
        baseline = Baseline.from_aggregate("tiny", make_aggregate())
        worse = make_aggregate(latencies=(0.030, 0.036, 0.033))
        comparison = compare_runs(baseline, [Candidate.from_aggregate("c", worse)])
        assert not comparison.passed
        assert "latency/e2e/mean" in comparison.failed_metrics()
        failing = [c for c in comparison.failures() if c.metric == "latency/e2e/mean"]
        assert failing and all(c.suggested is not None for c in failing)
        # improvements in the good direction never fail
        assert "cost/parallelism/worker" not in comparison.failed_metrics()

    def test_exactly_at_bound_passes(self):
        baseline = Baseline(
            "edge",
            {"latency/x": {"direction": "lower", "avg": 100.0}},
            tolerance={"schema": 1, "mode": "relative",
                       "default": {"avg": 0.05}, "metrics": {}},
        )
        at_limit = Candidate("c", {"latency/x": {"direction": "lower", "avg": 105.0}})
        assert compare_runs(baseline, [at_limit]).passed

    def test_missing_metric_is_a_problem(self):
        baseline = Baseline.from_aggregate("tiny", make_aggregate())
        partial = Candidate("c", {"latency/e2e/mean": {"avg": 0.011}})
        comparison = compare_runs(baseline, [partial])
        assert not comparison.passed
        missing = [p for p in comparison.problems if "missing" in p.issue]
        assert missing and "cost/task_seconds" in comparison.failed_metrics()

    def test_missing_statistic_is_a_problem(self):
        baseline = Baseline(
            "b", {"latency/x": {"direction": "lower", "avg": 1.0, "max": 2.0}}
        )
        no_max = Candidate("c", {"latency/x": {"direction": "lower", "avg": 1.0}})
        comparison = compare_runs(baseline, [no_max])
        assert any("'max' missing" in p.issue for p in comparison.problems)
        assert not comparison.passed

    def test_nan_values_in_candidate_are_flagged(self):
        aggregate = make_aggregate()
        baseline = Baseline.from_aggregate("tiny", aggregate)
        poisoned = make_aggregate()
        poisoned["shards"][0]["series"]["feeds"]["e2e"]["mean_latency"] = float("nan")
        comparison = compare_runs(
            baseline, [Candidate.from_aggregate("c", poisoned)]
        )
        assert not comparison.passed
        assert any("non-finite" in p.issue for p in comparison.problems)

    def test_new_metrics_are_reported_not_checked(self):
        baseline = Baseline("b", {"latency/x": {"direction": "lower", "avg": 1.0}})
        candidate = Candidate("c", {
            "latency/x": {"direction": "lower", "avg": 1.0},
            "latency/y": {"direction": "lower", "avg": 5.0},
        })
        comparison = compare_runs(baseline, [candidate])
        assert comparison.passed
        assert comparison.new_metrics == ["latency/y"]

    def test_to_dict_is_canonical_and_json_safe(self):
        baseline = Baseline.from_aggregate("tiny", make_aggregate())
        worse = make_aggregate(latencies=(0.030, 0.036, 0.033))
        comparison = compare_runs(baseline, [Candidate.from_aggregate("c", worse)])
        first = json.dumps(comparison.to_dict(suggest=True), sort_keys=True,
                           allow_nan=False)
        second = json.dumps(comparison.to_dict(suggest=True), sort_keys=True,
                            allow_nan=False)
        assert first == second
        data = json.loads(first)
        assert data["passed"] is False
        assert data["failed_metrics"]
        assert data["suggested_tolerance"]["metrics"]


class TestSuggestMode:
    def test_suggested_spec_admits_every_source_run(self):
        runs = [
            make_aggregate(latencies=(0.010, 0.012, 0.011)),
            make_aggregate(latencies=(0.013, 0.015, 0.014)),
            make_aggregate(latencies=(0.009, 0.016, 0.012)),
        ]
        baseline = Baseline.from_aggregate("seed1", runs[0])
        candidates = [
            Candidate.from_aggregate(f"seed{i + 1}", run)
            for i, run in enumerate(runs)
        ]
        _, suggested = suggest_from_runs(baseline, candidates)
        admitted = compare_runs(
            baseline, candidates, tolerance=ToleranceSpec.from_dict(suggested)
        )
        assert admitted.passed

    def test_suggest_is_deterministic_across_invocations(self):
        runs = [make_aggregate(latencies=(0.010 + 0.001 * s, 0.012, 0.011))
                for s in range(4)]
        baseline = Baseline.from_aggregate("seeds", runs[0])
        candidates = [Candidate.from_aggregate(f"s{i}", r)
                      for i, r in enumerate(runs)]
        first = suggest_from_runs(baseline, candidates)[1]
        second = suggest_from_runs(baseline, candidates)[1]
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


class TestRendering:
    def _comparison(self, green=True):
        baseline = Baseline.from_aggregate("tiny", make_aggregate())
        run = make_aggregate() if green else make_aggregate(
            latencies=(0.030, 0.036, 0.033)
        )
        return compare_runs(baseline, [Candidate.from_aggregate("cand", run)])

    def test_text_report_mentions_verdict_and_metrics(self):
        text = render_comparison(self._comparison(green=True))
        assert "PASS" in text and "latency/e2e/mean" in text
        red = render_comparison(self._comparison(green=False))
        assert "FAIL" in red and "suggested" in red

    def test_spread_bar_shape(self):
        bar = spread_bar(1.0, 2.0, 3.0, 4.0, lo=0.0, hi=5.0, width=30)
        assert len(bar) == 30
        assert bar.count("|") == 2 and "O" in bar and "=" in bar
        assert spread_bar(1.0, 1.0, 1.0, 1.0, lo=1.0, hi=1.0) == "O"
        with pytest.raises(ValueError):
            spread_bar(1.0, 2.0, 3.0, 4.0, lo=0.0, hi=5.0, width=2)

    def test_html_report_is_a_standalone_page(self, tmp_path):
        comparison = self._comparison(green=False)
        html_text = render_comparison_html(comparison)
        assert html_text.startswith("<!DOCTYPE html>")
        assert "latency/e2e/mean" in html_text and "FAIL" in html_text
        path = write_comparison_html(comparison, str(tmp_path / "report.html"))
        assert read_bytes(path).decode("utf-8") == html_text

    def test_comparison_dashboard_wraps_the_renderers(self, tmp_path):
        comparison = self._comparison(green=True)
        dash = ComparisonDashboard(comparison)
        assert dash.render() == render_comparison(comparison)
        assert dash.render_html().startswith("<!DOCTYPE html>")
        path = dash.write_html(str(tmp_path / "dash.html"))
        assert os.path.exists(path)


class TestRunHistory:
    def test_scan_resolve_and_stable_ids(self, tmp_path):
        sweep_dir = tmp_path / "sweep"
        sweep_dir.mkdir()
        write_json(str(sweep_dir / "aggregate.json"), make_aggregate())
        shard_dir = sweep_dir / "shards" / "tiny-s0001"
        shard_dir.mkdir(parents=True)
        write_json(str(shard_dir / "manifest.json"), {
            "schema": 1, "job": "tiny", "seed": 1, "graph_hash": "abc123",
            "sweep": {"shard": "tiny-s0001"},
            "git": {"commit": "f" * 40, "branch": "main", "dirty": False},
        })
        index = RunIndex.scan(str(tmp_path))
        assert len(index) == 2
        kinds = {entry.kind for entry in index.entries}
        assert kinds == {"sweep", "shard"}
        again = RunIndex.scan(str(tmp_path))
        assert [e.id for e in index.entries] == [e.id for e in again.entries]

        shard = next(e for e in index.entries if e.kind == "shard")
        assert index.resolve(shard.id).endswith("tiny-s0001")
        assert index.resolve(shard.id[:6]) == index.resolve(shard.id)
        assert index.resolve("tiny-s0001") == index.resolve(shard.id)
        assert shard.git["dirty"] is False
        with pytest.raises(KeyError):
            index.resolve("no-such-run")
        with pytest.raises(KeyError):
            index.resolve("")  # prefix of every id -> ambiguous

    def test_render_and_write(self, tmp_path):
        write_json(str(tmp_path / "aggregate.json"), make_aggregate())
        index = RunIndex.scan(str(tmp_path))
        assert "tiny" in index.render()
        path = index.write(str(tmp_path / "run_index.json"))
        data = json.loads(read_bytes(path))
        assert data["schema"] == 1 and len(data["entries"]) == 1

    def test_git_provenance_in_and_out_of_a_repo(self, tmp_path):
        here = git_provenance(cwd=REPO_ROOT)
        assert here is not None and len(here["commit"]) == 40
        assert git_provenance(cwd=str(tmp_path)) is None


@pytest.fixture(scope="module")
def tiny_sweep(tmp_path_factory):
    """One real 2-shard sweep the CLI tests share.

    Duration must clear the recorder's 5 s sampling interval, or the
    latency feeds stay empty and there is nothing to gate on.
    """
    out = str(tmp_path_factory.mktemp("evalcli") / "tiny")
    grid = SweepGrid(name="tiny", seeds=(1, 2), rates=(250.0,), bounds=(0.030,),
                     workloads=("steady",), actuation=(False,), duration=12.0)
    result = run_sweep(grid, out, workers=1)
    return out, result.aggregate


class TestCompareCli:
    def test_round_trip_on_a_tiny_sweep(self, tiny_sweep, tmp_path, capsys):
        out, _ = tiny_sweep
        baseline_path = str(tmp_path / "tiny-baseline.json")
        # bootstrap: pin the sweep as the baseline (no baseline yet)
        assert cli.main(["compare", out, "--baseline", baseline_path,
                         "--write-baseline", baseline_path]) == 0
        assert os.path.exists(baseline_path)
        capsys.readouterr()

        # the same run gates green, twice, byte-identically
        json1 = str(tmp_path / "cmp1.json")
        json2 = str(tmp_path / "cmp2.json")
        html = str(tmp_path / "cmp.html")
        assert cli.main(["compare", out, "--baseline", baseline_path,
                         "--json", json1, "--html", html]) == 0
        assert cli.main(["compare", out, "--baseline", baseline_path,
                         "--json", json2]) == 0
        assert read_bytes(json1) == read_bytes(json2)
        assert read_bytes(html).startswith(b"<!DOCTYPE html>")
        report = json.loads(read_bytes(json1))
        assert report["passed"] is True and report["failed_metrics"] == []
        assert "PASS" in capsys.readouterr().out

    def test_regression_exits_nonzero_and_names_the_metric(
        self, tiny_sweep, tmp_path, capsys
    ):
        out, aggregate = tiny_sweep
        baseline_path = str(tmp_path / "b.json")
        assert cli.main(["compare", out, "--baseline", baseline_path,
                         "--write-baseline", baseline_path]) == 0
        worse = json.loads(json.dumps(aggregate))
        for shard in worse["shards"]:
            for feed in shard["series"]["feeds"].values():
                feed["mean_latency"] *= 3.0
        bad_path = str(tmp_path / "bad_aggregate.json")
        write_json(bad_path, worse)
        capsys.readouterr()
        assert cli.main(["compare", bad_path, "--baseline", baseline_path]) == 1
        output = capsys.readouterr().out
        assert "out-of-tolerance metrics:" in output
        assert "latency/e2e/mean" in output

    def test_suggest_prints_an_admitting_spec(self, tiny_sweep, tmp_path, capsys):
        out, _ = tiny_sweep
        baseline_path = str(tmp_path / "b.json")
        assert cli.main(["compare", out, "--baseline", baseline_path,
                         "--write-baseline", baseline_path]) == 0
        json_path = str(tmp_path / "cmp.json")
        assert cli.main(["compare", out, "--baseline", baseline_path,
                         "--suggest", "--json", json_path]) == 0
        report = json.loads(read_bytes(json_path))
        spec = ToleranceSpec.from_dict(report["suggested_tolerance"])
        assert spec.mode == "relative"
        assert "suggested tolerance spec" in capsys.readouterr().out

    def test_tolerance_override_file(self, tiny_sweep, tmp_path, capsys):
        out, aggregate = tiny_sweep
        baseline_path = str(tmp_path / "b.json")
        assert cli.main(["compare", out, "--baseline", baseline_path,
                         "--write-baseline", baseline_path]) == 0
        worse = json.loads(json.dumps(aggregate))
        for shard in worse["shards"]:
            for feed in shard["series"]["feeds"].values():
                feed["mean_latency"] *= 3.0
        bad_path = str(tmp_path / "bad.json")
        write_json(bad_path, worse)
        wide = str(tmp_path / "wide.json")
        write_json(wide, {"schema": 1, "mode": "relative",
                          "default": {"avg": 100.0, "p95": 100.0, "max": 100.0},
                          "metrics": {}})
        capsys.readouterr()
        assert cli.main(["compare", bad_path, "--baseline", baseline_path,
                         "--tolerance", wide]) == 0

    def test_compare_by_index_id(self, tiny_sweep, tmp_path, capsys):
        out, _ = tiny_sweep
        root = os.path.dirname(out)
        baseline_path = str(tmp_path / "b.json")
        assert cli.main(["compare", out, "--baseline", baseline_path,
                         "--write-baseline", baseline_path]) == 0
        sweep_id = next(
            e.id for e in RunIndex.scan(root).entries if e.kind == "sweep"
        )
        capsys.readouterr()
        assert cli.main(["compare", sweep_id, "--index", root,
                         "--baseline", baseline_path]) == 0

    def test_usage_errors_exit_2(self, tiny_sweep, tmp_path, capsys):
        out, _ = tiny_sweep
        assert cli.main(["compare", out,
                         "--baseline", str(tmp_path / "nope.json")]) == 2
        baseline_path = str(tmp_path / "b.json")
        assert cli.main(["compare", out, "--baseline", baseline_path,
                         "--write-baseline", baseline_path]) == 0
        assert cli.main(["compare", str(tmp_path / "missing-run.json"),
                         "--baseline", baseline_path]) == 2
        not_a_run = str(tmp_path / "not_a_run.json")
        write_json(not_a_run, {"neither": True})
        assert cli.main(["compare", not_a_run, "--baseline", baseline_path]) == 2
        bad_tolerance = str(tmp_path / "bad_tol.json")
        write_json(bad_tolerance, {"mode": "sideways"})
        assert cli.main(["compare", out, "--baseline", baseline_path,
                         "--tolerance", bad_tolerance]) == 2
        capsys.readouterr()

    def test_runs_command_lists_and_writes_the_index(
        self, tiny_sweep, tmp_path, capsys
    ):
        out, _ = tiny_sweep
        root = os.path.dirname(out)
        index_path = str(tmp_path / "run_index.json")
        assert cli.main(["runs", "--root", root, "--json", index_path]) == 0
        output = capsys.readouterr().out
        assert "tiny" in output and "sweep" in output
        data = json.loads(read_bytes(index_path))
        assert any(entry["kind"] == "shard" for entry in data["entries"])


class TestGoldenTwitterBaseline:
    """The committed Twitter baseline must gate itself fully green."""

    def test_baseline_file_is_loadable_and_canonical(self, tmp_path):
        baseline = Baseline.read(TWITTER_BASELINE)
        assert baseline.name == "twitter"
        assert baseline.scenario["grid"]["workloads"] == ["twitter"]
        # the committed bytes are exactly the canonical writer's output
        rewritten = baseline.write(str(tmp_path / "twitter.json"))
        assert read_bytes(rewritten) == read_bytes(TWITTER_BASELINE)

    def test_self_comparison_is_fully_green_and_byte_identical(self, tmp_path):
        with open(TWITTER_BASELINE, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        baseline = Baseline.from_dict(data)
        candidate = Candidate(data["name"], data["metrics"])
        comparison = compare_runs(baseline, [candidate])
        assert comparison.passed
        assert comparison.checks and comparison.problems == []
        first = write_json(str(tmp_path / "c1.json"), comparison.to_dict())
        second = write_json(str(tmp_path / "c2.json"), comparison.to_dict())
        assert read_bytes(first) == read_bytes(second)
        report = render_comparison(comparison)
        assert "PASS" in report and "FAIL" not in report

    def test_cli_self_comparison_round_trip(self, tmp_path, capsys):
        json1 = str(tmp_path / "g1.json")
        json2 = str(tmp_path / "g2.json")
        assert cli.main(["compare", TWITTER_BASELINE,
                         "--baseline", TWITTER_BASELINE, "--json", json1]) == 0
        assert cli.main(["compare", TWITTER_BASELINE,
                         "--baseline", TWITTER_BASELINE, "--json", json2]) == 0
        assert read_bytes(json1) == read_bytes(json2)
        report = json.loads(read_bytes(json1))
        assert report["passed"] is True
        assert report["baseline"] == "twitter"
        capsys.readouterr()

    def test_twitter_grid_file_matches_the_builtin(self):
        grid = SweepGrid.from_file(
            os.path.join(REPO_ROOT, "baselines", "twitter_grid.json")
        )
        assert grid.describe() == SweepGrid.twitter().describe()
