"""Tests for the observability subsystem (repro.obs).

Covers the metrics primitives, the decision-trace schema (including a
golden-record round-trip guarding JSONL stability), the manifest export,
the shared sampling clock, the unified ``engine.submit(pipeline)`` API,
and the two end-to-end acceptance properties: every parallelism change
in the scaling log is matched by a trace record naming the branch, and a
run with observability disabled is behaviorally identical to one with it
enabled.
"""

import json
import math
import os

import pytest

from repro.builder import PipelineBuilder
from repro.engine.engine import EngineConfig, StreamProcessingEngine
from repro.obs import (
    BRANCH_BOTTLENECK,
    BRANCH_INFEASIBLE,
    BRANCH_REBALANCE,
    BRANCH_STALE_SKIP,
    TRACE_FIELDS,
    TRACE_SCHEMA_VERSION,
    Counter,
    DecisionTrace,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObservabilityConfig,
    RunManifest,
    SamplingClock,
    TraceRecord,
    finite_or_none,
    global_registry,
    graph_hash,
    utilization_samples,
    validate_record_dict,
    validate_trace_file,
)
from repro.simulation.kernel import Simulator
from repro.simulation.randomness import Gamma
from repro.workloads.rates import ConstantRate


def build_pipeline(observe_dir=None, rate=400.0, bound=0.030):
    builder = (
        PipelineBuilder("obs-test")
        .source(lambda now, rng: rng.random(), rate=ConstantRate(rate))
        .map("worker", lambda x: x, service=Gamma(0.004, 0.7), parallelism=(4, 1, 32))
        .sink()
        .constrain(bound=bound, name="e2e")
    )
    if observe_dir is not None:
        builder.observe(export_dir=observe_dir)
    return builder.build()


def run_elastic(duration=120.0, observability=None, pipeline=None, seed=7):
    engine = StreamProcessingEngine(
        EngineConfig(elastic=True, seed=seed), observability=observability
    )
    job = engine.submit(pipeline if pipeline is not None else build_pipeline())
    engine.run(duration)
    return engine, job


# ----------------------------------------------------------------------
# metrics primitives
# ----------------------------------------------------------------------


class TestMetricsPrimitives:
    def test_counter_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_gauge_overwrites(self):
        g = Gauge("x")
        g.set(5)
        g.set(2.5)
        assert g.value == 2.5

    def test_histogram_stats_and_buckets(self):
        h = Histogram("x", bounds=(0.1, 1.0))
        for v in (0.05, 0.5, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(2.55)
        assert h.min == 0.05 and h.max == 2.0
        assert h.mean == pytest.approx(0.85)
        snap = h.snapshot()
        # cumulative counts: le_0.1 -> 1, le_1 -> 2, le_inf -> 3
        assert snap["buckets"] == {"le_0.1": 1, "le_1": 2, "le_inf": 3}

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("x", bounds=(1.0, 0.1))

    def test_registry_get_or_create_identity(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.gauge("b") is r.gauge("b")
        assert r.histogram("c") is r.histogram("c")
        assert r.names() == ["a", "b", "c"]
        assert len(r) == 3

    def test_registry_kind_mismatch(self):
        r = MetricsRegistry()
        r.counter("a")
        with pytest.raises(TypeError):
            r.gauge("a")

    def test_registry_snapshot_flat(self):
        r = MetricsRegistry()
        r.counter("a").inc(2)
        r.gauge("b").set(1.5)
        r.histogram("c").observe(0.01)
        snap = r.snapshot()
        assert snap["a"] == 2
        assert snap["b"] == 1.5
        assert snap["c"]["count"] == 1

    def test_global_registry_is_singleton(self):
        assert global_registry() is global_registry()


# ----------------------------------------------------------------------
# trace records and schema stability
# ----------------------------------------------------------------------

#: a golden record in the legacy v1 JSONL wire format — v1 files must
#: stay readable after the v2 bump (the ``attempt`` field defaults null)
GOLDEN_RECORD_V1 = (
    '{"schema": 1, "time": 35.000001, "job": "obs-test", "round": 7, '
    '"constraint": "e2e", "vertex": "worker", "branch": "rebalance", '
    '"budget": 0.0052, "measured_wait": 0.0009, "predicted_wait": 0.0017, '
    '"e": 0.96, "utilization": 0.41, "utilization_at_target": 0.55, '
    '"p_before": 4, "p_target": 3, "p_applied": -1, "detail": ""}'
)

#: a golden record in the current (v2) wire format — if this test
#: breaks, the schema changed and TRACE_SCHEMA_VERSION must be bumped
GOLDEN_RECORD = (
    '{"schema": 2, "time": 35.000001, "job": "obs-test", "round": 7, '
    '"constraint": "e2e", "vertex": "worker", "branch": "rebalance", '
    '"budget": 0.0052, "measured_wait": 0.0009, "predicted_wait": 0.0017, '
    '"e": 0.96, "utilization": 0.41, "utilization_at_target": 0.55, '
    '"p_before": 4, "p_target": 3, "p_applied": -1, "detail": "", '
    '"attempt": null}'
)

#: a v2-only record: an actuation retry with the new attempt field
GOLDEN_ACTUATION_RECORD = (
    '{"schema": 2, "time": 41.5, "job": "obs-test", "round": 0, '
    '"constraint": "*", "vertex": "worker", "branch": "retry-backoff", '
    '"budget": null, "measured_wait": null, "predicted_wait": null, '
    '"e": null, "utilization": null, "utilization_at_target": null, '
    '"p_before": 4, "p_target": 8, "p_applied": null, '
    '"detail": "retry in 2.000s", "attempt": 2}'
)

#: a v3-only record: a state migration with the moved-bytes field
GOLDEN_MIGRATION_RECORD = (
    '{"schema": 3, "time": 52.25, "job": "obs-test", "round": 0, '
    '"constraint": "*", "vertex": "worker", "branch": "migration-pending", '
    '"budget": null, "measured_wait": null, "predicted_wait": null, '
    '"e": null, "utilization": null, "utilization_at_target": null, '
    '"p_before": 4, "p_target": 8, "p_applied": null, '
    '"detail": "migrating 98304 bytes", "attempt": 1, '
    '"state_bytes": 98304}'
)


class TestTraceSchema:
    def test_field_order_is_frozen(self):
        assert TRACE_FIELDS == (
            "schema", "time", "job", "round", "constraint", "vertex",
            "branch", "budget", "measured_wait", "predicted_wait", "e",
            "utilization", "utilization_at_target", "p_before", "p_target",
            "p_applied", "detail", "attempt", "state_bytes",
        )

    def test_golden_round_trip(self):
        data = json.loads(GOLDEN_RECORD)
        record = TraceRecord.from_dict(data)
        assert record.to_dict() == data
        assert json.loads(record.to_json()) == data
        assert validate_record_dict(data) == []

    def test_golden_actuation_round_trip(self):
        data = json.loads(GOLDEN_ACTUATION_RECORD)
        record = TraceRecord.from_dict(data)
        assert record.attempt == 2
        assert record.to_dict() == data
        assert validate_record_dict(data) == []

    def test_v1_record_still_parses(self):
        # migration: v1 files remain readable; re-serialization upgrades
        # to the current schema with attempt defaulting to null
        data = json.loads(GOLDEN_RECORD_V1)
        record = TraceRecord.from_dict(data)
        assert record.attempt is None
        out = record.to_dict()
        assert out["schema"] == 2
        assert out["attempt"] is None
        assert {k: v for k, v in out.items() if k not in ("schema", "attempt")} == {
            k: v for k, v in data.items() if k != "schema"
        }
        assert validate_record_dict(data) == []

    def test_v1_record_cannot_use_v2_branches_or_attempt(self):
        data = json.loads(GOLDEN_RECORD_V1)
        data["branch"] = "actuation-pending"
        assert any("requires schema >= 2" in e for e in validate_record_dict(data))
        data = json.loads(GOLDEN_RECORD_V1)
        data["attempt"] = 1
        assert any("requires schema >= 2" in e for e in validate_record_dict(data))

    def test_golden_migration_round_trip(self):
        data = json.loads(GOLDEN_MIGRATION_RECORD)
        record = TraceRecord.from_dict(data)
        assert record.state_bytes == 98304
        assert record.schema_version() == 3
        assert record.to_dict() == data
        assert validate_record_dict(data) == []

    def test_v3_fields_only_emitted_when_used(self):
        # A record without migration content serializes as v2 with no
        # state_bytes key — pre-existing exports stay byte-identical.
        record = TraceRecord(
            1.0, "e2e", BRANCH_REBALANCE, vertex="worker", p_before=2, p_target=3
        )
        out = record.to_dict()
        assert out["schema"] == 2
        assert "state_bytes" not in out

    def test_pre_v3_records_cannot_use_v3_branches_or_state_bytes(self):
        for base in (GOLDEN_RECORD_V1, GOLDEN_RECORD):
            data = json.loads(base)
            data["branch"] = "migration-pending"
            assert any("requires schema >= 3" in e for e in validate_record_dict(data))
            data = json.loads(base)
            data["state_bytes"] = 1024
            assert any("requires schema >= 3" in e for e in validate_record_dict(data))

    def test_v3_branch_must_name_vertex(self):
        data = json.loads(GOLDEN_MIGRATION_RECORD)
        data["vertex"] = None
        assert any("must name a vertex" in e for e in validate_record_dict(data))

    def test_unknown_branch_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord(1.0, "e2e", "nonsense")

    def test_schema_version_checked(self):
        data = json.loads(GOLDEN_RECORD)
        data["schema"] = 99
        with pytest.raises(ValueError):
            TraceRecord.from_dict(data)
        assert validate_record_dict(data)

    def test_finite_or_none(self):
        assert finite_or_none(None) is None
        assert finite_or_none(float("inf")) is None
        assert finite_or_none(float("nan")) is None
        assert finite_or_none(1.5) == 1.5

    def test_infinite_wait_serializes_as_null(self):
        record = TraceRecord(
            1.0, "e2e", BRANCH_REBALANCE, vertex="worker",
            predicted_wait=float("inf"),
        )
        assert record.predicted_wait is None
        assert '"predicted_wait": null' in record.to_json()

    def test_validate_flags_missing_vertex_on_action_branches(self):
        for branch in (BRANCH_REBALANCE, BRANCH_BOTTLENECK):
            data = TraceRecord(1.0, "e2e", branch, vertex="w").to_dict()
            data["vertex"] = None
            assert any("must name a vertex" in e for e in validate_record_dict(data))

    def test_validate_flags_unknown_fields_and_bad_types(self):
        data = json.loads(GOLDEN_RECORD)
        data["surprise"] = 1
        data["p_target"] = "three"
        errors = validate_record_dict(data)
        assert any("unknown fields" in e for e in errors)
        assert any("p_target" in e for e in errors)

    def test_decision_trace_round_trip(self, tmp_path):
        trace = DecisionTrace()
        trace.append(TraceRecord(5.0, "e2e", BRANCH_STALE_SKIP, round=1))
        trace.append(
            TraceRecord(
                10.0, "e2e", BRANCH_REBALANCE, vertex="worker", round=2,
                p_before=4, p_target=3, p_applied=-1,
            )
        )
        path = trace.write_jsonl(str(tmp_path / "trace.jsonl"))
        assert validate_trace_file(path) == []
        loaded = DecisionTrace.read_jsonl(path)
        assert len(loaded) == 2
        assert loaded.rounds == 2
        assert loaded.records[1].vertex == "worker"
        assert loaded.branches() == {BRANCH_STALE_SKIP: 1, BRANCH_REBALANCE: 1}
        assert loaded.for_vertex("worker")[0].p_applied == -1
        assert len(loaded.for_constraint("e2e")) == 2

    def test_validate_trace_file_reports_bad_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('not json\n{"schema": 1}\n')
        errors = validate_trace_file(str(path))
        assert any("not valid JSON" in e for e in errors)
        assert any("line 2" in e for e in errors)


# ----------------------------------------------------------------------
# sampling clock
# ----------------------------------------------------------------------


class TestSamplingClock:
    def test_fans_out_in_subscription_order(self):
        sim = Simulator()
        clock = SamplingClock(sim, 5.0)
        calls = []
        clock.subscribe(lambda now: calls.append(("a", now)))
        clock.subscribe(lambda now: calls.append(("b", now)))
        sim.run(until=11.0)
        assert [tag for tag, _ in calls] == ["a", "b", "a", "b"]
        assert calls[0][1] == pytest.approx(5.0, abs=1e-5)

    def test_unsubscribe_and_stop(self):
        sim = Simulator()
        clock = SamplingClock(sim, 1.0)
        calls = []
        cb = lambda now: calls.append(now)
        clock.subscribe(cb)
        assert clock.subscriber_count == 1
        sim.run(until=1.5)
        clock.unsubscribe(cb)
        sim.run(until=3.5)
        assert len(calls) == 1
        clock.stop()

    def test_engine_clock_shared_per_interval(self):
        engine = StreamProcessingEngine(EngineConfig())
        assert engine.sampling_clock(5.0) is engine.sampling_clock(5.0)
        assert engine.sampling_clock(2.0) is not engine.sampling_clock(5.0)

    def test_series_recorder_uses_engine_clock(self):
        from repro.experiments.recording import SeriesRecorder

        engine = StreamProcessingEngine(EngineConfig())
        recorder = SeriesRecorder(engine, interval=5.0)
        clock = engine.sampling_clock(5.0)
        assert clock.subscriber_count == 1
        assert recorder._clock is clock

    def test_utilization_samples_deltas_and_eviction(self):
        class T:
            def __init__(self, uid, busy):
                self.uid, self.busy_time = uid, busy

        last = {}
        # first sight contributes 0
        assert utilization_samples([T(1, 10.0)], last, 5.0) == [0.0]
        # busy delta of 2.5s over a 5s interval -> 0.5
        assert utilization_samples([T(1, 12.5)], last, 5.0) == [0.5]
        # dead tasks evicted
        utilization_samples([T(2, 0.0)], last, 5.0)
        assert 1 not in last and 2 in last


# ----------------------------------------------------------------------
# config threading and unified submit
# ----------------------------------------------------------------------


class TestObservabilityConfig:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            ObservabilityConfig(sample_interval=0)

    def test_enabled_property(self):
        assert ObservabilityConfig().enabled
        assert not ObservabilityConfig(metrics=False, trace=False).enabled

    def test_engine_adopts_pipeline_observability(self, tmp_path):
        pipeline = build_pipeline(observe_dir=str(tmp_path))
        engine = StreamProcessingEngine(EngineConfig(elastic=True))
        assert engine.observability is None and engine.metrics is None
        job = engine.submit(pipeline)
        assert engine.observability is pipeline.observability
        assert engine.metrics is not None
        assert job.trace is not None

    def test_engine_config_wins_over_pipeline(self, tmp_path):
        mine = ObservabilityConfig(metrics=False, trace=True)
        pipeline = build_pipeline(observe_dir=str(tmp_path))
        engine = StreamProcessingEngine(EngineConfig(elastic=True), observability=mine)
        engine.submit(pipeline)
        assert engine.observability is mine
        assert engine.metrics is None

    def test_observability_off_by_default(self):
        engine, job = run_elastic(duration=20.0)
        assert engine.observability is None
        assert engine.metrics is None
        assert job.trace is None


class TestUnifiedSubmit:
    def test_submit_pipeline_equals_submit_parts(self):
        pipeline = build_pipeline()
        engine = StreamProcessingEngine(EngineConfig(elastic=True))
        job = engine.submit(pipeline)
        assert job.job_graph is pipeline.graph
        assert job.constraints == pipeline.constraints

    def test_submit_pipeline_rejects_extra_args(self):
        pipeline = build_pipeline()
        engine = StreamProcessingEngine(EngineConfig(elastic=True))
        with pytest.raises(TypeError):
            engine.submit(pipeline, pipeline.constraints)

    def test_submit_to_delegates_with_deprecation_warning(self):
        pipeline = build_pipeline()
        engine = StreamProcessingEngine(EngineConfig(elastic=True))
        with pytest.warns(DeprecationWarning, match="engine.submit"):
            job = pipeline.submit_to(engine)
        assert engine.jobs == [job]


# ----------------------------------------------------------------------
# end-to-end acceptance
# ----------------------------------------------------------------------


class TestEndToEnd:
    def _run_with_obs(self, tmp_path, duration=120.0):
        pipeline = build_pipeline(observe_dir=str(tmp_path / "obs"))
        return run_elastic(duration=duration, pipeline=pipeline)

    def test_every_scaling_action_has_a_trace_record(self, tmp_path):
        engine, job = self._run_with_obs(tmp_path)
        changes = [
            (t, vertex, new_p - old_p)
            for t, vertex, old_p, new_p in job.scheduler.scaling_log
            if new_p != old_p
        ]
        assert changes, "run produced no scaling actions — not a useful check"
        startup = engine.config.startup_delay
        action_branches = {BRANCH_REBALANCE, BRANCH_BOTTLENECK, BRANCH_INFEASIBLE}
        for t, vertex, delta in changes:
            # scale-ups materialize startup_delay after the decision;
            # scale-downs log at decision time
            decision_time = t - startup if delta > 0 else t
            matches = [
                r for r in job.trace
                if r.vertex == vertex
                and math.isclose(r.time, decision_time, abs_tol=1e-4)
                and r.branch in action_branches
                and r.p_applied == delta
            ]
            assert matches, (
                f"scaling action t={t} {vertex} {delta:+d} has no trace record"
            )

    def test_trace_records_carry_model_terms(self, tmp_path):
        engine, job = self._run_with_obs(tmp_path)
        rebalances = [r for r in job.trace if r.branch == BRANCH_REBALANCE]
        assert rebalances
        for r in rebalances:
            assert r.job == "obs-test"
            assert r.round > 0
            assert r.budget is not None and r.budget > 0
            assert r.e is not None and r.e > 0
            assert r.p_before is not None and r.p_target is not None
            assert r.utilization is not None

    def test_export_round_trip(self, tmp_path):
        engine, job = self._run_with_obs(tmp_path)
        paths = engine.export_run()
        assert set(paths) == {"manifest", "metrics", "trace"}
        for path in paths.values():
            assert os.path.exists(path)
        assert validate_trace_file(paths["trace"]) == []
        manifest = RunManifest.read(paths["manifest"])
        assert manifest["job"] == "obs-test"
        assert manifest["seed"] == 7
        assert manifest["graph_hash"] == graph_hash(job.job_graph)
        assert manifest["final_parallelism"] == {
            name: rv.parallelism for name, rv in job.runtime.vertices.items()
        }
        assert manifest["scaling"]["rounds"] == job.scaler.rounds
        assert manifest["observability"]["trace_records"] == len(job.trace)
        assert manifest["files"] == {
            "manifest": "manifest.json",
            "metrics": "metrics.jsonl",
            "trace": "trace.jsonl",
        }
        # metrics.jsonl rows are strict JSON with monotonically rising time
        with open(paths["metrics"]) as f:
            rows = [json.loads(line) for line in f]
        assert rows
        times = [row["time"] for row in rows]
        assert times == sorted(times)
        assert "sim.events_fired" in rows[-1]["metrics"]

    def test_metrics_registry_populated(self, tmp_path):
        engine, job = self._run_with_obs(tmp_path)
        snap = engine.metrics.snapshot()
        assert snap["sim.events_fired"] > 0
        assert snap["scheduler.tasks_started"] >= 6
        assert snap["scheduler.deploys"] == 1
        assert snap["qos.collects"] > 0
        assert snap["service_time.worker"]["count"] > 0
        assert snap["sim.heap_high_water"] >= snap["sim.heap_size"]

    def test_disabled_run_is_behaviorally_identical(self):
        baseline_engine, baseline = run_elastic(duration=90.0)
        obs = ObservabilityConfig()
        enabled_engine, enabled = run_elastic(duration=90.0, observability=obs)
        assert baseline.scheduler.scaling_log == enabled.scheduler.scaling_log
        assert [
            (e.time, e.targets, e.applied, e.reason) for e in baseline.scaler.events
        ] == [
            (e.time, e.targets, e.applied, e.reason) for e in enabled.scaler.events
        ]

    def test_graph_hash_stable_and_structure_sensitive(self):
        a, b = build_pipeline(), build_pipeline()
        assert graph_hash(a.graph) == graph_hash(b.graph)
        c = build_pipeline(rate=999.0)  # same structure, different workload
        assert graph_hash(a.graph) == graph_hash(c.graph)
        d = (
            PipelineBuilder("obs-test")
            .source(lambda now, rng: rng.random(), rate=ConstantRate(400.0))
            .map("worker", lambda x: x, service=Gamma(0.004, 0.7), parallelism=(4, 1, 16))
            .sink()
            .constrain(bound=0.030, name="e2e")
            .build()
        )
        assert graph_hash(a.graph) != graph_hash(d.graph)  # p_max differs

    def test_dashboard_decisions_section(self, tmp_path):
        from repro.experiments.dashboard import Dashboard

        engine, job = self._run_with_obs(tmp_path)
        section = Dashboard(engine).decisions_section()
        assert "last scaler decisions" in section
        assert "[rebalance]" in section or "[bottleneck]" in section
        # tracing off -> placeholder, not a crash
        off_engine, _ = run_elastic(duration=10.0)
        assert Dashboard(off_engine).decisions_section() == "(decision tracing off)"

    def test_schema_version_in_every_exported_line(self, tmp_path):
        # Writers emit the lowest schema each record needs: a stateless
        # run never uses v3 branches/fields, so every line stays v2 —
        # pre-v3 consumers keep parsing these exports unchanged.
        engine, job = self._run_with_obs(tmp_path, duration=60.0)
        paths = engine.export_run()
        with open(paths["trace"]) as f:
            for line in f:
                schema = json.loads(line)["schema"]
                assert schema == 2
                assert schema <= TRACE_SCHEMA_VERSION
