"""Integration tests: scheduler wiring, elastic scale-up/down, resources."""

import pytest

from repro.engine.engine import EngineConfig, StreamProcessingEngine
from repro.engine.resources import InsufficientResourcesError, ResourceManager
from repro.engine.worker import WorkerNode
from repro.simulation.kernel import Simulator

from conftest import make_linear_job


def deploy(worker_min=1, worker_max=16, n_workers=2, source_rate=100.0, config=None):
    engine = StreamProcessingEngine(config or EngineConfig())
    graph = make_linear_job(
        source_rate=source_rate,
        n_workers=n_workers,
        worker_min=worker_min,
        worker_max=worker_max,
    )
    engine.submit(graph)
    return engine


class TestDeployment:
    def test_initial_parallelism(self):
        engine = deploy(n_workers=3)
        assert engine.parallelism("Worker") == 3
        assert engine.parallelism("Source") == 1

    def test_full_mesh_channels(self):
        engine = deploy(n_workers=3)
        channels = engine.runtime.channels_of_edge("Source->Worker")
        assert len(channels) == 3  # 1 source x 3 workers
        channels = engine.runtime.channels_of_edge("Worker->Sink")
        assert len(channels) == 3  # 3 workers x 1 sink

    def test_gates_wired_per_out_edge(self):
        engine = deploy(n_workers=2)
        source_task = engine.runtime.vertex("Source").tasks[0]
        assert len(source_task.out_gates) == 1
        assert len(source_task.out_gates[0].channels) == 2

    def test_reporters_attached(self):
        engine = deploy()
        for task in engine.runtime.all_tasks():
            assert task.reporter is not None
        for channel in engine.runtime.channels_of_edge("Source->Worker"):
            assert channel.reporter is not None

    def test_tasks_occupy_slots(self):
        engine = deploy(n_workers=3)
        assert engine.resources.active_tasks == 5  # 1 + 3 + 1


class TestScaleUp:
    def test_scale_up_after_startup_delay(self):
        engine = deploy()
        engine.run(2.0)
        engine.scheduler.scale_up("Worker", 2)
        assert engine.parallelism("Worker") == 2  # not yet materialized
        assert engine.runtime.vertex("Worker").pending_additions == 2
        engine.run(engine.config.startup_delay + 0.1)
        assert engine.parallelism("Worker") == 4
        assert engine.runtime.vertex("Worker").pending_additions == 0

    def test_new_tasks_receive_items(self):
        engine = deploy(source_rate=200.0)
        engine.run(2.0)
        engine.scheduler.scale_up("Worker", 2)
        engine.run(10.0)
        new_tasks = engine.runtime.vertex("Worker").tasks[-2:]
        assert all(t.items_processed > 0 for t in new_tasks)

    def test_upstream_partitioners_resized(self):
        engine = deploy()
        engine.run(1.0)
        engine.scheduler.scale_up("Worker", 3)
        engine.run(2.0)
        source_task = engine.runtime.vertex("Source").tasks[0]
        gate = source_task.out_gates[0]
        assert len(gate.channels) == 5
        assert gate.partitioner.fanout == 5

    def test_new_tasks_wired_downstream(self):
        engine = deploy()
        engine.run(1.0)
        engine.scheduler.scale_up("Worker", 1)
        engine.run(2.0)
        new_task = engine.runtime.vertex("Worker").tasks[-1]
        assert len(new_task.out_gates[0].channels) == 1  # to the sink

    def test_set_parallelism_idempotent_with_pending(self):
        engine = deploy()
        engine.run(1.0)
        result = engine.scheduler.set_parallelism("Worker", 5)
        assert (result.requested, result.applied) == (3, 3)
        # pending additions count towards target: no double scale-up
        assert engine.scheduler.set_parallelism("Worker", 5)[:2] == (0, 0)

    def test_scale_up_clamped_to_max(self):
        engine = deploy(worker_max=4)
        engine.run(1.0)
        engine.scheduler.set_parallelism("Worker", 99)
        engine.run(2.0)
        assert engine.parallelism("Worker") == 4

    def test_scaling_log_records(self):
        engine = deploy()
        engine.run(1.0)
        engine.scheduler.scale_up("Worker", 1)
        engine.run(2.0)
        assert any(entry[1] == "Worker" for entry in engine.scheduler.scaling_log)


class TestScaleDown:
    def test_scale_down_drains_and_removes(self):
        engine = deploy(n_workers=4, source_rate=100.0)
        engine.run(3.0)
        engine.scheduler.scale_down("Worker", 2)
        engine.run(3.0)
        assert engine.parallelism("Worker") == 2
        assert len(engine.runtime.vertex("Worker").tasks) == 2

    def test_victims_release_slots(self):
        engine = deploy(n_workers=4)
        engine.run(2.0)
        before = engine.resources.active_tasks
        engine.scheduler.scale_down("Worker", 2)
        engine.run(3.0)
        assert engine.resources.active_tasks == before - 2

    def test_no_items_lost_on_scale_down(self):
        engine = deploy(n_workers=4, source_rate=200.0)
        engine.run(5.0)
        engine.scheduler.scale_down("Worker", 3)
        engine.run(10.0)
        emitted = sum(t.items_processed for t in engine.runtime.vertex("Source").tasks)
        consumed = sum(u.consumed for u in (t.udf for t in engine.runtime.vertex("Sink").tasks))
        # everything emitted long before the end must get through
        assert consumed >= emitted - 60

    def test_never_drains_last_task(self):
        engine = deploy(n_workers=2, worker_min=1)
        engine.run(1.0)
        engine.scheduler.scale_down("Worker", 99)
        engine.run(2.0)
        assert engine.parallelism("Worker") == 1

    def test_set_parallelism_respects_min(self):
        engine = deploy(n_workers=4, worker_min=2)
        engine.run(1.0)
        engine.scheduler.set_parallelism("Worker", 1)
        engine.run(2.0)
        assert engine.parallelism("Worker") == 2

    def test_draining_task_excluded_from_parallelism(self):
        config = EngineConfig(queue_capacity=64)
        engine = deploy(n_workers=4, source_rate=400.0, config=config)
        engine.run(3.0)
        engine.scheduler.scale_down("Worker", 2)
        # immediately after, victims may still be draining
        assert engine.parallelism("Worker") == 2

    def test_victim_channels_closed_after_drain(self):
        engine = deploy(n_workers=3)
        engine.run(2.0)
        victim = engine.runtime.vertex("Worker").tasks[-1]
        engine.scheduler.scale_down("Worker", 1)
        engine.run(3.0)
        assert victim.state == "stopped"
        assert all(c.closed for c in victim.in_channels)


class TestWorkerNode:
    def test_slot_assignment(self):
        class T:  # minimal stand-in
            task_id = "t"

        worker = WorkerNode(0, slots=2)
        t1, t2 = T(), T()
        assert worker.assign(t1) == 0
        assert worker.assign(t2) == 1
        assert worker.free_slots == 0
        with pytest.raises(RuntimeError):
            worker.assign(T())
        worker.release(t1)
        assert worker.free_slots == 1
        with pytest.raises(KeyError):
            worker.release(t1)

    def test_invalid_slots_rejected(self):
        with pytest.raises(ValueError):
            WorkerNode(0, slots=0)


class _FakeTask:
    _uid = 0

    def __init__(self):
        _FakeTask._uid += 1
        self.uid = _FakeTask._uid
        self.task_id = f"t{self.uid}"


class TestResourceManager:
    T = _FakeTask

    def test_leases_workers_on_demand(self):
        sim = Simulator()
        rm = ResourceManager(sim, pool_size=2, slots_per_worker=2)
        tasks = [self.T() for _ in range(3)]
        for t in tasks:
            rm.allocate_slot(t)
        assert rm.leased_workers == 2
        assert rm.active_tasks == 3

    def test_pool_exhaustion_raises(self):
        sim = Simulator()
        rm = ResourceManager(sim, pool_size=1, slots_per_worker=2)
        rm.allocate_slot(self.T())
        rm.allocate_slot(self.T())
        with pytest.raises(InsufficientResourcesError):
            rm.allocate_slot(self.T())

    def test_release_frees_worker(self):
        sim = Simulator()
        rm = ResourceManager(sim, pool_size=2, slots_per_worker=1)
        t = self.T()
        rm.allocate_slot(t)
        rm.release_slot(t)
        assert rm.leased_workers == 0
        assert rm.active_tasks == 0

    def test_task_seconds_accounting(self):
        sim = Simulator()
        rm = ResourceManager(sim, pool_size=4, slots_per_worker=4)
        t1, t2 = self.T(), self.T()
        rm.allocate_slot(t1)
        sim.run(until=10.0)
        rm.allocate_slot(t2)
        sim.run(until=15.0)
        rm.release_slot(t1)
        sim.run(until=20.0)
        # t1: 0..15 = 15s; t2: 10..20 = 10s
        assert rm.task_seconds() == pytest.approx(25.0)
        assert rm.task_hours() == pytest.approx(25.0 / 3600.0)

    def test_free_slots_available(self):
        sim = Simulator()
        rm = ResourceManager(sim, pool_size=2, slots_per_worker=2)
        assert rm.free_slots_available() == 4
        rm.allocate_slot(self.T())
        assert rm.free_slots_available() == 3

    def test_worker_hours_accumulate(self):
        sim = Simulator()
        rm = ResourceManager(sim, pool_size=2, slots_per_worker=2)
        t = self.T()
        rm.allocate_slot(t)
        sim.run(until=7200.0)
        assert rm.worker_hours() == pytest.approx(2.0)
