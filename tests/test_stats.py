"""Unit and property tests for the streaming statistics primitives."""

import math
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qos.stats import OnlineStats, StatsSnapshot, WindowedStats, percentile

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestOnlineStats:
    def test_empty(self):
        s = OnlineStats()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.variance == 0.0
        assert s.cv == 0.0

    def test_single_value(self):
        s = OnlineStats()
        s.add(4.2)
        assert s.mean == 4.2
        assert s.variance == 0.0
        assert s.min == 4.2
        assert s.max == 4.2

    def test_mean_and_variance_match_reference(self):
        values = [1.5, 2.5, 0.5, 4.0, 3.0, 2.0]
        s = OnlineStats()
        for v in values:
            s.add(v)
        assert s.mean == pytest.approx(statistics.mean(values))
        assert s.variance == pytest.approx(statistics.variance(values))

    def test_cv_definition(self):
        s = OnlineStats()
        for v in (1.0, 2.0, 3.0):
            s.add(v)
        assert s.cv == pytest.approx(statistics.stdev([1.0, 2.0, 3.0]) / 2.0)

    def test_min_max(self):
        s = OnlineStats()
        for v in (3.0, -1.0, 7.0):
            s.add(v)
        assert (s.min, s.max) == (-1.0, 7.0)

    def test_reset(self):
        s = OnlineStats()
        s.add(1.0)
        s.reset()
        assert s.count == 0
        assert s.mean == 0.0

    def test_snapshot_and_reset(self):
        s = OnlineStats()
        for v in (2.0, 4.0):
            s.add(v)
        snap = s.snapshot_and_reset()
        assert snap.count == 2
        assert snap.mean == 3.0
        assert s.count == 0

    def test_zero_mean_cv(self):
        s = OnlineStats()
        s.add(-1.0)
        s.add(1.0)
        assert s.mean == 0.0
        assert s.cv == 0.0

    @given(st.lists(finite_floats, min_size=2, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_matches_statistics_module(self, values):
        s = OnlineStats()
        for v in values:
            s.add(v)
        assert s.mean == pytest.approx(statistics.mean(values), rel=1e-6, abs=1e-6)
        assert s.variance == pytest.approx(
            statistics.variance(values), rel=1e-6, abs=1e-4
        )


class TestStatsSnapshot:
    def test_fields(self):
        snap = StatsSnapshot(3, 2.0, 4.0)
        assert snap.stdev == 2.0
        assert snap.cv == 1.0

    def test_zero_mean_cv(self):
        assert StatsSnapshot(2, 0.0, 1.0).cv == 0.0


class TestWindowedStats:
    def push_values(self, w, groups):
        for group in groups:
            s = OnlineStats()
            for v in group:
                s.add(v)
            w.push(s.snapshot_and_reset())

    def test_empty(self):
        w = WindowedStats(3)
        assert not w.has_data
        assert w.mean == 0.0
        assert w.cv == 0.0

    def test_mean_is_mean_of_interval_means(self):
        w = WindowedStats(3)
        self.push_values(w, [[1.0, 3.0], [5.0]])
        # interval means: 2.0 and 5.0 -> 3.5 (paper Eq. 2 averaging)
        assert w.mean == pytest.approx(3.5)

    def test_weighted_mean(self):
        w = WindowedStats(3)
        self.push_values(w, [[1.0, 3.0], [5.0]])
        assert w.weighted_mean == pytest.approx((1.0 + 3.0 + 5.0) / 3)

    def test_window_evicts_oldest(self):
        w = WindowedStats(2)
        self.push_values(w, [[1.0], [2.0], [3.0]])
        assert w.mean == pytest.approx(2.5)

    def test_empty_snapshots_skipped(self):
        w = WindowedStats(3)
        w.push(StatsSnapshot(0, 0.0, 0.0))
        assert not w.has_data

    def test_pooled_variance_matches_reference(self):
        groups = [[1.0, 2.0, 3.0], [10.0, 11.0], [5.0]]
        w = WindowedStats(5)
        self.push_values(w, groups)
        flat = [v for group in groups for v in group]
        assert w.variance == pytest.approx(statistics.variance(flat), rel=1e-9)
        assert w.cv == pytest.approx(
            statistics.stdev(flat) / statistics.mean(flat), rel=1e-9
        )

    def test_clear(self):
        w = WindowedStats(2)
        self.push_values(w, [[1.0]])
        w.clear()
        assert not w.has_data

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            WindowedStats(0)

    @given(
        st.lists(
            st.lists(st.floats(min_value=0.001, max_value=1e3), min_size=1, max_size=10),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_pooled_variance_property(self, groups):
        w = WindowedStats(10)
        self.push_values(w, groups)
        flat = [v for group in groups for v in group]
        if len(flat) >= 2:
            assert w.variance == pytest.approx(
                statistics.variance(flat), rel=1e-6, abs=1e-9
            )


class TestPercentile:
    def test_empty_returns_none(self):
        assert percentile([], 95) is None

    def test_single_value(self):
        assert percentile([3.0], 95) == 3.0

    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_unsorted_input_handled(self):
        assert percentile([9.0, 1.0, 5.0], 50) == 5.0

    @given(st.lists(finite_floats, min_size=1, max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_bounded_by_min_max(self, values):
        p95 = percentile(values, 95)
        assert min(values) <= p95 <= max(values)
