"""Regression tests pinning the fast-path kernel's ordering semantics.

The fast path keeps two heap-entry shapes (fire-and-forget tuples and
cancellable events), recycles pooled events, and walks batched arrival
sequences — all of which must preserve the kernel's core contract:
events fire in ``(time, seq)`` order, i.e. simultaneous events fire in
the order they were *scheduled*, and cancellation or re-scheduling never
perturbs the order of surviving events.
"""

from __future__ import annotations

import pytest

from repro.simulation.events import Event
from repro.simulation.kernel import SimulationError, Simulator


class TestSimultaneousOrdering:
    def test_mixed_shapes_fire_in_schedule_order(self, sim):
        """schedule / schedule_fire / batch steps at one instant fire by seq."""
        fired = []
        sim.schedule(1.0, fired.append, "handle-0")
        sim.schedule_fire(1.0, fired.append, "fire-1")
        sim.schedule_batch([1.0], fired.append, "batch-2")
        sim.schedule_at(1.0, fired.append, "handle-3")
        sim.schedule_fire_at(1.0, fired.append, "fire-4")
        sim.run()
        assert fired == ["handle-0", "fire-1", "batch-2", "handle-3", "fire-4"]

    def test_cancel_and_reschedule_keeps_late_seq(self, sim):
        """Re-scheduling after a cancel fires at the *new* schedule position.

        Regression: a cancelled event's slot must not be inherited by its
        replacement — the replacement gets a fresh (later) seq, so
        same-time peers scheduled in between fire first.
        """
        fired = []
        first = sim.schedule(1.0, fired.append, "original")
        sim.schedule(1.0, fired.append, "peer")
        first.cancel()
        sim.schedule(1.0, fired.append, "rescheduled")
        sim.run()
        assert fired == ["peer", "rescheduled"]

    def test_cancelled_events_do_not_count_or_advance_clock(self, sim):
        handle = sim.schedule(5.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        handle.cancel()
        sim.run()
        assert sim.fired_events == 1
        assert sim.now == 1.0

    def test_callback_scheduling_at_now_fires_after_pending_peers(self, sim):
        """An event scheduled from a callback at t=now fires after peers
        already pending at that instant (its seq is larger)."""
        fired = []

        def spawner():
            fired.append("spawner")
            sim.schedule(0.0, fired.append, "spawned")

        sim.schedule(1.0, spawner)
        sim.schedule(1.0, fired.append, "peer")
        sim.run()
        assert fired == ["spawner", "peer", "spawned"]


class TestEventPool:
    def test_periodic_events_are_recycled(self, sim):
        ticks = []
        proc = sim.every(1.0, ticks.append, 1)
        sim.run(until=5.5)
        proc.stop()
        assert ticks == [1, 1, 1, 1, 1]
        # The recurrence reuses pool events instead of allocating per tick.
        assert sim.pooled_events <= 2

    def test_stale_handle_cannot_cancel_recycled_event(self, sim):
        """A handle kept across recycling must not kill the new occupant.

        The kernel's owner contract: after a pooled event fires, holders
        cancel only if the stored generation still matches. After two
        ticks the recurrence has recycled its first event object into the
        pending third tick, so a stale owner's guard must refuse.
        """
        ticks = []
        proc = sim.every(1.0, ticks.append, "a")
        stale = proc._event
        stale_generation = stale.generation
        sim.run(until=2.5)
        assert ticks == ["a", "a"]
        # The first event object was recycled and is live again, bumped:
        assert stale is proc._event
        assert stale.generation != stale_generation
        # A stale owner applying the generation guard cancels nothing:
        if stale.generation == stale_generation:
            stale.cancel()
        sim.run(until=3.5)
        assert ticks == ["a", "a", "a"]
        proc.stop()

    def test_stop_cancels_pending_pooled_event(self, sim):
        ticks = []
        proc = sim.every(1.0, ticks.append, 1)
        sim.run(until=1.5)
        proc.stop()
        sim.run(until=10.0)
        assert ticks == [1]
        assert proc.stopped

    def test_pool_reuse_bumps_generation(self, sim):
        """The recurrence alternates two pool objects; reuse bumps generation.

        A fired event is recycled only *after* its callback returns, so
        scheduling the next tick from inside the callback allocates a
        second object; from then on the two alternate through the pool.
        """
        proc = sim.every(1.0, lambda: None)
        first = proc._event
        g0 = first.generation
        sim.run(until=1.5)
        second = proc._event
        assert second is not first  # first was not yet poolable mid-callback
        assert first.generation == g0  # generation bumps at reuse, not recycle
        sim.run(until=2.5)
        assert proc._event is first
        assert first.generation == g0 + 1
        proc.stop()

    def test_pooled_flag_not_set_on_public_handles(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        assert handle.pooled is False
        sim.run()
        assert sim.pooled_events == 0


class TestBatchScheduleSemantics:
    def test_empty_batch_is_immediately_stopped(self, sim):
        batch = sim.schedule_batch([], lambda: None)
        assert batch.stopped
        assert batch.remaining == 0
        sim.run()
        assert sim.fired_events == 0

    def test_remaining_counts_down(self, sim):
        batch = sim.schedule_batch([1.0, 2.0, 3.0], lambda: None)
        assert batch.remaining == 3
        sim.run(until=1.5)
        assert batch.remaining == 2
        sim.run(until=10.0)
        assert batch.remaining == 0
        assert batch.stopped

    def test_non_monotonic_times_raise_when_reached(self, sim):
        sim.schedule_batch([2.0, 1.0], lambda: None)
        with pytest.raises(SimulationError):
            sim.run()

    def test_batch_times_in_past_raise(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_batch([1.0], lambda: None)

    def test_stop_during_final_step_is_safe(self, sim):
        fired = []
        batch = None

        def last():
            fired.append(sim.now)
            batch.stop()

        batch = sim.schedule_batch([1.0], last)
        sim.run()
        assert fired == [1.0]
        assert batch.stopped


class TestRunSemantics:
    def test_fired_events_counts_all_shapes(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule_fire(2.0, lambda: None)
        sim.schedule_batch([3.0, 4.0], lambda: None)
        sim.run()
        assert sim.fired_events == 4

    def test_until_clock_advances_past_last_event(self, sim):
        sim.schedule_fire(1.0, lambda: None)
        sim.run(until=7.5)
        assert sim.now == 7.5
        assert sim.fired_events == 1

    def test_until_excludes_strictly_later_events(self, sim):
        fired = []
        sim.schedule_fire(1.0, fired.append, "in")
        sim.schedule_fire(2.0, fired.append, "boundary")
        sim.schedule_fire(2.0000001, fired.append, "out")
        sim.run(until=2.0)
        assert fired == ["in", "boundary"]

    def test_max_events_bounds_firing(self, sim):
        fired = []
        for i in range(10):
            sim.schedule_fire(float(i), fired.append, i)
        sim.run(max_events=4)
        assert fired == [0, 1, 2, 3]
        sim.run()
        assert fired == list(range(10))

    def test_step_handles_both_shapes_and_skips_cancelled(self, sim):
        fired = []
        handle = sim.schedule(1.0, fired.append, "cancelled")
        sim.schedule_fire(2.0, fired.append, "fire")
        sim.schedule(3.0, fired.append, "handle")
        handle.cancel()
        assert sim.step() is True
        assert fired == ["fire"]
        assert sim.step() is True
        assert fired == ["fire", "handle"]
        assert sim.step() is False

    def test_reentrant_run_rejected(self, sim):
        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run()

    def test_negative_delay_rejected_on_fire_path(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule_fire(-0.1, lambda: None)

    def test_schedule_fire_returns_no_handle(self, sim):
        assert sim.schedule_fire(1.0, lambda: None) is None
        assert sim.schedule_fire_at(2.0, lambda: None) is None


class TestEventHandle:
    def test_event_ordering_by_time_then_seq(self):
        a = Event(1.0, 0, lambda: None, ())
        b = Event(1.0, 1, lambda: None, ())
        c = Event(2.0, 0, lambda: None, ())
        assert a < b < c
        assert a.sort_key() == (1.0, 0)

    def test_cancel_is_idempotent(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()
        assert sim.fired_events == 0
