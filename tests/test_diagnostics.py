"""Tests for collect_per_task_measurements (qos/diagnostics.py).

The AssumptionChecker itself is covered in test_diagnostics_ascii.py;
here we test the extraction step that turns QoS-manager sliding windows
into the ``{vertex: {task_id: value}}`` maps the checker consumes.
"""

from repro.qos.diagnostics import (
    HOT_SPOT,
    LOAD_SKEW,
    AssumptionChecker,
    collect_per_task_measurements,
)
from repro.qos.manager import QoSManager, _TaskWindows
from repro.qos.stats import StatsSnapshot


def snap(value):
    """One-sample interval snapshot holding ``value``."""
    return StatsSnapshot(1, value, 0.0)


class FakeTask:
    def __init__(self, uid, vertex_name, task_id, state="running"):
        self.uid = uid
        self.vertex_name = vertex_name
        self.task_id = task_id
        self.state = state


class FakeManager:
    """Duck-types the one attribute the collector reads."""

    def __init__(self):
        self._tasks = {}

    def add(self, task, service=(), interarrival=(), window=5):
        windows = _TaskWindows(window)
        for value in service:
            windows.service.push(snap(value))
        for value in interarrival:
            windows.interarrival.push(snap(value))
        self._tasks[task.uid] = (task, None, windows)
        return windows


def test_collects_service_and_arrival_maps():
    manager = FakeManager()
    manager.add(FakeTask(1, "worker", "worker/0"), service=[0.010, 0.012], interarrival=[0.005])
    manager.add(FakeTask(2, "worker", "worker/1"), service=[0.011], interarrival=[0.010])
    service, arrivals = collect_per_task_measurements([manager])
    assert service == {"worker": {"worker/0": 0.011, "worker/1": 0.011}}
    assert arrivals["worker"]["worker/0"] == 200.0  # 1 / 0.005s
    assert arrivals["worker"]["worker/1"] == 100.0


def test_stopped_tasks_are_skipped():
    manager = FakeManager()
    manager.add(FakeTask(1, "worker", "worker/0", state="stopped"), service=[0.010])
    manager.add(FakeTask(2, "worker", "worker/1"), service=[0.020])
    service, arrivals = collect_per_task_measurements([manager])
    assert service == {"worker": {"worker/1": 0.020}}
    assert arrivals == {}


def test_empty_windows_contribute_nothing():
    manager = FakeManager()
    manager.add(FakeTask(1, "worker", "worker/0"))  # no measurements yet
    service, arrivals = collect_per_task_measurements([manager])
    assert service == {} and arrivals == {}


def test_zero_interarrival_mean_is_not_inverted():
    manager = FakeManager()
    windows = manager.add(FakeTask(1, "worker", "worker/0"), service=[0.010])
    windows.interarrival.push(snap(0.0))
    service, arrivals = collect_per_task_measurements([manager])
    assert "worker" in service
    assert arrivals == {}  # no division by zero, entry simply absent


def test_merges_across_managers_and_vertices():
    m1, m2 = FakeManager(), FakeManager()
    m1.add(FakeTask(1, "map", "map/0"), service=[0.010])
    m2.add(FakeTask(2, "map", "map/1"), service=[0.030])
    m2.add(FakeTask(3, "filter", "filter/0"), service=[0.002])
    service, _ = collect_per_task_measurements([m1, m2])
    assert service == {
        "map": {"map/0": 0.010, "map/1": 0.030},
        "filter": {"filter/0": 0.002},
    }


def test_real_manager_shape_round_trips():
    """The collector works against an actual QoSManager's _tasks dict."""
    from repro.qos.reporter import TaskReporter

    manager = QoSManager(0, window=5)

    class RT(FakeTask):
        pass

    task = RT(7, "worker", "worker/0")
    manager.attach_task(task, TaskReporter("worker", "worker/0"))
    _, _, windows = manager._tasks[7]
    for value in (0.004, 0.006):
        windows.service.push(snap(value))
    service, _ = collect_per_task_measurements([manager])
    assert service == {"worker": {"worker/0": 0.005}}


def test_feeds_checker_end_to_end():
    """Collected maps plug straight into AssumptionChecker."""
    manager = FakeManager()
    for i, svc in enumerate([0.010, 0.010, 0.010, 0.050]):
        manager.add(FakeTask(i, "worker", f"worker/{i}"), service=[svc])
    service, arrivals = collect_per_task_measurements([manager])
    findings = AssumptionChecker().check(service, arrivals)
    assert [f.kind for f in findings] == [HOT_SPOT]
    assert findings[0].task_id == "worker/3"
    assert findings[0].ratio == 5.0


def test_load_skew_from_collected_arrivals():
    manager = FakeManager()
    # three tasks at ~100/s, one starved at 10/s
    rates = [0.010, 0.010, 0.010, 0.100]
    for i, gap in enumerate(rates):
        manager.add(
            FakeTask(i, "worker", f"worker/{i}"),
            service=[0.001],
            interarrival=[gap],
        )
    service, arrivals = collect_per_task_measurements([manager])
    findings = AssumptionChecker().check(service, arrivals)
    skews = [f for f in findings if f.kind == LOAD_SKEW]
    assert [f.task_id for f in skews] == ["worker/3"]
