"""Unit tests for random streams and distributions."""

import math
import random

import pytest

from repro.simulation.randomness import (
    Deterministic,
    Distribution,
    Exponential,
    Gamma,
    LogNormal,
    RandomStreams,
    Uniform,
)


def sample_stats(dist, n=20000, seed=7):
    rng = random.Random(seed)
    values = [dist.sample(rng) for _ in range(n)]
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    cv = math.sqrt(var) / mean if mean else 0.0
    return mean, cv


class TestRandomStreams:
    def test_same_name_returns_same_stream(self):
        streams = RandomStreams(1)
        assert streams.get("a") is streams.get("a")

    def test_different_names_independent(self):
        streams = RandomStreams(1)
        a = streams.get("a").random()
        b = streams.get("b").random()
        assert a != b

    def test_deterministic_across_instances(self):
        x = RandomStreams(42).get("svc").random()
        y = RandomStreams(42).get("svc").random()
        assert x == y

    def test_creation_order_does_not_matter(self):
        s1 = RandomStreams(42)
        s1.get("other")
        v1 = s1.get("svc").random()
        s2 = RandomStreams(42)
        v2 = s2.get("svc").random()
        assert v1 == v2

    def test_different_root_seeds_differ(self):
        assert RandomStreams(1).get("x").random() != RandomStreams(2).get("x").random()

    def test_fork_derives_new_seed(self):
        base = RandomStreams(5)
        fork = base.fork(3)
        assert fork.root_seed != base.root_seed
        assert base.fork(3).root_seed == fork.root_seed


class TestDeterministic:
    def test_sample_is_constant(self, rng):
        d = Deterministic(0.25)
        assert all(d.sample(rng) == 0.25 for _ in range(10))

    def test_mean_and_cv(self):
        d = Deterministic(3.0)
        assert d.mean == 3.0
        assert d.cv == 0.0

    def test_scaled(self):
        assert Deterministic(2.0).scaled(0.5).value == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Deterministic(-1.0)


class TestExponential:
    def test_mean_matches(self):
        mean, cv = sample_stats(Exponential(0.01))
        assert mean == pytest.approx(0.01, rel=0.05)

    def test_cv_is_one(self):
        _, cv = sample_stats(Exponential(0.5))
        assert cv == pytest.approx(1.0, rel=0.08)

    def test_scaled(self):
        assert Exponential(2.0).scaled(2.0).mean == 4.0

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            Exponential(0.0)


class TestGamma:
    @pytest.mark.parametrize("mean,cv", [(0.01, 0.3), (1.0, 0.7), (5.0, 1.5)])
    def test_mean_and_cv_match(self, mean, cv):
        got_mean, got_cv = sample_stats(Gamma(mean, cv))
        assert got_mean == pytest.approx(mean, rel=0.07)
        assert got_cv == pytest.approx(cv, rel=0.12)

    def test_samples_positive(self, rng):
        g = Gamma(0.002, 0.7)
        assert all(g.sample(rng) > 0 for _ in range(100))

    def test_scaled_preserves_cv(self):
        g = Gamma(1.0, 0.5).scaled(3.0)
        assert g.mean == 3.0
        assert g.cv == 0.5

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            Gamma(0.0, 1.0)
        with pytest.raises(ValueError):
            Gamma(1.0, 0.0)


class TestLogNormal:
    @pytest.mark.parametrize("mean,cv", [(0.5, 0.4), (2.0, 1.0)])
    def test_mean_and_cv_match(self, mean, cv):
        got_mean, got_cv = sample_stats(LogNormal(mean, cv))
        assert got_mean == pytest.approx(mean, rel=0.08)
        assert got_cv == pytest.approx(cv, rel=0.15)

    def test_scaled(self):
        ln = LogNormal(1.0, 0.8).scaled(2.0)
        assert ln.mean == 2.0
        assert ln.cv == 0.8

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            LogNormal(-1.0, 0.5)
        with pytest.raises(ValueError):
            LogNormal(1.0, -0.5)


class TestUniform:
    def test_mean(self):
        mean, _ = sample_stats(Uniform(1.0, 3.0))
        assert mean == pytest.approx(2.0, rel=0.03)

    def test_bounds_respected(self, rng):
        u = Uniform(0.5, 0.9)
        for _ in range(100):
            value = u.sample(rng)
            assert 0.5 <= value <= 0.9

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            Uniform(2.0, 1.0)
        with pytest.raises(ValueError):
            Uniform(-1.0, 1.0)

    def test_scaled(self):
        u = Uniform(1.0, 2.0).scaled(2.0)
        assert (u.low, u.high) == (2.0, 4.0)


class TestBaseClass:
    def test_sample_not_implemented(self, rng):
        with pytest.raises(NotImplementedError):
            Distribution().sample(rng)

    def test_scaled_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Distribution().scaled(2.0)
