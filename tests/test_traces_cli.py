"""Tests for trace tooling, the CLI, and placement strategies."""

import os
import random

import pytest

from repro.cli import build_parser, main
from repro.engine.resources import ResourceManager
from repro.simulation.kernel import Simulator
from repro.workloads.traces import (
    TraceRateProfile,
    generate_diurnal_trace,
    load_trace,
    save_trace,
)


class TestGenerateTrace:
    def test_length_and_resolution(self):
        trace = generate_diurnal_trace(days=2, resolution=3600.0)
        assert len(trace) == 48
        assert trace[1][0] - trace[0][0] == 3600.0

    def test_diurnal_swing(self):
        trace = generate_diurnal_trace(days=1, base_rate=1000.0, daily_amplitude=0.5, noise=0.0)
        rates = [r for _, r in trace]
        assert min(rates) == pytest.approx(500.0, rel=0.05)
        assert max(rates) == pytest.approx(1500.0, rel=0.05)

    def test_weekend_dip(self):
        trace = generate_diurnal_trace(
            days=7, weekend_factor=0.5, noise=0.0, resolution=43200.0
        )
        weekday_noon = trace[1][1]   # day 0, 12:00
        saturday_noon = trace[11][1]  # day 5, 12:00
        assert saturday_noon == pytest.approx(weekday_noon * 0.5, rel=0.01)

    def test_bursts_applied(self):
        trace = generate_diurnal_trace(
            days=1, noise=0.0, bursts=[(3600.0, 1800.0, 3.0)], resolution=1800.0
        )
        burst_rate = trace[2][1]  # t = 3600
        neighbour = trace[4][1]   # t = 7200 (same diurnal phase-ish)
        assert burst_rate > 2.0 * neighbour

    def test_deterministic_for_seed(self):
        a = generate_diurnal_trace(days=1, seed=9)
        b = generate_diurnal_trace(days=1, seed=9)
        assert a == b

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            generate_diurnal_trace(days=0)
        with pytest.raises(ValueError):
            generate_diurnal_trace(daily_amplitude=2.0)


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        trace = generate_diurnal_trace(days=1, resolution=7200.0)
        path = save_trace(os.path.join(tmp_path, "t.csv"), trace)
        loaded = load_trace(path)
        assert len(loaded) == len(trace)
        for (t0, r0), (t1, r1) in zip(trace, loaded):
            assert t0 == pytest.approx(t1, abs=1e-3)
            assert r0 == pytest.approx(r1, rel=1e-5)

    def test_bad_header_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "bad.csv")
        with open(path, "w") as f:
            f.write("a,b\n1,2\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_empty_trace_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "empty.csv")
        with open(path, "w") as f:
            f.write("time_s,rate_per_s\n")
        with pytest.raises(ValueError):
            load_trace(path)


class TestTraceRateProfile:
    def test_interpolation(self):
        profile = TraceRateProfile([(0.0, 100.0), (10.0, 200.0)])
        assert profile.rate(0.0) == 100.0
        assert profile.rate(5.0) == pytest.approx(150.0)
        assert profile.rate(10.0) == 200.0
        assert profile.rate(99.0) == 200.0

    def test_compression_maps_time(self):
        profile = TraceRateProfile([(0.0, 100.0), (100.0, 200.0)], compression=10.0)
        # experiment t=5 -> trace t=50 -> midway
        assert profile.rate(5.0) == pytest.approx(150.0)
        assert profile.replay_duration == pytest.approx(10.0)

    def test_rate_scale(self):
        profile = TraceRateProfile([(0.0, 100.0), (1.0, 100.0)], rate_scale=0.1)
        assert profile.rate(0.5) == pytest.approx(10.0)

    def test_drives_a_source(self):
        profile = TraceRateProfile([(0.0, 50.0), (10.0, 50.0)], jitter="deterministic")
        rng = random.Random(1)
        assert profile.next_interval(1.0, rng) == pytest.approx(0.02)

    def test_invalid_traces_rejected(self):
        with pytest.raises(ValueError):
            TraceRateProfile([])
        with pytest.raises(ValueError):
            TraceRateProfile([(0.0, 1.0), (0.0, 2.0)])
        with pytest.raises(ValueError):
            TraceRateProfile([(0.0, -1.0)])
        with pytest.raises(ValueError):
            TraceRateProfile([(0.0, 1.0)], compression=0.0)


class TestPlacement:
    class T:
        _uid = 100_000

        def __init__(self):
            TestPlacement.T._uid += 1
            self.uid = TestPlacement.T._uid
            self.task_id = f"t{self.uid}"

    def test_pack_fills_first_worker(self):
        rm = ResourceManager(Simulator(), pool_size=4, slots_per_worker=4, placement="pack")
        for _ in range(4):
            rm.allocate_slot(self.T())
        assert rm.leased_workers == 1

    def test_spread_leases_more_workers(self):
        rm = ResourceManager(Simulator(), pool_size=4, slots_per_worker=4, placement="spread")
        for _ in range(4):
            rm.allocate_slot(self.T())
        assert rm.leased_workers >= 2

    def test_spread_respects_pool_bound(self):
        rm = ResourceManager(Simulator(), pool_size=2, slots_per_worker=2, placement="spread")
        for _ in range(4):
            rm.allocate_slot(self.T())
        assert rm.leased_workers == 2

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError):
            ResourceManager(Simulator(), placement="bogus")


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["experiment", "fig5"])
        assert args.name == "fig5"

    def test_info_command(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "ICDCS 2015" in out

    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "experiment" in capsys.readouterr().out

    def test_trace_generate_and_info(self, tmp_path, capsys):
        path = os.path.join(tmp_path, "trace.csv")
        assert main(["trace", "generate", "--days", "1", "--out", path]) == 0
        assert os.path.exists(path)
        assert main(["trace", "info", path]) == 0
        out = capsys.readouterr().out
        assert "1.0 days" in out

    def test_experiment_fig5_runs(self, capsys):
        assert main(["experiment", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "Rebalance chose" in out

    def test_invalid_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])
