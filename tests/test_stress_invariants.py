"""Stress tests and engine-wide invariants under randomized scenarios.

These tests subject the engine to adversarial conditions — scaling storms,
deep overload, random topologies — and check the invariants that must
hold regardless: item conservation, bounded queues, no deadlocks, slot
accounting consistency.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.engine import EngineConfig, StreamProcessingEngine
from repro.engine.udf import FilterUDF, MapUDF, SinkUDF, SourceUDF
from repro.graphs.job_graph import JobGraph
from repro.simulation.randomness import Gamma
from repro.workloads.rates import ConstantRate

from conftest import make_linear_job


def accounted_items(engine, source_vertex="Source"):
    """(emitted, accounted-for) item counts across the whole graph."""
    emitted = sum(t.items_emitted for t in engine.runtime.vertex(source_vertex).tasks)
    consumed = 0
    queued = 0
    in_flight = 0
    buffered = 0
    busy = 0
    for task in engine.runtime.all_tasks():
        if not task.out_gates:  # sink
            consumed += task.items_processed
        queued += len(task.input_queue)
        in_flight += sum(c.outstanding for c in task.in_channels)
        buffered += sum(g.buffered_items for g in task.out_gates)
        if task._busy:
            busy += 1
    return emitted, consumed, queued, in_flight, buffered, busy


class TestScalingStorm:
    def run_storm(self, seed, steps=25):
        """Random scale-up/down actions every second under steady load."""
        engine = StreamProcessingEngine(EngineConfig(seed=seed, startup_delay=0.3))
        graph = make_linear_job(
            source_rate=300.0, service_mean=0.004, n_workers=4,
            worker_min=1, worker_max=24,
        )
        engine.submit(graph)
        rng = random.Random(seed)
        for _ in range(steps):
            engine.run(1.0)
            target = rng.randint(1, 24)
            engine.scheduler.set_parallelism("Worker", target)
        engine.run(10.0)  # let everything settle and drain
        return engine

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_storm_conserves_items_and_terminates(self, seed):
        engine = self.run_storm(seed)
        sinks = [t.udf for t in engine.runtime.vertex("Sink").tasks]
        consumed = sum(u.consumed for u in sinks)
        emitted = sum(
            t.items_processed for t in engine.runtime.vertex("Source").tasks
        )
        # Residual items may sit in queues/buffers; nothing may vanish
        # beyond that, and throughput must not collapse.
        assert consumed >= emitted - 500
        assert consumed > 0.8 * 300.0 * 25

    @pytest.mark.parametrize("seed", [1, 2])
    def test_storm_leaves_consistent_slot_accounting(self, seed):
        engine = self.run_storm(seed)
        live = [t for t in engine.runtime.all_tasks() if t.state != "stopped"]
        assert engine.resources.active_tasks == len(live)
        engine.stop()
        assert engine.resources.active_tasks == 0

    @pytest.mark.parametrize("seed", [1, 2])
    def test_storm_respects_bounds(self, seed):
        engine = self.run_storm(seed)
        assert 1 <= engine.parallelism("Worker") <= 24


class TestDeepOverloadRecovery:
    def test_recovery_after_sustained_overload(self):
        from repro.workloads.rates import PiecewiseRate

        graph = JobGraph("overload")
        src = graph.add_vertex("Src", lambda: SourceUDF(lambda now, rng: 0))
        worker = graph.add_vertex(
            "W", lambda: MapUDF(lambda x: x, service_dist=Gamma(0.02, 0.5))
        )
        sink = graph.add_vertex("Snk", lambda: SinkUDF())
        graph.connect(src, worker)
        graph.connect(worker, sink)
        src.rate_profile = PiecewiseRate([(0.0, 2000.0), (30.0, 10.0)])
        config = EngineConfig(queue_capacity=16, channel_capacity=4, seed=9)
        engine = StreamProcessingEngine(config)
        engine.submit(graph)
        engine.run(60.0)
        # After the overload the pipeline keeps flowing at the light rate.
        vs = engine.last_summary.vertex("W")
        assert vs is not None
        assert vs.utilization < 0.8
        emitted = sum(t.items_processed for t in engine.runtime.vertex("Src").tasks)
        sink_task = engine.runtime.vertex("Snk").tasks[0]
        assert sink_task.udf.consumed >= emitted - 100

    def test_tiny_buffers_never_deadlock(self):
        config = EngineConfig(queue_capacity=1, channel_capacity=1, seed=4)
        engine = StreamProcessingEngine(config)
        graph = make_linear_job(source_rate=200.0, service_mean=0.002, n_workers=2)
        engine.submit(graph)
        engine.run(20.0)
        sinks = [t.udf for t in engine.runtime.vertex("Sink").tasks]
        assert sum(u.consumed for u in sinks) > 1000


class TestRandomTopologies:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        width=st.integers(min_value=1, max_value=3),
        depth=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_layered_dags_flow(self, seed, width, depth):
        """Any layered DAG of maps/filters moves items source -> sink."""
        rng = random.Random(seed)
        graph = JobGraph(f"dag{seed}")
        src = graph.add_vertex("Src", lambda: SourceUDF(lambda now, r: r.random()))
        previous = [src]
        for level in range(depth):
            layer = []
            for i in range(width):
                if rng.random() < 0.3:
                    factory = lambda: FilterUDF(lambda x: True)
                else:
                    factory = lambda: MapUDF(lambda x: x)
                vertex = graph.add_vertex(
                    f"l{level}n{i}", factory, parallelism=rng.randint(1, 3)
                )
                layer.append(vertex)
            for vertex in layer:
                graph.connect(rng.choice(previous), vertex)
            previous = layer
        sink = graph.add_vertex("Snk", lambda: SinkUDF())
        for vertex in previous:
            graph.connect(vertex, sink)
        src.rate_profile = ConstantRate(100.0, jitter="deterministic")
        engine = StreamProcessingEngine(EngineConfig(seed=seed))
        engine.submit(graph)
        engine.run(5.0)
        sink_tasks = engine.runtime.vertex("Snk").tasks
        assert sum(t.items_processed for t in sink_tasks) > 0


class TestConservationInvariant:
    @pytest.mark.parametrize("rate,workers", [(100.0, 1), (400.0, 3), (800.0, 6)])
    def test_every_emitted_item_is_somewhere(self, rate, workers):
        engine = StreamProcessingEngine(EngineConfig(seed=8))
        graph = make_linear_job(source_rate=rate, service_mean=0.004, n_workers=workers)
        engine.submit(graph)
        engine.run(12.0)
        emitted, consumed, queued, in_flight, buffered, busy = accounted_items(engine)
        worker_processed = sum(
            t.items_processed for t in engine.runtime.vertex("Worker").tasks
        )
        # Source-emitted items are either at the worker stage (queued,
        # in flight, being served) or already processed by it.
        stage_one = worker_processed + busy
        assert emitted <= consumed + queued + in_flight + buffered + stage_one + 2
        assert worker_processed <= emitted
