"""Tests for the validation and sensitivity harnesses."""

import os
from dataclasses import replace

import pytest

from repro.experiments.sensitivity import SensitivityParams, run_point
from repro.experiments.validation import ValidationParams
from repro.experiments.validation import run as run_validation
from repro.workloads.primetester import PrimeTesterParams


@pytest.fixture(scope="module")
def validation_result():
    params = ValidationParams(utilizations=(0.3, 0.7), duration=60.0)
    return run_validation(params)


class TestValidationHarness:
    def test_engine_agrees_with_theory(self, validation_result):
        """Measured latency within ~35 % of the Allen–Cunneen prediction."""
        assert validation_result.max_relative_error < 0.35

    def test_latency_grows_with_utilization(self, validation_result):
        measured = [p.measured for p in validation_result.points]
        assert measured == sorted(measured)

    def test_measured_at_most_predicted_plus_tolerance(self, validation_result):
        """Tandem departures are smoother than Poisson, so the analytic
        prediction (Poisson at every stage) should sit at or above the
        engine's measurement."""
        for point in validation_result.points:
            assert point.measured <= point.predicted * 1.15

    def test_report_and_csv(self, tmp_path, validation_result):
        text = validation_result.report()
        assert "queueing theory" in text
        path = validation_result.series_csv(os.path.join(tmp_path, "v.csv"))
        assert os.path.getsize(path) > 0


class TestSensitivityHarness:
    def micro_params(self):
        workload = PrimeTesterParams(
            n_sources=2,
            n_testers=2,
            n_sinks=1,
            tester_min=1,
            tester_max=8,
            warmup_rate=20.0,
            peak_rate=100.0,
            increment_steps=2,
            step_duration=5.0,
            tester_service_mean=0.002,
        )
        return SensitivityParams(workload=workload)

    def test_run_point_overrides_config(self):
        point = run_point(self.micro_params(), rho_max=0.8)
        assert point.parameter == "rho_max"
        assert point.value == 0.8
        assert 0.0 <= point.fulfillment <= 1.0

    def test_quick_grid_is_reduced(self):
        full = SensitivityParams()
        quick = full.quick()
        assert sum(len(v) for v in quick.sweeps.values()) < sum(
            len(v) for v in full.sweeps.values()
        )

    def test_report_renders(self):
        from repro.experiments.sensitivity import SensitivityResult, SweepPoint

        result = SensitivityResult(self.micro_params())
        result.points.append(SweepPoint("rho_max", 0.9, 0.95, 100.0, 3))
        text = result.report()
        assert "rho_max" in text
        assert "95.0%" in text


class TestCliNewExperiments:
    def test_validation_via_cli(self, capsys):
        # Monkeypatch-free: validation's default sweep is a few minutes;
        # just check the command is registered.
        from repro.cli import EXPERIMENTS

        assert "validation" in EXPERIMENTS
        assert "sensitivity" in EXPERIMENTS
