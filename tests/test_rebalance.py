"""Unit and property tests for the Rebalance technique (Algorithm 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.latency_model import INFINITY, SequenceLatencyModel, VertexModel
from repro.core.rebalance import brute_force_minimum, rebalance


def model_of(*specs, p_max=12):
    """specs: (lam, service, variability) per vertex."""
    models = []
    for i, (lam, s, var) in enumerate(specs, start=1):
        models.append(
            VertexModel(f"v{i}", 1, 1, p_max, lam, s, var, fitting_coefficient=1.0)
        )
    return SequenceLatencyModel("js", models)


class TestBasics:
    def test_single_vertex_exact(self):
        model = model_of((100.0, 0.004, 1.0))
        result = rebalance(model, 0.002)
        assert result.feasible
        (p,) = result.parallelism.values()
        m = model.models[0]
        assert m.waiting_time(p) <= 0.002
        assert p == m.p_for_wait(0.002)

    def test_infeasible_returns_max_scaleout(self):
        model = model_of((1000.0, 0.01, 1.0), p_max=8)  # b = 10 > p_max
        result = rebalance(model, 0.001)
        assert not result.feasible
        assert result.parallelism == {"v1": 8}

    def test_result_respects_budget(self):
        model = model_of((100.0, 0.004, 1.0), (200.0, 0.002, 0.5), (50.0, 0.008, 1.2))
        result = rebalance(model, 0.003)
        assert result.feasible
        assert model.total_waiting_time(result.parallelism) <= 0.003

    def test_minimum_parallelism_overrides_respected(self):
        model = model_of((100.0, 0.004, 1.0), (200.0, 0.002, 0.5))
        free = rebalance(model, 0.005)
        pinned = rebalance(model, 0.005, min_parallelism={"v1": 9})
        assert pinned.parallelism["v1"] >= 9
        assert pinned.parallelism["v1"] >= free.parallelism["v1"]

    def test_bounds_respected(self):
        model = model_of((300.0, 0.01, 1.5), p_max=10)
        result = rebalance(model, 0.0005)
        for name, p in result.parallelism.items():
            m = model.model(name)
            assert m.p_min <= p <= m.p_max

    def test_no_scalable_vertices(self):
        m = VertexModel("fixed", 2, 2, 2, 100.0, 0.004, 1.0, scalable=False)
        model = SequenceLatencyModel("js", [m])
        generous = rebalance(model, 10.0)
        assert generous.feasible
        assert generous.parallelism == {}
        tight = rebalance(model, 1e-9)
        assert not tight.feasible

    def test_fixed_vertex_contributes_wait(self):
        fixed = VertexModel("fixed", 2, 2, 2, 100.0, 0.004, 1.0, scalable=False)
        elastic = VertexModel("elastic", 1, 1, 64, 100.0, 0.004, 1.0)
        model = SequenceLatencyModel("js", [fixed, elastic])
        budget = fixed.waiting_time(2) + 0.0005
        result = rebalance(model, budget)
        assert result.feasible
        assert elastic.waiting_time(result.parallelism["elastic"]) <= 0.0005 + 1e-12

    def test_unstable_fixed_vertex_infeasible(self):
        fixed = VertexModel("fixed", 1, 1, 1, 300.0, 0.01, 1.0, scalable=False)  # rho = 3
        elastic = VertexModel("elastic", 1, 1, 64, 10.0, 0.001, 1.0)
        model = SequenceLatencyModel("js", [fixed, elastic])
        result = rebalance(model, 0.001)
        assert not result.feasible

    def test_zero_wait_vertices_stay_minimal(self):
        model = model_of((0.0, 0.004, 1.0), (100.0, 0.004, 1.0))
        result = rebalance(model, 0.002)
        assert result.parallelism["v1"] == 1

    def test_predicted_wait_reported(self):
        model = model_of((100.0, 0.004, 1.0))
        result = rebalance(model, 0.002)
        assert result.predicted_wait == pytest.approx(
            model.total_waiting_time(result.parallelism)
        )

    def test_total_parallelism_property(self):
        model = model_of((100.0, 0.004, 1.0), (100.0, 0.004, 1.0))
        result = rebalance(model, 0.002)
        assert result.total_parallelism == sum(result.parallelism.values())


class TestOptimality:
    def test_matches_bruteforce_two_vertices(self):
        model = model_of((120.0, 0.005, 1.0), (80.0, 0.006, 0.8), p_max=10)
        budget = 0.004
        result = rebalance(model, budget)
        brute = brute_force_minimum(model, budget)
        assert brute is not None
        assert result.feasible
        # Gradient descent with variable step is near-optimal; allow +1.
        assert result.total_parallelism <= brute[0] + 1

    def test_matches_bruteforce_three_vertices(self):
        model = model_of(
            (100.0, 0.004, 0.9), (60.0, 0.006, 0.7), (150.0, 0.003, 1.1), p_max=8
        )
        budget = 0.005
        result = rebalance(model, budget)
        brute = brute_force_minimum(model, budget)
        assert brute is not None
        assert result.total_parallelism <= brute[0] + 1

    @given(
        specs=st.lists(
            st.tuples(
                st.floats(min_value=5.0, max_value=300.0),
                st.floats(min_value=0.0005, max_value=0.02),
                st.floats(min_value=0.05, max_value=2.0),
            ),
            min_size=1,
            max_size=3,
        ),
        budget=st.floats(min_value=0.0002, max_value=0.05),
    )
    @settings(max_examples=120, deadline=None)
    def test_property_feasible_and_near_optimal(self, specs, budget):
        model = model_of(*specs, p_max=9)
        result = rebalance(model, budget)
        brute = brute_force_minimum(model, budget)
        if brute is None:
            assert not result.feasible
        else:
            assert result.feasible
            assert model.total_waiting_time(result.parallelism) <= budget + 1e-12
            # The variable step size deliberately overshoots (the paper:
            # "most scale-ups are slightly larger than necessary"), so
            # only a loose optimality bound holds in general.
            assert result.total_parallelism <= 2 * brute[0] + len(specs) + 2

    @given(
        budget_small=st.floats(min_value=0.0005, max_value=0.002),
        budget_large=st.floats(min_value=0.005, max_value=0.05),
    )
    @settings(max_examples=60, deadline=None)
    def test_tighter_budget_needs_no_fewer_tasks(self, budget_small, budget_large):
        model = model_of((120.0, 0.005, 1.0), (90.0, 0.004, 0.8))
        small = rebalance(model, budget_small)
        large = rebalance(model, budget_large)
        if small.feasible and large.feasible:
            assert small.total_parallelism >= large.total_parallelism
