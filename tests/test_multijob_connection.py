"""Tests for multi-job deployment and the connection-setup latency model."""

import pytest

from repro.core.constraints import LatencyConstraint
from repro.engine.channel import NetworkModel
from repro.engine.engine import EngineConfig, StreamProcessingEngine
from repro.graphs.sequences import JobSequence

from conftest import make_linear_job


class TestMultiJob:
    def test_jobs_isolated_measurements(self):
        engine = StreamProcessingEngine(EngineConfig(seed=2))
        job_a = engine.submit(make_linear_job(source_rate=100.0, service_mean=0.002))
        job_b = engine.submit(make_linear_job(source_rate=100.0, service_mean=0.008))
        engine.run(15.0)
        service_a = job_a.last_summary.vertex("Worker").service_mean
        service_b = job_b.last_summary.vertex("Worker").service_mean
        assert service_a == pytest.approx(0.002, rel=0.2)
        assert service_b == pytest.approx(0.008, rel=0.2)

    def test_jobs_share_pool_until_exhaustion(self):
        from repro.engine.resources import InsufficientResourcesError

        engine = StreamProcessingEngine(EngineConfig(worker_pool=1, slots_per_worker=4))
        engine.submit(make_linear_job())  # 1 + 2 + 1 = 4 slots
        with pytest.raises(InsufficientResourcesError):
            engine.submit(make_linear_job())

    def test_per_job_constraints_tracked_independently(self):
        engine = StreamProcessingEngine(
            EngineConfig.nephele_adaptive(elastic=True, seed=3)
        )
        graph_a = make_linear_job(source_rate=100.0, worker_min=1, worker_max=8)
        graph_b = make_linear_job(source_rate=100.0, worker_min=1, worker_max=8)
        constraint_a = LatencyConstraint(
            JobSequence.from_names(graph_a, ["Worker"], leading_edge=True, trailing_edge=True),
            0.050,
        )
        constraint_b = LatencyConstraint(
            JobSequence.from_names(graph_b, ["Worker"], leading_edge=True, trailing_edge=True),
            0.050,
        )
        job_a = engine.submit(graph_a, [constraint_a])
        job_b = engine.submit(graph_b, [constraint_b])
        engine.run(30.0)
        assert job_a.tracker_for(constraint_a).intervals_observed > 0
        assert job_b.tracker_for(constraint_b).intervals_observed > 0
        with pytest.raises(KeyError):
            job_a.tracker_for(constraint_b)
        # the engine-level lookup spans all jobs
        assert engine.tracker_for(constraint_b) is job_b.trackers[0]

    def test_elastic_scalers_act_independently(self):
        engine = StreamProcessingEngine(
            EngineConfig.nephele_adaptive(elastic=True, seed=4)
        )
        graph_hot = make_linear_job(source_rate=800.0, service_mean=0.004,
                                    worker_min=1, worker_max=16)
        graph_cold = make_linear_job(source_rate=20.0, service_mean=0.004,
                                     n_workers=4, worker_min=1, worker_max=16)
        c_hot = LatencyConstraint(
            JobSequence.from_names(graph_hot, ["Worker"], leading_edge=True, trailing_edge=True),
            0.030,
        )
        c_cold = LatencyConstraint(
            JobSequence.from_names(graph_cold, ["Worker"], leading_edge=True, trailing_edge=True),
            0.030,
        )
        job_hot = engine.submit(graph_hot, [c_hot])
        job_cold = engine.submit(graph_cold, [c_cold])
        engine.run(60.0)
        assert job_hot.parallelism("Worker") >= 4  # 800/s x 4 ms = 3.2 busy
        assert job_cold.parallelism("Worker") <= 2  # shrunk to near-minimum

    def test_accessors_before_submit(self):
        engine = StreamProcessingEngine(EngineConfig())
        assert engine.runtime is None
        assert engine.trackers == []
        assert engine.drain_sink_samples("Sink") == []
        with pytest.raises(RuntimeError):
            engine.parallelism("Worker")


class TestConnectionSetup:
    def test_first_transfer_pays_setup(self):
        config = EngineConfig(connection_setup=0.050, base_latency=0.0005)
        engine = StreamProcessingEngine(config)
        engine.submit(make_linear_job(source_rate=50.0, service_mean=0.0))
        engine.run(10.0)
        samples = sorted(engine.drain_sink_samples("Sink"))
        assert samples
        # The very first items ride first transfers: >= 50 ms e2e; later
        # items use established connections and are far faster.
        first_latency = samples[0][1]
        steady = [latency for _, latency in samples[len(samples) // 2 :]]
        assert first_latency > 0.050
        assert sum(steady) / len(steady) < 0.02

    def test_network_model_applies_once(self):
        net = NetworkModel(connection_setup=0.1)
        assert net.connection_setup == 0.1
        with pytest.raises(ValueError):
            NetworkModel(connection_setup=-0.1)

    def test_default_off(self):
        assert NetworkModel().connection_setup == 0.0
