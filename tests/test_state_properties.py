"""Property-based tests (hypothesis) for keyed-state migrations.

The invariant the migration protocol promises: key→bytes content is
*conserved* across any sequence of planned migrations, whether each
plan is applied (transfer completed) or rolled back (transfer failed) —
no key is ever dropped, duplicated, or resized by repartitioning alone.
Placement stays consistent too: after any such sequence every key lives
exactly in the partition its stable hash selects, and the moved-bytes
accounting of a plan matches the keys that actually relocate.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.state import KeyedState, stable_key_hash

keys = st.one_of(
    st.text(min_size=1, max_size=8),
    st.integers(min_value=0, max_value=10_000),
)
contents = st.dictionaries(keys, st.integers(min_value=1, max_value=10_000),
                           max_size=50)
parallelisms = st.integers(min_value=1, max_value=12)
#: a migration step: target parallelism + whether the transfer succeeds
steps = st.lists(st.tuples(parallelisms, st.booleans()), max_size=8)


def make_state(content, parallelism):
    state = KeyedState("v", parallelism)
    for key, nbytes in content.items():
        state.add(key, nbytes)
    return state


def placement_holds(state):
    return all(
        stable_key_hash(key) % state.parallelism == index
        for index, partition in enumerate(state._partitions)
        for key in partition
    )


@settings(max_examples=200, deadline=None)
@given(content=contents, p0=parallelisms, migrations=steps)
def test_keys_are_conserved_across_any_migration_sequence(content, p0, migrations):
    state = make_state(content, p0)
    for target, succeeds in migrations:
        plan = state.plan_migration(target)
        if succeeds:
            state.apply(plan)
            assert state.parallelism == target
        else:
            # the transfer dies mid-flight; rollback must be lossless
            state.apply(plan)
            state.rollback(plan)
            assert state.parallelism == plan.p_from
        assert state.items() == content
        assert state.total_bytes == sum(content.values())
        assert placement_holds(state)


@settings(max_examples=200, deadline=None)
@given(content=contents, p0=parallelisms, target=parallelisms)
def test_plan_accounting_matches_actual_relocation(content, p0, target):
    state = make_state(content, p0)
    plan = state.plan_migration(target)
    relocating = {
        key
        for key in content
        if stable_key_hash(key) % p0 != stable_key_hash(key) % target
    }
    assert set(plan.moved_keys) == relocating
    assert plan.moved_bytes == sum(content[key] for key in relocating)
    # planning is pure: the state is untouched
    assert state.items() == content
    assert state.parallelism == p0


@settings(max_examples=100, deadline=None)
@given(content=contents, p0=parallelisms)
def test_same_parallelism_migration_moves_nothing(content, p0):
    state = make_state(content, p0)
    plan = state.plan_migration(p0)
    assert plan.moved_keys == ()
    assert plan.moved_bytes == 0
    assert state.repartition(p0) == 0
