"""The pinned stateful-chaos scenario behind its byte-identity test.

``tests/golden/stateful/`` holds the ``export_run`` artifacts (manifest,
scaler decision trace, metrics) of this scenario: a stateful worker under
a service spike, with a migration-failure window that forces an
in-flight state migration to roll back, and a task crash that loses
un-checkpointed state and recovers via checkpoint + replay. The trace
carries every v3 migration branch (``migration-pending``,
``migration-failed``, ``migration-rolled-back``, ``migration-deferred``)
so the golden pins both the migration protocol's event ordering and the
trace schema emission.

``tests/test_stateful_determinism.py`` replays the scenario on every run
and diffs the export byte-for-byte against the golden copies.

Regenerating the goldens (only when a PR *intentionally* changes
behavior — say so in the PR description)::

    PYTHONPATH=src python tests/golden_stateful_scenario.py --write
"""

from __future__ import annotations

import os
import sys

GOLDEN_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "golden", "stateful"
)

#: the export files pinned by the golden copies
GOLDEN_FILES = ("manifest.json", "trace.jsonl", "metrics.jsonl")

#: bump alongside intentional behavior changes so stale goldens fail loudly
SCENARIO_SEED = 7
SCENARIO_DURATION = 60.0


def run_scenario(export_dir: str):
    """Run the pinned stateful-chaos scenario and export into ``export_dir``.

    Mirrors ``repro chaos --stateful --spike-at 12 --spike-duration 18
    --migration-fail-at 14 --crash-at 30 --checkpoint-interval 10
    --duration 60 --seed 7 --pin-wall-time``.
    """
    from repro.builder import PipelineBuilder
    from repro.engine.engine import EngineConfig, StreamProcessingEngine
    from repro.simulation.faults import MigrationFailure, ServiceSpike, TaskCrash
    from repro.simulation.randomness import Gamma
    from repro.workloads.rates import ConstantRate

    pipeline = (
        PipelineBuilder("golden-stateful")
        .source(lambda now, rng: rng.random(), rate=ConstantRate(400.0))
        .map("worker", lambda x: x, service=Gamma(0.004, 0.7), parallelism=(4, 1, 32))
        .sink()
        .constrain(bound=0.030, name="e2e")
        .stateful("worker")
        .inject(ServiceSpike(at=12.0, vertex="worker", factor=3.0, duration=18.0))
        .inject(MigrationFailure(at=14.0, duration=15.0, vertex="worker"))
        .inject(TaskCrash(at=30.0, vertex="worker", restart_delay=2.0))
        .actuate()
        .observe(export_dir=export_dir, pin_wall_time=True)
        .build()
    )
    engine = StreamProcessingEngine(
        EngineConfig(elastic=True, seed=SCENARIO_SEED, checkpoint_interval=10.0)
    )
    engine.submit(pipeline)
    engine.run(SCENARIO_DURATION)
    return engine.export_run()


def main(argv) -> int:
    if "--write" not in argv:
        print(__doc__)
        return 2
    paths = run_scenario(GOLDEN_DIR)
    for kind, path in sorted(paths.items()):
        print(f"wrote {kind}: {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
