"""Unit tests for the UDF model."""

import pytest

from repro.engine.udf import (
    Emit,
    FilterUDF,
    FlatMapUDF,
    MapUDF,
    SinkUDF,
    SourceUDF,
    UDF,
    WindowedAggregateUDF,
)
from repro.simulation.randomness import Deterministic, Gamma


class TestBaseUDF:
    def test_default_service_time_is_zero(self, rng):
        udf = MapUDF(lambda x: x)
        assert udf.service_time("x", rng) == 0.0

    def test_service_dist_sampled(self, rng):
        udf = MapUDF(lambda x: x, service_dist=Deterministic(0.005))
        assert udf.service_time("x", rng) == 0.005

    def test_gamma_service_varies(self, rng):
        udf = MapUDF(lambda x: x, service_dist=Gamma(0.01, 1.0))
        samples = {udf.service_time("x", rng) for _ in range(5)}
        assert len(samples) > 1

    def test_latency_mode_default_rr(self):
        assert MapUDF(lambda x: x).latency_mode == "RR"

    def test_process_abstract(self):
        with pytest.raises(NotImplementedError):
            UDF().process("x")

    def test_not_windowed_by_default(self):
        assert not MapUDF(lambda x: x).is_windowed


class TestMapFilterFlatMap:
    def test_map(self):
        assert list(MapUDF(lambda x: x * 2).process(3)) == [6]

    def test_filter_pass(self):
        assert list(FilterUDF(lambda x: x > 0).process(5)) == [5]

    def test_filter_drop(self):
        assert list(FilterUDF(lambda x: x > 0).process(-5)) == []

    def test_flatmap_multiple(self):
        udf = FlatMapUDF(lambda x: [x, x + 1])
        assert list(udf.process(1)) == [1, 2]

    def test_flatmap_empty(self):
        assert list(FlatMapUDF(lambda x: []).process(1)) == []


class TestSource:
    def test_generator_callable(self, rng):
        udf = SourceUDF(lambda now, rng: ("item", now))
        assert udf.generate(2.5, rng) == ("item", 2.5)

    def test_generate_requires_generator(self, rng):
        with pytest.raises(NotImplementedError):
            SourceUDF().generate(0.0, rng)

    def test_sources_do_not_consume(self):
        with pytest.raises(TypeError):
            SourceUDF(lambda now, rng: 1).process("x")


class TestSink:
    def test_counts_consumed(self):
        sink = SinkUDF()
        sink.process("a")
        sink.process("b")
        assert sink.consumed == 2

    def test_on_item_hook(self):
        seen = []
        sink = SinkUDF(on_item=seen.append)
        sink.process("x")
        assert seen == ["x"]

    def test_outputs_nothing(self):
        assert list(SinkUDF().process("x")) == []


class TestWindowedAggregate:
    def make(self, window=0.2, emit_empty=False):
        return WindowedAggregateUDF(
            window,
            create=list,
            add=lambda acc, x: acc + [x],
            finalize=lambda acc: [sum(acc)],
            emit_empty=emit_empty,
        )

    def test_is_windowed_and_rw(self):
        udf = self.make()
        assert udf.is_windowed
        assert udf.latency_mode == "RW"

    def test_process_emits_nothing(self):
        assert list(self.make().process(1)) == []

    def test_flush_finalizes_window(self):
        udf = self.make()
        udf.process(1)
        udf.process(2)
        assert udf.flush() == (3,)

    def test_flush_resets_window(self):
        udf = self.make()
        udf.process(1)
        udf.flush()
        udf.process(10)
        assert udf.flush() == (10,)

    def test_empty_window_emits_nothing(self):
        assert self.make().flush() == ()

    def test_emit_empty_forces_finalize(self):
        assert self.make(emit_empty=True).flush() == (0,)

    def test_consume_times_tracked_and_cleared(self):
        udf = self.make()
        udf.record_consume(1.0)
        udf.record_consume(1.5)
        assert udf.consume_times_and_clear() == [1.0, 1.5]
        assert udf.consume_times_and_clear() == []

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            self.make(window=0.0)


class TestEmit:
    def test_wraps_gate_and_payload(self):
        e = Emit(1, "data")
        assert e.gate == 1
        assert e.payload == "data"
