"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.simulation.events import Event
from repro.simulation.kernel import SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_events_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(3.0, fired.append, "last")
        sim.run()
        assert fired == ["early", "late", "last"]

    def test_simultaneous_events_fire_in_schedule_order(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == list(range(10))

    def test_clock_advances_to_event_time(self, sim):
        sim.schedule(5.5, lambda: None)
        sim.run()
        assert sim.now == 5.5

    def test_schedule_at_absolute_time(self, sim):
        fired = []
        sim.schedule_at(4.0, fired.append, "x")
        sim.run()
        assert fired == ["x"]
        assert sim.now == 4.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_into_past_rejected(self, sim):
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_zero_delay_fires_at_current_time(self, sim):
        times = []
        sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: times.append(sim.now)))
        sim.run()
        assert times == [1.0]

    def test_callback_args_passed_through(self, sim):
        received = []
        sim.schedule(1.0, lambda a, b: received.append((a, b)), 1, "two")
        sim.run()
        assert received == [(1, "two")]

    def test_fired_events_counter(self, sim):
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.fired_events == 5


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(1.0, fired.append, "nope")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()
        assert sim.fired_events == 0

    def test_cancel_from_earlier_event(self, sim):
        fired = []
        later = sim.schedule(2.0, fired.append, "later")
        sim.schedule(1.0, later.cancel)
        sim.run()
        assert fired == []

    def test_cancelled_events_not_counted_as_fired(self, sim):
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(1.0, lambda: None)
        drop.cancel()
        sim.run()
        assert sim.fired_events == 1
        assert keep.time == 1.0


class TestRunUntil:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "in")
        sim.schedule(5.0, fired.append, "out")
        sim.run(until=3.0)
        assert fired == ["in"]
        assert sim.now == 3.0

    def test_run_until_inclusive_boundary(self, sim):
        fired = []
        sim.schedule(3.0, fired.append, "edge")
        sim.run(until=3.0)
        assert fired == ["edge"]

    def test_resume_after_until(self, sim):
        fired = []
        sim.schedule(5.0, fired.append, "late")
        sim.run(until=3.0)
        sim.run(until=10.0)
        assert fired == ["late"]

    def test_until_advances_clock_without_events(self, sim):
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_max_events_limits_firing(self, sim):
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        sim.run(max_events=4)
        assert sim.fired_events == 4

    def test_step_fires_single_event(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        assert sim.step() is True
        assert fired == [1]
        assert sim.step() is True
        assert sim.step() is False

    def test_reentrant_run_rejected(self, sim):
        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run()


class TestPeriodic:
    def test_periodic_fires_at_interval(self, sim):
        times = []
        sim.every(2.0, lambda: times.append(sim.now))
        sim.run(until=7.0)
        assert times == [2.0, 4.0, 6.0]

    def test_periodic_start_delay(self, sim):
        times = []
        sim.every(2.0, lambda: times.append(sim.now), start_delay=1.0)
        sim.run(until=6.0)
        assert times == [1.0, 3.0, 5.0]

    def test_periodic_stop(self, sim):
        times = []
        proc = sim.every(1.0, lambda: times.append(sim.now))
        sim.schedule(2.5, proc.stop)
        sim.run(until=10.0)
        assert times == [1.0, 2.0]
        assert proc.stopped

    def test_stop_from_within_callback(self, sim):
        times = []
        proc = sim.every(1.0, lambda: (times.append(sim.now), proc.stop()))
        sim.run(until=10.0)
        assert times == [1.0]

    def test_nonpositive_interval_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.every(0.0, lambda: None)

    def test_events_scheduled_from_callbacks(self, sim):
        fired = []

        def chain(n):
            fired.append(n)
            if n < 5:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(1.0, chain, 1)
        sim.run()
        assert fired == [1, 2, 3, 4, 5]
        assert sim.now == 5.0


class TestEventObject:
    def test_sort_key_orders_by_time_then_seq(self):
        a = Event(1.0, 0, lambda: None, ())
        b = Event(1.0, 1, lambda: None, ())
        c = Event(0.5, 2, lambda: None, ())
        assert sorted([a, b, c]) == [c, a, b]

    def test_pending_events_counts_heap(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2


class TestEdgeCases:
    """Edge semantics the fault injector leans on."""

    def test_schedule_at_exactly_now_is_allowed(self, sim):
        fired = []
        sim.schedule(3.0, lambda: sim.schedule_at(sim.now, fired.append, "x"))
        sim.run()
        assert fired == ["x"]
        assert sim.now == 3.0

    def test_schedule_at_in_past_raises(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError, match="past"):
            sim.schedule_at(4.999, lambda: None)

    def test_same_instant_nested_scheduling_preserves_fifo(self, sim):
        # Events scheduled *from a callback* for the current instant fire
        # after already-pending same-instant events, in schedule order.
        order = []
        sim.schedule(1.0, lambda: (order.append("a"),
                                   sim.schedule(0.0, order.append, "d")))
        sim.schedule(1.0, order.append, "b")
        sim.schedule(1.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c", "d"]

    def test_cancel_same_instant_sibling(self, sim):
        # An event may cancel a sibling scheduled for the *same* instant
        # before it fires (the crash handler cancels pending completions).
        fired = []
        victim = sim.schedule(2.0, fired.append, "victim")
        sim.schedule(2.0, victim.cancel)
        # seq order: victim first, cancel second -> victim still fires
        sim.run()
        assert fired == ["victim"]

        killer_first = []
        sim2 = type(sim)()
        victim2 = [None]
        sim2.schedule(2.0, lambda: victim2[0].cancel())
        victim2[0] = sim2.schedule(2.0, killer_first.append, "victim")
        sim2.run()
        assert killer_first == []

    def test_cancelled_event_never_fires_after_resume(self, sim):
        fired = []
        event = sim.schedule(10.0, fired.append, "late")
        sim.run(until=5.0)
        event.cancel()
        sim.run()
        assert fired == []
        assert sim.fired_events == 0

    def test_cancel_after_firing_is_harmless(self, sim):
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        sim.run()
        event.cancel()  # no error, no double bookkeeping
        assert fired == ["x"]
        assert sim.fired_events == 1

    def test_run_until_boundary_event_fires_once(self, sim):
        fired = []
        sim.schedule(5.0, fired.append, "edge")
        sim.run(until=5.0)
        assert fired == ["edge"]
        sim.run(until=10.0)
        assert fired == ["edge"]
        assert sim.now == 10.0

    def test_periodic_stop_inside_last_firing_cancels_tail(self, sim):
        ticks = []
        proc = sim.every(1.0, lambda: ticks.append(sim.now))
        sim.schedule(3.5, proc.stop)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0, 3.0]
        assert sim.pending_events == 0

    def test_deep_zero_delay_chain_stays_at_same_instant(self, sim):
        # A long zero-delay cascade (restart -> rewire -> register ...)
        # must not advance the clock.
        depth = []

        def chain(n):
            depth.append(sim.now)
            if n:
                sim.schedule(0.0, chain, n - 1)

        sim.schedule(2.0, chain, 50)
        sim.run()
        assert depth == [2.0] * 51
