"""End-to-end tests of the figure harnesses on micro parameterizations.

These run each harness at a tiny scale (seconds of virtual time) to
exercise the full code path — engine construction, recording, derived
statistics, report rendering and CSV export — without asserting the
paper's shapes (the benchmark suite does that at a meaningful scale).
"""

import os
from dataclasses import replace

import pytest

from repro.experiments.fig3_motivation import Fig3Params, run_config
from repro.experiments.fig6_primetester import Fig6Params, run_baseline, run_elastic
from repro.experiments.fig8_twitter import Fig8Params
from repro.experiments.fig8_twitter import run as run_fig8
from repro.workloads.primetester import PrimeTesterParams
from repro.workloads.twitter_job import TwitterSentimentParams


def micro_primetester(**overrides):
    base = dict(
        n_sources=2,
        n_testers=2,
        n_sinks=1,
        tester_min=1,
        tester_max=8,
        warmup_rate=20.0,
        peak_rate=80.0,
        increment_steps=2,
        step_duration=4.0,
        plateau_steps=1,
        tester_service_mean=0.002,
        tester_service_cv=0.5,
    )
    base.update(overrides)
    return PrimeTesterParams(**base)


@pytest.fixture(scope="module")
def fig3_config_result():
    params = Fig3Params(workload=micro_primetester(tester_min=2, tester_max=2),
                        recording_interval=2.0)
    return run_config("Nephele-20ms", params), params


class TestFig3Harness:
    def test_rows_recorded(self, fig3_config_result):
        result, params = fig3_config_result
        assert len(result.rows) >= 5

    def test_statistics_derived(self, fig3_config_result):
        result, _ = fig3_config_result
        assert result.warmup_latency is not None
        assert result.plateau_effective_rate > 0

    def test_all_config_names_buildable(self):
        from repro.experiments.fig3_motivation import CONFIG_NAMES, _engine_config

        params = Fig3Params()
        for name in CONFIG_NAMES:
            assert _engine_config(name, params) is not None
        with pytest.raises(ValueError):
            _engine_config("bogus", params)

    def test_report_and_csv(self, tmp_path, fig3_config_result):
        from repro.experiments.fig3_motivation import Fig3Result

        result, params = fig3_config_result
        figure = Fig3Result(params)
        figure.configs["Nephele-20ms"] = result
        text = figure.report()
        assert "Nephele-20ms" in text
        path = figure.series_csv(os.path.join(tmp_path, "fig3.csv"))
        assert os.path.getsize(path) > 0


@pytest.fixture(scope="module")
def fig6_micro_params():
    return Fig6Params(workload=micro_primetester(), baseline_testers=2,
                      recording_interval=2.0, sweep_bounds=(0.050,))


class TestFig6Harness:
    def test_elastic_run(self, fig6_micro_params):
        result = run_elastic(fig6_micro_params)
        assert result.fulfillment is not None
        assert result.task_seconds > 0
        assert result.pt_task_seconds > 0
        assert result.pt_task_seconds < result.task_seconds

    def test_baseline_run(self, fig6_micro_params):
        result = run_baseline(fig6_micro_params)
        assert result.fulfillment is None  # no constraint submitted
        assert result.min_parallelism == result.max_parallelism == 2

    def test_report_renders(self, fig6_micro_params):
        from repro.experiments.fig6_primetester import Fig6Result

        figure = Fig6Result(fig6_micro_params)
        figure.elastic = run_elastic(fig6_micro_params)
        figure.baseline = run_baseline(fig6_micro_params)
        text = figure.report()
        assert "elastic-20ms" in text
        assert "baseline-16KiB" in text
        assert "series" in text  # sparkline panel

    def test_csv_export(self, tmp_path, fig6_micro_params):
        from repro.experiments.fig6_primetester import Fig6Result

        figure = Fig6Result(fig6_micro_params)
        figure.elastic = run_elastic(fig6_micro_params)
        path = figure.series_csv(os.path.join(tmp_path, "fig6.csv"))
        with open(path) as f:
            assert "pt_parallelism" in f.readline()


@pytest.fixture(scope="module")
def fig8_micro_result():
    workload = TwitterSentimentParams(
        base_rate=40.0,
        period=40.0,
        bursts=((50.0, 10.0, 2.0),),
        topic_bursts=((50.0, 60.0, 0, 0.8),),
        ht_max=10,
        filter_max=10,
        sentiment_max=15,
    )
    params = Fig8Params(workload=workload, duration=80.0, recording_interval=4.0)
    return run_fig8(params)


class TestFig8Harness:
    def test_fulfillment_tracked_for_both_constraints(self, fig8_micro_result):
        assert len(fig8_micro_result.fulfillment) == 2
        assert all(0.0 <= r <= 1.0 for r in fig8_micro_result.fulfillment.values())

    def test_parallelism_ranges_present(self, fig8_micro_result):
        assert set(fig8_micro_result.parallelism_ranges) == {
            "HotTopics", "Filter", "Sentiment",
        }

    def test_burst_scaleup_computed(self, fig8_micro_result):
        assert fig8_micro_result.sentiment_burst_scaleup is not None

    def test_report_renders(self, fig8_micro_result):
        text = fig8_micro_result.report()
        assert "constraint-1(hot-topics)" in text
        assert "tweets/s" in text

    def test_csv_export(self, tmp_path, fig8_micro_result):
        path = fig8_micro_result.series_csv(os.path.join(tmp_path, "fig8.csv"))
        with open(path) as f:
            header = f.readline()
        assert "p_sentiment" in header
        assert "cpu_utilization" in header

    def test_cpu_utilization_sane(self, fig8_micro_result):
        assert 0.0 < fig8_micro_result.mean_cpu_utilization < 1.0
