"""Focused behavioural tests of the runtime task model."""

import pytest

from repro.engine.engine import EngineConfig, StreamProcessingEngine
from repro.engine.udf import SinkUDF, SourceUDF, WindowedAggregateUDF
from repro.graphs.job_graph import JobGraph
from repro.simulation.randomness import Deterministic
from repro.workloads.rates import ConstantRate

from conftest import make_linear_job, run_linear


def windowed_job(window=0.2, rate=100.0):
    """Source -> windowed counter -> Sink."""
    graph = JobGraph("windowed")
    src = graph.add_vertex("Src", lambda: SourceUDF(lambda now, rng: 1))

    def make_window():
        return WindowedAggregateUDF(
            window,
            create=lambda: 0,
            add=lambda acc, x: acc + 1,
            finalize=lambda acc: [acc],
        )

    win = graph.add_vertex("Win", make_window)
    sink = graph.add_vertex("Snk", lambda: SinkUDF())
    graph.connect(src, win)
    graph.connect(win, sink)
    src.rate_profile = ConstantRate(rate, jitter="deterministic")
    return graph


class TestWindowedTasks:
    def run_windowed(self, window=0.2, rate=100.0, duration=20.0):
        engine = StreamProcessingEngine(EngineConfig(seed=2))
        graph = windowed_job(window, rate)
        engine.submit(graph)
        engine.run(duration)
        return engine

    def test_window_emits_counts(self):
        engine = self.run_windowed()
        sink = engine.runtime.vertex("Snk").tasks[0].udf
        assert sink.consumed > 0

    def test_aggregate_counts_conserve_items(self):
        engine = self.run_windowed(duration=20.0)
        win_task = engine.runtime.vertex("Win").tasks[0]
        consumed_inputs = win_task.items_processed
        # Sum of the emitted window counts equals the inputs folded into
        # closed windows (the still-open window may hold a remainder).
        sink_payload_total = 0
        for t in engine.runtime.vertex("Snk").tasks:
            pass
        # inspect sink via probe: recompute from emitted items
        emitted_counts = win_task.items_emitted
        assert emitted_counts > 0
        assert consumed_inputs >= emitted_counts  # many-to-one aggregation

    def test_rw_latency_mean_about_half_window(self):
        engine = self.run_windowed(window=0.2, rate=200.0, duration=30.0)
        vs = engine.last_summary.vertex("Win")
        # items arrive uniformly; flush at window end -> mean wait ~ w/2
        assert 0.05 <= vs.task_latency <= 0.15

    def test_rw_latency_scales_with_window(self):
        small = self.run_windowed(window=0.1, duration=30.0)
        large = self.run_windowed(window=0.4, duration=30.0)
        assert (
            large.last_summary.vertex("Win").task_latency
            > small.last_summary.vertex("Win").task_latency * 2
        )

    def test_window_output_created_at_is_mean_of_inputs(self):
        engine = StreamProcessingEngine(EngineConfig(seed=2))
        graph = windowed_job(window=0.2, rate=100.0)
        samples = []
        engine.add_vertex_probe("Snk", lambda latency, payload: samples.append(latency))
        engine.submit(graph)
        engine.run(10.0)
        assert samples
        mean = sum(samples) / len(samples)
        # e2e from mean input creation to sink: ~ half window + shipping
        assert 0.08 <= mean <= 0.2


class TestSourceThrottling:
    def test_attempted_rate_reached_when_unloaded(self):
        engine = run_linear(duration=10.0, source_rate=300.0, service_mean=0.001)
        emitted = sum(t.items_processed for t in engine.runtime.vertex("Source").tasks)
        assert emitted == pytest.approx(3000, rel=0.05)

    def test_effective_rate_capped_by_shipping_overhead(self):
        config = EngineConfig(per_batch_overhead=0.005, per_item_overhead=0.0)
        # instant flush: 5 ms CPU per emitted item -> max 200/s
        engine = run_linear(config, duration=10.0, source_rate=1000.0, service_mean=0.0)
        emitted = sum(t.items_processed for t in engine.runtime.vertex("Source").tasks)
        assert emitted == pytest.approx(2000, rel=0.15)

    def test_source_survives_and_recovers_from_backpressure(self):
        from repro.workloads.rates import PiecewiseRate
        from repro.engine.udf import MapUDF
        from repro.graphs.job_graph import JobGraph
        from repro.simulation.randomness import Gamma

        graph = JobGraph("recover")
        src = graph.add_vertex("Src", lambda: SourceUDF(lambda now, rng: 0))
        worker = graph.add_vertex(
            "W", lambda: MapUDF(lambda x: x, service_dist=Deterministic(0.01))
        )
        sink = graph.add_vertex("Snk", lambda: SinkUDF())
        graph.connect(src, worker)
        graph.connect(worker, sink)
        # overload (500/s vs 100/s capacity), then light load again
        src.rate_profile = PiecewiseRate([(0.0, 500.0), (20.0, 20.0)])
        config = EngineConfig(queue_capacity=32, channel_capacity=8, seed=5)
        engine = StreamProcessingEngine(config)
        engine.submit(graph)
        engine.run(20.0)
        during_overload = sum(t.items_processed for t in engine.runtime.vertex("Src").tasks)
        engine.run(40.0)
        after = sum(t.items_processed for t in engine.runtime.vertex("Src").tasks)
        # the source kept emitting after the overload ended (~20/s x 40 s)
        assert after - during_overload == pytest.approx(800, rel=0.25)


class TestHeterogeneousWorkers:
    def test_speed_factor_scales_service(self):
        config = EngineConfig(worker_speed_factors=(0.5,), slots_per_worker=16)
        engine = run_linear(config, duration=15.0, source_rate=50.0, service_mean=0.004)
        vs = engine.last_summary.vertex("Worker")
        # all workers at half speed -> measured service ~ 8 ms
        assert vs.service_mean == pytest.approx(0.008, rel=0.2)

    def test_hot_spot_worker_creates_lagging_task(self):
        # One task per worker (slots=1); worker #1 hosts the first Worker
        # task (worker #0 gets the Source) and runs at quarter speed.
        config = EngineConfig(
            worker_speed_factors=(1.0, 0.25, 1.0, 1.0, 1.0, 1.0),
            slots_per_worker=1,
            queue_capacity=64,
        )
        engine = run_linear(
            config, duration=30.0, source_rate=400.0, service_mean=0.008, n_workers=4
        )
        tasks = engine.runtime.vertex("Worker").tasks
        counts = sorted(t.items_processed for t in tasks)
        # The slow task lags (capacity-limited)...
        assert counts[0] < 0.8 * counts[-1]
        # ...and, worse, its backpressure throttles the whole dataflow:
        # even the fast peers process far less than their offered 100/s
        # (the hot-spot cascade the paper's homogeneity assumption avoids).
        assert counts[-1] < 0.6 * 100.0 * 30.0

    def test_homogeneous_default(self):
        engine = run_linear(duration=5.0)
        for task in engine.runtime.all_tasks():
            assert task.speed_factor == 1.0


class TestOverheadAccounting:
    def test_busy_time_includes_service_and_overhead(self):
        config = EngineConfig(per_batch_overhead=0.001, per_item_overhead=0.0)
        engine = run_linear(config, duration=10.0, source_rate=100.0, service_mean=0.002)
        worker = engine.runtime.vertex("Worker").tasks[0]
        # ~500 items/task: 2 ms service + 1 ms ship each ~ 1.5 s busy
        expected = worker.items_processed * 0.003
        assert worker.busy_time == pytest.approx(expected, rel=0.2)

    def test_zero_overhead_config(self):
        config = EngineConfig(per_batch_overhead=0.0, per_item_overhead=0.0)
        engine = run_linear(config, duration=10.0, source_rate=100.0, service_mean=0.002)
        worker = engine.runtime.vertex("Worker").tasks[0]
        assert worker.busy_time == pytest.approx(worker.items_processed * 0.002, rel=0.1)
