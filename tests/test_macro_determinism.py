"""Byte-identity regression wall for the macro (TwitterSentiment) scenario.

Replays the pinned golden macro scenario
(``tests/golden_macro_scenario.py``) — a short elastic TwitterSentiment
run with a mid-run load burst and topic burst — and diffs its
``export_run`` artifacts byte-for-byte against the committed copies in
``tests/golden/macro/``. This wall pins the vectorized engine fast path:
any change to the source→channel→task event ordering, block-sampled RNG
stream consumption or deferred reporter statistics shows up as a diff.

On top of the golden replay and the double-run check, the scenario is
replayed with ``vectorized_sampling=False`` — the scalar engine must
export the same bytes, proving vectorization only changes speed.

Intentional behavior changes must regenerate the goldens via
``PYTHONPATH=src python tests/golden_macro_scenario.py --write`` and say
so in the PR description.
"""

from __future__ import annotations

import json
import os

import pytest

from golden_macro_scenario import GOLDEN_DIR, GOLDEN_FILES, run_scenario


def _read_bytes(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


def _first_diff_line(golden: bytes, fresh: bytes) -> str:
    golden_lines = golden.splitlines()
    fresh_lines = fresh.splitlines()
    for index, (g, f) in enumerate(zip(golden_lines, fresh_lines)):
        if g != f:
            return (
                f"first diff at line {index + 1}:\n"
                f"  golden: {g[:200]!r}\n"
                f"  fresh:  {f[:200]!r}"
            )
    return (
        f"line counts differ: golden={len(golden_lines)} fresh={len(fresh_lines)}"
    )


@pytest.fixture(scope="module")
def fresh_export(tmp_path_factory):
    """One replay of the macro golden scenario, shared module-wide."""
    export_dir = str(tmp_path_factory.mktemp("macro_golden_replay"))
    run_scenario(export_dir)
    return export_dir


class TestMacroGoldenByteIdentity:
    def test_golden_files_exist(self):
        for name in GOLDEN_FILES:
            assert os.path.isfile(os.path.join(GOLDEN_DIR, name)), (
                f"missing golden file {name}; regenerate with "
                f"PYTHONPATH=src python tests/golden_macro_scenario.py --write"
            )

    @pytest.mark.parametrize("name", GOLDEN_FILES)
    def test_replay_is_byte_identical(self, fresh_export, name):
        golden = _read_bytes(os.path.join(GOLDEN_DIR, name))
        fresh = _read_bytes(os.path.join(fresh_export, name))
        assert fresh == golden, (
            f"{name} diverged from the golden copy "
            f"({_first_diff_line(golden, fresh)})"
        )

    def test_golden_pins_real_elastic_scaling(self):
        """The pinned run actually scales through the burst."""
        with open(os.path.join(GOLDEN_DIR, "trace.jsonl")) as handle:
            records = [json.loads(line) for line in handle if line.strip()]
        applied = [r for r in records if r.get("p_applied")]
        assert applied, "golden trace shows no applied scaling decisions"
        with open(os.path.join(GOLDEN_DIR, "manifest.json")) as handle:
            manifest = json.load(handle)
        final = manifest["final_parallelism"]
        assert final["Sentiment"] > 4, "burst never scaled Sentiment up"
        assert manifest["virtual_time_s"] == 40.0
        assert len(manifest["constraints"]) == 2


class TestMacroVectorizationIdentity:
    @pytest.mark.parametrize("name", GOLDEN_FILES)
    def test_scalar_engine_exports_the_same_bytes(self, fresh_export, tmp_path, name):
        """vectorized_sampling=False replays to identical artifacts."""
        scalar = str(tmp_path / "scalar")
        run_scenario(scalar, vectorized=False)
        a = _read_bytes(os.path.join(fresh_export, name))
        b = _read_bytes(os.path.join(scalar, name))
        assert a == b, (
            f"{name} differs between vectorized and scalar engines "
            f"({_first_diff_line(a, b)})"
        )


class TestMacroDoubleRunIdentity:
    def test_two_replays_are_byte_identical(self, fresh_export, tmp_path):
        """Same-seed determinism: two in-process runs export identical bytes."""
        second = str(tmp_path / "second")
        run_scenario(second)
        for name in GOLDEN_FILES:
            a = _read_bytes(os.path.join(fresh_export, name))
            b = _read_bytes(os.path.join(second, name))
            assert a == b, f"{name} differs between two same-seed runs"
