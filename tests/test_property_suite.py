"""Cross-module property-based tests (hypothesis).

These complement the per-module property tests with invariants that span
components: the simulator's global ordering, model/optimizer consistency,
trace-profile interpolation, and the Eq. 5 scaling law.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.latency_model import INFINITY, VertexModel, kingman_waiting_time
from repro.simulation.kernel import Simulator
from repro.workloads.rates import PiecewiseRate, step_phase_segments
from repro.workloads.traces import TraceRateProfile


class TestSimulatorOrdering:
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_events_fire_in_nondecreasing_time(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        delays=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=40),
        cutoff=st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_run_until_fires_exactly_the_due_events(self, delays, cutoff):
        sim = Simulator()
        count = [0]
        for delay in delays:
            sim.schedule(delay, lambda: count.__setitem__(0, count[0] + 1))
        sim.run(until=cutoff)
        assert count[0] == sum(1 for d in delays if d <= cutoff)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_random_cancellations_respected(self, seed):
        rng = random.Random(seed)
        sim = Simulator()
        fired = []
        events = [
            sim.schedule(rng.uniform(0, 10), lambda i=i: fired.append(i))
            for i in range(20)
        ]
        cancelled = {i for i in range(20) if rng.random() < 0.5}
        for i in cancelled:
            events[i].cancel()
        sim.run()
        assert set(fired) == set(range(20)) - cancelled


class TestLatencyModelLaws:
    @given(
        lam=st.floats(min_value=1.0, max_value=300.0),
        s=st.floats(min_value=0.0005, max_value=0.02),
        var=st.floats(min_value=0.05, max_value=2.0),
        p=st.integers(min_value=1, max_value=12),
        factor=st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=100, deadline=None)
    def test_eq5_scaling_law(self, lam, s, var, p, factor):
        """Doubling p at fixed total load halves the modelled utilization."""
        model = VertexModel("v", p, 1, 10_000, lam, s, var)
        assert model.utilization_at(p * factor) == pytest.approx(
            model.utilization_at(p) / factor
        )

    @given(
        lam=st.floats(min_value=1.0, max_value=300.0),
        s=st.floats(min_value=0.0005, max_value=0.02),
        var=st.floats(min_value=0.05, max_value=2.0),
        p=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=100, deadline=None)
    def test_model_at_current_p_equals_fitted_kingman(self, lam, s, var, p):
        model = VertexModel("v", p, 1, 10_000, lam, s, var, fitting_coefficient=2.0)
        direct = kingman_waiting_time(lam, s, 1.0, 1.0)  # cv's folded into var
        # Reconstruct with the model's variability convention:
        rho = lam * s
        if rho >= 1.0:
            assert model.waiting_time(p) == INFINITY
        else:
            expected = 2.0 * (rho * s / (1 - rho)) * var
            assert model.waiting_time(p) == pytest.approx(expected, rel=1e-9)

    @given(
        lam=st.floats(min_value=1.0, max_value=300.0),
        s=st.floats(min_value=0.0005, max_value=0.02),
        p=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_min_stable_parallelism_is_minimal(self, lam, s, p):
        model = VertexModel("v", p, 1, 10_000, lam, s, 1.0)
        p_min = model.min_stable_parallelism()
        assert model.utilization_at(p_min) < 1.0
        if p_min > 1:
            assert model.utilization_at(p_min - 1) >= 1.0


class TestRateProfiles:
    @given(
        warm=st.floats(min_value=1.0, max_value=100.0),
        peak_mult=st.floats(min_value=1.5, max_value=20.0),
        steps=st.integers(min_value=1, max_value=10),
        duration=st.floats(min_value=1.0, max_value=60.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_phase_plan_symmetry(self, warm, peak_mult, steps, duration):
        """The plan starts and ends at the warm-up rate; peak is hit."""
        segments = step_phase_segments(warm, warm * peak_mult, steps, duration)
        profile = PiecewiseRate(segments)
        assert profile.rate(0.0) == pytest.approx(warm)
        assert profile.rate(profile.end_time + 1.0) == pytest.approx(warm)
        rates = [rate for _, rate in segments]
        assert max(rates) == pytest.approx(warm * peak_mult)

    @given(
        points=st.lists(
            st.floats(min_value=0.0, max_value=1000.0), min_size=2, max_size=20
        ),
        compression=st.floats(min_value=0.1, max_value=100.0),
        t=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_trace_interpolation_bounded(self, points, compression, t):
        trace = [(float(i), rate) for i, rate in enumerate(points)]
        profile = TraceRateProfile(trace, compression=compression)
        value = profile.rate(t)
        assert min(points) - 1e-9 <= value <= max(points) + 1e-9

    @given(
        rate0=st.floats(min_value=0.0, max_value=100.0),
        rate1=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_trace_midpoint_is_mean(self, rate0, rate1):
        profile = TraceRateProfile([(0.0, rate0), (2.0, rate1)])
        assert profile.rate(1.0) == pytest.approx((rate0 + rate1) / 2.0, abs=1e-9)


class TestEndToEndDeterminism:
    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=8, deadline=None)
    def test_identical_runs_for_identical_seeds(self, seed):
        from repro.engine.engine import EngineConfig, StreamProcessingEngine
        from conftest import make_linear_job

        def run_once():
            engine = StreamProcessingEngine(EngineConfig(seed=seed))
            engine.submit(make_linear_job(source_rate=150.0, service_cv=0.8,
                                          jitter="exponential"))
            engine.run(6.0)
            worker = engine.runtime.vertex("Worker").tasks[0]
            return (engine.sim.fired_events, worker.items_processed, worker.busy_time)

        assert run_once() == run_once()
