"""Property-based tests for vectorized block sampling and record items.

The vectorization PR's correctness contract is *bit-identity*: block
pre-draws may change when variates are pulled from a stream, never which
variates come out. Hypothesis drives arbitrary seeds and block-size
splits against the scalar reference, and checks that record-struct items
round-trip equal to the objects they replace.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.items import RECORD_FIELDS, DataItem
from repro.engine.udf import UDF
from repro.simulation.randomness import (
    DEFAULT_BLOCK_SIZE,
    BlockSampler,
    Deterministic,
    Distribution,
    Exponential,
    Gamma,
    LogNormal,
    RandomStreams,
    Uniform,
    block_uniforms,
)

#: the distributions with a vectorized sample_block override, plus two
#: that exercise the scalar fallback — all must satisfy the same contract
DISTRIBUTIONS = [
    Deterministic(0.004),
    Exponential(0.01),
    Uniform(0.001, 0.009),
    Gamma(0.004, 0.7),
    LogNormal(0.004, 1.2),
]

_seeds = st.integers(0, 2**32 - 1)
# chunk sequences cross the numpy cutover (>=32) and stay scalar (<32)
_splits = st.lists(st.integers(1, 80), min_size=1, max_size=8)


def _scalar_reference(seed, n):
    rng = random.Random(seed)
    return [rng.random() for _ in range(n)]


# ----------------------------------------------------------------------
# block_uniforms: the one primitive everything vectorized rests on
# ----------------------------------------------------------------------


class TestBlockUniforms:
    @given(seed=_seeds, splits=_splits)
    def test_any_split_matches_the_scalar_sequence(self, seed, splits):
        """Blocks of any sizes concatenate to the scalar-only sequence."""
        rng = random.Random(seed)
        drawn = []
        for size in splits:
            drawn.extend(block_uniforms(rng, size))
        assert drawn == _scalar_reference(seed, sum(splits))

    @given(seed=_seeds, head=st.integers(1, 64), tail=st.integers(1, 64))
    def test_interleaved_block_and_scalar_draws(self, seed, head, tail):
        """A block draw leaves the stream exactly where scalars would."""
        rng = random.Random(seed)
        drawn = block_uniforms(rng, head)
        drawn.append(rng.random())  # scalar draw in between
        drawn.extend(block_uniforms(rng, tail))
        assert drawn == _scalar_reference(seed, head + 1 + tail)

    @given(seed=_seeds)
    def test_zero_and_negative_counts_consume_nothing(self, seed):
        rng = random.Random(seed)
        assert block_uniforms(rng, 0) == []
        assert block_uniforms(rng, -3) == []
        assert rng.random() == random.Random(seed).random()

    def test_non_mt_random_falls_back_to_scalar(self):
        class Counting(random.Random):
            calls = 0

            def random(self):
                type(self).calls += 1
                return super().random()

        rng = Counting(5)
        reference = _scalar_reference(5, 40)
        # SystemRandom-style subclasses keep working via the scalar loop
        assert block_uniforms(rng, 40) == pytest.approx(reference)


# ----------------------------------------------------------------------
# Distribution.sample_block / BlockSampler: same contract, higher level
# ----------------------------------------------------------------------


class TestSampleBlock:
    @pytest.mark.parametrize("dist", DISTRIBUTIONS, ids=repr)
    @given(seed=_seeds, n=st.integers(0, 100))
    @settings(max_examples=30)
    def test_block_matches_scalar_samples(self, dist, seed, n):
        scalar_rng = random.Random(seed)
        block_rng = random.Random(seed)
        expected = [dist.sample(scalar_rng) for _ in range(n)]
        assert dist.sample_block(block_rng, n) == expected
        # both consumers leave the stream at the same point
        assert block_rng.getstate() == scalar_rng.getstate()

    @pytest.mark.parametrize("dist", DISTRIBUTIONS, ids=repr)
    @given(seed=_seeds, block_size=st.integers(1, 70), n=st.integers(1, 150))
    @settings(max_examples=30)
    def test_block_sampler_pops_the_scalar_sequence(self, dist, seed, block_size, n):
        """Popping n variates == n scalar draws, for any block size."""
        scalar_rng = random.Random(seed)
        expected = [dist.sample(scalar_rng) for _ in range(n)]
        sampler = BlockSampler(dist, random.Random(seed), block_size)
        assert [sampler.next() for _ in range(n)] == expected

    @given(seed=_seeds)
    def test_pending_counts_predrawn_variates(self, seed):
        sampler = BlockSampler(Exponential(0.01), random.Random(seed), 8)
        assert sampler.pending() == 0
        sampler.next()
        assert sampler.pending() == 7

    def test_invalid_block_size_rejected(self):
        with pytest.raises(ValueError):
            BlockSampler(Exponential(0.01), random.Random(1), 0)

    @given(seed=_seeds)
    def test_streams_same_name_same_sequence(self, seed):
        """RandomStreams naming, not creation order, fixes the stream."""
        first = RandomStreams(seed)
        first.get("other")  # creation order must not matter
        second = RandomStreams(seed)
        a = block_uniforms(first.get("service:x"), 50)
        b = [second.get("service:x").random() for _ in range(50)]
        assert a == b


# ----------------------------------------------------------------------
# UDF service-sampler fast path
# ----------------------------------------------------------------------


class _CustomService(UDF):
    def service_time(self, payload, rng):
        return rng.random() * rng.random()

    def process(self, payload):
        return (payload,)


class _PlainUDF(UDF):
    def process(self, payload):
        return (payload,)


class TestServiceSamplerFastPath:
    @pytest.mark.parametrize("dist", DISTRIBUTIONS, ids=repr)
    @given(seed=_seeds, n=st.integers(1, 120))
    @settings(max_examples=20)
    def test_sampler_matches_service_time(self, dist, seed, n):
        udf = _PlainUDF(service_dist=dist)
        scalar_rng = random.Random(seed)
        expected = [udf.service_time(None, scalar_rng) for _ in range(n)]
        sampler = udf.make_service_sampler(random.Random(seed), block_size=16)
        assert sampler is not None
        assert [sampler(None) for _ in range(n)] == expected

    def test_custom_service_time_disables_the_fast_path(self):
        udf = _CustomService(service_dist=Exponential(0.01))
        assert udf.make_service_sampler(random.Random(1)) is None

    def test_deterministic_sampler_consumes_no_draws(self):
        udf = _PlainUDF(service_dist=Deterministic(0.002))
        rng = random.Random(9)
        sampler = udf.make_service_sampler(rng)
        assert [sampler(None) for _ in range(5)] == [0.002] * 5
        assert rng.getstate() == random.Random(9).getstate()


# ----------------------------------------------------------------------
# record-struct items
# ----------------------------------------------------------------------

_payloads = st.one_of(st.integers(), st.floats(allow_nan=False), st.text(max_size=8))
_maybe_time = st.one_of(st.none(), st.floats(0, 1e6, allow_nan=False))


class TestDataItemRecords:
    @given(payload=_payloads, created_at=st.floats(0, 1e6, allow_nan=False),
           size=st.integers(1, 1 << 20), emitted_at=_maybe_time,
           enqueued_at=_maybe_time, sampled=st.booleans())
    def test_record_round_trip_preserves_every_field(
        self, payload, created_at, size, emitted_at, enqueued_at, sampled
    ):
        item = DataItem(payload, created_at, size, sampled)
        item.emitted_at = emitted_at
        item.enqueued_at = enqueued_at
        clone = DataItem.from_record(item.to_record())
        for field in RECORD_FIELDS:
            assert getattr(clone, field) == getattr(item, field)

    def test_record_layout_matches_slots(self):
        assert RECORD_FIELDS == DataItem.__slots__

    def test_hop_copy_resets_per_hop_fields_records_do_not(self):
        item = DataItem("p", 1.0, 64)
        item.emitted_at = 2.0
        item.enqueued_at = 3.0
        hop = item.hop_copy()
        assert hop.emitted_at is None and hop.enqueued_at is None
        rec = DataItem.from_record(item.to_record())
        assert rec.emitted_at == 2.0 and rec.enqueued_at == 3.0
