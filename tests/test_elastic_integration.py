"""Integration tests: the reactive scaling strategy end to end."""

import pytest

from repro.core.constraints import LatencyConstraint
from repro.engine.engine import EngineConfig, StreamProcessingEngine
from repro.engine.udf import MapUDF, SinkUDF, SourceUDF
from repro.graphs.job_graph import JobGraph
from repro.graphs.sequences import JobSequence
from repro.simulation.randomness import Gamma
from repro.workloads.rates import ConstantRate, PiecewiseRate


def elastic_job(profile, service_mean=0.004, p_init=4, p_min=1, p_max=32):
    graph = JobGraph("elastic")
    src = graph.add_vertex("Src", lambda: SourceUDF(lambda now, rng: rng.random()))
    worker = graph.add_vertex(
        "Worker",
        lambda: MapUDF(lambda x: x, service_dist=Gamma(service_mean, 0.7)),
        parallelism=p_init, min_parallelism=p_min, max_parallelism=p_max,
    )
    sink = graph.add_vertex("Snk", lambda: SinkUDF())
    graph.connect(src, worker)
    graph.connect(worker, sink)
    src.rate_profile = profile
    js = JobSequence.from_names(graph, ["Worker"], leading_edge=True, trailing_edge=True)
    return graph, js


def elastic_engine(graph, constraint, seed=5):
    config = EngineConfig.nephele_adaptive(elastic=True, seed=seed)
    engine = StreamProcessingEngine(config)
    engine.submit(graph, [constraint])
    return engine


class TestReactiveScaling:
    def test_scales_down_under_light_load(self):
        graph, js = elastic_job(ConstantRate(50.0), p_init=8)
        engine = elastic_engine(graph, LatencyConstraint(js, 0.030))
        engine.run(60.0)
        # 50 items/s need ~0.2 servers; Rebalance should shrink far below 8.
        assert engine.parallelism("Worker") <= 3

    def test_scales_up_when_load_rises(self):
        profile = PiecewiseRate([(0.0, 50.0), (30.0, 1200.0)])
        graph, js = elastic_job(profile, p_init=2)
        engine = elastic_engine(graph, LatencyConstraint(js, 0.030))
        engine.run(28.0)
        low_p = engine.parallelism("Worker")
        engine.run(60.0)
        high_p = engine.parallelism("Worker")
        # 1200/s x 4 ms = 4.8 busy servers minimum
        assert high_p >= 5
        assert high_p > low_p

    def test_bottleneck_resolution_doubles(self):
        profile = PiecewiseRate([(0.0, 1500.0)])
        graph, js = elastic_job(profile, p_init=2)
        engine = elastic_engine(graph, LatencyConstraint(js, 0.050))
        engine.run(40.0)
        # p=2 gives capacity 500/s against 1500/s offered: deep bottleneck;
        # ResolveBottlenecks must have fired and scaled out repeatedly.
        assert engine.parallelism("Worker") >= 6
        assert engine.scaler is not None
        assert any(e.reason == "bottleneck" for e in engine.scaler.events)

    def test_constraint_mostly_fulfilled_steady_state(self):
        graph, js = elastic_job(ConstantRate(400.0), p_init=4)
        constraint = LatencyConstraint(js, 0.030)
        engine = elastic_engine(graph, constraint)
        engine.run(120.0)
        tracker = engine.tracker_for(constraint)
        assert tracker.fulfillment_ratio >= 0.8

    def test_inactivity_window_after_scale_up(self):
        profile = PiecewiseRate([(0.0, 50.0), (20.0, 1200.0)])
        graph, js = elastic_job(profile, p_init=2)
        engine = elastic_engine(graph, LatencyConstraint(js, 0.030))
        engine.run(90.0)
        scaler = engine.scaler
        assert scaler.skipped_inactive > 0

    def test_unresolvable_bottleneck_logged(self):
        profile = PiecewiseRate([(0.0, 1500.0)])
        graph, js = elastic_job(profile, p_init=2, p_max=3)
        engine = elastic_engine(graph, LatencyConstraint(js, 0.030))
        engine.run(40.0)
        assert engine.scaler.unresolvable_log

    def test_scaling_events_have_applied_deltas(self):
        profile = PiecewiseRate([(0.0, 50.0), (20.0, 900.0)])
        graph, js = elastic_job(profile, p_init=2)
        engine = elastic_engine(graph, LatencyConstraint(js, 0.030))
        engine.run(60.0)
        events = engine.scaler.events
        assert events
        assert any(
            any(delta > 0 for delta in event.applied.values()) for event in events
        )

    def test_non_elastic_engine_never_scales(self):
        graph, js = elastic_job(ConstantRate(50.0), p_init=8)
        config = EngineConfig.nephele_adaptive(elastic=False)
        engine = StreamProcessingEngine(config)
        engine.submit(graph, [LatencyConstraint(js, 0.030)])
        engine.run(60.0)
        assert engine.parallelism("Worker") == 8
        assert engine.scaler is None


class TestDeterminism:
    """Same seed, same config, same load => bit-identical scaling runs."""

    def _run_fingerprint(self, seed=5, duration=70.0):
        profile = PiecewiseRate([(0.0, 100.0), (25.0, 900.0), (50.0, 200.0)])
        graph, js = elastic_job(profile, p_init=2)
        engine = elastic_engine(graph, LatencyConstraint(js, 0.030), seed=seed)
        decisions = []
        scaler = engine.scaler
        original = scaler.on_global_summary

        def recording(summary):
            decision = original(summary)
            if decision is not None:
                decisions.append(repr(decision))
            return decision

        scaler.on_global_summary = recording
        engine.run(duration)
        return {
            "decisions": decisions,
            "scaling_log": list(engine.scheduler.scaling_log),
            "events": [repr(e) for e in scaler.events],
            "parallelism": {
                name: rv.parallelism
                for name, rv in engine.runtime.vertices.items()
            },
        }

    def test_same_seed_identical_decision_sequence(self):
        first = self._run_fingerprint(seed=5)
        second = self._run_fingerprint(seed=5)
        assert first["decisions"] == second["decisions"]
        assert first["scaling_log"] == second["scaling_log"]
        assert first["events"] == second["events"]
        assert first["parallelism"] == second["parallelism"]

    def test_different_seed_may_diverge_but_stays_valid(self):
        # Not asserting divergence (both seeds can legitimately agree) —
        # only that another seed also yields a well-formed run.
        other = self._run_fingerprint(seed=11)
        assert other["parallelism"]["Worker"] >= 1
        assert all(new_p >= 1 for _, _, _, new_p in other["scaling_log"])
