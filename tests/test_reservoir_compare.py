"""Tests for the reservoir sampler and the compare_policies harness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.compare_policies import CompareParams, run_policy
from repro.qos.stats import ReservoirSampler
from repro.workloads.primetester import PrimeTesterParams


class TestReservoirSampler:
    def test_keeps_everything_below_capacity(self):
        r = ReservoirSampler(10)
        for i in range(5):
            r.add(float(i))
        assert sorted(r.values()) == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_bounded_above_capacity(self):
        r = ReservoirSampler(10)
        for i in range(1000):
            r.add(float(i))
        assert len(r) == 10
        assert r.seen == 1000

    def test_uniformity(self):
        # Mean of the sample should track the stream mean.
        r = ReservoirSampler(500, seed=3)
        for i in range(20000):
            r.add(float(i))
        sample_mean = sum(r.values()) / len(r)
        assert sample_mean == pytest.approx(10000, rel=0.15)

    def test_percentile(self):
        r = ReservoirSampler(100)
        for i in range(100):
            r.add(float(i))
        assert r.percentile(50) == pytest.approx(49.5)
        assert ReservoirSampler(5).percentile(50) is None

    def test_drain_resets(self):
        r = ReservoirSampler(5)
        r.add(1.0)
        assert r.drain() == [1.0]
        assert len(r) == 0
        assert r.seen == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReservoirSampler(0)

    @given(
        n=st.integers(min_value=0, max_value=500),
        capacity=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_size_invariant(self, n, capacity):
        r = ReservoirSampler(capacity)
        for i in range(n):
            r.add(float(i))
        assert len(r) == min(n, capacity)
        assert all(0 <= v < max(n, 1) for v in r.values())


class TestComparePoliciesHarness:
    def micro_params(self):
        workload = PrimeTesterParams(
            n_sources=2,
            n_testers=2,
            n_sinks=1,
            tester_min=1,
            tester_max=8,
            warmup_rate=20.0,
            peak_rate=100.0,
            increment_steps=2,
            step_duration=5.0,
            tester_service_mean=0.002,
        )
        return CompareParams(workload=workload)

    @pytest.mark.parametrize(
        "policy", ["scale-reactively", "predictive", "cpu-threshold", "rate-based"]
    )
    def test_each_policy_runs(self, policy):
        outcome = run_policy(self.micro_params(), policy)
        assert outcome.policy == policy
        assert 0.0 <= outcome.fulfillment <= 1.0
        assert outcome.task_seconds > 0
        assert outcome.max_parallelism >= 1

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            run_policy(self.micro_params(), "bogus")

    def test_report_and_csv(self, tmp_path):
        import os
        from repro.experiments.compare_policies import CompareResult, PolicyOutcome

        result = CompareResult(self.micro_params())
        result.outcomes["scale-reactively"] = PolicyOutcome(
            "scale-reactively", 0.9, 1000.0, 5, 8
        )
        text = result.report()
        assert "scale-reactively" in text
        assert "90.0%" in text
        path = result.series_csv(os.path.join(tmp_path, "p.csv"))
        assert os.path.getsize(path) > 0
