"""Supervised actuation: config validation, reconciliation, guardrails, chaos.

The acceptance scenario from the issue: with an ``ActuationFailure``
injected on the bottleneck vertex, the reconciler keeps retrying with
backoff, the watchdog escalates to doubling, and the latency constraint
is eventually satisfied again — all byte-identically across same-seed
runs. With actuation supervision off (the default) nothing changes.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.actuation import ActuationConfig, ReconciliationController
from repro.builder import PipelineBuilder
from repro.core.elastic_scaler import ElasticScaler
from repro.core.scale_reactively import ScalingDecision
from repro.engine.engine import EngineConfig, StreamProcessingEngine
from repro.engine.scheduler import ScalingResult
from repro.obs.trace import (
    BRANCH_ACTUATION_FAILED,
    BRANCH_ACTUATION_PENDING,
    BRANCH_RETRY_BACKOFF,
    BRANCH_SCALE_DOWN_CLAMPED,
    BRANCH_WATCHDOG_ESCALATION,
    DecisionTrace,
)
from repro.simulation.faults import ActuationFailure, FaultPlan
from repro.simulation.kernel import Simulator
from repro.simulation.randomness import Deterministic, Gamma, RandomStreams
from repro.workloads.rates import ConstantRate

from conftest import make_linear_job


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def deploy(worker_min=1, worker_max=32, n_workers=2, config=None):
    engine = StreamProcessingEngine(config or EngineConfig())
    graph = make_linear_job(
        n_workers=n_workers, worker_min=worker_min, worker_max=worker_max
    )
    engine.submit(graph)
    return engine


def make_reconciler(engine, trace=False, seed=11, **cfg_kwargs):
    """A reconciler wired to a deployed engine, deterministic by default."""
    cfg_kwargs.setdefault("provisioning_delay", Deterministic(0.5))
    cfg_kwargs.setdefault("backoff_jitter", 0.0)
    config = ActuationConfig(**cfg_kwargs)
    sink = DecisionTrace() if trace else None
    rec = ReconciliationController(
        engine.sim, engine.scheduler, engine.runtime, config,
        RandomStreams(seed), trace_sink=sink, job_name="linear",
    )
    return rec, sink


class FakePolicy:
    """Returns a queued list of decisions (same idiom as scaler tests)."""

    def __init__(self, decisions):
        self.decisions = list(decisions)

    def decide(self, summary, current):
        if self.decisions:
            return self.decisions.pop(0)
        return ScalingDecision()


def decision_with(parallelism):
    decision = ScalingDecision()
    decision.merge_max(parallelism)
    return decision


def build_actuation_chaos_pipeline(fault_seed=0, **actuate_kwargs):
    """Issue acceptance pipeline: actuation outage on the bottleneck vertex.

    The worker starts at parallelism 1 (the constraint needs ~3), and the
    provisioning path is down from t=5 to t=35 — every scale-up the
    scaler orders fails until the outage lifts.
    """
    actuate_kwargs.setdefault("watchdog_intervals", 2)
    actuate_kwargs.setdefault("backoff_base", 1.0)
    actuate_kwargs.setdefault("backoff_max", 8.0)
    return (
        PipelineBuilder("actuation-chaos")
        .source(lambda now, rng: rng.random(), rate=ConstantRate(400.0))
        .map("worker", lambda x: x, service=Gamma(0.004, 0.7), parallelism=(1, 1, 32))
        .sink()
        .constrain(bound=0.030)
        .actuate(**actuate_kwargs)
        .inject(
            ActuationFailure(at=5.0, duration=30.0, vertex="worker"),
            seed=fault_seed,
        )
        .build()
    )


def run_actuation_chaos(duration=120.0, engine_seed=7, **actuate_kwargs):
    pipeline = build_actuation_chaos_pipeline(**actuate_kwargs)
    engine = StreamProcessingEngine(EngineConfig(elastic=True, seed=engine_seed))
    job = engine.submit(pipeline)
    engine.run(duration)
    return engine, job


# ----------------------------------------------------------------------
# ActuationConfig validation (satellite: reject bad knobs at construction)
# ----------------------------------------------------------------------


class TestActuationConfigValidation:
    def test_defaults_are_valid(self):
        config = ActuationConfig()
        assert config.enabled
        assert config.max_retries == 5

    @pytest.mark.parametrize("kwargs", [
        {"failure_rate": -0.1},
        {"failure_rate": float("nan")},
        {"failure_rate": 1.0},
        {"timeout": 0.0},
        {"timeout": float("inf")},
        {"max_retries": -1},
        {"backoff_base": 0.0},
        {"backoff_factor": 0.5},
        {"backoff_max": 0.0},
        {"backoff_jitter": -0.1},
        {"backoff_jitter": 1.5},
        {"max_step": 0},
        {"hysteresis": -1},
        {"watchdog_intervals": 0},
    ])
    def test_out_of_range_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ActuationConfig(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"failure_rate": "high"},
        {"failure_rate": True},
        {"timeout": None},
        {"max_retries": 1.5},
        {"max_retries": True},
        {"backoff_base": "1"},
        {"max_step": 2.5},
        {"hysteresis": 0.5},
        {"watchdog_intervals": True},
        {"provisioning_delay": 0.5},
    ])
    def test_wrong_type_rejected(self, kwargs):
        with pytest.raises(TypeError):
            ActuationConfig(**kwargs)

    def test_describe_is_json_serializable(self):
        described = ActuationConfig(max_step=3).describe()
        parsed = json.loads(json.dumps(described))
        assert parsed["max_step"] == 3
        assert parsed["provisioning_delay"] == "Uniform"


class TestRecoveryCooldownValidation:
    """Satellite: ElasticScaler(recovery_cooldown=...) rejects bad values."""

    def _make(self, cooldown):
        return ElasticScaler(
            Simulator(), None, None, None, recovery_cooldown=cooldown
        )

    @pytest.mark.parametrize("bad", ["15", True, None])
    def test_non_number_rejected(self, bad):
        with pytest.raises(TypeError):
            self._make(bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -1.0])
    def test_non_finite_or_negative_rejected(self, bad):
        with pytest.raises(ValueError):
            self._make(bad)

    def test_valid_values_coerced_to_float(self):
        scaler = self._make(0)
        assert scaler.recovery_cooldown == 0.0
        assert isinstance(scaler.recovery_cooldown, float)


# ----------------------------------------------------------------------
# ScalingResult (satellite: set_parallelism reports requested vs applied)
# ----------------------------------------------------------------------


class TestScalingResult:
    def test_scale_up_reports_full_application(self):
        engine = deploy()
        engine.run(1.0)
        result = engine.scheduler.set_parallelism("Worker", 5)
        assert result == ScalingResult(3, 3)
        assert not result.clamped

    def test_noop_is_zero_zero(self):
        engine = deploy()
        assert engine.scheduler.set_parallelism("Worker", 2) == ScalingResult(0, 0)

    def test_scale_down_at_min_with_pending_additions(self):
        """Satellite: reducible == 0 → no task stopped, applied == 0."""
        engine = deploy(worker_min=2, n_workers=2)
        engine.run(0.5)
        # raise the target; the new tasks are still pending (startup delay)
        engine.scheduler.set_parallelism("Worker", 5)
        rv = engine.runtime.vertex("Worker")
        assert rv.pending_additions == 3
        tasks_before = list(rv.tasks)
        result = engine.scheduler.set_parallelism("Worker", 2)
        # live parallelism (2) is at min_parallelism: nothing is drainable
        assert result == ScalingResult(-3, 0)
        assert result.clamped
        assert rv.tasks == tasks_before
        assert all(t.state == "running" for t in rv.tasks)

    def test_scaler_traces_suppressed_reduction(self):
        """The sync scaler path records a scale-down-clamped branch."""
        engine = deploy(worker_min=2, n_workers=2)
        engine.run(0.5)
        engine.scheduler.set_parallelism("Worker", 5)
        policy = FakePolicy([decision_with({"Worker": 2})])
        scaler = ElasticScaler(
            engine.sim, engine.scheduler, engine.runtime, policy,
            recovery_cooldown=0.0,
        )
        scaler.trace_sink = DecisionTrace()
        scaler.on_global_summary(None)
        branches = [r.branch for r in scaler.trace_sink.records]
        assert BRANCH_SCALE_DOWN_CLAMPED in branches
        assert all(t.state == "running" for t in engine.runtime.vertex("Worker").tasks)


# ----------------------------------------------------------------------
# ReconciliationController unit behavior
# ----------------------------------------------------------------------


class TestReconciler:
    def test_scale_up_applies_after_provisioning_delay(self):
        engine = deploy()
        rec, _ = make_reconciler(engine)
        delta = rec.request("Worker", 4)
        assert delta == 2
        assert rec.in_flight_vertices() == ["Worker"]
        assert engine.runtime.vertex("Worker").target_parallelism == 2  # not yet
        engine.run(0.6)  # Deterministic(0.5) provisioning
        assert engine.runtime.vertex("Worker").target_parallelism == 4
        assert rec.in_flight == {}
        assert rec.applied == 1
        kinds = [kind for _, kind, _, _, _ in rec.trace()]
        assert kinds == ["request", "applied"]

    def test_noop_target_not_issued(self):
        engine = deploy()
        rec, _ = make_reconciler(engine)
        assert rec.request("Worker", 2) == 0
        assert rec.in_flight == {} and rec.desired == {}

    def test_hysteresis_dead_band_suppresses(self):
        engine = deploy()
        rec, _ = make_reconciler(engine, hysteresis=1)
        assert rec.request("Worker", 3) == 0
        assert rec.suppressed_hysteresis == 1
        assert rec.in_flight == {}
        # steps beyond the band still go through
        assert rec.request("Worker", 4) == 2

    def test_max_step_clamps_request(self):
        engine = deploy()
        rec, _ = make_reconciler(engine, max_step=2)
        assert rec.request("Worker", 10) == 2
        assert rec.desired == {"Worker": 4}
        assert rec.clamped_steps == 1
        assert any(kind == "clamped" for _, kind, _, _, _ in rec.trace())

    def test_fault_window_fails_then_retry_converges(self):
        engine = deploy()
        rec, sink = make_reconciler(engine, trace=True, backoff_base=1.0)
        rec.fail_actuations("Worker", until=2.0)
        rec.request("Worker", 4)
        # attempt 1 completes at t=0.5 inside the window and fails;
        # retry backs off 1.0 s, attempt 2 completes at t=2.0 — window over.
        engine.run(2.5)
        assert rec.failures == 1 and rec.retries == 1 and rec.applied == 1
        assert engine.runtime.vertex("Worker").target_parallelism == 4
        branches = [r.branch for r in sink.records]
        assert BRANCH_ACTUATION_PENDING in branches
        assert BRANCH_ACTUATION_FAILED in branches
        assert BRANCH_RETRY_BACKOFF in branches

    def test_backoff_grows_exponentially(self):
        engine = deploy()
        rec, _ = make_reconciler(
            engine, backoff_base=1.0, backoff_factor=2.0, max_retries=3
        )
        rec.fail_actuations(None, until=1e9)  # "*": everything fails
        rec.request("Worker", 4)
        engine.run(30.0)
        backoffs = [
            float(detail.split("=")[1])
            for _, kind, _, _, detail in rec.trace() if kind == "retry"
        ]
        assert backoffs == [1.0, 2.0, 4.0]

    def test_give_up_after_max_retries(self):
        engine = deploy()
        rec, _ = make_reconciler(engine, max_retries=0)
        rec.fail_actuations("Worker", until=1e9)
        rec.request("Worker", 4)
        engine.run(1.0)
        assert rec.give_ups == 1
        assert rec.in_flight == {}
        assert any(kind == "give-up" for _, kind, _, _, _ in rec.trace())
        assert engine.runtime.vertex("Worker").target_parallelism == 2

    def test_give_up_counts_as_abandoned(self):
        engine = deploy()
        rec, _ = make_reconciler(engine, max_retries=0)
        rec.fail_actuations("Worker", until=1e9)
        rec.request("Worker", 4)
        engine.run(1.0)
        assert rec.abandoned == 1
        summary = rec.summary()
        assert summary["abandoned"] == 1
        # the migrations section appears only on stateful jobs
        assert "migrations" not in summary

    def test_timeout_counts_as_failure(self):
        engine = deploy()
        rec, _ = make_reconciler(
            engine, provisioning_delay=Deterministic(5.0), timeout=1.0,
            max_retries=0,
        )
        rec.request("Worker", 4)
        engine.run(1.5)
        failed = [d for _, kind, _, _, d in rec.trace() if kind == "failed"]
        assert failed and "timeout" in failed[0]

    def test_delay_window_stretches_provisioning(self):
        engine = deploy()
        rec, _ = make_reconciler(engine)  # Deterministic(0.5)
        rec.delay_actuations("Worker", factor=4.0, until=10.0)
        rec.request("Worker", 4)
        engine.run(1.9)  # 0.5 * 4 = 2.0 s provisioning
        assert engine.runtime.vertex("Worker").target_parallelism == 2
        engine.run(0.2)
        assert engine.runtime.vertex("Worker").target_parallelism == 4

    def test_sampled_failures_are_seeded(self):
        engine = deploy()
        rec, _ = make_reconciler(engine, failure_rate=0.99, max_retries=5)
        rec.request("Worker", 4)
        engine.run(60.0)
        assert rec.failures >= 1  # seeded draws; same seed → same outcome
        first = rec.trace()
        engine2 = deploy()
        rec2, _ = make_reconciler(engine2, failure_rate=0.99, max_retries=5)
        rec2.request("Worker", 4)
        engine2.run(60.0)
        assert rec2.trace() == first

    def test_watchdog_escalates_to_doubling(self):
        engine = deploy()
        rec, sink = make_reconciler(engine, trace=True, watchdog_intervals=2,
                                    max_retries=10, backoff_base=0.5)
        rec.fail_actuations("Worker", until=1e9)
        rec.request("Worker", 3)
        engine.run(1.0)
        stuck = rec.in_flight["Worker"]
        rec.on_adjustment_tick(violated=True)
        assert rec.escalations == 0  # below the threshold
        rec.on_adjustment_tick(violated=True)
        assert rec.escalations == 1
        assert stuck.superseded
        replacement = rec.in_flight["Worker"]
        assert replacement is not stuck
        assert replacement.escalated
        assert replacement.target == 4  # max(desired=3, 2 * current=4)
        assert any(
            r.branch == BRANCH_WATCHDOG_ESCALATION for r in sink.records
        )

    def test_watchdog_resets_on_satisfied_interval(self):
        engine = deploy()
        rec, _ = make_reconciler(engine, watchdog_intervals=2, max_retries=10)
        rec.fail_actuations("Worker", until=1e9)
        rec.request("Worker", 4)
        engine.run(1.0)
        rec.on_adjustment_tick(violated=True)
        rec.on_adjustment_tick(violated=False)  # resets the streak
        rec.on_adjustment_tick(violated=True)
        assert rec.escalations == 0

    def test_convergence_lag_and_summary(self):
        engine = deploy()
        rec, _ = make_reconciler(engine)
        rec.request("Worker", 5)
        assert rec.convergence_lag() == 3
        engine.run(1.0)
        assert rec.convergence_lag() == 0
        summary = rec.summary()
        assert summary["requests"] == 1 and summary["applied"] == 1
        assert summary["in_flight"] == 0
        assert summary["config"]["max_retries"] == 5
        json.dumps(summary)  # manifest-serializable

    def test_trace_records_are_valid_schema_v2(self):
        engine = deploy()
        rec, sink = make_reconciler(engine, trace=True, max_retries=1,
                                    backoff_base=0.5)
        rec.fail_actuations("Worker", until=0.7)
        rec.request("Worker", 4)
        engine.run(3.0)
        from repro.obs.trace import TraceRecord, validate_record_dict
        for record in sink.records:
            data = record.to_dict()
            validate_record_dict(data)
            assert data["schema"] == 2
            assert TraceRecord.from_dict(data).attempt == record.attempt


# ----------------------------------------------------------------------
# convergence regressions (issue 5): stale overwrite, dropped partials
# ----------------------------------------------------------------------


class TestReconcilerConvergenceRegressions:
    """The two convergence bugs that silently corrupt multi-seed sweeps."""

    def test_stale_retry_cannot_overwrite_newer_request(self):
        """A re-request while in flight must supersede the old request.

        Pre-fix, ``_issue`` overwrote ``in_flight[vertex]`` without
        marking the replaced request superseded: its retry callback —
        still on the heap with a long backoff — later applied the
        outdated target (4) over the newer one (6).
        """
        engine = deploy()
        rec, _ = make_reconciler(engine, backoff_base=5.0, max_retries=3)
        rec.fail_actuations("Worker", until=1.0)
        rec.request("Worker", 4)   # attempt fails at t=0.5; retry waits to t=5.5
        engine.run(1.2)
        assert rec.in_flight["Worker"].target == 4
        rec.request("Worker", 6)   # newer order while the old retry is pending
        engine.run(10.0)           # the stale retry fires at t=5.5
        assert engine.runtime.vertex("Worker").target_parallelism == 6
        assert rec.applied == 1    # exactly one application — no double-apply
        assert rec.superseded_requests == 1
        assert rec.in_flight == {} and rec.desired == {}
        kinds = [kind for _, kind, _, _, _ in rec.trace()]
        assert "superseded" in kinds

    def test_partial_application_keeps_desired_and_lag(self):
        """Partial application must not be declared convergence.

        Scale-down to 2 while 3 additions are still pending: nothing is
        drainable (live parallelism sits at ``min_parallelism``), so the
        scheduler applies 0 of the requested -3. Pre-fix, ``_succeed``
        popped ``desired`` anyway and ``convergence_lag()`` under-reported
        0 forever after.
        """
        engine = deploy(worker_min=2, n_workers=2)
        engine.run(0.5)
        engine.scheduler.set_parallelism("Worker", 5)  # 3 additions pending
        rec, _ = make_reconciler(engine)
        rec.request("Worker", 2)
        engine.run(0.6)  # request completes: live p == min, nothing drainable
        assert rec.partials == 1
        assert rec.desired == {"Worker": 2}
        assert rec.convergence_lag() == 3
        assert any(kind == "partial" for _, kind, _, _, _ in rec.trace())

    def test_partial_application_eventually_converges(self):
        """The kept remainder is re-issued and converges once drainable."""
        engine = deploy(worker_min=2, n_workers=2)
        engine.run(0.5)
        engine.scheduler.set_parallelism("Worker", 5)
        rec, _ = make_reconciler(engine)
        rec.request("Worker", 2)
        engine.run(2.0)  # partial applied; the pending additions became live
        assert rec.convergence_lag() > 0
        rec.on_adjustment_tick(violated=False)  # re-issues the remainder
        engine.run(1.0)
        assert engine.runtime.vertex("Worker").target_parallelism == 2
        assert rec.convergence_lag() == 0
        assert rec.desired == {} and rec.in_flight == {}
        kinds = [kind for _, kind, _, _, _ in rec.trace()]
        assert "re-issue" in kinds

    def test_full_application_still_clears_state(self):
        """The partial path must not leak state on ordinary successes."""
        engine = deploy()
        rec, _ = make_reconciler(engine)
        rec.request("Worker", 4)
        engine.run(1.0)
        assert rec.partials == 0
        assert rec.desired == {} and rec.in_flight == {}
        assert rec._partial_pending == set()
        rec.on_adjustment_tick(violated=False)  # nothing to re-issue
        assert rec.requests == 1


# ----------------------------------------------------------------------
# scaler / engine / builder integration
# ----------------------------------------------------------------------


class TestScalerIntegration:
    def test_in_flight_vertex_not_redecided(self):
        engine = deploy(n_workers=4)
        engine.run(3.0)
        rec, _ = make_reconciler(
            engine, provisioning_delay=Deterministic(100.0), timeout=200.0
        )
        policy = FakePolicy([
            decision_with({"Worker": 2}),  # scale-down: no inactivity phase
            decision_with({"Worker": 3}),
        ])
        scaler = ElasticScaler(
            engine.sim, engine.scheduler, engine.runtime, policy,
            recovery_cooldown=0.0,
        )
        scaler.trace_sink = DecisionTrace()
        scaler.reconciler = rec
        scaler.on_global_summary(None)
        assert rec.in_flight_vertices() == ["Worker"]
        scaler.on_global_summary(None)  # actuation still pending
        assert scaler.suppressed_in_flight == 1
        deferred = [
            r for r in scaler.trace_sink.records
            if r.branch == BRANCH_ACTUATION_PENDING and "deferred" in r.detail
        ]
        assert len(deferred) == 1
        assert rec.requests == 1  # the second decision issued nothing

    def test_engine_wires_reconciler_when_configured(self):
        pipeline = (
            PipelineBuilder("wired")
            .source(lambda now, rng: 1.0, rate=ConstantRate(50.0))
            .map("worker", lambda x: x, service=Deterministic(0.001))
            .sink()
            .constrain(bound=0.050)
            .build()
        )
        config = EngineConfig(elastic=True, actuation=ActuationConfig())
        engine = StreamProcessingEngine(config)
        job = engine.submit(pipeline)
        assert engine.reconciler is not None
        assert job.scaler is not None
        assert job.scaler.reconciler is engine.reconciler

    def test_disabled_config_leaves_job_unsupervised(self):
        config = EngineConfig(
            elastic=True, actuation=ActuationConfig(enabled=False)
        )
        engine = StreamProcessingEngine(config)
        engine.submit(make_linear_job())
        assert engine.reconciler is None

    def test_default_is_unsupervised(self):
        engine = deploy()
        assert engine.reconciler is None
        assert engine.jobs[0].reconciler is None

    def test_builder_actuate_threads_config(self):
        pipeline = (
            PipelineBuilder("p")
            .source(lambda now, rng: 1.0, rate=ConstantRate(10.0))
            .map("worker", lambda x: x, service=Deterministic(0.001))
            .sink()
            .actuate(max_step=2, hysteresis=1)
            .build()
        )
        assert pipeline.actuation.max_step == 2
        engine = StreamProcessingEngine(EngineConfig())
        job = engine.submit(pipeline)
        assert job.reconciler is not None
        assert job.reconciler.config.hysteresis == 1

    def test_builder_actuate_rejects_config_plus_kwargs(self):
        with pytest.raises(TypeError):
            PipelineBuilder("p").actuate(ActuationConfig(), max_step=2)

    def test_actuation_fault_noop_when_unsupervised(self):
        engine = StreamProcessingEngine(EngineConfig())
        plan = FaultPlan((ActuationFailure(at=0.5, duration=2.0),))
        job = engine.submit(make_linear_job(), fault_plan=plan)
        engine.run(1.0)
        assert (0.5, "actuation_failure", "*", "noop:supervision-disabled") \
            in job.fault_injector.trace()

    def test_actuation_fault_reaches_reconciler(self):
        config = EngineConfig(actuation=ActuationConfig())
        engine = StreamProcessingEngine(config)
        plan = FaultPlan((ActuationFailure(at=0.5, duration=2.0, vertex="Worker"),))
        job = engine.submit(make_linear_job(), fault_plan=plan)
        engine.run(1.0)
        assert job.reconciler._fault_active("Worker")
        kinds = [kind for _, kind, _, _ in job.fault_injector.trace()]
        assert "actuation_failure" in kinds
        engine.run(2.0)
        assert not job.reconciler._fault_active("Worker")
        kinds = [kind for _, kind, _, _ in job.fault_injector.trace()]
        assert "actuation_restored" in kinds


# ----------------------------------------------------------------------
# acceptance: chaos with actuation outage on the bottleneck vertex
# ----------------------------------------------------------------------


class TestActuationChaosAcceptance:
    def _fingerprint(self, engine, job):
        return {
            "actuation": job.reconciler.trace(),
            "faults": job.fault_injector.trace(),
            "scaling_log": list(job.scheduler.scaling_log),
            "parallelism": {
                name: rv.target_parallelism
                for name, rv in job.runtime.vertices.items()
            },
            "summary": job.reconciler.summary(),
        }

    def test_outage_is_survived_and_constraint_recovers(self):
        engine, job = run_actuation_chaos()
        rec = job.reconciler
        # the outage made attempts fail and the reconciler retried
        assert rec.failures > 0 and rec.retries > 0
        # the watchdog escalated while the constraint lagged
        assert rec.escalations >= 1
        # ...and actuation eventually converged: nothing left in flight
        assert rec.in_flight == {}
        assert rec.convergence_lag() == 0
        # the constraint is satisfied again at the end of the run
        tracker = job.trackers[0]
        recent = tracker.history[-4:]
        assert recent and not any(violated for _, _, violated in recent)

    def test_same_seed_is_byte_identical(self):
        first = self._fingerprint(*run_actuation_chaos())
        second = self._fingerprint(*run_actuation_chaos())
        assert first == second

    def test_unsupervised_run_unchanged_by_actuation_faults(self):
        """ActuationFailure on an unsupervised job must not perturb scaling."""
        def run(with_fault):
            builder = (
                PipelineBuilder("baseline")
                .source(lambda now, rng: rng.random(), rate=ConstantRate(400.0))
                .map("worker", lambda x: x, service=Gamma(0.004, 0.7),
                     parallelism=(4, 1, 32))
                .sink()
                .constrain(bound=0.030)
            )
            if with_fault:
                builder.inject(
                    ActuationFailure(at=25.0, duration=20.0, vertex="worker"),
                    seed=0,
                )
            engine = StreamProcessingEngine(EngineConfig(elastic=True, seed=7))
            job = engine.submit(builder.build())
            engine.run(80.0)
            return (
                list(job.scheduler.scaling_log),
                [repr(e) for e in job.scaler.events],
            )

        assert run(with_fault=False) == run(with_fault=True)

    def test_manifest_carries_actuation_summary(self):
        from repro.obs.manifest import build_manifest
        engine, job = run_actuation_chaos(duration=60.0)
        manifest = build_manifest(job)
        assert manifest.data["actuation"]["requests"] > 0
        # unsupervised jobs keep the pre-actuation manifest layout
        plain_engine = deploy()
        plain_engine.run(1.0)
        plain = build_manifest(plain_engine.jobs[0])
        assert "actuation" not in plain.data
