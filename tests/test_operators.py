"""Unit and integration tests for the streaming operator library."""

import pytest

from repro.engine.engine import EngineConfig, StreamProcessingEngine
from repro.engine.operators import (
    KeyedAggregateUDF,
    RateEstimatorUDF,
    SampleUDF,
    UnionTagUDF,
    tumbling_count,
    tumbling_mean,
    tumbling_sum,
    tumbling_top_k,
)
from repro.engine.udf import SinkUDF, SourceUDF
from repro.graphs.job_graph import JobGraph
from repro.workloads.rates import ConstantRate


class TestTumblingAggregates:
    def test_count(self):
        udf = tumbling_count(1.0)
        for _ in range(5):
            udf.process("x")
        assert udf.flush() == (5,)

    def test_count_emits_zero_for_empty_window(self):
        assert tumbling_count(1.0).flush() == (0,)

    def test_sum(self):
        udf = tumbling_sum(1.0)
        for v in (1.5, 2.5):
            udf.process(v)
        assert udf.flush() == (4.0,)

    def test_sum_with_value_fn(self):
        udf = tumbling_sum(1.0, value_fn=lambda d: d["v"])
        udf.process({"v": 3})
        udf.process({"v": 4})
        assert udf.flush() == (7,)

    def test_mean(self):
        udf = tumbling_mean(1.0)
        for v in (2.0, 4.0, 6.0):
            udf.process(v)
        assert udf.flush() == (4.0,)

    def test_mean_empty_window_silent(self):
        assert tumbling_mean(1.0).flush() == ()


class TestTopK:
    def test_counts_and_ranks(self):
        udf = tumbling_top_k(1.0, k=2, key_fn=lambda payload: payload)
        for keys in (["a"], ["a", "b"], ["b"], ["a"], ["c"]):
            udf.process(keys)
        ((top,),) = (udf.flush(),)
        assert top[0] == ("a", 3)
        assert top[1] == ("b", 2)
        assert len(top) == 2

    def test_ties_broken_deterministically(self):
        udf = tumbling_top_k(1.0, k=2, key_fn=lambda payload: payload)
        udf.process(["x", "y"])
        (top,) = udf.flush()
        assert [k for k, _ in top] == sorted(k for k, _ in top)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            tumbling_top_k(1.0, k=0, key_fn=lambda p: p)


class TestKeyedAggregate:
    def test_per_key_fold(self):
        udf = KeyedAggregateUDF(
            1.0,
            key_fn=lambda d: d[0],
            fold_init=lambda: 0,
            fold=lambda acc, d: acc + d[1],
        )
        for payload in (("a", 1), ("b", 2), ("a", 3)):
            udf.process(payload)
        result = dict(udf.flush())
        assert result == {"a": 4, "b": 2}

    def test_window_resets_keys(self):
        udf = KeyedAggregateUDF(
            1.0, key_fn=lambda d: d, fold_init=lambda: 0, fold=lambda acc, d: acc + 1
        )
        udf.process("k")
        udf.flush()
        udf.process("k")
        assert dict(udf.flush()) == {"k": 1}


class TestSampleAndUnion:
    def test_sample_all(self):
        udf = SampleUDF(1.0)
        assert list(udf.process("x")) == ["x"]

    def test_sample_none(self):
        udf = SampleUDF(0.0)
        assert list(udf.process("x")) == []

    def test_sample_fraction(self):
        udf = SampleUDF(0.3)
        passed = sum(bool(list(udf.process(i))) for i in range(5000))
        assert passed == pytest.approx(1500, rel=0.1)

    def test_sample_invalid_probability(self):
        with pytest.raises(ValueError):
            SampleUDF(1.5)

    def test_union_tags(self):
        udf = UnionTagUDF("left")
        assert list(udf.process(7)) == [("left", 7)]


class TestRateEstimator:
    def test_reports_rate(self):
        udf = RateEstimatorUDF(window=2.0)
        for _ in range(10):
            udf.process("x")
        assert udf.flush() == (5.0,)

    def test_zero_rate_emitted(self):
        assert RateEstimatorUDF(window=1.0).flush() == (0.0,)


class TestOperatorsInEngine:
    def test_top_k_pipeline_end_to_end(self):
        graph = JobGraph("topk")
        letters = ["a", "a", "a", "b", "b", "c"]
        src = graph.add_vertex(
            "Src",
            lambda: SourceUDF(lambda now, rng: [rng.choice(letters)]),
        )
        topk = graph.add_vertex(
            "TopK", lambda: tumbling_top_k(0.5, k=1, key_fn=lambda payload: payload)
        )
        collected = []
        sink = graph.add_vertex(
            "Snk", lambda: SinkUDF(on_item=collected.append)
        )
        graph.connect(src, topk)
        graph.connect(topk, sink)
        src.rate_profile = ConstantRate(200.0, jitter="deterministic")
        engine = StreamProcessingEngine(EngineConfig(seed=6))
        engine.submit(graph)
        engine.run(10.0)
        assert collected
        winners = [top[0][0] for top in collected if top]
        # 'a' dominates the letter distribution, so it wins most windows.
        assert winners.count("a") > len(winners) * 0.7

    def test_rate_estimator_pipeline(self):
        graph = JobGraph("rate")
        src = graph.add_vertex("Src", lambda: SourceUDF(lambda now, rng: 1))
        est = graph.add_vertex("Rate", lambda: RateEstimatorUDF(1.0))
        rates = []
        sink = graph.add_vertex("Snk", lambda: SinkUDF(on_item=rates.append))
        graph.connect(src, est)
        graph.connect(est, sink)
        src.rate_profile = ConstantRate(150.0, jitter="deterministic")
        engine = StreamProcessingEngine(EngineConfig(seed=6))
        engine.submit(graph)
        engine.run(10.0)
        steady = rates[2:-1]
        assert steady
        assert sum(steady) / len(steady) == pytest.approx(150.0, rel=0.05)


class TestStatefulWindowedAggregate:
    def _udf(self, probe=None):
        from repro.engine.operators import StatefulWindowedAggregateUDF

        return StatefulWindowedAggregateUDF(
            1.0,
            key_fn=lambda d: d[0],
            fold_init=lambda: 0,
            fold=lambda acc, d: acc + d[1],
            bytes_per_event=48,
            state_probe=probe,
        )

    def test_behaves_like_keyed_aggregate_without_probe(self):
        udf = self._udf()
        for item in (("a", 1), ("b", 2), ("a", 3)):
            udf.process(item)
        assert dict(udf.flush()) == {"a": 4, "b": 2}

    def test_probe_reports_every_fold_step(self):
        deltas = []
        udf = self._udf(probe=lambda key, nbytes: deltas.append((key, nbytes)))
        for item in (("a", 1), ("b", 2), ("a", 3)):
            udf.process(item)
        assert deltas == [("a", 48), ("b", 48), ("a", 48)]

    def test_rejects_negative_bytes_per_event(self):
        from repro.engine.operators import StatefulWindowedAggregateUDF

        with pytest.raises(ValueError, match="bytes_per_event"):
            StatefulWindowedAggregateUDF(
                1.0, key_fn=lambda d: d, fold_init=lambda: 0,
                fold=lambda acc, d: acc, bytes_per_event=-1,
            )


class TestKeyedJoin:
    def _udf(self, probe=None, max_per_key=16):
        from repro.engine.operators import KeyedJoinUDF

        return KeyedJoinUDF(
            key_fn=lambda item: item["k"],
            max_per_key=max_per_key,
            bytes_per_event=32,
            state_probe=probe,
        )

    def test_joins_matching_keys_across_sides(self):
        udf = self._udf()
        assert udf.process(("left", {"k": 1, "v": "l1"})) == ()
        out = udf.process(("right", {"k": 1, "v": "r1"}))
        assert out == ((1, {"k": 1, "v": "l1"}, {"k": 1, "v": "r1"}),)
        # a later left item joins against the buffered right item too
        out = udf.process(("left", {"k": 1, "v": "l2"}))
        assert out == ((1, {"k": 1, "v": "l2"}, {"k": 1, "v": "r1"}),)

    def test_non_matching_keys_emit_nothing(self):
        udf = self._udf()
        assert udf.process(("left", {"k": 1})) == ()
        assert udf.process(("right", {"k": 2})) == ()
        assert udf.buffered_items() == 2

    def test_buffers_are_count_bounded(self):
        deltas = []
        udf = self._udf(probe=lambda key, nbytes: deltas.append(nbytes),
                        max_per_key=2)
        for i in range(4):
            udf.process(("left", {"k": 1, "i": i}))
        assert udf.buffered_items() == 2
        # two evictions reported as negative deltas
        assert deltas.count(-32) == 2
        assert deltas.count(32) == 4

    def test_rejects_unknown_tags_and_bad_params(self):
        from repro.engine.operators import KeyedJoinUDF

        udf = self._udf()
        with pytest.raises(ValueError, match="tag"):
            udf.process(("middle", {"k": 1}))
        with pytest.raises(ValueError, match="max_per_key"):
            KeyedJoinUDF(key_fn=lambda item: item, max_per_key=0)
