"""Unit and integration tests for the streaming operator library."""

import pytest

from repro.engine.engine import EngineConfig, StreamProcessingEngine
from repro.engine.operators import (
    KeyedAggregateUDF,
    RateEstimatorUDF,
    SampleUDF,
    UnionTagUDF,
    tumbling_count,
    tumbling_mean,
    tumbling_sum,
    tumbling_top_k,
)
from repro.engine.udf import SinkUDF, SourceUDF
from repro.graphs.job_graph import JobGraph
from repro.workloads.rates import ConstantRate


class TestTumblingAggregates:
    def test_count(self):
        udf = tumbling_count(1.0)
        for _ in range(5):
            udf.process("x")
        assert udf.flush() == (5,)

    def test_count_emits_zero_for_empty_window(self):
        assert tumbling_count(1.0).flush() == (0,)

    def test_sum(self):
        udf = tumbling_sum(1.0)
        for v in (1.5, 2.5):
            udf.process(v)
        assert udf.flush() == (4.0,)

    def test_sum_with_value_fn(self):
        udf = tumbling_sum(1.0, value_fn=lambda d: d["v"])
        udf.process({"v": 3})
        udf.process({"v": 4})
        assert udf.flush() == (7,)

    def test_mean(self):
        udf = tumbling_mean(1.0)
        for v in (2.0, 4.0, 6.0):
            udf.process(v)
        assert udf.flush() == (4.0,)

    def test_mean_empty_window_silent(self):
        assert tumbling_mean(1.0).flush() == ()


class TestTopK:
    def test_counts_and_ranks(self):
        udf = tumbling_top_k(1.0, k=2, key_fn=lambda payload: payload)
        for keys in (["a"], ["a", "b"], ["b"], ["a"], ["c"]):
            udf.process(keys)
        ((top,),) = (udf.flush(),)
        assert top[0] == ("a", 3)
        assert top[1] == ("b", 2)
        assert len(top) == 2

    def test_ties_broken_deterministically(self):
        udf = tumbling_top_k(1.0, k=2, key_fn=lambda payload: payload)
        udf.process(["x", "y"])
        (top,) = udf.flush()
        assert [k for k, _ in top] == sorted(k for k, _ in top)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            tumbling_top_k(1.0, k=0, key_fn=lambda p: p)


class TestKeyedAggregate:
    def test_per_key_fold(self):
        udf = KeyedAggregateUDF(
            1.0,
            key_fn=lambda d: d[0],
            fold_init=lambda: 0,
            fold=lambda acc, d: acc + d[1],
        )
        for payload in (("a", 1), ("b", 2), ("a", 3)):
            udf.process(payload)
        result = dict(udf.flush())
        assert result == {"a": 4, "b": 2}

    def test_window_resets_keys(self):
        udf = KeyedAggregateUDF(
            1.0, key_fn=lambda d: d, fold_init=lambda: 0, fold=lambda acc, d: acc + 1
        )
        udf.process("k")
        udf.flush()
        udf.process("k")
        assert dict(udf.flush()) == {"k": 1}


class TestSampleAndUnion:
    def test_sample_all(self):
        udf = SampleUDF(1.0)
        assert list(udf.process("x")) == ["x"]

    def test_sample_none(self):
        udf = SampleUDF(0.0)
        assert list(udf.process("x")) == []

    def test_sample_fraction(self):
        udf = SampleUDF(0.3)
        passed = sum(bool(list(udf.process(i))) for i in range(5000))
        assert passed == pytest.approx(1500, rel=0.1)

    def test_sample_invalid_probability(self):
        with pytest.raises(ValueError):
            SampleUDF(1.5)

    def test_union_tags(self):
        udf = UnionTagUDF("left")
        assert list(udf.process(7)) == [("left", 7)]


class TestRateEstimator:
    def test_reports_rate(self):
        udf = RateEstimatorUDF(window=2.0)
        for _ in range(10):
            udf.process("x")
        assert udf.flush() == (5.0,)

    def test_zero_rate_emitted(self):
        assert RateEstimatorUDF(window=1.0).flush() == (0.0,)


class TestOperatorsInEngine:
    def test_top_k_pipeline_end_to_end(self):
        graph = JobGraph("topk")
        letters = ["a", "a", "a", "b", "b", "c"]
        src = graph.add_vertex(
            "Src",
            lambda: SourceUDF(lambda now, rng: [rng.choice(letters)]),
        )
        topk = graph.add_vertex(
            "TopK", lambda: tumbling_top_k(0.5, k=1, key_fn=lambda payload: payload)
        )
        collected = []
        sink = graph.add_vertex(
            "Snk", lambda: SinkUDF(on_item=collected.append)
        )
        graph.connect(src, topk)
        graph.connect(topk, sink)
        src.rate_profile = ConstantRate(200.0, jitter="deterministic")
        engine = StreamProcessingEngine(EngineConfig(seed=6))
        engine.submit(graph)
        engine.run(10.0)
        assert collected
        winners = [top[0][0] for top in collected if top]
        # 'a' dominates the letter distribution, so it wins most windows.
        assert winners.count("a") > len(winners) * 0.7

    def test_rate_estimator_pipeline(self):
        graph = JobGraph("rate")
        src = graph.add_vertex("Src", lambda: SourceUDF(lambda now, rng: 1))
        est = graph.add_vertex("Rate", lambda: RateEstimatorUDF(1.0))
        rates = []
        sink = graph.add_vertex("Snk", lambda: SinkUDF(on_item=rates.append))
        graph.connect(src, est)
        graph.connect(est, sink)
        src.rate_profile = ConstantRate(150.0, jitter="deterministic")
        engine = StreamProcessingEngine(EngineConfig(seed=6))
        engine.submit(graph)
        engine.run(10.0)
        steady = rates[2:-1]
        assert steady
        assert sum(steady) / len(steady) == pytest.approx(150.0, rel=0.05)
