"""Unit tests for rate profiles, PrimeTester, tweets and sentiment."""

import math
import random

import pytest

from repro.workloads.primetester import (
    PrimeTesterParams,
    build_primetester_job,
    is_probable_prime,
    phase_boundaries,
    primetester_constraint,
)
from repro.workloads.rates import (
    ConstantRate,
    DiurnalRate,
    PiecewiseRate,
    step_phase_segments,
)
from repro.workloads.sentiment import (
    NEGATIVE,
    NEUTRAL,
    POSITIVE,
    SentimentAnalyzer,
)
from repro.workloads.tweets import Tweet, TweetTraceGenerator, TweetTraceParams


class TestConstantRate:
    def test_rate(self):
        assert ConstantRate(50.0).rate(123.0) == 50.0

    def test_deterministic_interval(self, rng):
        profile = ConstantRate(50.0, jitter="deterministic")
        assert profile.next_interval(0.0, rng) == pytest.approx(0.02)

    def test_exponential_interval_mean(self, rng):
        profile = ConstantRate(100.0)
        samples = [profile.next_interval(0.0, rng) for _ in range(5000)]
        assert sum(samples) / len(samples) == pytest.approx(0.01, rel=0.05)

    def test_zero_rate_polls(self, rng):
        assert ConstantRate(0.0).next_interval(0.0, rng) == 0.1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantRate(-1.0)


class TestPiecewiseRate:
    def test_segment_lookup(self):
        profile = PiecewiseRate([(0.0, 10.0), (5.0, 20.0), (10.0, 5.0)])
        assert profile.rate(0.0) == 10.0
        assert profile.rate(4.999) == 10.0
        assert profile.rate(5.0) == 20.0
        assert profile.rate(100.0) == 5.0

    def test_before_first_segment_zero(self):
        profile = PiecewiseRate([(5.0, 20.0)])
        assert profile.rate(1.0) == 0.0

    def test_end_time(self):
        assert PiecewiseRate([(0.0, 1.0), (9.0, 2.0)]).end_time == 9.0

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseRate([(5.0, 1.0), (2.0, 2.0)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseRate([])


class TestStepPhases:
    def test_phase_plan_structure(self):
        segments = step_phase_segments(10.0, 100.0, increment_steps=3, step_duration=10.0)
        rates = [r for _, r in segments]
        assert rates[0] == 10.0              # warm-up
        assert rates[1:4] == [40.0, 70.0, 100.0]  # increments
        assert rates[4] == 100.0             # plateau (one extra step)
        assert rates[5:7] == [70.0, 40.0]    # decrements
        assert rates[-1] == 10.0             # back to warm-up

    def test_segment_times_monotone(self):
        segments = step_phase_segments(10.0, 100.0, 4, 7.5)
        times = [t for t, _ in segments]
        assert times == sorted(times)
        assert times[1] - times[0] == 7.5

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            step_phase_segments(10.0, 100.0, 0, 10.0)
        with pytest.raises(ValueError):
            step_phase_segments(100.0, 10.0, 3, 10.0)


class TestDiurnalRate:
    def test_oscillates_around_base(self):
        profile = DiurnalRate(100.0, 0.5, period=100.0)
        rates = [profile.rate(t) for t in range(0, 100, 5)]
        assert min(rates) == pytest.approx(50.0, rel=0.05)
        assert max(rates) == pytest.approx(150.0, rel=0.05)

    def test_starts_at_trough(self):
        profile = DiurnalRate(100.0, 0.5, period=100.0)
        assert profile.rate(0.0) == pytest.approx(50.0)

    def test_burst_multiplies(self):
        profile = DiurnalRate(100.0, 0.0, period=100.0, bursts=[(10.0, 5.0, 3.0)])
        assert profile.rate(9.9) == pytest.approx(100.0)
        assert profile.rate(12.0) == pytest.approx(300.0)
        assert profile.rate(15.0) == pytest.approx(100.0)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            DiurnalRate(0.0, 0.5, 100.0)
        with pytest.raises(ValueError):
            DiurnalRate(10.0, 1.5, 100.0)
        with pytest.raises(ValueError):
            DiurnalRate(10.0, 0.5, 0.0)


class TestMillerRabin:
    KNOWN_PRIMES = [2, 3, 5, 7, 97, 7919, 104729, 2**61 - 1]
    KNOWN_COMPOSITES = [1, 4, 9, 91, 561, 7917, 104730, 2**61 - 3]

    @pytest.mark.parametrize("n", KNOWN_PRIMES)
    def test_primes_detected(self, n):
        assert is_probable_prime(n)

    @pytest.mark.parametrize("n", KNOWN_COMPOSITES)
    def test_composites_rejected(self, n):
        assert not is_probable_prime(n)

    def test_carmichael_numbers_rejected(self):
        # Carmichael numbers fool Fermat but not Miller-Rabin.
        for n in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_probable_prime(n)

    def test_with_random_witnesses(self):
        rng = random.Random(1)
        assert is_probable_prime(104729, rng=rng)
        assert not is_probable_prime(104731 * 3, rng=rng)

    def test_agrees_with_trial_division(self):
        def slow_prime(n):
            if n < 2:
                return False
            return all(n % d for d in range(2, int(math.isqrt(n)) + 1))

        for n in range(2, 500):
            assert is_probable_prime(n) == slow_prime(n), n


class TestPrimeTesterJob:
    def test_topology(self):
        graph, profile = build_primetester_job(PrimeTesterParams())
        assert set(graph.vertices) == {"Source", "PrimeTester", "Sink"}
        assert graph.edge_between("Source", "PrimeTester").pattern == "round_robin"
        assert graph.vertex("Source").rate_profile is profile

    def test_parallelism_from_params(self):
        params = PrimeTesterParams(n_sources=3, n_testers=7, n_sinks=2,
                                   tester_min=1, tester_max=20)
        graph, _ = build_primetester_job(params)
        assert graph.vertex("Source").parallelism == 3
        assert graph.vertex("PrimeTester").parallelism == 7
        assert graph.vertex("PrimeTester").elastic

    def test_rate_profile_covers_phases(self):
        params = PrimeTesterParams(warmup_rate=10, peak_rate=100,
                                   increment_steps=3, step_duration=10.0)
        _, profile = build_primetester_job(params)
        assert profile.rate(5.0) == 10.0
        assert profile.rate(35.0) == 100.0  # peak reached

    def test_constraint_sequence_shape(self):
        graph, _ = build_primetester_job(PrimeTesterParams())
        constraint = primetester_constraint(graph, 0.02)
        assert constraint.bound == 0.02
        assert constraint.sequence.vertex_names() == ["PrimeTester"]
        assert constraint.sequence.edge_names() == [
            "Source->PrimeTester",
            "PrimeTester->Sink",
        ]

    def test_phase_boundaries(self):
        params = PrimeTesterParams(increment_steps=3, step_duration=10.0, plateau_steps=1)
        boundaries = dict(phase_boundaries(params))
        assert boundaries["warm-up"] == 0.0
        assert boundaries["increment"] == 10.0
        assert boundaries["plateau"] == 40.0
        assert boundaries["decrement"] == 50.0

    def test_generated_numbers_have_requested_bits(self, rng):
        params = PrimeTesterParams(number_bits=32)
        graph, _ = build_primetester_job(params)
        udf = graph.vertex("Source").udf_factory()
        for _ in range(10):
            n = udf.generate(0.0, rng)
            assert n.bit_length() == 32
            assert n % 2 == 1


class TestTweets:
    def test_generates_tweets(self, rng):
        gen = TweetTraceGenerator()
        tweet = gen.generate(0.0, rng)
        assert isinstance(tweet, Tweet)
        assert 1 <= len(tweet.topics) <= 3
        assert tweet.topics[0].startswith("#topic")
        assert tweet.text

    def test_zipf_popularity_skew(self, rng):
        gen = TweetTraceGenerator(TweetTraceParams(n_topics=50, zipf_s=1.2))
        counts = {}
        for _ in range(3000):
            t = gen.generate(0.0, rng)
            counts[t.topics[0]] = counts.get(t.topics[0], 0) + 1
        top = counts.get("#topic000", 0)
        mid = counts.get("#topic025", 0)
        assert top > 5 * max(1, mid)

    def test_burst_concentrates_topic(self, rng):
        params = TweetTraceParams(bursts=[(10.0, 20.0, 7, 0.9)])
        gen = TweetTraceGenerator(params)
        inside = sum(
            gen.generate(15.0, rng).topics[0] == "#topic007" for _ in range(500)
        )
        outside = sum(
            gen.generate(5.0, rng).topics[0] == "#topic007" for _ in range(500)
        )
        assert inside > 400
        assert outside < 100

    def test_invalid_topic_count_rejected(self):
        with pytest.raises(ValueError):
            TweetTraceGenerator(TweetTraceParams(n_topics=0))


class TestSentiment:
    def test_positive(self):
        assert SentimentAnalyzer().classify("i love this, awesome day") == POSITIVE

    def test_negative(self):
        assert SentimentAnalyzer().classify("what a terrible, awful mess") == NEGATIVE

    def test_neutral(self):
        assert SentimentAnalyzer().classify("watching the news right now") == NEUTRAL

    def test_negation_flips(self):
        analyzer = SentimentAnalyzer()
        assert analyzer.score("not good") < 0
        assert analyzer.score("not bad") > 0

    def test_score_sums(self):
        analyzer = SentimentAnalyzer()
        assert analyzer.score("love love hate") == 2 + 2 - 2

    def test_classify_with_score(self):
        label, score = SentimentAnalyzer().classify_with_score("i love it")
        assert label == POSITIVE
        assert score >= 1

    def test_threshold(self):
        strict = SentimentAnalyzer(threshold=3)
        assert strict.classify("good") == NEUTRAL

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            SentimentAnalyzer(threshold=0)

    def test_custom_lexicon(self):
        analyzer = SentimentAnalyzer(lexicon={"rocket": 2})
        assert analyzer.classify("rocket launch") == POSITIVE
