"""Tests for the benchmark harness behind ``python -m repro bench``.

The real benchmark sizes would make the test suite crawl, so these tests
run the harness at toy event counts and exercise the payload schema, the
round-trip through ``write_results``/``load_results``, and the
machine-independent regression check logic with synthetic payloads.
"""

from __future__ import annotations

import copy
import json

import pytest

import repro.bench.core as bench
from repro.bench.legacy import LegacySimulator
from repro.simulation.kernel import Simulator


@pytest.fixture
def tiny_results(monkeypatch):
    """One harness run at toy sizes (shared per test via function scope)."""
    monkeypatch.setattr(bench, "QUICK_EVENTS", 800)
    monkeypatch.setattr(bench, "QUICK_REPEATS", 1)
    return bench.run_benchmarks(quick=True, macro=False)


class TestLegacyKernel:
    def test_legacy_and_live_fire_identically(self):
        """The frozen baseline kernel behaves exactly like the live one."""
        def drive(sim):
            fired = []
            sim.schedule(2.0, fired.append, "late")
            sim.schedule(1.0, fired.append, "early")
            handle = sim.schedule(1.5, fired.append, "cancelled")
            handle.cancel()
            sim.schedule(1.0, fired.append, "tie")
            sim.run()
            return fired, sim.now, sim.fired_events

        assert drive(LegacySimulator()) == drive(Simulator())

    def test_chain_workload_fires_requested_events(self):
        sim = Simulator()
        fired = bench._chain_workload(sim, sim.schedule_fire, 800)
        assert fired == 800


class TestRunBenchmarks:
    def test_payload_schema(self, tiny_results):
        assert tiny_results["schema"] == bench.BENCH_SCHEMA_VERSION
        assert tiny_results["kind"] == "BENCH_core"
        assert tiny_results["quick"] is True
        benchmarks = tiny_results["benchmarks"]
        for name in ("kernel", "kernel_handles", "kernel_batch"):
            entry = benchmarks[name]
            assert entry["events_per_sec"] > 0
            assert entry["baseline_events_per_sec"] > 0
            assert entry["speedup"] > 0
        assert "macro_twitter" not in benchmarks  # macro=False

    def test_payload_is_json_serializable(self, tiny_results):
        json.dumps(tiny_results)

    def test_write_and_load_roundtrip(self, tiny_results, tmp_path):
        path = str(tmp_path / "bench.json")
        assert bench.write_results(tiny_results, path) == path
        loaded = bench.load_results(path)
        assert loaded == json.loads(json.dumps(tiny_results))

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 999}))
        with pytest.raises(ValueError):
            bench.load_results(str(path))

    def test_macro_entry_carries_the_kernel_relative_ratio(self, monkeypatch):
        monkeypatch.setattr(bench, "QUICK_EVENTS", 800)
        monkeypatch.setattr(bench, "QUICK_REPEATS", 1)
        monkeypatch.setattr(
            bench, "_bench_macro_twitter",
            lambda quick: {"virtual_time_s": 1.0, "wall_time_s": 1.0,
                           "fired_events": 1000, "events_per_sec": 1000.0,
                           "final_parallelism": {}},
        )
        results = bench.run_benchmarks(quick=True, macro=True)
        macro = results["benchmarks"]["macro_twitter"]
        kernel_baseline = results["benchmarks"]["kernel"]["baseline_events_per_sec"]
        assert macro["kernel_relative"] == pytest.approx(
            1000.0 / kernel_baseline, rel=1e-3
        )

    def test_profile_macro_writes_loadable_pstats(self, monkeypatch, tmp_path):
        import pstats

        monkeypatch.setattr(
            bench, "_bench_macro_twitter",
            lambda quick: {"fired_events": 0},
        )
        path = str(tmp_path / "macro.pstats")
        assert bench.profile_macro(path) == path
        stats = pstats.Stats(path)
        assert stats.total_calls >= 1


def _macro_entry(events_per_sec: float, kernel_relative: float = None) -> dict:
    entry = {
        "events_per_sec": events_per_sec,
        "fired_events": 1,
        "wall_time_s": 1.0,
        "virtual_time_s": 1.0,
    }
    if kernel_relative is not None:
        entry["kernel_relative"] = kernel_relative
    return entry


def _synthetic(quick: bool, speedups: dict) -> dict:
    return {
        "schema": bench.BENCH_SCHEMA_VERSION,
        "quick": quick,
        "benchmarks": {
            name: {
                "baseline_events_per_sec": 100.0,
                "events_per_sec": 100.0 * s,
                "speedup": s,
            }
            for name, s in speedups.items()
        },
    }


class TestCheckRegression:
    def test_identical_payloads_pass(self):
        committed = _synthetic(False, {"kernel": 3.0, "kernel_batch": 5.0})
        assert bench.check_regression(copy.deepcopy(committed), committed) == []

    def test_small_slowdown_within_tolerance_passes(self):
        committed = _synthetic(False, {"kernel": 3.0})
        fresh = _synthetic(False, {"kernel": 3.0 * 0.75})
        assert bench.check_regression(fresh, committed) == []

    def test_regression_beyond_tolerance_fails(self):
        committed = _synthetic(False, {"kernel": 3.0})
        fresh = _synthetic(False, {"kernel": 3.0 * 0.5})
        failures = bench.check_regression(fresh, committed)
        assert len(failures) == 1
        assert "kernel" in failures[0]

    def test_missing_benchmark_fails(self):
        committed = _synthetic(False, {"kernel": 3.0, "kernel_batch": 5.0})
        fresh = _synthetic(False, {"kernel": 3.0})
        failures = bench.check_regression(fresh, committed)
        assert any("kernel_batch" in f for f in failures)

    def test_cross_mode_comparison_widens_tolerance(self):
        """quick-vs-full squares the tolerance (0.7 -> 0.49)."""
        committed = _synthetic(False, {"kernel": 3.0})
        fresh = _synthetic(True, {"kernel": 3.0 * 0.55})
        # 0.55 would fail same-mode (floor 0.7) but passes cross-mode (0.49).
        assert bench.check_regression(fresh, committed) == []
        assert bench.check_regression(
            _synthetic(False, {"kernel": 3.0 * 0.55}), committed
        ) != []

    def test_macro_absolute_numbers_never_gate(self):
        """Without a kernel_relative ratio the macro entry is trajectory data."""
        committed = _synthetic(False, {"kernel": 3.0})
        committed["benchmarks"]["macro_twitter"] = _macro_entry(100000.0)
        fresh = _synthetic(False, {"kernel": 3.0})
        # catastrophically slower in absolute terms, still no gate
        fresh["benchmarks"]["macro_twitter"] = _macro_entry(1.0)
        assert bench.check_regression(fresh, committed) == []

    def test_macro_kernel_relative_gates(self):
        """The macro's machine-independent ratio is checked like a speedup."""
        committed = _synthetic(False, {"kernel": 3.0})
        committed["benchmarks"]["macro_twitter"] = _macro_entry(
            100000.0, kernel_relative=0.10
        )
        ok = _synthetic(False, {"kernel": 3.0})
        # absolute ev/s halved (slower machine) but the ratio held
        ok["benchmarks"]["macro_twitter"] = _macro_entry(
            50000.0, kernel_relative=0.095
        )
        assert bench.check_regression(ok, committed) == []
        slow = _synthetic(False, {"kernel": 3.0})
        slow["benchmarks"]["macro_twitter"] = _macro_entry(
            100000.0, kernel_relative=0.05
        )
        failures = bench.check_regression(slow, committed)
        assert len(failures) == 1
        assert "macro_twitter" in failures[0]
        assert "kernel-relative" in failures[0]

    def test_macro_gate_requires_the_fresh_metric(self):
        """A fresh run without the ratio (e.g. --no-macro) fails the gate."""
        committed = _synthetic(False, {"kernel": 3.0})
        committed["benchmarks"]["macro_twitter"] = _macro_entry(
            100000.0, kernel_relative=0.10
        )
        fresh = _synthetic(False, {"kernel": 3.0})
        failures = bench.check_regression(fresh, committed)
        assert any("macro_twitter" in f and "missing" in f for f in failures)
        stale = _synthetic(False, {"kernel": 3.0})
        stale["benchmarks"]["macro_twitter"] = _macro_entry(100000.0)
        failures = bench.check_regression(stale, committed)
        assert any("macro_twitter" in f and "lacks" in f for f in failures)


class TestMain:
    def test_main_writes_and_checks(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setattr(bench, "QUICK_EVENTS", 800)
        monkeypatch.setattr(bench, "QUICK_REPEATS", 1)
        out = str(tmp_path / "BENCH_core.json")
        assert bench.main(["--quick", "--no-macro", "--out", out]) == 0
        assert bench.load_results(out)["quick"] is True
        # --check against this run's own --out file: main writes before it
        # checks, so the comparison is deterministic (identical payloads)
        # while still driving load_results + check_regression + reporting.
        # Comparing two independent toy-sized timed runs flakes on noisy
        # machines.
        out2 = str(tmp_path / "BENCH_core2.json")
        assert (
            bench.main(["--quick", "--no-macro", "--out", out2, "--check", out2]) == 0
        )
        captured = capsys.readouterr()
        assert "regression check OK" in captured.out

    def test_main_fails_on_regression(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setattr(bench, "QUICK_EVENTS", 800)
        monkeypatch.setattr(bench, "QUICK_REPEATS", 1)
        baseline = _synthetic(True, {"kernel": 10_000.0})  # unattainable
        path = str(tmp_path / "baseline.json")
        bench.write_results(baseline, path)
        out = str(tmp_path / "fresh.json")
        assert bench.main(["--quick", "--no-macro", "--out", out, "--check", path]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION CHECK FAILED" in captured.err

    def test_format_results_mentions_every_benchmark(self, tiny_results):
        text = bench.format_results(tiny_results)
        for name in tiny_results["benchmarks"]:
            assert name in text
