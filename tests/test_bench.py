"""Tests for the benchmark harness behind ``python -m repro bench``.

The real benchmark sizes would make the test suite crawl, so these tests
run the harness at toy event counts and exercise the payload schema, the
round-trip through ``write_results``/``load_results``, and the
machine-independent regression check logic with synthetic payloads.
"""

from __future__ import annotations

import copy
import json

import pytest

import repro.bench.core as bench
from repro.bench.legacy import LegacySimulator
from repro.simulation.kernel import Simulator


@pytest.fixture
def tiny_results(monkeypatch):
    """One harness run at toy sizes (shared per test via function scope)."""
    monkeypatch.setattr(bench, "QUICK_EVENTS", 800)
    monkeypatch.setattr(bench, "QUICK_REPEATS", 1)
    return bench.run_benchmarks(quick=True, macro=False)


class TestLegacyKernel:
    def test_legacy_and_live_fire_identically(self):
        """The frozen baseline kernel behaves exactly like the live one."""
        def drive(sim):
            fired = []
            sim.schedule(2.0, fired.append, "late")
            sim.schedule(1.0, fired.append, "early")
            handle = sim.schedule(1.5, fired.append, "cancelled")
            handle.cancel()
            sim.schedule(1.0, fired.append, "tie")
            sim.run()
            return fired, sim.now, sim.fired_events

        assert drive(LegacySimulator()) == drive(Simulator())

    def test_chain_workload_fires_requested_events(self):
        sim = Simulator()
        fired = bench._chain_workload(sim, sim.schedule_fire, 800)
        assert fired == 800


class TestRunBenchmarks:
    def test_payload_schema(self, tiny_results):
        assert tiny_results["schema"] == bench.BENCH_SCHEMA_VERSION
        assert tiny_results["kind"] == "BENCH_core"
        assert tiny_results["quick"] is True
        benchmarks = tiny_results["benchmarks"]
        for name in ("kernel", "kernel_handles", "kernel_batch"):
            entry = benchmarks[name]
            assert entry["events_per_sec"] > 0
            assert entry["baseline_events_per_sec"] > 0
            assert entry["speedup"] > 0
        assert "macro_twitter" not in benchmarks  # macro=False

    def test_payload_is_json_serializable(self, tiny_results):
        json.dumps(tiny_results)

    def test_write_and_load_roundtrip(self, tiny_results, tmp_path):
        path = str(tmp_path / "bench.json")
        assert bench.write_results(tiny_results, path) == path
        loaded = bench.load_results(path)
        assert loaded == json.loads(json.dumps(tiny_results))

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 999}))
        with pytest.raises(ValueError):
            bench.load_results(str(path))


def _synthetic(quick: bool, speedups: dict) -> dict:
    return {
        "schema": bench.BENCH_SCHEMA_VERSION,
        "quick": quick,
        "benchmarks": {
            name: {
                "baseline_events_per_sec": 100.0,
                "events_per_sec": 100.0 * s,
                "speedup": s,
            }
            for name, s in speedups.items()
        },
    }


class TestCheckRegression:
    def test_identical_payloads_pass(self):
        committed = _synthetic(False, {"kernel": 3.0, "kernel_batch": 5.0})
        assert bench.check_regression(copy.deepcopy(committed), committed) == []

    def test_small_slowdown_within_tolerance_passes(self):
        committed = _synthetic(False, {"kernel": 3.0})
        fresh = _synthetic(False, {"kernel": 3.0 * 0.75})
        assert bench.check_regression(fresh, committed) == []

    def test_regression_beyond_tolerance_fails(self):
        committed = _synthetic(False, {"kernel": 3.0})
        fresh = _synthetic(False, {"kernel": 3.0 * 0.5})
        failures = bench.check_regression(fresh, committed)
        assert len(failures) == 1
        assert "kernel" in failures[0]

    def test_missing_benchmark_fails(self):
        committed = _synthetic(False, {"kernel": 3.0, "kernel_batch": 5.0})
        fresh = _synthetic(False, {"kernel": 3.0})
        failures = bench.check_regression(fresh, committed)
        assert any("kernel_batch" in f for f in failures)

    def test_cross_mode_comparison_widens_tolerance(self):
        """quick-vs-full squares the tolerance (0.7 -> 0.49)."""
        committed = _synthetic(False, {"kernel": 3.0})
        fresh = _synthetic(True, {"kernel": 3.0 * 0.55})
        # 0.55 would fail same-mode (floor 0.7) but passes cross-mode (0.49).
        assert bench.check_regression(fresh, committed) == []
        assert bench.check_regression(
            _synthetic(False, {"kernel": 3.0 * 0.55}), committed
        ) != []

    def test_macro_numbers_never_gate(self):
        committed = _synthetic(False, {"kernel": 3.0})
        committed["benchmarks"]["macro_twitter"] = {
            "events_per_sec": 100000.0,
            "fired_events": 1,
            "wall_time_s": 1.0,
            "virtual_time_s": 1.0,
        }
        fresh = _synthetic(False, {"kernel": 3.0})
        fresh["benchmarks"]["macro_twitter"] = {
            "events_per_sec": 1.0,  # catastrophically slower, still no gate
            "fired_events": 1,
            "wall_time_s": 1.0,
            "virtual_time_s": 1.0,
        }
        assert bench.check_regression(fresh, committed) == []


class TestMain:
    def test_main_writes_and_checks(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setattr(bench, "QUICK_EVENTS", 800)
        monkeypatch.setattr(bench, "QUICK_REPEATS", 1)
        out = str(tmp_path / "BENCH_core.json")
        assert bench.main(["--quick", "--no-macro", "--out", out]) == 0
        assert bench.load_results(out)["quick"] is True
        # Self-check against the file just written always passes.
        out2 = str(tmp_path / "BENCH_core2.json")
        assert (
            bench.main(["--quick", "--no-macro", "--out", out2, "--check", out]) == 0
        )
        captured = capsys.readouterr()
        assert "regression check OK" in captured.out

    def test_main_fails_on_regression(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setattr(bench, "QUICK_EVENTS", 800)
        monkeypatch.setattr(bench, "QUICK_REPEATS", 1)
        baseline = _synthetic(True, {"kernel": 10_000.0})  # unattainable
        path = str(tmp_path / "baseline.json")
        bench.write_results(baseline, path)
        out = str(tmp_path / "fresh.json")
        assert bench.main(["--quick", "--no-macro", "--out", out, "--check", path]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION CHECK FAILED" in captured.err

    def test_format_results_mentions_every_benchmark(self, tiny_results):
        text = bench.format_results(tiny_results)
        for name in tiny_results["benchmarks"]:
            assert name in text
