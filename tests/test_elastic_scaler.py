"""Unit tests for the ElasticScaler driver (inactivity, event log)."""

import pytest

from repro.core.elastic_scaler import ElasticScaler, ScalingEvent
from repro.core.scale_reactively import ScalingDecision
from repro.engine.scheduler import ScalingResult
from repro.simulation.kernel import Simulator


class FakePolicy:
    """Returns a queued list of decisions."""

    def __init__(self, decisions):
        self.decisions = list(decisions)
        self.calls = 0

    def decide(self, summary, current):
        self.calls += 1
        if self.decisions:
            return self.decisions.pop(0)
        return ScalingDecision()


class FakeScheduler:
    startup_delay = 1.5

    def __init__(self, deltas=None):
        self.calls = []
        self.deltas = deltas or {}

    def set_parallelism(self, vertex, target):
        self.calls.append((vertex, target))
        delta = self.deltas.get(vertex, 0)
        return ScalingResult(delta, delta)


class FakeVertex:
    def __init__(self, p):
        self.target_parallelism = p


class FakeRuntime:
    def __init__(self, parallelism):
        self.vertices = {name: FakeVertex(p) for name, p in parallelism.items()}


def decision_with(parallelism, bottleneck=False):
    decision = ScalingDecision()
    decision.merge_max(parallelism)
    if bottleneck:
        decision.bottleneck_constraints.append("c")
    return decision


def make_scaler(decisions, deltas=None, parallelism=None):
    sim = Simulator()
    scheduler = FakeScheduler(deltas)
    runtime = FakeRuntime(parallelism or {"W": 2})
    policy = FakePolicy(decisions)
    scaler = ElasticScaler(sim, scheduler, runtime, policy,
                           adjustment_interval=5.0, inactivity_intervals=2)
    return sim, scheduler, policy, scaler


class TestElasticScaler:
    def test_issues_actions(self):
        sim, scheduler, policy, scaler = make_scaler(
            [decision_with({"W": 6})], deltas={"W": 4}
        )
        scaler.on_global_summary(None)
        assert scheduler.calls == [("W", 6)]
        assert len(scaler.events) == 1
        assert scaler.events[0].applied == {"W": 4}

    def test_inactivity_after_scale_up(self):
        sim, scheduler, policy, scaler = make_scaler(
            [decision_with({"W": 6}), decision_with({"W": 8})], deltas={"W": 4}
        )
        scaler.on_global_summary(None)
        assert scaler.inactive
        # Within the inactivity window nothing happens.
        sim.run(until=5.0)
        assert scaler.on_global_summary(None) is None
        assert scaler.skipped_inactive == 1
        assert policy.calls == 1
        # After startup_delay + 2 x adjustment_interval the scaler acts again.
        sim.run(until=12.0)
        scaler.on_global_summary(None)
        assert policy.calls == 2

    def test_no_inactivity_after_scale_down(self):
        sim, scheduler, policy, scaler = make_scaler(
            [decision_with({"W": 1}), decision_with({"W": 1})], deltas={"W": -1}
        )
        scaler.on_global_summary(None)
        assert not scaler.inactive
        scaler.on_global_summary(None)
        assert policy.calls == 2

    def test_no_action_decision_records_nothing(self):
        sim, scheduler, policy, scaler = make_scaler([ScalingDecision()])
        decision = scaler.on_global_summary(None)
        assert decision is not None
        assert scheduler.calls == []
        assert scaler.events == []

    def test_unresolvable_logged(self):
        decision = ScalingDecision()
        decision.unresolvable.append("W")
        sim, scheduler, policy, scaler = make_scaler([decision])
        scaler.on_global_summary(None)
        assert scaler.unresolvable_log == [(0.0, "W")]

    def test_bottleneck_reason_recorded(self):
        sim, scheduler, policy, scaler = make_scaler(
            [decision_with({"W": 4}, bottleneck=True)], deltas={"W": 2}
        )
        scaler.on_global_summary(None)
        assert scaler.events[0].reason == "bottleneck"

    def test_event_repr(self):
        event = ScalingEvent(1.0, {"W": 4}, {"W": 2}, "rebalance")
        assert "rebalance" in repr(event)

    def test_current_parallelism_passed_to_policy(self):
        class RecordingPolicy(FakePolicy):
            def decide(self, summary, current):
                self.seen = dict(current)
                return super().decide(summary, current)

        sim = Simulator()
        scheduler = FakeScheduler()
        runtime = FakeRuntime({"A": 3, "B": 7})
        policy = RecordingPolicy([ScalingDecision()])
        scaler = ElasticScaler(sim, scheduler, runtime, policy)
        scaler.on_global_summary(None)
        assert policy.seen == {"A": 3, "B": 7}
