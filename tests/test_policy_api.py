"""The first-class ScalingPolicy API: protocol, registry, specs, and the
DRS / Daedalus tournament contenders."""

import warnings

import pytest

from repro.core.constraints import LatencyConstraint
from repro.core.daedalus import DaedalusPolicy
from repro.core.drs import DrsPolicy
from repro.core.policies import CpuThresholdPolicy, RateBasedPolicy
from repro.core.policy import (
    DEFAULT_POLICY,
    PolicyContext,
    PolicyRoundContext,
    PolicySpec,
    ScalingPolicy,
    canonical_policy_name,
    conformance_errors,
    create_policy,
    parse_policy_spec,
    registered_policies,
)
from repro.core.scale_reactively import ScalingDecision
from repro.engine.udf import MapUDF, SinkUDF, SourceUDF
from repro.graphs.job_graph import JobGraph
from repro.graphs.sequences import JobSequence
from repro.qos.summary import EdgeSummary, GlobalSummary, VertexSummary


def make_graph(worker_max=32, worker_min=1):
    graph = JobGraph("g")
    src = graph.add_vertex("Src", lambda: SourceUDF(lambda n, r: 0))
    worker = graph.add_vertex(
        "Worker", lambda: MapUDF(lambda x: x),
        parallelism=4, min_parallelism=worker_min, max_parallelism=worker_max,
    )
    sink = graph.add_vertex("Snk", lambda: SinkUDF())
    graph.connect(src, worker)
    graph.connect(worker, sink)
    return graph


def make_constraint(graph, bound=0.030):
    js = JobSequence.from_names(
        graph, ["Worker"], leading_edge=True, trailing_edge=True
    )
    return LatencyConstraint(js, bound, name="e2e")


def make_context(graph=None, bound=0.030):
    graph = graph or make_graph()
    return PolicyContext(
        constraints=[make_constraint(graph, bound)],
        vertices=[v for v in graph.vertices.values() if v.elastic],
    )


def summary_with(service=0.004, interarrival=0.02, latency=0.004,
                 staleness=0.0, cv=1.0):
    s = GlobalSummary(0.0)
    s.vertices["Worker"] = VertexSummary(
        "Worker", latency, service, cv, interarrival, cv, 4,
        staleness=staleness,
    )
    s.edges["Src->Worker"] = EdgeSummary("Src->Worker", 0.003, 0.001, 4)
    s.edges["Worker->Snk"] = EdgeSummary("Worker->Snk", 0.002, 0.001, 4)
    return s


# ----------------------------------------------------------------------
# registry round-trip: every registered policy constructs and conforms
# ----------------------------------------------------------------------


class TestRegistry:
    def test_registry_enumerates_all_shipped_policies(self):
        names = registered_policies()
        for expected in ("scale-reactively", "cpu-threshold", "rate",
                         "drs", "daedalus", "predictive", "static"):
            assert expected in names
        assert names == tuple(sorted(names))
        assert DEFAULT_POLICY in names

    @pytest.mark.parametrize("name", registered_policies())
    def test_every_registered_name_constructs_and_conforms(self, name):
        policy = create_policy(name, make_context())
        assert conformance_errors(policy) == []
        assert isinstance(policy, ScalingPolicy)
        assert policy.name == name
        decision = policy.decide(summary_with(), {"Worker": 4})
        assert isinstance(decision, ScalingDecision)

    @pytest.mark.parametrize("name", registered_policies())
    def test_decisions_are_deterministic_per_name(self, name):
        summary = summary_with(service=0.017)
        a = create_policy(name, make_context()).decide(summary, {"Worker": 4})
        b = create_policy(name, make_context()).decide(summary, {"Worker": 4})
        assert a.parallelism == b.parallelism
        assert a.skipped_constraints == b.skipped_constraints

    def test_alias_resolves_to_canonical_name(self):
        assert canonical_policy_name("rate-based") == "rate"

    def test_unknown_name_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown scaling policy"):
            canonical_policy_name("does-not-exist")

    def test_knobs_flow_through_the_factory(self):
        policy = create_policy("drs", make_context(), target_fraction=0.5)
        assert policy.knobs()["target_fraction"] == 0.5

    def test_conformance_errors_name_the_gaps(self):
        class Bogus:
            pass

        errors = conformance_errors(Bogus())
        assert any("name" in e for e in errors)
        assert any("decide" in e for e in errors)
        assert any("knobs" in e for e in errors)
        assert not isinstance(Bogus(), ScalingPolicy)


# ----------------------------------------------------------------------
# PolicySpec: the shared NAME[:key=val,...] syntax
# ----------------------------------------------------------------------


class TestPolicySpec:
    def test_parse_canonical_round_trip(self):
        spec = parse_policy_spec("drs:target_fraction=0.9,staleness_threshold=none")
        assert spec.name == "drs"
        assert spec.knobs == {"target_fraction": 0.9, "staleness_threshold": None}
        assert parse_policy_spec(spec.canonical()) == spec

    def test_knob_values_are_typed(self):
        spec = parse_policy_spec(
            "daedalus:stabilization_rounds=3,tolerance=0.2,smoothing=1"
        )
        assert spec.knobs["stabilization_rounds"] == 3
        assert isinstance(spec.knobs["stabilization_rounds"], int)
        assert spec.knobs["tolerance"] == 0.2

    def test_key_token_is_filesystem_safe_and_knob_sensitive(self):
        bare = parse_policy_spec("drs")
        knobbed = parse_policy_spec("drs:target_fraction=0.9")
        assert bare.key_token == "drs"
        assert knobbed.key_token.startswith("drs+")
        assert bare.key_token != knobbed.key_token
        for forbidden in "/=,: ":
            assert forbidden not in knobbed.key_token

    def test_alias_spec_canonicalizes(self):
        assert parse_policy_spec("rate-based").canonical() == "rate"

    def test_malformed_knob_rejected(self):
        with pytest.raises(ValueError, match="malformed policy knob"):
            parse_policy_spec("drs:target_fraction")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown scaling policy"):
            parse_policy_spec("nope:x=1")

    def test_spec_builds_a_conforming_policy(self):
        policy = parse_policy_spec("cpu-threshold:high=0.9,low=0.2,target=0.5").build(
            make_context()
        )
        assert conformance_errors(policy) == []
        assert policy.high == 0.9


# ----------------------------------------------------------------------
# DRS: Jackson-network minimum-parallelism provisioning
# ----------------------------------------------------------------------


class TestDrsPolicy:
    def policy(self, graph=None, bound=0.030, **kwargs):
        graph = graph or make_graph()
        return DrsPolicy([make_constraint(graph, bound)], **kwargs)

    def test_scales_out_to_meet_the_bound(self):
        policy = self.policy()
        # Λ = 4 tasks * 50/s = 200/s, S̄ = 17 ms -> needs ≥ 4 servers for
        # stability and more to pull the M/M/c wait under 0.8 * 30 ms
        decision = policy.decide(summary_with(service=0.017), {"Worker": 4})
        assert decision.parallelism["Worker"] > 4
        assert not decision.infeasible_constraints

    def test_releases_overprovisioned_servers(self):
        policy = self.policy()
        # nearly idle: Λ·S̄ = 200 * 0.0005 = 0.1 -> the floor (1) suffices
        decision = policy.decide(summary_with(service=0.0005), {"Worker": 16})
        assert decision.parallelism["Worker"] < 16

    def test_allocation_meets_the_modeled_budget(self):
        policy = self.policy()
        summary = summary_with(service=0.017)
        decision = policy.decide(summary, {"Worker": 4})
        from repro.analysis.queueing import mmc_waiting_time

        p = decision.parallelism["Worker"]
        sojourn = mmc_waiting_time(200.0, 0.017, p) + 0.017
        assert sojourn <= policy.target_fraction * 0.030

    def test_infeasible_when_p_max_is_too_small(self):
        graph = make_graph(worker_max=4)
        policy = self.policy(graph=graph, bound=0.001)
        # budget 0.8 ms < the 17 ms service time: no allocation can fit
        decision = policy.decide(summary_with(service=0.017), {"Worker": 4})
        assert decision.infeasible_constraints == ["e2e"]
        assert decision.parallelism["Worker"] == 4  # pinned at p_max

    def test_stale_measurements_are_skipped(self):
        policy = self.policy(staleness_threshold=5.0)
        decision = policy.decide(
            summary_with(service=0.017, staleness=6.0), {"Worker": 4}
        )
        assert not decision.has_actions
        assert decision.stale_constraints == ["e2e"]

    def test_unmeasured_constraint_is_skipped(self):
        policy = self.policy()
        decision = policy.decide(GlobalSummary(0.0), {"Worker": 4})
        assert not decision.has_actions
        assert decision.skipped_constraints == ["e2e"]

    def test_invalid_parameters_rejected(self):
        graph = make_graph()
        with pytest.raises(ValueError):
            self.policy(graph=graph, target_fraction=0.0)
        with pytest.raises(ValueError):
            self.policy(graph=graph, target_fraction=1.5)
        with pytest.raises(ValueError):
            self.policy(graph=graph, staleness_threshold=-1.0)


# ----------------------------------------------------------------------
# Daedalus: self-adaptive target-utilization sizing
# ----------------------------------------------------------------------


class TestDaedalusPolicy:
    def policy(self, graph=None, **kwargs):
        graph = graph or make_graph()
        kwargs.setdefault("smoothing", 1.0)  # no EWMA lag unless testing it
        return DaedalusPolicy([graph.vertex("Worker")], **kwargs)

    def test_scales_up_to_the_utilization_target(self):
        policy = self.policy(target_utilization=0.7)
        # busy mass = 200/s * 17 ms = 3.4 -> ceil(3.4 / 0.7) = 5
        decision = policy.decide(summary_with(service=0.017), {"Worker": 4})
        assert decision.parallelism["Worker"] == 5

    def test_hysteresis_band_suppresses_marginal_scale_down(self):
        policy = self.policy(target_utilization=0.7, tolerance=0.3)
        # busy 2.0 -> required ceil(2/0.7)=3 at p=4: within 30% band, hold
        decision = policy.decide(summary_with(service=0.010), {"Worker": 4})
        assert not decision.has_actions

    def test_clear_scale_down_passes_the_band(self):
        policy = self.policy(target_utilization=0.7, tolerance=0.15)
        # busy 0.2 -> required 1 at p=8: far below the band, shrink
        decision = policy.decide(summary_with(service=0.001), {"Worker": 8})
        assert decision.parallelism["Worker"] == 1

    def test_zero_rate_vertex_settles_at_min_parallelism(self):
        graph = make_graph(worker_min=2)
        policy = self.policy(graph=graph)
        # interarrival 0 means "no arrivals" -> arrival_rate 0 -> min p
        decision = policy.decide(
            summary_with(service=0.004, interarrival=0.0), {"Worker": 6}
        )
        assert decision.parallelism["Worker"] == 2

    def test_ewma_smooths_the_profile(self):
        policy = self.policy(smoothing=0.5, target_utilization=0.7, tolerance=0.0)
        busy_summary = summary_with(service=0.017)  # busy 3.4
        idle_summary = summary_with(service=0.001)  # busy 0.2
        policy.decide(busy_summary, {"Worker": 4})
        # one idle observation only halves the profile: 1.8 -> ceil(2.57)=3
        decision = policy.decide(idle_summary, {"Worker": 4})
        assert decision.parallelism["Worker"] == 3

    def test_observe_hook_holds_scale_downs_after_actions(self):
        policy = self.policy(stabilization_rounds=2, tolerance=0.0)
        summary_up = summary_with(service=0.017)
        summary_idle = summary_with(service=0.001)
        up = policy.decide(summary_up, {"Worker": 4})
        assert up.parallelism["Worker"] == 5
        policy.observe(PolicyRoundContext(10.0, summary_up, up, {"Worker": 1}))
        # within the stabilization window: the scale-down is held
        held = policy.decide(summary_idle, {"Worker": 5})
        assert not held.has_actions
        # two quiet rounds later the hold expires
        for t in (20.0, 30.0):
            policy.observe(
                PolicyRoundContext(t, summary_idle, ScalingDecision(), {})
            )
        released = policy.decide(summary_idle, {"Worker": 5})
        assert released.parallelism["Worker"] == 1

    def test_scale_ups_are_never_held(self):
        policy = self.policy(stabilization_rounds=3)
        summary_up = summary_with(service=0.017)
        first = policy.decide(summary_up, {"Worker": 4})
        policy.observe(PolicyRoundContext(10.0, summary_up, first, {"Worker": 1}))
        # busy = 50/s * 5 tasks * 30 ms = 7.5 -> ceil(7.5/0.7) = 11
        hotter = summary_with(service=0.030)
        decision = policy.decide(hotter, {"Worker": 5})
        assert decision.parallelism["Worker"] == 11

    def test_stale_measurements_are_skipped(self):
        policy = self.policy(staleness_threshold=5.0)
        decision = policy.decide(
            summary_with(service=0.017, staleness=6.0), {"Worker": 4}
        )
        assert not decision.has_actions
        assert decision.stale_constraints == ["Worker"]

    def test_invalid_parameters_rejected(self):
        graph = make_graph()
        for kwargs in (
            {"target_utilization": 0.0},
            {"target_utilization": 1.5},
            {"tolerance": 1.0},
            {"smoothing": 0.0},
            {"stabilization_rounds": -1},
            {"staleness_threshold": 0.0},
        ):
            with pytest.raises(ValueError):
                self.policy(graph=graph, **kwargs)


# ----------------------------------------------------------------------
# baseline-policy edge cases (satellite): zero rates, staleness, floors
# ----------------------------------------------------------------------


class TestBaselinePolicyEdgeCases:
    def test_cpu_threshold_skips_stale_summaries_when_gated(self):
        graph = make_graph()
        policy = CpuThresholdPolicy(
            [graph.vertex("Worker")], staleness_threshold=5.0
        )
        decision = policy.decide(
            summary_with(service=0.017, staleness=6.0), {"Worker": 4}
        )
        assert not decision.has_actions
        assert decision.stale_constraints == ["Worker"]

    def test_cpu_threshold_acts_on_stale_data_without_the_gate(self):
        graph = make_graph()
        policy = CpuThresholdPolicy([graph.vertex("Worker")])
        decision = policy.decide(
            summary_with(service=0.017, staleness=60.0), {"Worker": 4}
        )
        assert decision.has_actions  # historical behavior preserved

    def test_cpu_threshold_zero_rate_hits_the_single_replica_floor(self):
        graph = make_graph()
        policy = CpuThresholdPolicy([graph.vertex("Worker")])
        # zero arrivals -> rho 0 <= low -> busy 0 -> desired max(1, 0) = 1
        decision = policy.decide(
            summary_with(service=0.004, interarrival=0.0), {"Worker": 4}
        )
        assert decision.parallelism["Worker"] == 1

    def test_rate_based_zero_rate_hits_the_single_replica_floor(self):
        graph = make_graph()
        policy = RateBasedPolicy([graph.vertex("Worker")])
        decision = policy.decide(
            summary_with(service=0.004, interarrival=0.0), {"Worker": 4}
        )
        assert decision.parallelism["Worker"] == 1

    def test_rate_based_floor_respects_min_parallelism(self):
        graph = make_graph(worker_min=3)
        policy = RateBasedPolicy([graph.vertex("Worker")])
        decision = policy.decide(
            summary_with(service=0.004, interarrival=0.0), {"Worker": 4}
        )
        assert decision.parallelism["Worker"] == 3

    def test_rate_based_skips_stale_summaries_when_gated(self):
        graph = make_graph()
        policy = RateBasedPolicy([graph.vertex("Worker")], staleness_threshold=5.0)
        decision = policy.decide(
            summary_with(service=0.017, staleness=6.0), {"Worker": 4}
        )
        assert not decision.has_actions
        assert decision.stale_constraints == ["Worker"]

    def test_staleness_threshold_validation(self):
        graph = make_graph()
        with pytest.raises(ValueError):
            CpuThresholdPolicy([graph.vertex("Worker")], staleness_threshold=0.0)
        with pytest.raises(ValueError):
            RateBasedPolicy([graph.vertex("Worker")], staleness_threshold=-1.0)


# ----------------------------------------------------------------------
# engine integration: policies by name, no special-casing
# ----------------------------------------------------------------------


def build_pipeline(policy=None, **scale_knobs):
    from repro.builder import PipelineBuilder
    from repro.simulation.randomness import Gamma
    from repro.workloads.rates import ConstantRate

    builder = (
        PipelineBuilder("p")
        .source(lambda now, rng: rng.random(), rate=ConstantRate(200.0))
        .map("worker", lambda x: x, service=Gamma(0.004, 0.7),
             parallelism=(4, 1, 32))
        .sink()
        .constrain(bound=0.030, name="e2e")
    )
    if policy is not None:
        builder.scale(policy, **scale_knobs)
    return builder.build()


class TestEngineIntegration:
    def engine(self, **config_kwargs):
        from repro.engine.engine import EngineConfig, StreamProcessingEngine

        return StreamProcessingEngine(
            EngineConfig(elastic=True, seed=1, **config_kwargs)
        )

    @pytest.mark.parametrize("name", ["drs", "daedalus", "cpu-threshold"])
    def test_builder_scale_selects_the_policy_by_name(self, name):
        engine = self.engine()
        job = engine.submit(build_pipeline(policy=name))
        assert job.scaler is not None
        assert job.scaler.policy_name == name
        assert job.policy_spec.canonical() == name
        engine.run(5.0)  # the scaler round-trips through the policy

    def test_builder_scale_knobs_reach_the_policy(self):
        engine = self.engine()
        job = engine.submit(
            build_pipeline(policy="drs:target_fraction=0.9", target_fraction=0.5)
        )
        # explicit kwargs win over spec-string knobs
        assert job.scaler.policy.target_fraction == 0.5

    def test_builder_scale_rejects_unknown_policy(self):
        from repro.builder import PipelineBuilder

        with pytest.raises(ValueError, match="unknown scaling policy"):
            PipelineBuilder("p").scale("not-a-policy")

    def test_engine_config_policy_is_the_job_default(self):
        engine = self.engine(policy="static")
        job = engine.submit(build_pipeline())
        assert job.scaler.policy_name == "static"

    def test_default_path_still_runs_the_papers_policy(self):
        engine = self.engine()
        job = engine.submit(build_pipeline())
        assert job.scaler.policy_name == "scale-reactively"

    def test_job_policy_implies_elasticity(self):
        from repro.engine.engine import EngineConfig, StreamProcessingEngine

        engine = StreamProcessingEngine(EngineConfig(elastic=False, seed=1))
        job = engine.submit(build_pipeline(policy="daedalus"))
        assert job.scaler is not None

    def test_manifest_records_policy_provenance(self):
        import json
        import os
        import tempfile

        from repro.builder import PipelineBuilder
        from repro.simulation.randomness import Gamma
        from repro.workloads.rates import ConstantRate

        with tempfile.TemporaryDirectory() as tmp:
            pipeline = (
                PipelineBuilder("p")
                .source(lambda now, rng: rng.random(), rate=ConstantRate(200.0))
                .map("worker", lambda x: x, service=Gamma(0.004, 0.7),
                     parallelism=(4, 1, 32))
                .sink()
                .constrain(bound=0.030, name="e2e")
                .scale("drs:target_fraction=0.9")
                .observe(export_dir=tmp)
                .build()
            )
            engine = self.engine()
            engine.submit(pipeline)
            engine.run(5.0)
            engine.export_run()
            with open(os.path.join(tmp, "manifest.json")) as handle:
                manifest = json.load(handle)
        scaling = manifest["scaling"]
        assert scaling["policy"] == "drs"
        assert scaling["policy_spec"] == "drs:target_fraction=0.9"
        assert scaling["policy_knobs"]["target_fraction"] == 0.9


class TestSubmitToDeprecation:
    def test_submit_to_warns_but_still_works(self):
        from repro.engine.engine import EngineConfig, StreamProcessingEngine

        pipeline = build_pipeline()
        engine = StreamProcessingEngine(EngineConfig(elastic=True, seed=1))
        with pytest.warns(DeprecationWarning, match="engine.submit"):
            job = pipeline.submit_to(engine)
        assert job in engine.jobs

    def test_engine_submit_does_not_warn(self):
        from repro.engine.engine import EngineConfig, StreamProcessingEngine

        pipeline = build_pipeline()
        engine = StreamProcessingEngine(EngineConfig(elastic=True, seed=1))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            engine.submit(pipeline)


# ----------------------------------------------------------------------
# tournament plumbing: grid axis, CLI spec parser, scoreboard
# ----------------------------------------------------------------------


class TestPolicyAxis:
    def test_grid_carries_and_expands_the_policy_axis(self):
        from repro.sweep import SweepGrid

        grid = SweepGrid(
            seeds=(1, 2), policies=("daedalus", "drs"), duration=4.0
        )
        assert len(grid) == 4
        shards = grid.expand()
        assert sorted({s.policy for s in shards}) == ["daedalus", "drs"]
        assert all(s.key.count(s.policy) == 1 for s in shards)

    def test_grid_dedupes_alias_spellings(self):
        from repro.sweep import SweepGrid

        grid = SweepGrid(policies=("rate", "rate-based"))
        assert grid.policies == ("rate",)

    def test_grid_round_trips_through_describe(self):
        from repro.sweep import SweepGrid

        grid = SweepGrid.tournament()
        clone = SweepGrid.from_dict(grid.describe())
        assert clone.policies == grid.policies
        assert len(clone) == len(grid)

    def test_tournament_grid_races_at_least_four_policies(self):
        from repro.sweep import SweepGrid

        grid = SweepGrid.tournament()
        assert len(grid.policies) >= 4
        for required in ("scale-reactively", "cpu-threshold", "drs", "daedalus"):
            assert required in grid.policies

    def test_cli_policy_spec_type_rejects_unknown_names(self):
        import argparse

        from repro.cli import _policy_spec

        assert _policy_spec("drs:target_fraction=0.9") == "drs:target_fraction=0.9"
        with pytest.raises(argparse.ArgumentTypeError):
            _policy_spec("not-a-policy")


def fake_shard(policy, key, violations, intervals, task_seconds,
               reaction=None, parallelism=4):
    return {
        "key": key,
        "params": {"policy": policy},
        "constraints": [{
            "name": "e2e",
            "violations": violations,
            "intervals": intervals,
            "fulfillment_ratio": 1.0 - violations / intervals,
        }],
        "series": {"task_seconds": task_seconds},
        "scaling": {"policy": policy, "reaction_time_s": reaction},
        "final_parallelism": {"worker": parallelism},
    }


class TestScoreboard:
    def aggregate(self):
        return {
            "grid": {"name": "t"},
            "shards": [
                fake_shard("drs", "a-drs-s0001", 1, 10, 360.0, reaction=2.0),
                fake_shard("drs", "a-drs-s0002", 3, 10, 360.0, reaction=4.0),
                fake_shard("daedalus", "a-dae-s0001", 5, 10, 180.0),
                fake_shard("daedalus", "a-dae-s0002", 5, 10, 180.0),
            ],
        }

    def test_build_groups_and_averages_per_policy(self):
        from repro.evaluate import build_scoreboard

        board = build_scoreboard(self.aggregate())
        assert board["shards"] == 4
        assert list(board["policies"]) == ["daedalus", "drs"]
        drs = board["policies"]["drs"]
        assert drs["violation_rate"] == pytest.approx(0.2)
        assert drs["task_hours"] == pytest.approx(0.1)
        assert drs["reaction_time_s"] == pytest.approx(3.0)
        # daedalus had no violation onsets -> reaction stays None
        assert board["policies"]["daedalus"]["reaction_time_s"] is None

    def test_render_marks_per_column_winners(self):
        from repro.evaluate import build_scoreboard, render_scoreboard

        table = render_scoreboard(build_scoreboard(self.aggregate()))
        lines = table.splitlines()
        drs_line = next(l for l in lines if l.startswith("drs"))
        dae_line = next(l for l in lines if l.startswith("daedalus"))
        assert "0.2000*" in drs_line  # best violation rate
        assert "0.0500*" in dae_line  # best task hours
        assert "best per column" in table

    def test_empty_aggregate_is_an_error(self):
        from repro.evaluate import build_scoreboard

        with pytest.raises(ValueError, match="no shards"):
            build_scoreboard({"shards": []})

    def test_scoreboard_is_deterministic(self):
        import json

        from repro.evaluate import build_scoreboard

        a = json.dumps(build_scoreboard(self.aggregate()), sort_keys=True)
        b = json.dumps(build_scoreboard(self.aggregate()), sort_keys=True)
        assert a == b


class TestReactionTime:
    def test_reaction_time_pairs_onsets_with_activations(self):
        from repro.core.elastic_scaler import ScalingEvent
        from repro.sweep.shard import reaction_time_s

        class FakeTracker:
            def __init__(self, history):
                self.history = history

        trackers = [FakeTracker([
            (0.0, 0.01, False),
            (10.0, 0.05, True),   # onset at t=10
            (20.0, 0.01, False),
            (30.0, 0.05, True),   # onset at t=30
        ])]
        events = [
            ScalingEvent(12.0, {"worker": 5}, {"worker": 1}, "scale-out"),
            ScalingEvent(31.0, {"worker": 6}, {"worker": 1}, "scale-out"),
        ]
        assert reaction_time_s(trackers, events) == pytest.approx(1.5)

    def test_reaction_time_none_without_onsets(self):
        from repro.sweep.shard import reaction_time_s

        class FakeTracker:
            history = [(0.0, 0.01, False)]

        assert reaction_time_s([FakeTracker()], []) is None
