"""Tests for the experiment harnesses (recorder, report, fig5, quick runs)."""

import os

import pytest

from repro.engine.engine import EngineConfig, StreamProcessingEngine
from repro.experiments.fig5_surface import Fig5Params, build_models
from repro.experiments.fig5_surface import run as run_fig5
from repro.experiments.recording import SeriesRecorder
from repro.experiments.report import format_table, ms, write_csv
from repro.workloads.rates import ConstantRate

from conftest import make_linear_job


class TestSeriesRecorder:
    def run_recorded(self, duration=20.0, interval=5.0):
        engine = StreamProcessingEngine(EngineConfig())
        graph = make_linear_job(source_rate=100.0)
        profile = graph.vertex("Source").rate_profile
        engine.submit(graph)
        recorder = SeriesRecorder(
            engine, interval=interval, source_vertex="Source", source_profile=profile
        )
        recorder.add_sink_feed("e2e", "Sink")
        engine.run(duration)
        return engine, recorder

    def test_rows_per_interval(self):
        # ticks at ~5, 10, 15 (the t=20 tick lands just past the horizon)
        _, recorder = self.run_recorded(duration=20.0, interval=5.0)
        assert len(recorder.rows) == 3
        _, recorder = self.run_recorded(duration=20.1, interval=5.0)
        assert len(recorder.rows) == 4

    def test_throughput_recorded(self):
        _, recorder = self.run_recorded()
        row = recorder.rows[-1]
        assert row.attempted_rate == pytest.approx(100.0)
        assert row.effective_rate == pytest.approx(100.0, rel=0.15)

    def test_latency_feed_recorded(self):
        _, recorder = self.run_recorded()
        row = recorder.rows[-1]
        assert row.latency_mean["e2e"] is not None
        assert row.latency_p95["e2e"] >= row.latency_mean["e2e"] * 0.5

    def test_parallelism_series(self):
        _, recorder = self.run_recorded()
        series = recorder.parallelism_series("Worker")
        assert all(p == 2 for _, p in series)

    def test_task_seconds_monotone(self):
        _, recorder = self.run_recorded()
        values = [r.task_seconds for r in recorder.rows]
        assert values == sorted(values)
        assert values[-1] > 0

    def test_cpu_utilization_in_range(self):
        _, recorder = self.run_recorded()
        for row in recorder.rows:
            assert 0.0 <= row.cpu_utilization <= 1.0
        assert recorder.mean_cpu_utilization() > 0.0

    def test_probe_feed(self):
        engine = StreamProcessingEngine(EngineConfig())
        graph = make_linear_job(source_rate=50.0)
        recorder = SeriesRecorder(engine, interval=5.0)
        probe = recorder.add_probe_feed("custom")
        engine.add_vertex_probe("Worker", probe)
        engine.submit(graph)
        engine.run(10.0)
        assert recorder.rows[-1].latency_mean["custom"] is not None

    def test_peak_effective_rate(self):
        _, recorder = self.run_recorded()
        assert recorder.peak_effective_rate() > 80.0


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbbb"], [[1, 2.5], [None, "x"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbbb" in lines[1]
        assert "-" in lines[2]
        assert "2.50" in lines[3]
        assert lines[4].startswith("-")  # None rendered as '-'

    def test_float_formatting(self):
        text = format_table(["v"], [[0.00123], [1234.5], [12.3]])
        assert "0.0012" in text
        assert "1234" in text
        assert "12.30" in text

    def test_write_csv_roundtrip(self, tmp_path):
        path = os.path.join(tmp_path, "sub", "out.csv")
        write_csv(path, ["a", "b"], [[1, None], [2, "x"]])
        with open(path) as f:
            content = f.read().strip().splitlines()
        assert content[0] == "a,b"
        assert content[1] == "1,"
        assert content[2] == "2,x"

    def test_ms_helper(self):
        assert ms(None) is None
        assert ms(0.25) == 250.0


class TestFig5:
    def test_surface_and_optimum(self):
        result = run_fig5(Fig5Params(p_max=20))
        assert result.surface
        assert result.brute_total is not None
        # Rebalance lands within one task of the surface optimum.
        assert result.rebalance_total <= result.brute_total + 1
        assert result.optima
        for p1, p2, p3 in result.optima:
            assert p1 + p2 + p3 == result.brute_total

    def test_surface_points_feasible(self):
        params = Fig5Params(p_max=15)
        result = run_fig5(params)
        model = build_models(params)
        for p1, p2, p3, total in result.surface[:50]:
            wait = model.total_waiting_time({"jv1": p1, "jv2": p2, "jv3": p3})
            assert wait <= params.wait_budget + 1e-12
            assert total == p1 + p2 + p3

    def test_surface_p3_minimal(self):
        params = Fig5Params(p_max=15)
        result = run_fig5(params)
        model = build_models(params)
        m3 = model.models[2]
        for p1, p2, p3, _ in result.surface[:30]:
            if p3 > 1:
                wait = model.total_waiting_time({"jv1": p1, "jv2": p2, "jv3": p3 - 1})
                assert wait > params.wait_budget

    def test_report_renders(self):
        result = run_fig5(Fig5Params(p_max=12))
        text = result.report()
        assert "Rebalance chose" in text
        assert "optima" in text

    def test_csv_export(self, tmp_path):
        result = run_fig5(Fig5Params(p_max=10))
        path = result.series_csv(os.path.join(tmp_path, "surface.csv"))
        assert os.path.exists(path)
