"""Property-based tests (hypothesis) for the evaluation platform.

The invariants the tolerance algebra promises:

* relative bounds commute with positive metric scaling (rescaling a
  metric's unit never changes a relative verdict) and absolute bounds
  commute with translation;
* the widened limit is monotone in the tolerance, and scales linearly
  with the baseline under relative mode;
* a suggested empirical tolerance always admits the run it was derived
  from — including through the full compare/suggest pipeline over
  synthetic multi-seed aggregates;
* metric statistics are ordered (min <= p50 <= p95 <= max) and hygiene
  counters account for every non-finite input.
"""

from __future__ import annotations

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.evaluate import (
    Baseline,
    Candidate,
    ToleranceSpec,
    compare_runs,
    limit_value,
    suggest_from_runs,
    suggest_tolerance,
    within_tolerance,
)
from repro.evaluate.metrics import MetricSeries

finite = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
positive = st.floats(min_value=1e-3, max_value=1e6,
                     allow_nan=False, allow_infinity=False)
tolerances = st.floats(min_value=0.0, max_value=10.0,
                       allow_nan=False, allow_infinity=False)
directions = st.sampled_from(["lower", "higher"])
modes = st.sampled_from(["relative", "absolute"])


def _clear_of_limit(candidate, baseline, tolerance, mode, direction):
    """Verdicts only count away from the float-rounding knife edge."""
    limit = limit_value(baseline, tolerance, mode, direction)
    return abs(candidate - limit) > 1e-6 * max(1.0, abs(limit), abs(candidate))


class TestToleranceAlgebra:
    @given(baseline=finite, candidate=finite, tolerance=tolerances,
           scale=positive, direction=directions)
    @settings(max_examples=200, deadline=None)
    def test_relative_bounds_commute_with_positive_scaling(
        self, baseline, candidate, tolerance, scale, direction
    ):
        assume(_clear_of_limit(candidate, baseline, tolerance, "relative", direction))
        assume(_clear_of_limit(candidate * scale, baseline * scale, tolerance,
                               "relative", direction))
        original = within_tolerance(candidate, baseline, tolerance,
                                    "relative", direction)
        scaled = within_tolerance(candidate * scale, baseline * scale, tolerance,
                                  "relative", direction)
        assert original == scaled

    @given(baseline=finite, candidate=finite, tolerance=tolerances,
           shift=finite, direction=directions)
    @settings(max_examples=200, deadline=None)
    def test_absolute_bounds_commute_with_translation(
        self, baseline, candidate, tolerance, shift, direction
    ):
        assume(_clear_of_limit(candidate, baseline, tolerance, "absolute", direction))
        assume(_clear_of_limit(candidate + shift, baseline + shift, tolerance,
                               "absolute", direction))
        original = within_tolerance(candidate, baseline, tolerance,
                                    "absolute", direction)
        shifted = within_tolerance(candidate + shift, baseline + shift, tolerance,
                                   "absolute", direction)
        assert original == shifted

    @given(baseline=finite, tolerance=tolerances, scale=positive,
           direction=directions)
    @settings(max_examples=200, deadline=None)
    def test_relative_limit_scales_linearly_with_the_baseline(
        self, baseline, tolerance, scale, direction
    ):
        limit = limit_value(baseline, tolerance, "relative", direction)
        scaled = limit_value(baseline * scale, tolerance, "relative", direction)
        assert math.isclose(scaled, limit * scale,
                            rel_tol=1e-9, abs_tol=1e-9 * scale)

    @given(baseline=finite, candidate=finite, direction=directions, mode=modes,
           low=tolerances, high=tolerances)
    @settings(max_examples=200, deadline=None)
    def test_verdict_is_monotone_in_the_tolerance(
        self, baseline, candidate, direction, mode, low, high
    ):
        low, high = min(low, high), max(low, high)
        if within_tolerance(candidate, baseline, low, mode, direction):
            assert within_tolerance(candidate, baseline, high, mode, direction)

    @given(baseline=finite, direction=directions, mode=modes,
           tolerance=tolerances)
    @settings(max_examples=200, deadline=None)
    def test_the_baseline_itself_always_passes(
        self, baseline, direction, mode, tolerance
    ):
        assert within_tolerance(baseline, baseline, tolerance, mode, direction)


class TestSuggestAdmits:
    @given(baseline=finite, candidate=finite, direction=directions, mode=modes)
    @settings(max_examples=300, deadline=None)
    def test_suggested_tolerance_admits_its_own_run(
        self, baseline, candidate, direction, mode
    ):
        suggested = suggest_tolerance(candidate, baseline, mode, direction)
        if suggested is None:
            # only the relative-around-zero-baseline dead end
            assert mode == "relative" and baseline == 0.0
            return
        assert suggested >= 0.0
        assert within_tolerance(candidate, baseline, suggested, mode, direction)

    @given(
        runs=st.lists(
            st.lists(st.floats(min_value=1e-4, max_value=10.0,
                               allow_nan=False, allow_infinity=False),
                     min_size=2, max_size=5),
            min_size=1, max_size=4,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_pipeline_suggested_spec_admits_every_source_run(self, runs):
        aggregates = [self._aggregate(latencies) for latencies in runs]
        baseline = Baseline.from_aggregate("seed0", aggregates[0])
        candidates = [
            Candidate.from_aggregate(f"seed{i}", aggregate)
            for i, aggregate in enumerate(aggregates)
        ]
        _, suggested = suggest_from_runs(baseline, candidates)
        admitted = compare_runs(
            baseline, candidates, tolerance=ToleranceSpec.from_dict(suggested)
        )
        assert admitted.passed, [c.describe() for c in admitted.failures()]

    @staticmethod
    def _aggregate(latencies):
        shards = []
        for i, latency in enumerate(latencies):
            shards.append({
                "key": f"s{i:04d}",
                "constraints": [{"name": "e2e", "bound": 0.03,
                                 "fulfillment_ratio": 1.0,
                                 "violations": 0, "intervals": 8}],
                "final_parallelism": {"worker": 4},
                "series": {
                    "feeds": {"e2e": {"mean_latency": latency,
                                      "max_p95_latency": latency * 2}},
                    "task_seconds": 100.0,
                    "mean_cpu_utilization": 0.5,
                },
            })
        return {"grid": {"name": "prop"}, "shards": shards}


class TestMetricStatistics:
    @given(
        values=st.lists(
            st.one_of(
                st.none(),
                st.floats(min_value=-1e9, max_value=1e9,
                          allow_nan=False, allow_infinity=False),
                st.just(float("nan")),
                st.just(float("inf")),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_stats_are_ordered_and_hygiene_adds_up(self, values):
        series = MetricSeries("latency/prop", values)
        present = [v for v in values if v is not None]
        finite_count = sum(1 for v in present if math.isfinite(v))
        assert len(series.values) == finite_count
        assert series.dropped_non_finite == len(present) - finite_count
        stats = series.stats()
        assert stats["count"] == finite_count
        if finite_count == 0:
            assert stats["avg"] is None
            return
        assert stats["min"] <= stats["p50"] <= stats["p95"] <= stats["max"]
        assert stats["min"] <= stats["avg"] <= stats["max"]
        for value in (stats["avg"], stats["p50"], stats["p95"]):
            assert math.isfinite(value)
