"""The shared-cluster scenario: contention, honesty, traces, metrics.

End-to-end coverage of the multi-tenant engine: the canonical two-job
scenario produces admission denials, preemptions and a fairness score
deterministically; ``set_parallelism`` never reports a scale-up applied
without holding the slots (the motivating bug); duplicate vertex names
across jobs get job-qualified metric keys; and denial/preemption land
as schema-v4 branches in the decision trace.
"""

import pytest

from repro.builder import PipelineBuilder
from repro.engine.engine import EngineConfig, StreamProcessingEngine
from repro.engine.scheduler import ScalingResult
from repro.obs.config import ObservabilityConfig
from repro.obs.trace import BRANCH_ADMISSION_DENIED, BRANCH_PREEMPTED
from repro.simulation.randomness import Gamma
from repro.workloads.multi_job import (
    SharedClusterParams,
    build_shared_cluster_engine,
    run_shared_cluster,
    shared_cluster_pipelines,
)
from repro.workloads.rates import ConstantRate


def _short_params(**overrides):
    overrides.setdefault("duration", 60.0)
    return SharedClusterParams(**overrides)


@pytest.fixture(scope="module")
def canonical_result():
    return run_shared_cluster(_short_params())


class TestCanonicalScenario:
    def test_contention_actually_happens(self, canonical_result):
        cluster = canonical_result["cluster"]
        assert cluster["admission_denials"] >= 1
        assert cluster["preempted_tasks"] >= 1

    def test_per_job_fulfillment_reported(self, canonical_result):
        jobs = canonical_result["jobs"]
        assert [j["job"] for j in jobs] == ["alpha", "beta"]
        for job in jobs:
            assert job["fulfillment"] is not None
            assert 0.0 <= job["fulfillment"] <= 1.0

    def test_fairness_index_reported(self, canonical_result):
        assert 0.0 < canonical_result["fairness"] <= 1.0

    def test_heavier_job_preempts_lighter_one(self, canonical_result):
        alpha, beta = canonical_result["jobs"]
        assert alpha["account"]["preemptions_inflicted"] >= 1
        assert beta["account"]["preemptions_suffered"] >= 1
        assert beta["account"]["preemptions_suffered"] == beta["preempted_tasks"]

    def test_usage_attributed_per_job(self, canonical_result):
        total = canonical_result["cluster"]["task_hours"] * 3600.0
        per_job = sum(
            j["account"]["task_seconds"] for j in canonical_result["jobs"]
        )
        assert per_job == pytest.approx(total, rel=1e-6)

    def test_run_is_deterministic(self, canonical_result):
        assert run_shared_cluster(_short_params()) == canonical_result


class TestAdmissionHonesty:
    """Satellite 1: no applied-without-slots, no partial wiring."""

    def _two_jobs(self, worker_pool=2, slots_per_worker=4):
        def pipeline(name):
            return (
                PipelineBuilder(name)
                .source(lambda now, rng: rng.random(), rate=ConstantRate(50.0))
                .map("worker", lambda x: x, service=Gamma(0.002, 0.7),
                     parallelism=(1, 1, 16))
                .sink()
                .build()
            )

        engine = StreamProcessingEngine(EngineConfig(
            elastic=False, seed=3, worker_pool=worker_pool,
            slots_per_worker=slots_per_worker,
        ))
        return engine, engine.submit(pipeline("a")), engine.submit(pipeline("b"))

    def test_racing_scale_ups_cannot_overcommit(self):
        # 4 slots, 6 held after deploy... pool of 2x2=4 with 2 jobs x 3
        # tasks does not fit — use a pool with exactly 2 slots of slack.
        engine, job_a, job_b = self._two_jobs(worker_pool=2, slots_per_worker=4)
        resources = engine.resources
        slack = resources.allocatable_slots()
        assert slack == 2

        # Both jobs race scale-ups into the remaining slack before either
        # materializes. The first grab holds its slots at request time,
        # so the second must be denied *synchronously* — not blow up
        # inside a sim-heap callback startup_delay later.
        first = job_a.scheduler.set_parallelism("worker", 3)  # +2, takes slack
        second = job_b.scheduler.set_parallelism("worker", 3)  # +2, must lose
        assert first == ScalingResult(2, 2)
        assert second.denied
        assert second.applied == 0
        assert "insufficient cluster capacity" in second.reason

        engine.run(5.0)  # past startup_delay: the granted scale-up lands
        assert job_a.runtime.vertices["worker"].parallelism == 3
        assert job_b.runtime.vertices["worker"].parallelism == 1
        assert resources.active_tasks <= resources.total_slots
        assert resources.reserved_slots == 0

    def test_denied_request_leaks_no_reservation(self):
        engine, job_a, _job_b = self._two_jobs(worker_pool=2, slots_per_worker=4)
        before = engine.resources.allocatable_slots()
        result = job_a.scheduler.set_parallelism("worker", 99)
        assert result.denied and result.applied == 0
        assert engine.resources.allocatable_slots() == before
        assert engine.resources.admission_denials == 1

    def test_partial_grant_never_happens(self):
        # The all-or-nothing contract: a request for more than the slack
        # is denied outright rather than applied partially.
        engine, job_a, _job_b = self._two_jobs(worker_pool=2, slots_per_worker=4)
        assert engine.resources.allocatable_slots() == 2
        result = job_a.scheduler.set_parallelism("worker", 4)  # +3 > slack
        assert result.denied
        engine.run(5.0)
        assert job_a.runtime.vertices["worker"].parallelism == 1


class TestQualifiedMetricKeys:
    """Satellite 3: duplicate vertex names across jobs stay separated."""

    def _observed_engine(self):
        params = _short_params()
        engine = StreamProcessingEngine(
            EngineConfig(
                elastic=True, seed=params.seed, policy=params.policy,
                worker_pool=params.workers,
                slots_per_worker=params.slots_per_worker,
                admission=params.admission,
            ),
            observability=ObservabilityConfig(),
        )
        alpha, beta = shared_cluster_pipelines(params)
        return engine, engine.submit(alpha), engine.submit(beta), params

    def test_first_job_keeps_bare_keys_second_is_qualified(self):
        engine, job_a, job_b, _params = self._observed_engine()
        assert job_a._metric_keys["worker"] == "worker"
        assert job_b._metric_keys["worker"] == f"worker#job{job_b.job_id}"

    def test_metric_rows_never_mix(self):
        engine, job_a, job_b, params = self._observed_engine()
        engine.run(20.0)
        names = set(engine.metrics.names())
        assert "service_time.worker" in names
        assert f"service_time.worker#job{job_b.job_id}" in names

    def test_account_names_decollide_too(self):
        engine = StreamProcessingEngine(EngineConfig(worker_pool=4))

        def pipeline():
            return (
                PipelineBuilder("same-name")
                .source(lambda now, rng: 1.0, rate=ConstantRate(10.0))
                .sink()
                .build()
            )

        job_a = engine.submit(pipeline())
        job_b = engine.submit(pipeline())
        assert job_a.account.name == "same-name"
        assert job_b.account.name == f"same-name#job{job_b.job_id}"


class TestTraceBranches:
    """Denials and preemptions land as schema-v4 decision-trace records."""

    @pytest.fixture(scope="class")
    def traced_jobs(self):
        params = _short_params()
        engine = StreamProcessingEngine(
            EngineConfig(
                elastic=True, seed=params.seed, policy=params.policy,
                worker_pool=params.workers,
                slots_per_worker=params.slots_per_worker,
                admission=params.admission,
            ),
            observability=ObservabilityConfig(metrics=False),
        )
        alpha, beta = shared_cluster_pipelines(params)
        jobs = [engine.submit(alpha), engine.submit(beta)]
        engine.run(params.duration)
        return jobs

    def test_denials_recorded_in_trace(self, traced_jobs):
        branches = {}
        for job in traced_jobs:
            for branch, count in job.trace.branches().items():
                branches[branch] = branches.get(branch, 0) + count
        assert branches.get(BRANCH_ADMISSION_DENIED, 0) >= 1
        assert branches.get(BRANCH_PREEMPTED, 0) >= 1

    def test_v4_records_carry_schema_4(self, traced_jobs):
        seen = set()
        for job in traced_jobs:
            for record in job.trace:
                if record.branch in (BRANCH_ADMISSION_DENIED, BRANCH_PREEMPTED):
                    seen.add(record.schema_version())
                    assert record.vertex  # v4 branches must name a vertex
        assert seen == {4}

    def test_preempted_record_names_the_beneficiary(self, traced_jobs):
        _alpha, beta = traced_jobs
        preempted = [
            r for r in beta.trace if r.branch == BRANCH_PREEMPTED
        ]
        assert preempted
        assert all("alpha" in r.detail for r in preempted)


class TestMultiJobSweepShard:
    def test_shard_result_envelope(self):
        from repro.sweep.shard import ShardSpec, run_shard

        spec = ShardSpec(seed=1, rate=1400.0, bound=0.06,
                         workload="multi_job", duration=30.0)
        result = run_shard(spec)
        assert result["shard_schema"] == 1
        assert result["key"].startswith("multi_job-")
        assert {c["name"] for c in result["constraints"]} == {
            "alpha-e2e", "beta-e2e"
        }
        assert set(result["final_parallelism"]) == {
            "alpha.source", "alpha.worker", "alpha.sink",
            "beta.source", "beta.worker", "beta.sink",
        }
        assert "fairness" in result
        assert result["cluster"]["total_slots"] == 12
        assert result["series"]["task_seconds"] > 0
        # deterministic: the merge/byte-identity contract of the sweep
        assert run_shard(spec) == result

    def test_multi_job_is_a_valid_grid_workload(self):
        from repro.sweep.grid import SweepGrid

        grid = SweepGrid.shared_cluster()
        shards = grid.expand()
        assert len(shards) == 2
        assert all(s.workload == "multi_job" for s in shards)

    def test_build_shard_pipeline_refuses_multi_job(self):
        from repro.sweep.shard import ShardSpec, build_shard_pipeline

        spec = ShardSpec(seed=1, rate=100.0, bound=0.05, workload="multi_job")
        with pytest.raises(ValueError):
            build_shard_pipeline(spec)
