"""Property-based tests for the fast-path data structures.

Hypothesis drives randomized operation sequences against the structures
the fast-path PR rewrote — :class:`~repro.engine.queues.BoundedQueue`,
the kernel's mixed-shape heap and :class:`BatchSchedule`, and the cached
:class:`~repro.qos.stats.WindowedStats` aggregates — checking each
against a trivially correct reference model.
"""

from __future__ import annotations

import math
from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.items import DataItem
from repro.engine.queues import BoundedQueue
from repro.qos.stats import OnlineStats, StatsSnapshot, WindowedStats
from repro.simulation.kernel import Simulator

# ----------------------------------------------------------------------
# BoundedQueue: FIFO, capacity, space listeners
# ----------------------------------------------------------------------

# An op is ("put", payload) or ("get",); payloads are small ints.
_queue_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, 999)),
        st.tuples(st.just("get")),
    ),
    max_size=60,
)


class TestBoundedQueueProperties:
    @given(capacity=st.integers(1, 8), ops=_queue_ops)
    def test_fifo_and_capacity_vs_model(self, capacity, ops):
        """The queue behaves exactly like a capacity-capped deque."""
        queue = BoundedQueue(capacity)
        model: deque = deque()
        enqueued = 0
        for op in ops:
            if op[0] == "put":
                item = DataItem(op[1], created_at=0.0)
                accepted = queue.try_put(item, source=None)
                assert accepted == (len(model) < capacity)
                if accepted:
                    model.append(op[1])
                    enqueued += 1
            else:
                if model:
                    item, _source = queue.get()
                    assert item.payload == model.popleft()
                else:
                    try:
                        queue.get()
                        raise AssertionError("get() on empty queue must raise")
                    except IndexError:
                        pass
            assert len(queue) == len(model)
            assert queue.free_space == capacity - len(model)
            assert queue.is_full == (len(model) >= capacity)
        assert queue.total_enqueued == enqueued

    @given(capacity=st.integers(1, 6), n_listeners=st.integers(0, 10))
    def test_space_listeners_fire_once_each_in_fifo_order(self, capacity, n_listeners):
        queue = BoundedQueue(capacity)
        for i in range(capacity):
            assert queue.try_put(DataItem(i, created_at=0.0), None)
        fired = []
        for i in range(n_listeners):
            queue.add_space_listener(lambda i=i: fired.append(i))
        queue.get()
        # One slot freed: listeners run in FIFO order; each may not refill
        # the queue here, so all of them drain on the first notification.
        assert fired == list(range(n_listeners))
        queue.get() if len(queue) else None
        assert fired == list(range(n_listeners))  # one-shot, never refire

    @given(capacity=st.integers(1, 4))
    def test_listener_refilling_queue_stops_notification(self, capacity):
        """A listener that refills the queue parks the remaining listeners."""
        queue = BoundedQueue(capacity)
        for i in range(capacity):
            queue.try_put(DataItem(i, created_at=0.0), None)
        fired = []

        def refill():
            fired.append("refill")
            queue.try_put(DataItem(99, created_at=0.0), None)

        queue.add_space_listener(refill)
        queue.add_space_listener(lambda: fired.append("second"))
        queue.get()
        # refill consumed the freed slot -> "second" must still be parked
        assert fired == ["refill"]
        queue.get()
        assert fired == ["refill", "second"]


# ----------------------------------------------------------------------
# Kernel: BatchSchedule equals individual scheduling; cancellation
# ----------------------------------------------------------------------

_offsets = st.lists(st.floats(0.0, 10.0, allow_nan=False, width=32), max_size=30)


class TestBatchScheduleProperties:
    @given(offsets=_offsets)
    def test_batch_matches_individual_schedule_at(self, offsets):
        """One BatchSchedule fires like n successive schedule_at calls."""
        times = sorted(offsets)

        ref_sim = Simulator()
        ref_fired = []
        for t in times:
            ref_sim.schedule_at(t, ref_fired.append, t)
        ref_sim.run()

        sim = Simulator()
        fired = []
        batch = sim.schedule_batch(times, lambda: fired.append(sim.now))
        sim.run()

        assert fired == ref_fired
        assert sim.now == ref_sim.now
        assert sim.fired_events == ref_sim.fired_events
        assert batch.stopped
        assert batch.remaining == 0

    @given(
        offsets=st.lists(
            st.floats(0.0, 10.0, allow_nan=False, width=32), min_size=1, max_size=30
        ),
        stop_after=st.integers(0, 30),
    )
    def test_stop_cancels_remaining_firings(self, offsets, stop_after):
        """Stopping mid-walk fires exactly min(stop_after, n) steps."""
        times = sorted(offsets)
        sim = Simulator()
        fired = []
        batch = None

        def step():
            fired.append(sim.now)
            if len(fired) >= stop_after:
                batch.stop()

        batch = sim.schedule_batch(times, step)
        if stop_after == 0:
            batch.stop()
        sim.run()
        expected = 0 if stop_after == 0 else min(stop_after, len(times))
        assert len(fired) == expected
        assert batch.stopped
        assert batch.remaining == 0
        # A stopped batch never fires again even if the sim keeps running.
        sim.schedule(100.0, lambda: None)
        sim.run()
        assert len(fired) == expected

    @given(offsets=_offsets, extra=_offsets)
    def test_batch_interleaves_with_other_events(self, offsets, extra):
        """Plain events scheduled alongside a batch leave its walk intact."""
        times = sorted(offsets)
        sim = Simulator()
        order = []
        sim.schedule_batch(times, lambda: order.append(("batch", sim.now)))
        for t in extra:
            sim.schedule_at(t, lambda t=t: order.append(("plain", t)))
        sim.run()
        assert [t for kind, t in order if kind == "batch"] == times
        assert sorted(t for kind, t in order if kind == "plain") == sorted(extra)


# ----------------------------------------------------------------------
# Stats: Welford and cached window aggregates vs naive recomputation
# ----------------------------------------------------------------------

_samples = st.lists(
    st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False), max_size=100
)


class TestStatsProperties:
    @given(values=_samples)
    def test_welford_matches_naive_two_pass(self, values):
        stats = OnlineStats()
        for v in values:
            stats.add(v)
        assert stats.count == len(values)
        if not values:
            assert stats.mean == 0.0 and stats.variance == 0.0
            return
        naive_mean = math.fsum(values) / len(values)
        assert math.isclose(stats.mean, naive_mean, rel_tol=1e-9, abs_tol=1e-9)
        if len(values) >= 2:
            naive_var = math.fsum((v - naive_mean) ** 2 for v in values) / (
                len(values) - 1
            )
            assert math.isclose(
                stats.variance, naive_var, rel_tol=1e-9, abs_tol=1e-6
            )
        assert stats.min == min(values)
        assert stats.max == max(values)

    @given(
        window=st.integers(1, 6),
        intervals=st.lists(
            st.lists(st.floats(0.0, 1e3, allow_nan=False), max_size=20),
            max_size=12,
        ),
    )
    @settings(max_examples=60)
    def test_cached_window_aggregates_match_naive_rescan(self, window, intervals):
        """The memoized aggregates equal a from-scratch recomputation.

        The naive model replays the same snapshots into a *fresh*
        WindowedStats before every read, so its values can never come
        from a stale cache; the live instance interleaves reads between
        pushes to exercise cache invalidation.
        """
        live = WindowedStats(window)
        history = []
        for samples in intervals:
            acc = OnlineStats()
            for v in samples:
                acc.add(v)
            snap = acc.snapshot_and_reset()
            live.push(snap)
            history.append(snap)

            naive = WindowedStats(window)
            for s in history:
                naive.push(s)
            naive_values = (
                naive.has_data,
                naive.count,
                naive.mean,
                naive.weighted_mean,
                naive.variance,
                naive.cv,
            )
            # Read twice: once freshly invalidated, once from cache.
            for _ in range(2):
                assert live.has_data == naive_values[0]
                assert live.count == naive_values[1]
                assert math.isclose(
                    live.mean, naive_values[2], rel_tol=1e-9, abs_tol=1e-9
                )
                assert math.isclose(
                    live.weighted_mean, naive_values[3], rel_tol=1e-9, abs_tol=1e-9
                )
                assert math.isclose(
                    live.variance, naive_values[4], rel_tol=1e-9, abs_tol=1e-9
                )
                assert math.isclose(
                    live.cv, naive_values[5], rel_tol=1e-9, abs_tol=1e-9
                )
        live.clear()
        assert not live.has_data
        assert live.count == 0

    @given(
        counts=st.lists(st.integers(0, 5), min_size=1, max_size=10),
    )
    def test_empty_snapshots_age_the_window(self, counts):
        """m consecutive empty snapshots evict all data from the window."""
        window = 3
        stats = WindowedStats(window)
        for count in counts:
            acc = OnlineStats()
            for i in range(count):
                acc.add(float(i + 1))
            stats.push(acc.snapshot_and_reset())
        if all(c == 0 for c in counts[-window:]) and len(counts) >= window:
            assert not stats.has_data
        if any(c > 0 for c in counts[-window:]):
            assert stats.has_data


class TestSnapshotProperties:
    @given(
        count=st.integers(0, 100),
        mean=st.floats(-1e3, 1e3, allow_nan=False),
        variance=st.floats(0.0, 1e3, allow_nan=False),
    )
    def test_snapshot_derived_values(self, count, mean, variance):
        snap = StatsSnapshot(count, mean, variance)
        assert snap.stdev == math.sqrt(variance)
        if mean == 0.0:
            assert snap.cv == 0.0
        else:
            assert math.isclose(snap.cv, math.sqrt(variance) / mean, rel_tol=1e-12)
