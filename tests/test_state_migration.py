"""Stateful operators: keyed state, checkpoints, migrations, the gate.

Covers the state subsystem bottom-up: :class:`KeyedState` partitioning
and migration plans as pure data structures, the builder's
``stateful()`` declaration, checkpoint-restore crash recovery with
replay charged to latency, the reconciler's multi-phase migration
protocol (including mid-transfer failure and lossless rollback), the
migration-aware policy gate, and the crash-during-migration interaction
(a worker loss landing while a transfer is in flight must abort it
deterministically without leaking slots or state).
"""

from __future__ import annotations

import pytest

from repro.builder import PipelineBuilder
from repro.core.latency_model import MigrationCostModel, expected_migration_pause
from repro.engine.engine import EngineConfig, StreamProcessingEngine
from repro.engine.state import (
    KeyedState,
    StatefulVertexSpec,
    stable_key_hash,
)
from repro.simulation.faults import (
    MigrationFailure,
    ServiceSpike,
    TaskCrash,
    WorkerLoss,
)
from repro.simulation.randomness import Gamma
from repro.workloads.rates import ConstantRate


# ----------------------------------------------------------------------
# KeyedState: pure partitioning / migration-plan behavior
# ----------------------------------------------------------------------


class TestKeyedState:
    def test_keys_land_on_their_hash_partition(self):
        state = KeyedState("v", 4)
        for key in ("a", "b", 17, ("t", 3)):
            state.add(key, 10)
            expected = stable_key_hash(key) % 4
            assert state.partition_of(key) == expected
            assert state._partitions[expected][key] == 10

    def test_add_accumulates_and_negative_deltas_evict(self):
        state = KeyedState("v", 2)
        state.add("k", 30)
        state.add("k", 20)
        assert state.items() == {"k": 50}
        state.add("k", -50)
        assert state.items() == {}
        assert state.key_count == 0

    def test_totals_sum_over_partitions(self):
        state = KeyedState("v", 3)
        for i in range(20):
            state.add(f"k{i}", 8)
        assert state.total_bytes == 160
        assert state.key_count == 20
        assert sum(state.partition_bytes(i) for i in range(3)) == 160

    def test_plan_counts_exactly_the_relocating_keys(self):
        state = KeyedState("v", 2)
        for i in range(50):
            state.add(f"k{i}", 4)
        plan = state.plan_migration(5)
        expected_moved = {
            key
            for key in state.items()
            if stable_key_hash(key) % 5 != stable_key_hash(key) % 2
        }
        assert set(plan.moved_keys) == expected_moved
        assert plan.moved_bytes == 4 * len(expected_moved)
        # planning never mutates
        assert state.parallelism == 2

    def test_apply_then_rollback_is_lossless(self):
        state = KeyedState("v", 3)
        for i in range(40):
            state.add(f"k{i}", i + 1)
        before = state.items()
        plan = state.plan_migration(7)
        state.apply(plan)
        assert state.parallelism == 7
        assert state.items() == before
        state.rollback(plan)
        assert state.parallelism == 3
        assert state.items() == before

    def test_rollback_never_resurrects_crash_lost_state(self):
        """A crash mutating state mid-migration survives the rollback."""
        state = KeyedState("v", 2)
        for i in range(10):
            state.add(f"k{i}", 100)
        plan = state.plan_migration(4)
        # crash loses one partition's content while the transfer is in
        # flight; the rollback rebuilds the old layout from live content
        state.restore_partition(0, {})
        survivors = state.items()
        state.rollback(plan)
        assert state.items() == survivors

    def test_repartition_to_same_parallelism_moves_nothing(self):
        state = KeyedState("v", 4)
        state.add("k", 10)
        assert state.repartition(4) == 0

    def test_restore_partition_resets_only_that_partition(self):
        state = KeyedState("v", 2)
        for i in range(12):
            state.add(f"k{i}", 10)
        checkpoint = state.snapshot()
        for i in range(12):
            state.add(f"k{i}", 10)  # growth since the checkpoint
        lost = state.restore_partition(0, checkpoint)
        p0_keys = [k for k in checkpoint if stable_key_hash(k) % 2 == 0]
        assert lost == 10 * len(p0_keys)  # the un-checkpointed deltas
        assert state.partition_bytes(0) == 10 * len(p0_keys)
        # partition 1 keeps its post-checkpoint growth
        p1_keys = [k for k in checkpoint if stable_key_hash(k) % 2 == 1]
        assert state.partition_bytes(1) == 20 * len(p1_keys)

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="parallelism"):
            KeyedState("v", 0)
        state = KeyedState("v", 2)
        with pytest.raises(ValueError, match="new_parallelism"):
            state.plan_migration(0)
        with pytest.raises(ValueError, match="out of range"):
            state.restore_partition(5, {})


class TestStatefulVertexSpec:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="n_keys"):
            StatefulVertexSpec(n_keys=0)
        with pytest.raises(ValueError, match="bytes_per_event"):
            StatefulVertexSpec(bytes_per_event=-1)
        with pytest.raises(ValueError, match="replay_factor"):
            StatefulVertexSpec(replay_factor=-0.1)

    def test_describe_is_deterministic_and_complete(self):
        spec = StatefulVertexSpec(n_keys=32, bytes_per_event=48)
        described = spec.describe()
        assert described["n_keys"] == 32
        assert described["bytes_per_event"] == 48
        assert described["keyed_by_payload"] is False
        assert "transfer_bytes_per_s" in described["cost"]


class TestBuilderStateful:
    def _base(self):
        return (
            PipelineBuilder("p")
            .source(lambda now, rng: rng.random(), rate=ConstantRate(10.0))
            .map("worker", lambda x: x)
            .sink()
        )

    def test_defaults_to_the_last_added_vertex(self):
        pipeline = (
            PipelineBuilder("p")
            .source(lambda now, rng: rng.random(), rate=ConstantRate(10.0))
            .map("agg", lambda x: x)
            .stateful(n_keys=16)
            .sink()
            .build()
        )
        assert set(pipeline.stateful) == {"agg"}
        assert pipeline.stateful["agg"].n_keys == 16

    def test_rejects_unknown_vertex(self):
        with pytest.raises(ValueError, match="unknown vertex"):
            self._base().stateful("nope")

    def test_rejects_source_vertices(self):
        with pytest.raises(ValueError, match="source"):
            self._base().stateful("source")

    def test_rejects_spec_plus_kwargs(self):
        with pytest.raises(TypeError):
            self._base().stateful("worker", spec=StatefulVertexSpec(), n_keys=8)


# ----------------------------------------------------------------------
# integration scenarios
# ----------------------------------------------------------------------


def run_stateful(
    duration=40.0,
    seed=7,
    faults=(),
    stateful=True,
    checkpoint_interval=10.0,
    cost=None,
    export_dir=None,
    rate=400.0,
):
    builder = (
        PipelineBuilder("state-test")
        .source(lambda now, rng: rng.random(), rate=ConstantRate(rate))
        .map("worker", lambda x: x, service=Gamma(0.004, 0.7), parallelism=(4, 1, 32))
        .sink()
        .constrain(bound=0.030, name="e2e")
    )
    if stateful:
        kwargs = {"cost": cost} if cost is not None else {}
        builder.stateful("worker", **kwargs)
    for fault in faults:
        builder.inject(fault)
    builder.actuate()
    if export_dir is not None:
        builder.observe(export_dir=export_dir, pin_wall_time=True)
    engine = StreamProcessingEngine(
        EngineConfig(elastic=True, seed=seed, checkpoint_interval=checkpoint_interval)
    )
    job = engine.submit(builder.build())
    engine.run(duration)
    if export_dir is not None:
        engine.export_run()
    return engine, job


class TestCheckpointRestore:
    def test_crash_restores_checkpoint_and_charges_replay(self):
        engine, job = run_stateful(
            duration=25.0,
            faults=(TaskCrash(at=15.0, vertex="worker", restart_delay=1.0),),
        )
        manager = job.state_manager
        assert manager.crash_recoveries == 1
        # last checkpoint before the crash fired at t=10; the replay
        # charge is replay_factor (0.5) * the 5 s of lost progress
        assert manager.recovery_time_s == pytest.approx(2.5, abs=0.2)
        assert manager.checkpoints >= 2
        # crashed tasks recover parallelism afterwards
        rv = job.runtime.vertices["worker"]
        assert rv.parallelism == rv.target_parallelism

    def test_shorter_checkpoint_interval_buys_faster_recovery(self):
        """The checkpoint-interval knob trades pauses against recovery."""
        # crash at 14: the frequent config restored a t=12 checkpoint
        # (2 s of replay debt), the sparse one has only the implicit
        # empty t=0 checkpoint (14 s of replay debt)
        crash = (TaskCrash(at=14.0, vertex="worker", restart_delay=1.0),)
        _, frequent = run_stateful(duration=25.0, faults=crash, checkpoint_interval=4.0)
        _, sparse = run_stateful(duration=25.0, faults=crash, checkpoint_interval=16.0)
        assert frequent.state_manager.checkpoints > sparse.state_manager.checkpoints
        assert (
            frequent.state_manager.recovery_time_s
            < sparse.state_manager.recovery_time_s
        )
        assert (
            frequent.state_manager.checkpoint_pause_s
            > sparse.state_manager.checkpoint_pause_s
        )

    def test_stateless_runs_never_touch_the_state_machinery(self):
        engine, job = run_stateful(stateful=False)
        assert job.state_manager is None
        assert engine.reconciler.state_manager is None


class TestMigrationLifecycle:
    def test_spike_forces_a_paid_migration(self):
        engine, job = run_stateful(
            duration=30.0,
            faults=(ServiceSpike(at=8.0, vertex="worker", factor=3.0, duration=10.0),),
        )
        manager = job.state_manager
        assert manager.migrations_completed >= 1
        assert manager.state_migrated_bytes > 0
        assert manager.migration_pause_s > 0
        assert engine.reconciler.migrations_applied >= 1

    def test_fault_window_rolls_back_without_state_loss(self):
        engine, job = run_stateful(
            duration=40.0,
            faults=(
                ServiceSpike(at=8.0, vertex="worker", factor=3.0, duration=15.0),
                MigrationFailure(at=9.0, duration=12.0, vertex="worker"),
            ),
        )
        manager = job.state_manager
        assert manager.migrations_rolled_back >= 1
        assert engine.reconciler.migrations_rolled_back >= 1
        # rollback is lossless: only crashes lose bytes, and none ran
        assert manager.state_lost_bytes == 0
        assert manager.crash_recoveries == 0

    def test_same_seed_runs_are_identical(self):
        scenario = dict(
            duration=40.0,
            faults=(
                ServiceSpike(at=8.0, vertex="worker", factor=3.0, duration=15.0),
                MigrationFailure(at=9.0, duration=10.0, vertex="worker"),
                TaskCrash(at=25.0, vertex="worker", restart_delay=1.0),
            ),
        )
        _, a = run_stateful(**scenario)
        _, b = run_stateful(**scenario)
        assert a.state_manager.summary() == b.state_manager.summary()
        assert a.reconciler.summary() == b.reconciler.summary()


class TestMigrationGate:
    def test_gate_defers_rescales_the_stateless_model_issues(self, tmp_path):
        """The acceptance scenario: at least one rescale is deferred
        because its modeled pause would eat the remaining slack."""
        import json

        scenario = dict(
            duration=30.0,
            faults=(ServiceSpike(at=8.0, vertex="worker", factor=2.0, duration=12.0),),
            export_dir=str(tmp_path / "obs"),
        )
        engine, job = run_stateful(**scenario)
        manager = job.state_manager
        assert manager.migrations_deferred >= 1
        branches = []
        with open(tmp_path / "obs" / "trace.jsonl") as handle:
            for line in handle:
                branches.append(json.loads(line))
        deferred = [r for r in branches if r["branch"] == "migration-deferred"]
        assert deferred, "no migration-deferred record in the decision trace"
        for record in deferred:
            assert record["schema"] == 3
            assert record["vertex"] == "worker"
            assert record["state_bytes"] > 0

    def test_gate_lets_violating_rescales_proceed(self):
        """Once the bound is already violated there is nothing left to
        protect — the gate must not wedge the pipeline undersized."""
        engine, job = run_stateful(
            duration=30.0,
            faults=(ServiceSpike(at=8.0, vertex="worker", factor=3.0, duration=12.0),),
        )
        assert job.state_manager.migrations_started >= 1

    def test_advisor_is_silent_for_noop_and_stateless(self):
        from repro.engine.state import MigrationAdvisor

        engine, job = run_stateful(duration=5.0)
        advisor = MigrationAdvisor(job.state_manager)
        assert advisor.assess("worker", 4, 4) is None
        assert advisor.assess("sink", 1, 2) is None
        assessment = advisor.assess("worker", 4, 8)
        assert assessment is not None
        pause, moved = assessment
        spec = job.state_manager.spec("worker")
        assert pause == pytest.approx(expected_migration_pause(moved, spec.cost))


class TestCrashDuringMigration:
    """A worker loss landing while a state transfer is in flight."""

    #: slow transfer so every rescale's migration spans whole seconds —
    #: the worker loss below lands mid-transfer (first migration starts
    #: just past t=10 and transfers for several seconds)
    SLOW = MigrationCostModel(transfer_bytes_per_s=1e5, jitter_cv=0.0)

    def _scenario(self):
        return dict(
            duration=30.0,
            faults=(
                ServiceSpike(at=5.0, vertex="worker", factor=3.0, duration=12.0),
                WorkerLoss(at=12.0, restart_delay=1.0),
            ),
            cost=self.SLOW,
        )

    def test_in_flight_migration_aborts_and_rolls_back(self):
        engine, job = run_stateful(**self._scenario())
        manager = job.state_manager
        assert manager.migrations_started >= 1
        # the crash aborts the in-flight transfer; it rolls back instead
        # of applying a layout planned against pre-crash state
        assert manager.migrations_rolled_back >= 1
        # every migration is accounted for: applied, rolled back, or
        # superseded (planned but dropped) — none vanish
        assert manager.migrations_started >= (
            manager.migrations_completed + manager.migrations_failed
        )

    def test_no_slots_leak_and_parallelism_converges(self):
        engine, job = run_stateful(**self._scenario())
        resources = engine.resources
        active = sum(
            len(rv.active_tasks()) for rv in job.runtime.vertices.values()
        )
        assert resources.active_tasks == active
        assert (
            sum(w.used_slots for w in resources.leased_worker_list())
            == resources.active_tasks
        )
        for name, rv in job.runtime.vertices.items():
            assert rv.parallelism == rv.target_parallelism, name

    def test_the_interaction_is_deterministic(self):
        _, a = run_stateful(**self._scenario())
        _, b = run_stateful(**self._scenario())
        assert a.state_manager.summary() == b.state_manager.summary()
        assert a.reconciler.summary() == b.reconciler.summary()
