"""Unit tests for bounded queues and batching strategies."""

import pytest

from repro.engine.batching import (
    AdaptiveDeadlineBatching,
    FixedSizeBatching,
    InstantFlush,
)
from repro.engine.items import DataItem
from repro.engine.queues import BoundedQueue


def item(created=0.0, size=256):
    return DataItem("payload", created, size)


class TestBoundedQueue:
    def test_fifo_order(self):
        q = BoundedQueue(4)
        for i in range(3):
            q.try_put(item(created=float(i)), None)
        assert [q.get()[0].created_at for _ in range(3)] == [0.0, 1.0, 2.0]

    def test_capacity_enforced(self):
        q = BoundedQueue(2)
        assert q.try_put(item(), None)
        assert q.try_put(item(), None)
        assert not q.try_put(item(), None)
        assert q.is_full

    def test_free_space(self):
        q = BoundedQueue(3)
        q.try_put(item(), None)
        assert q.free_space == 2

    def test_source_channel_returned(self):
        q = BoundedQueue(2)
        q.try_put(item(), "chan-a")
        _, source = q.get()
        assert source == "chan-a"

    def test_space_listener_fires_on_get(self):
        q = BoundedQueue(1)
        q.try_put(item(), None)
        fired = []
        q.add_space_listener(lambda: fired.append(True))
        q.get()
        assert fired == [True]

    def test_listener_fires_once(self):
        q = BoundedQueue(2)
        q.try_put(item(), None)
        q.try_put(item(), None)
        fired = []
        q.add_space_listener(lambda: fired.append(True))
        q.get()
        q.get()
        assert fired == [True]

    def test_listener_refilling_queue_blocks_later_listeners(self):
        q = BoundedQueue(1)
        q.try_put(item(), None)
        order = []

        def greedy():
            order.append("greedy")
            q.try_put(item(), None)

        q.add_space_listener(greedy)
        q.add_space_listener(lambda: order.append("starved"))
        q.get()
        assert order == ["greedy"]  # queue full again; second listener waits

    def test_drain(self):
        q = BoundedQueue(4)
        q.try_put(item(), None)
        q.try_put(item(), None)
        drained = q.drain()
        assert len(drained) == 2
        assert len(q) == 0

    def test_total_enqueued_counter(self):
        q = BoundedQueue(4)
        q.try_put(item(), None)
        q.get()
        q.try_put(item(), None)
        assert q.total_enqueued == 2

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)

    def test_peek_time(self):
        q = BoundedQueue(2)
        assert q.peek_time() is None
        it = item()
        it.enqueued_at = 3.5
        q.try_put(it, None)
        assert q.peek_time() == 3.5


class TestInstantFlush:
    def test_always_flushes(self):
        s = InstantFlush()
        assert s.should_flush_on_emit(1, 10)

    def test_no_deadline(self):
        assert InstantFlush().flush_deadline() is None

    def test_clone_independent(self):
        s = InstantFlush()
        assert s.clone() is not s


class TestFixedSizeBatching:
    def test_flushes_at_byte_limit(self):
        s = FixedSizeBatching(1024)
        assert not s.should_flush_on_emit(3, 768)
        assert s.should_flush_on_emit(4, 1024)

    def test_no_deadline(self):
        assert FixedSizeBatching(1024).flush_deadline() is None

    def test_clone_copies_size(self):
        assert FixedSizeBatching(2048).clone().buffer_bytes == 2048

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            FixedSizeBatching(0)


class TestAdaptiveDeadlineBatching:
    def test_deadline_reported(self):
        s = AdaptiveDeadlineBatching(initial_deadline=0.010)
        assert s.flush_deadline() == pytest.approx(0.010)

    def test_set_deadline_clamped(self):
        s = AdaptiveDeadlineBatching(0.01, min_deadline=0.001, max_deadline=0.1)
        s.set_deadline(5.0)
        assert s.deadline == 0.1
        s.set_deadline(0.0)
        assert s.deadline == 0.001

    def test_zero_deadline_means_instant(self):
        s = AdaptiveDeadlineBatching(0.0, min_deadline=0.0)
        assert s.should_flush_on_emit(1, 10)
        assert s.flush_deadline() is None

    def test_size_cap_still_flushes(self):
        s = AdaptiveDeadlineBatching(0.01, buffer_bytes=512)
        assert not s.should_flush_on_emit(1, 256)
        assert s.should_flush_on_emit(2, 512)

    def test_clone_copies_state(self):
        s = AdaptiveDeadlineBatching(0.02, buffer_bytes=4096)
        c = s.clone()
        assert c.deadline == pytest.approx(0.02)
        assert c.buffer_bytes == 4096
        c.set_deadline(0.05)
        assert s.deadline == pytest.approx(0.02)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveDeadlineBatching(0.01, min_deadline=0.5, max_deadline=0.1)
        with pytest.raises(ValueError):
            AdaptiveDeadlineBatching(0.01, buffer_bytes=0)


class TestDataItem:
    def test_hop_copy_preserves_provenance(self):
        it = DataItem("p", 1.5, size=128, sampled=False)
        it.emitted_at = 2.0
        copy = it.hop_copy()
        assert copy.payload == "p"
        assert copy.created_at == 1.5
        assert copy.size == 128
        assert copy.sampled is False
        assert copy.emitted_at is None
