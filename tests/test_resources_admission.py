"""Admission control, arbitration and placement in the ResourceManager.

Covers the reservation-based admission path (request/allocate/cancel
accounting, quota and capacity denials), the three arbitration policies,
worker-placement strategies, the stable worker-id speed-factor fix and
Jain's fairness helper.
"""

import pytest

from repro.engine.admission import (
    AdmissionDecision,
    JobAccount,
    StrictPriorityArbitration,
    WeightedFairShareArbitration,
    create_arbitration,
    jain_fairness,
)
from repro.engine.resources import InsufficientResourcesError, ResourceManager
from repro.simulation.kernel import Simulator


class _FakeTask:
    _uid = 0

    def __init__(self, vertex_name="worker"):
        _FakeTask._uid += 1
        self.uid = _FakeTask._uid
        self.task_id = f"t{self.uid}"
        self.vertex_name = vertex_name
        self.speed_factor = 1.0


def _rm(**kwargs):
    kwargs.setdefault("pool_size", 2)
    kwargs.setdefault("slots_per_worker", 2)
    return ResourceManager(Simulator(), **kwargs)


class TestReservationAccounting:
    def test_request_reserves_and_allocate_consumes(self):
        rm = _rm()
        rm.register_job("a", "alpha")
        grant = rm.request_slots("a", 3)
        assert grant.admitted
        assert rm.reserved_slots == 3
        assert rm.free_slots_available() == 4  # reservations are not physical
        assert rm.allocatable_slots() == 1
        for _ in range(3):
            rm.allocate_slot(_FakeTask(), "a")
        account = rm.account("a")
        assert account.reserved == 0
        assert account.held == 3
        assert rm.reserved_slots == 0

    def test_cancel_returns_reserved_slots(self):
        rm = _rm()
        rm.register_job("a", "alpha")
        rm.request_slots("a", 2)
        rm.cancel_reservation("a", 2)
        assert rm.reserved_slots == 0
        assert rm.account("a").reserved == 0
        assert rm.allocatable_slots() == 4

    def test_cancel_clamps_to_outstanding(self):
        rm = _rm()
        rm.register_job("a", "alpha")
        rm.request_slots("a", 1)
        rm.cancel_reservation("a", 99)
        assert rm.reserved_slots == 0

    def test_reservations_block_other_requests(self):
        rm = _rm()  # 4 slots total
        rm.register_job("a", "alpha")
        rm.register_job("b", "beta")
        assert rm.request_slots("a", 3).admitted
        denied = rm.request_slots("b", 2)
        assert not denied.admitted
        assert "insufficient cluster capacity" in denied.reason
        assert rm.account("b").denials == 1
        assert rm.admission_denials == 1

    def test_zero_or_negative_requests_are_trivially_admitted(self):
        rm = _rm()
        assert rm.request_slots("a", 0) == AdmissionDecision(True)
        assert rm.request_slots("a", -1) == AdmissionDecision(True)
        assert rm.reserved_slots == 0

    def test_quota_caps_footprint(self):
        rm = _rm(pool_size=4)
        rm.register_job("a", "alpha", quota=2)
        assert rm.request_slots("a", 2).admitted
        denied = rm.request_slots("a", 1)
        assert not denied.admitted
        assert "quota exceeded" in denied.reason

    def test_duplicate_registration_rejected(self):
        rm = _rm()
        rm.register_job("a", "alpha")
        with pytest.raises(ValueError):
            rm.register_job("a", "alpha-again")

    def test_allocate_without_reservation_raises_on_full_pool(self):
        rm = _rm(pool_size=1, slots_per_worker=1)
        rm.allocate_slot(_FakeTask())
        with pytest.raises(InsufficientResourcesError):
            rm.allocate_slot(_FakeTask())

    def test_per_job_task_seconds_attribution(self):
        rm = _rm(pool_size=4)
        rm.register_job("a", "alpha")
        rm.register_job("b", "beta")
        ta, tb = _FakeTask(), _FakeTask()
        rm.allocate_slot(ta, "a")
        rm.allocate_slot(tb, "b")
        rm.sim.run(until=10.0)
        rm.release_slot(tb)
        rm.sim.run(until=30.0)
        summaries = rm.job_summaries()
        assert summaries["alpha"]["task_seconds"] == pytest.approx(30.0)
        assert summaries["beta"]["task_seconds"] == pytest.approx(10.0)


class TestArbitrationPolicies:
    def _fill(self, rm, job_id, count):
        tasks = [_FakeTask() for _ in range(count)]
        for task in tasks:
            rm.allocate_slot(task, job_id)
        return tasks

    def _install_hook(self, rm, job_id, tasks):
        def hook(slots, requester):
            freed = 0
            while tasks and freed < slots:
                rm.release_slot(tasks.pop())
                freed += 1
            return freed

        rm.set_preemption_hook(job_id, hook)

    def test_fcfs_never_preempts(self):
        rm = _rm(admission="fcfs")
        rm.register_job("a", "alpha")
        rm.register_job("b", "beta")
        tasks = self._fill(rm, "a", 4)
        self._install_hook(rm, "a", tasks)
        denied = rm.request_slots("b", 1)
        assert not denied.admitted
        assert rm.preempted_tasks == 0
        assert len(tasks) == 4  # hook never consulted

    def test_priority_preempts_lower_priority_holder(self):
        rm = _rm(admission="priority")
        rm.register_job("low", "low", priority=0)
        rm.register_job("high", "high", priority=5)
        tasks = self._fill(rm, "low", 4)
        self._install_hook(rm, "low", tasks)
        grant = rm.request_slots("high", 2)
        assert grant.admitted
        assert grant.preempted == (("low", 2),)
        assert rm.preempted_tasks == 2
        assert rm.account("low").preemptions_suffered == 2
        assert rm.account("high").preemptions_inflicted == 2

    def test_priority_never_preempts_equal_priority(self):
        rm = _rm(admission="priority")
        rm.register_job("a", "alpha", priority=1)
        rm.register_job("b", "beta", priority=1)
        tasks = self._fill(rm, "a", 4)
        self._install_hook(rm, "a", tasks)
        assert not rm.request_slots("b", 1).admitted
        assert rm.preempted_tasks == 0

    def test_fair_share_preempts_over_share_holder(self):
        # 4 slots, weights 3:1 -> shares 3 and 1. beta holds 3 (> 1),
        # alpha requests 2 while under its share of 3 -> beta bleeds.
        rm = _rm(admission="fair-share")
        rm.register_job("a", "alpha", weight=3.0)
        rm.register_job("b", "beta", weight=1.0)
        tasks = self._fill(rm, "b", 3)
        self._install_hook(rm, "b", tasks)
        grant = rm.request_slots("a", 2)
        assert grant.admitted
        assert grant.preempted == (("beta", 1),)
        assert rm.preempted_tasks == 1

    def test_fair_share_over_share_requester_cannot_preempt(self):
        rm = _rm(admission="fair-share")
        rm.register_job("a", "alpha", weight=1.0)
        rm.register_job("b", "beta", weight=1.0)
        tasks = self._fill(rm, "b", 2)
        self._install_hook(rm, "b", tasks)
        self._fill(rm, "a", 2)  # alpha now at its share of 2
        denied = rm.request_slots("a", 1)
        assert not denied.admitted
        assert rm.preempted_tasks == 0

    def test_unknown_arbitration_rejected(self):
        with pytest.raises(ValueError):
            create_arbitration("bogus")
        with pytest.raises(ValueError):
            _rm(admission="bogus")

    def test_priority_victims_bleed_lowest_first(self):
        policy = StrictPriorityArbitration()
        a = JobAccount("a", "a", priority=1)
        b = JobAccount("b", "b", priority=0)
        requester = JobAccount("r", "r", priority=9)
        a.held = b.held = 2
        victims = policy.victims([a, b, requester], requester, 1, 8)
        assert [v.name for v in victims] == ["b", "a"]

    def test_fair_share_victims_most_over_share_first(self):
        policy = WeightedFairShareArbitration()
        a = JobAccount("a", "a")
        b = JobAccount("b", "b")
        requester = JobAccount("r", "r")
        # shares are 4 each (12 slots / 3 equal weights)
        a.held = 6
        b.held = 5
        victims = policy.victims([a, b, requester], requester, 2, 12)
        assert [v.name for v in victims] == ["a", "b"]


class TestPlacementStrategies:
    def test_pack_fills_first_worker(self):
        rm = _rm(pool_size=4, slots_per_worker=4, placement="pack")
        for _ in range(4):
            rm.allocate_slot(_FakeTask())
        assert rm.leased_workers == 1

    def test_spread_leases_new_workers_early(self):
        rm = _rm(pool_size=4, slots_per_worker=4, placement="spread")
        for _ in range(4):
            rm.allocate_slot(_FakeTask())
        # half-full threshold: every worker keeps >= 2 free slots
        assert rm.leased_workers == 2

    def test_network_colocates_graph_neighbors(self):
        rm = _rm(pool_size=4, slots_per_worker=4, placement="network")
        rm.register_job("j", "job")
        rm.set_neighbor_map("j", {"a": {"b"}, "b": {"a"}, "c": set()})
        producer = _FakeTask("a")
        rm.allocate_slot(producer, "j")
        # pad the first worker so pack would NOT naturally pick worker 2
        filler = [_FakeTask("c") for _ in range(3)]
        for task in filler:
            rm.allocate_slot(task, "j")
        # first worker now full; consumer must land on a new worker, but
        # once the producer's worker frees a slot, neighbors rejoin it
        rm.release_slot(filler[0])
        consumer = _FakeTask("b")
        rm.allocate_slot(consumer, "j")
        assert rm.worker_of(consumer) is rm.worker_of(producer)

    def test_network_placement_falls_back_to_pack(self):
        rm = _rm(pool_size=2, slots_per_worker=2, placement="network")
        rm.register_job("j", "job")
        rm.set_neighbor_map("j", {"a": set()})
        t1, t2 = _FakeTask("a"), _FakeTask("a")
        rm.allocate_slot(t1, "j")
        rm.allocate_slot(t2, "j")
        assert rm.worker_of(t1) is rm.worker_of(t2)


class TestStableWorkerSpeeds:
    def test_speed_factor_follows_stable_worker_index(self):
        # Regression: speed factors used to be keyed by lease order, so a
        # release/re-lease could silently change a worker's speed.
        rm = ResourceManager(
            Simulator(), pool_size=3, slots_per_worker=1,
            speed_factors=[1.0, 2.0, 4.0],
        )
        tasks = [_FakeTask() for _ in range(3)]
        for task in tasks:
            rm.allocate_slot(task)
        assert [t.speed_factor for t in tasks] == [1.0, 2.0, 4.0]
        # free worker 1 (speed 2.0), then re-lease: the freed id is
        # reused lowest-first and keeps its original speed factor
        rm.release_slot(tasks[1])
        replacement = _FakeTask()
        rm.allocate_slot(replacement)
        assert replacement.speed_factor == 2.0

    def test_release_order_does_not_permute_speeds(self):
        rm = ResourceManager(
            Simulator(), pool_size=2, slots_per_worker=1,
            speed_factors=[1.0, 3.0],
        )
        t0, t1 = _FakeTask(), _FakeTask()
        rm.allocate_slot(t0)
        rm.allocate_slot(t1)
        rm.release_slot(t1)
        rm.release_slot(t0)
        ta, tb = _FakeTask(), _FakeTask()
        rm.allocate_slot(ta)
        rm.allocate_slot(tb)
        assert (ta.speed_factor, tb.speed_factor) == (1.0, 3.0)


class TestJainFairness:
    def test_equal_outcomes_are_perfectly_fair(self):
        assert jain_fairness([0.5, 0.5, 0.5]) == pytest.approx(1.0)

    def test_skewed_outcomes_lower_the_index(self):
        value = jain_fairness([1.0, 0.0, 0.0])
        assert value == pytest.approx(1.0 / 3.0)

    def test_empty_and_all_zero_are_none(self):
        assert jain_fairness([]) is None
        assert jain_fairness([0.0, 0.0]) is None
        assert jain_fairness([None, None]) is None
