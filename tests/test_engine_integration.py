"""Integration tests: the simulated engine end to end."""

import pytest

from repro.engine.batching import AdaptiveDeadlineBatching, FixedSizeBatching, InstantFlush
from repro.engine.engine import EngineConfig, StreamProcessingEngine

from conftest import make_linear_job, run_linear


def sink_udfs(engine):
    return [t.udf for t in engine.runtime.vertex("Sink").tasks]


def total_consumed(engine):
    return sum(u.consumed for u in sink_udfs(engine))


class TestThroughputConservation:
    def test_all_items_reach_sink(self):
        engine = run_linear(duration=10.0, source_rate=200.0)
        emitted = sum(
            t.items_processed for t in engine.runtime.vertex("Source").tasks
        )
        sinks = sink_udfs(engine)  # capture before teardown removes tasks
        engine.stop()  # flush remaining buffers
        engine.run(1.0)
        consumed = sum(u.consumed for u in sinks)
        # stop() tears tasks down; anything still queued or in flight when
        # the run ends is lost, but the bulk must have arrived.
        assert emitted > 1900
        assert consumed >= emitted - 50

    def test_effective_rate_matches_attempted_when_underloaded(self):
        engine = run_linear(duration=10.0, source_rate=100.0, service_mean=0.001)
        emitted = sum(t.items_processed for t in engine.runtime.vertex("Source").tasks)
        assert emitted == pytest.approx(1000, rel=0.03)

    def test_workers_share_round_robin_load(self):
        engine = run_linear(duration=10.0, source_rate=100.0, n_workers=4)
        counts = [t.items_processed for t in engine.runtime.vertex("Worker").tasks]
        assert max(counts) - min(counts) <= 2


class TestLatency:
    def test_instant_flush_latency_near_sum_of_parts(self):
        config = EngineConfig(
            batching=InstantFlush(),
            base_latency=0.0005,
            per_batch_overhead=0.0,
            per_item_overhead=0.0,
        )
        engine = run_linear(config, duration=10.0, source_rate=50.0, service_mean=0.002)
        samples = [latency for _, latency in engine.drain_sink_samples("Sink")]
        assert samples
        mean = sum(samples) / len(samples)
        # two hops of 0.5 ms network + 2 ms service (+ transfer + sink pickup)
        assert 0.003 <= mean <= 0.006

    def test_fixed_buffer_latency_far_higher_at_low_rate(self):
        instant = run_linear(
            EngineConfig(batching=InstantFlush()), duration=20.0, source_rate=50.0
        )
        fixed = run_linear(
            EngineConfig(batching=FixedSizeBatching(16 * 1024)),
            duration=20.0,
            source_rate=50.0,
        )
        instant_mean = _mean_latency(instant)
        fixed_mean = _mean_latency(fixed)
        assert fixed_mean > 20 * instant_mean

    def test_adaptive_deadline_bounds_batch_wait(self):
        config = EngineConfig(batching=AdaptiveDeadlineBatching(initial_deadline=0.015))
        engine = run_linear(config, duration=15.0, source_rate=50.0, service_mean=0.001)
        samples = [latency for _, latency in engine.drain_sink_samples("Sink")]
        mean = sum(samples) / len(samples)
        # Two gates, each holding items at most 15 ms.
        assert mean < 2 * 0.015 + 0.005
        assert mean > 0.005  # batching clearly adds latency over instant

    def test_latency_grows_with_utilization(self):
        low = run_linear(duration=15.0, source_rate=100.0, service_mean=0.002,
                         service_cv=1.0, n_workers=1, jitter="exponential")
        high = run_linear(duration=15.0, source_rate=400.0, service_mean=0.002,
                          service_cv=1.0, n_workers=1, jitter="exponential")
        assert _mean_latency(high) > _mean_latency(low)


def _mean_latency(engine):
    samples = [latency for _, latency in engine.drain_sink_samples("Sink")]
    assert samples, "no sink samples collected"
    return sum(samples) / len(samples)


class TestBackpressure:
    def overloaded_engine(self, duration=20.0):
        config = EngineConfig(queue_capacity=32, channel_capacity=8)
        return run_linear(
            config,
            duration=duration,
            source_rate=500.0,
            service_mean=0.01,
            n_workers=1,
        )

    def test_source_throttled_to_service_capacity(self):
        engine = self.overloaded_engine()
        emitted = sum(t.items_processed for t in engine.runtime.vertex("Source").tasks)
        # capacity = 100 items/s on one worker; attempted was 500/s
        assert emitted < 0.35 * 500 * 20

    def test_queues_and_credits_bounded(self):
        engine = self.overloaded_engine()
        worker = engine.runtime.vertex("Worker").tasks[0]
        assert len(worker.input_queue) <= 32
        for channel in worker.in_channels:
            assert channel.outstanding <= 8

    def test_measured_utilization_saturates(self):
        engine = self.overloaded_engine()
        vs = engine.last_summary.vertex("Worker")
        assert vs is not None
        assert vs.utilization > 0.9

    def test_no_items_lost_under_backpressure(self):
        engine = self.overloaded_engine()
        emitted = sum(t.items_emitted for t in engine.runtime.vertex("Source").tasks)
        worker = engine.runtime.vertex("Worker").tasks[0]
        in_buffers = sum(g.buffered_items for t in engine.runtime.vertex("Source").tasks for g in t.out_gates)
        in_flight = sum(c.outstanding for c in worker.in_channels)
        queued = len(worker.input_queue)
        processed = worker.items_processed
        busy = 1 if worker._busy else 0
        assert emitted == in_flight + queued + processed + busy - (in_flight - in_flight)  # sanity
        assert processed + queued + in_flight + busy >= emitted - 1


class TestMeasurementPipeline:
    def test_service_time_measured_accurately(self):
        engine = run_linear(duration=15.0, source_rate=100.0, service_mean=0.004)
        vs = engine.last_summary.vertex("Worker")
        assert vs.service_mean == pytest.approx(0.004, rel=0.15)

    def test_arrival_rate_measured_per_task(self):
        engine = run_linear(duration=15.0, source_rate=100.0, n_workers=2)
        vs = engine.last_summary.vertex("Worker")
        assert vs.arrival_rate == pytest.approx(50.0, rel=0.15)

    def test_utilization_is_lambda_times_service(self):
        engine = run_linear(duration=15.0, source_rate=100.0, service_mean=0.004, n_workers=2)
        vs = engine.last_summary.vertex("Worker")
        assert vs.utilization == pytest.approx(50 * 0.004, rel=0.2)

    def test_channel_latency_at_least_obl(self):
        config = EngineConfig(batching=AdaptiveDeadlineBatching(initial_deadline=0.01))
        engine = run_linear(config, duration=15.0, source_rate=100.0)
        es = engine.last_summary.edge("Source->Worker")
        assert es.channel_latency >= es.output_batch_latency

    def test_edge_summaries_cover_all_edges(self):
        engine = run_linear(duration=12.0)
        assert set(engine.last_summary.edges) == {"Source->Worker", "Worker->Sink"}

    def test_summary_history_grows_per_adjustment_interval(self):
        engine = run_linear(duration=21.0)
        # adjustment interval 5 s -> summaries at 5, 10, 15, 20
        assert len(engine.summary_history) == 4


class TestDeterminism:
    def test_same_seed_same_event_count(self):
        a = run_linear(EngineConfig(seed=3), duration=10.0, service_cv=0.5, jitter="exponential")
        b = run_linear(EngineConfig(seed=3), duration=10.0, service_cv=0.5, jitter="exponential")
        assert a.sim.fired_events == b.sim.fired_events
        assert total_consumed(a) == total_consumed(b)

    def test_different_seed_differs(self):
        a = run_linear(EngineConfig(seed=3), duration=10.0, service_cv=0.5, jitter="exponential")
        b = run_linear(EngineConfig(seed=4), duration=10.0, service_cv=0.5, jitter="exponential")
        assert total_consumed(a) != total_consumed(b)


class TestEngineLifecycle:
    def test_same_graph_twice_rejected(self):
        engine = StreamProcessingEngine(EngineConfig())
        graph = make_linear_job()
        engine.submit(graph)
        with pytest.raises(RuntimeError):
            engine.submit(graph)

    def test_multiple_jobs_share_the_engine(self):
        engine = StreamProcessingEngine(EngineConfig())
        job_a = engine.submit(make_linear_job(source_rate=50.0))
        job_b = engine.submit(make_linear_job(source_rate=80.0))
        engine.run(10.0)
        for job in (job_a, job_b):
            sinks = [t.udf for t in job.runtime.vertex("Sink").tasks]
            assert sum(u.consumed for u in sinks) > 0
        # convenience accessors address the first job
        assert engine.runtime is job_a.runtime
        # both jobs' tasks occupy slots in the shared pool
        assert engine.resources.active_tasks == 8

    def test_probe_applies_to_next_submit(self):
        engine = StreamProcessingEngine(EngineConfig())
        seen = []
        engine.add_vertex_probe("Worker", lambda latency, payload: seen.append(latency))
        engine.submit(make_linear_job(source_rate=50.0))
        engine.run(5.0)
        assert seen

    def test_stopping_one_job_keeps_the_other(self):
        engine = StreamProcessingEngine(EngineConfig())
        job_a = engine.submit(make_linear_job(source_rate=50.0))
        job_b = engine.submit(make_linear_job(source_rate=50.0))
        engine.run(5.0)
        job_a.stop()
        engine.run(5.0)
        sinks_b = [t.udf for t in job_b.runtime.vertex("Sink").tasks]
        consumed_mid = sum(u.consumed for u in sinks_b)
        engine.run(5.0)
        assert sum(u.consumed for u in sinks_b) > consumed_mid
        assert engine.resources.active_tasks == 4  # only job_b's tasks

    def test_stop_releases_all_slots(self):
        engine = run_linear(duration=5.0)
        engine.stop()
        assert engine.resources.active_tasks == 0

    def test_parallelism_accessor(self):
        engine = run_linear(duration=2.0, n_workers=3)
        assert engine.parallelism("Worker") == 3

    def test_tracker_for_unknown_constraint_raises(self):
        engine = run_linear(duration=2.0)
        from repro.core.constraints import LatencyConstraint
        from repro.graphs.sequences import JobSequence

        other = make_linear_job()
        js = JobSequence.from_names(other, ["Worker"])
        with pytest.raises(KeyError):
            engine.tracker_for(LatencyConstraint(js, 0.1))
