"""Tests for assumption diagnostics and ASCII chart rendering."""

import pytest

from repro.engine.engine import EngineConfig, StreamProcessingEngine
from repro.experiments.ascii import line_chart, series_panel, sparkline
from repro.qos.diagnostics import (
    HOT_SPOT,
    LOAD_SKEW,
    AssumptionChecker,
    Finding,
)

from conftest import make_linear_job, run_linear


class TestAssumptionChecker:
    def test_detects_hot_spot(self):
        checker = AssumptionChecker(service_ratio=2.0)
        findings = checker.check(
            {"V": {"a": 0.01, "b": 0.01, "c": 0.01, "d": 0.05}},
            {},
        )
        assert len(findings) == 1
        finding = findings[0]
        assert finding.kind == HOT_SPOT
        assert finding.task_id == "d"
        assert finding.ratio == pytest.approx(5.0)
        assert "homogeneity" in finding.message

    def test_no_findings_when_homogeneous(self):
        checker = AssumptionChecker()
        findings = checker.check(
            {"V": {"a": 0.010, "b": 0.011, "c": 0.009}},
            {"V": {"a": 100.0, "b": 105.0, "c": 98.0}},
        )
        assert findings == []

    def test_detects_skew_both_directions(self):
        checker = AssumptionChecker(arrival_ratio=2.0)
        findings = checker.check(
            {},
            {"V": {"a": 100.0, "b": 100.0, "c": 100.0, "hot": 300.0, "cold": 20.0}},
        )
        kinds = {(f.task_id, f.kind) for f in findings}
        assert ("hot", LOAD_SKEW) in kinds
        assert ("cold", LOAD_SKEW) in kinds

    def test_small_vertices_skipped(self):
        checker = AssumptionChecker(min_tasks=3)
        findings = checker.check({"V": {"a": 0.01, "b": 1.0}}, {})
        assert findings == []

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            AssumptionChecker(service_ratio=1.0)
        with pytest.raises(ValueError):
            AssumptionChecker(min_tasks=1)

    def test_finding_repr(self):
        finding = Finding(HOT_SPOT, "V", "V[0]", 3.0)
        assert "V[0]" in repr(finding)


class TestEngineDiagnostics:
    def test_homogeneous_cluster_clean(self):
        engine = run_linear(duration=15.0, source_rate=200.0, n_workers=4,
                            service_mean=0.004, service_cv=0.3)
        assert engine.check_assumptions() == []

    def test_slow_worker_flagged(self):
        config = EngineConfig(
            worker_speed_factors=(1.0, 0.2, 1.0, 1.0, 1.0, 1.0),
            slots_per_worker=1,
        )
        engine = run_linear(config, duration=15.0, source_rate=200.0,
                            n_workers=4, service_mean=0.004, service_cv=0.3)
        findings = engine.check_assumptions()
        assert any(f.kind == HOT_SPOT for f in findings)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_ramp(self):
        result = sparkline([1.0, 2.0, 3.0, 4.0])
        assert result[0] == "▁"
        assert result[-1] == "█"
        assert len(result) == 4

    def test_constant_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_none_renders_space(self):
        assert sparkline([1.0, None, 2.0])[1] == " "

    def test_all_none(self):
        assert sparkline([None, None]) == "  "

    def test_downsampling(self):
        result = sparkline(list(range(100)), width=10)
        assert len(result) == 10
        assert result[-1] == "█"


class TestLineChart:
    def test_renders_label_and_bounds(self):
        chart = line_chart([1.0, 5.0, 3.0], height=4, label="latency", unit="ms")
        assert "latency" in chart
        assert "1.0" in chart and "5.0" in chart
        assert chart.count("\n") == 4

    def test_no_data(self):
        assert "(no data)" in line_chart([None, None], label="x")

    def test_invalid_height(self):
        with pytest.raises(ValueError):
            line_chart([1.0], height=1)

    def test_stars_present(self):
        chart = line_chart([0.0, 10.0, 0.0, 10.0], height=3)
        assert chart.count("*") == 4


class TestSeriesPanel:
    def test_multiple_series(self):
        panel = series_panel(
            "dashboard",
            [("rate", [1.0, 2.0, 3.0]), ("latency", [0.1, 0.2, None])],
        )
        lines = panel.splitlines()
        assert lines[0] == "dashboard"
        assert "rate" in lines[1] and "max 3.0" in lines[1]
        assert "latency" in lines[2]

    def test_empty_series_noted(self):
        panel = series_panel("d", [("empty", [None])])
        assert "(no data)" in panel
