"""Byte-identity regression test for the simulation fast path.

Replays the pinned golden scenario (``tests/golden_scenario.py``) and
diffs its ``export_run`` artifacts byte-for-byte against the committed
copies in ``tests/golden/``, which were produced before the fast-path
optimizations landed. Any change to event ordering, RNG consumption or
float arithmetic on the obs-off/actuation-off hot path shows up here as
a diff — intentional behavior changes must regenerate the goldens via
``PYTHONPATH=src python tests/golden_scenario.py --write`` and say so in
the PR description.
"""

from __future__ import annotations

import json
import os

import pytest

from golden_scenario import GOLDEN_DIR, GOLDEN_FILES, run_scenario


def _read_bytes(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


def _first_diff_line(golden: bytes, fresh: bytes) -> str:
    golden_lines = golden.splitlines()
    fresh_lines = fresh.splitlines()
    for index, (g, f) in enumerate(zip(golden_lines, fresh_lines)):
        if g != f:
            return (
                f"first diff at line {index + 1}:\n"
                f"  golden: {g[:200]!r}\n"
                f"  fresh:  {f[:200]!r}"
            )
    return (
        f"line counts differ: golden={len(golden_lines)} fresh={len(fresh_lines)}"
    )


@pytest.fixture(scope="module")
def fresh_export(tmp_path_factory):
    """One replay of the golden scenario, shared by the module's tests."""
    export_dir = str(tmp_path_factory.mktemp("golden_replay"))
    run_scenario(export_dir)
    return export_dir


class TestGoldenByteIdentity:
    def test_golden_files_exist(self):
        for name in GOLDEN_FILES:
            assert os.path.isfile(os.path.join(GOLDEN_DIR, name)), (
                f"missing golden file {name}; regenerate with "
                f"PYTHONPATH=src python tests/golden_scenario.py --write"
            )

    @pytest.mark.parametrize("name", GOLDEN_FILES)
    def test_replay_is_byte_identical(self, fresh_export, name):
        golden = _read_bytes(os.path.join(GOLDEN_DIR, name))
        fresh = _read_bytes(os.path.join(fresh_export, name))
        assert fresh == golden, (
            f"{name} diverged from the golden copy "
            f"({_first_diff_line(golden, fresh)})"
        )

    def test_manifest_is_valid_json(self, fresh_export):
        with open(os.path.join(fresh_export, "manifest.json")) as handle:
            manifest = json.load(handle)
        assert manifest  # non-empty

    def test_trace_lines_are_valid_json(self, fresh_export):
        with open(os.path.join(fresh_export, "trace.jsonl")) as handle:
            lines = [line for line in handle if line.strip()]
        assert lines, "golden scenario produced no scaler trace"
        for line in lines:
            json.loads(line)


class TestDoubleRunIdentity:
    def test_two_replays_are_byte_identical(self, fresh_export, tmp_path):
        """Same-seed determinism: two in-process runs export identical bytes."""
        second = str(tmp_path / "second")
        run_scenario(second)
        for name in GOLDEN_FILES:
            a = _read_bytes(os.path.join(fresh_export, name))
            b = _read_bytes(os.path.join(second, name))
            assert a == b, f"{name} differs between two same-seed runs"
