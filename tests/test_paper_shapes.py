"""Regression locks on the paper's qualitative results, at test scale.

Each test pins one phenomenon from the paper on a small scenario so
that refactorings cannot silently lose it (the benchmark suite asserts
the same shapes at larger scale).
"""

import pytest

from repro.core.constraints import LatencyConstraint
from repro.engine.batching import FixedSizeBatching, InstantFlush
from repro.engine.engine import EngineConfig, StreamProcessingEngine
from repro.engine.udf import MapUDF, SinkUDF, SourceUDF
from repro.graphs.job_graph import JobGraph
from repro.graphs.sequences import JobSequence
from repro.simulation.randomness import Gamma
from repro.workloads.rates import ConstantRate, PiecewiseRate

OVERHEADS = dict(per_batch_overhead=0.0015, per_item_overhead=0.00002)


def saturating_job(rate, n_workers=4, service_mean=0.0025):
    graph = JobGraph("shape")
    src = graph.add_vertex("Src", lambda: SourceUDF(lambda now, rng: 0))
    worker = graph.add_vertex(
        "W", lambda: MapUDF(lambda x: x, service_dist=Gamma(service_mean, 0.7)),
        parallelism=n_workers,
    )
    sink = graph.add_vertex("Snk", lambda: SinkUDF())
    graph.connect(src, worker)
    graph.connect(worker, sink)
    src.rate_profile = ConstantRate(rate)
    return graph


def effective_rate(config, rate, duration=25.0):
    engine = StreamProcessingEngine(config)
    engine.submit(saturating_job(rate))
    engine.run(duration)
    emitted = sum(t.items_processed for t in engine.runtime.vertex("Src").tasks)
    return emitted / duration


class TestSection3Motivation:
    """Sec. III-C: batching buys effective throughput under saturation."""

    def test_batching_raises_saturated_throughput(self):
        attempted = 2500.0  # capacity without overhead: 4 / 2.5 ms = 1600/s
        instant = effective_rate(
            EngineConfig(batching=InstantFlush(), queue_capacity=64,
                         channel_capacity=8, seed=5, **OVERHEADS),
            attempted,
        )
        batched = effective_rate(
            EngineConfig(batching=FixedSizeBatching(16 * 1024), queue_capacity=64,
                         channel_capacity=8, seed=5, **OVERHEADS),
            attempted,
        )
        # paper: +58 % for 16 KiB over instant flushing
        assert batched > instant * 1.2

    def test_underload_unaffected_by_batching_choice(self):
        light = 300.0
        instant = effective_rate(
            EngineConfig(batching=InstantFlush(), seed=5, **OVERHEADS), light
        )
        batched = effective_rate(
            EngineConfig(batching=FixedSizeBatching(16 * 1024), seed=5, **OVERHEADS),
            light,
        )
        assert instant == pytest.approx(light, rel=0.1)
        assert batched == pytest.approx(light, rel=0.1)


def elastic_engine_with(profile, bound, seed=7, p_max=32):
    graph = JobGraph("shape-elastic")
    src = graph.add_vertex("Src", lambda: SourceUDF(lambda now, rng: 0))
    worker = graph.add_vertex(
        "W", lambda: MapUDF(lambda x: x, service_dist=Gamma(0.0025, 0.7)),
        parallelism=4, min_parallelism=1, max_parallelism=p_max,
    )
    sink = graph.add_vertex("Snk", lambda: SinkUDF())
    graph.connect(src, worker)
    graph.connect(worker, sink)
    src.rate_profile = profile
    js = JobSequence.from_names(graph, ["W"], leading_edge=True, trailing_edge=True)
    constraint = LatencyConstraint(js, bound)
    engine = StreamProcessingEngine(
        EngineConfig.nephele_adaptive(elastic=True, seed=seed, **OVERHEADS)
    )
    engine.submit(graph, [constraint])
    return engine, constraint


class TestSection5Dynamics:
    """Sec. V-A: the violation spike at a rate jump, then recovery."""

    def test_rate_jump_causes_transient_violation_then_recovery(self):
        profile = PiecewiseRate([(0.0, 100.0), (60.0, 1500.0)])
        engine, constraint = elastic_engine_with(profile, bound=0.030)
        engine.run(180.0)
        history = engine.tracker_for(constraint).history
        jump_window = [v for t, _, v in history if 60.0 <= t <= 85.0]
        tail_window = [v for t, _, v in history if t >= 140.0]
        assert any(jump_window), "the reactive policy cannot avoid the jump violation"
        assert tail_window
        assert sum(tail_window) / len(tail_window) <= 0.25, "no recovery after the jump"

    def test_warmup_scale_down_is_the_spike_mechanism(self):
        """During light load the scaler shrinks parallelism — the paper's
        explanation for why the first increment hits so hard."""
        profile = PiecewiseRate([(0.0, 80.0)])
        engine, _ = elastic_engine_with(profile, bound=0.030)
        engine.run(60.0)
        assert engine.parallelism("W") <= 2

    def test_higher_bound_costs_fewer_elastic_task_seconds(self):
        """The task-hour table's direction (paper: 46.4 .. 37.6)."""
        profile_segments = [(0.0, 200.0), (30.0, 1000.0), (60.0, 200.0)]

        def elastic_task_seconds(bound):
            engine, _ = elastic_engine_with(
                PiecewiseRate(list(profile_segments)), bound=bound
            )
            total = 0.0
            last = 0.0
            for _ in range(18):
                engine.run(5.0)
                total += engine.parallelism("W") * 5.0
            return total

        tight = elastic_task_seconds(0.020)
        loose = elastic_task_seconds(0.100)
        assert loose <= tight

    def test_overprovisioning_after_burst_corrected(self):
        """Paper: over-scaling is corrected by subsequent scale-downs."""
        profile = PiecewiseRate([(0.0, 200.0), (30.0, 1500.0), (60.0, 200.0)])
        engine, _ = elastic_engine_with(profile, bound=0.030)
        engine.run(55.0)
        peak_p = engine.parallelism("W")
        engine.run(80.0)
        settled_p = engine.parallelism("W")
        assert peak_p >= 5
        assert settled_p < peak_p


class TestOverlappingConstraints:
    """Algorithm 2's P_min: a later Rebalance never undercuts an earlier one."""

    def test_shared_vertex_gets_max_of_both_constraints(self):
        graph = JobGraph("overlap")
        src = graph.add_vertex("Src", lambda: SourceUDF(lambda now, rng: 0))
        shared = graph.add_vertex(
            "Shared", lambda: MapUDF(lambda x: x, service_dist=Gamma(0.004, 0.7)),
            parallelism=2, min_parallelism=1, max_parallelism=32,
        )
        tail = graph.add_vertex(
            "Tail", lambda: MapUDF(lambda x: x, service_dist=Gamma(0.002, 0.7)),
            parallelism=2, min_parallelism=1, max_parallelism=32,
        )
        sink = graph.add_vertex("Snk", lambda: SinkUDF())
        graph.connect(src, shared)
        graph.connect(shared, tail)
        graph.connect(tail, sink)
        src.rate_profile = ConstantRate(600.0)
        js_loose = JobSequence.from_names(graph, ["Shared"], leading_edge=True,
                                          trailing_edge=True)
        js_tight = JobSequence.from_names(graph, ["Shared", "Tail"],
                                          leading_edge=True, trailing_edge=True)
        loose = LatencyConstraint(js_loose, 0.200, name="loose")
        tight = LatencyConstraint(js_tight, 0.025, name="tight")
        engine = StreamProcessingEngine(
            EngineConfig.nephele_adaptive(elastic=True, seed=9, **OVERHEADS)
        )
        engine.submit(graph, [loose, tight])
        engine.run(90.0)
        # The tight constraint needs Shared well above the loose one's
        # choice; the merged decision must satisfy both trackers mostly.
        assert engine.tracker_for(tight).fulfillment_ratio > 0.6
        assert engine.tracker_for(loose).fulfillment_ratio > 0.8
        assert engine.parallelism("Shared") >= 3  # 600/s x 4 ms = 2.4 busy
