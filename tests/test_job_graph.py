"""Unit tests for the job graph model."""

import pytest

from repro.engine.udf import MapUDF
from repro.graphs.job_graph import GraphError, JobEdge, JobGraph, JobVertex, iter_edges_between


def udf_factory():
    return MapUDF(lambda x: x)


def make_diamond():
    """a -> b, a -> c, b -> d, c -> d."""
    graph = JobGraph("diamond")
    a = graph.add_vertex("a", udf_factory)
    b = graph.add_vertex("b", udf_factory)
    c = graph.add_vertex("c", udf_factory)
    d = graph.add_vertex("d", udf_factory)
    graph.connect(a, b)
    graph.connect(a, c)
    graph.connect(b, d)
    graph.connect(c, d)
    return graph


class TestJobVertex:
    def test_defaults_pin_parallelism(self):
        v = JobVertex("v", udf_factory, parallelism=4)
        assert (v.min_parallelism, v.max_parallelism) == (4, 4)
        assert not v.elastic

    def test_elastic_detection(self):
        v = JobVertex("v", udf_factory, parallelism=4, min_parallelism=1, max_parallelism=8)
        assert v.elastic

    def test_clamp(self):
        v = JobVertex("v", udf_factory, parallelism=4, min_parallelism=2, max_parallelism=8)
        assert v.clamp(1) == 2
        assert v.clamp(5) == 5
        assert v.clamp(99) == 8

    def test_invalid_parallelism_rejected(self):
        with pytest.raises(GraphError):
            JobVertex("v", udf_factory, parallelism=0)

    def test_initial_outside_bounds_rejected(self):
        with pytest.raises(GraphError):
            JobVertex("v", udf_factory, parallelism=1, min_parallelism=2, max_parallelism=4)

    def test_min_above_max_rejected(self):
        with pytest.raises(GraphError):
            JobVertex("v", udf_factory, parallelism=3, min_parallelism=5, max_parallelism=3)


class TestJobEdge:
    def test_default_pattern(self):
        graph = JobGraph("g")
        a = graph.add_vertex("a", udf_factory)
        b = graph.add_vertex("b", udf_factory)
        edge = graph.connect(a, b)
        assert edge.pattern == "round_robin"
        assert edge.name == "a->b"

    def test_key_pattern_requires_key_fn(self):
        graph = JobGraph("g")
        a = graph.add_vertex("a", udf_factory)
        b = graph.add_vertex("b", udf_factory)
        with pytest.raises(GraphError):
            graph.connect(a, b, pattern="key")

    def test_unknown_pattern_rejected(self):
        graph = JobGraph("g")
        a = graph.add_vertex("a", udf_factory)
        b = graph.add_vertex("b", udf_factory)
        with pytest.raises(GraphError):
            graph.connect(a, b, pattern="bogus")

    def test_broadcast_pattern_accepted(self):
        graph = JobGraph("g")
        a = graph.add_vertex("a", udf_factory)
        b = graph.add_vertex("b", udf_factory)
        assert graph.connect(a, b, pattern="broadcast").pattern == "broadcast"


class TestJobGraph:
    def test_duplicate_vertex_rejected(self):
        graph = JobGraph("g")
        graph.add_vertex("a", udf_factory)
        with pytest.raises(GraphError):
            graph.add_vertex("a", udf_factory)

    def test_self_loop_rejected(self):
        graph = JobGraph("g")
        a = graph.add_vertex("a", udf_factory)
        with pytest.raises(GraphError):
            graph.connect(a, a)

    def test_cycle_rejected(self):
        graph = JobGraph("g")
        a = graph.add_vertex("a", udf_factory)
        b = graph.add_vertex("b", udf_factory)
        graph.connect(a, b)
        with pytest.raises(GraphError):
            graph.connect(b, a)

    def test_foreign_vertex_rejected(self):
        graph = JobGraph("g")
        a = graph.add_vertex("a", udf_factory)
        foreign = JobVertex("x", udf_factory)
        with pytest.raises(GraphError):
            graph.connect(a, foreign)

    def test_topological_order_linear(self):
        graph = JobGraph("g")
        a = graph.add_vertex("a", udf_factory)
        b = graph.add_vertex("b", udf_factory)
        c = graph.add_vertex("c", udf_factory)
        graph.connect(a, b)
        graph.connect(b, c)
        assert [v.name for v in graph.topological_order()] == ["a", "b", "c"]

    def test_topological_order_diamond(self):
        order = [v.name for v in make_diamond().topological_order()]
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_sources_and_sinks(self):
        graph = make_diamond()
        assert [v.name for v in graph.sources()] == ["a"]
        assert [v.name for v in graph.sinks()] == ["d"]

    def test_vertex_lookup(self):
        graph = make_diamond()
        assert graph.vertex("b").name == "b"
        with pytest.raises(KeyError):
            graph.vertex("zz")

    def test_edge_between(self):
        graph = make_diamond()
        assert graph.edge_between("a", "b").name == "a->b"
        with pytest.raises(KeyError):
            graph.edge_between("b", "a")

    def test_downstream_of(self):
        graph = make_diamond()
        assert graph.downstream_of(graph.vertex("a")) == {"b", "c", "d"}
        assert graph.downstream_of(graph.vertex("d")) == set()

    def test_validate_requires_source_and_sink(self):
        graph = JobGraph("g")
        with pytest.raises(GraphError):
            graph.validate()
        graph.add_vertex("a", udf_factory)
        graph.validate()  # a lone vertex is both source and sink

    def test_iter_edges_between(self):
        graph = make_diamond()
        names = {e.name for e in iter_edges_between(graph, ["a", "b", "d"])}
        assert names == {"a->b", "b->d"}

    def test_inputs_outputs_wiring(self):
        graph = make_diamond()
        a = graph.vertex("a")
        d = graph.vertex("d")
        assert len(a.outputs) == 2
        assert len(a.inputs) == 0
        assert len(d.inputs) == 2
