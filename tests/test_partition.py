"""Partitioned single-scenario runs: slice planning, pooled execution,
deterministic merge.

The determinism wall from the issue: the same plan run with 1, 2 and 4
worker processes must produce byte-identical merged artifacts
(``partitions.json``, ``metrics.jsonl``, ``trace.jsonl``,
``manifest.json``); a slice crash is retried in isolation, and a slice
that fails every attempt aborts with :class:`PartitionError` instead of
merging a partial bundle.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import cli
from repro.obs.manifest import MANIFEST_FILE, METRICS_FILE, TRACE_FILE
from repro.sweep import PartitionError, PartitionPlan, run_partitioned
from repro.sweep.partition import (
    PARTITION_STATS_FILE,
    PARTITIONS_FILE,
    slice_name,
)
from repro.sweep.pool import PoolError, PoolJob, PoolStats, run_pool

#: every merged artifact that must be byte-identical across worker counts
MERGED_FILES = (PARTITIONS_FILE, METRICS_FILE, TRACE_FILE, MANIFEST_FILE)


def tiny_plan(**overrides):
    """A 2-slice steady plan small enough for unit tests."""
    kwargs = dict(scenario="steady", seed=11, rate=250.0, bound=0.030,
                  duration=4.0, slices=2)
    kwargs.update(overrides)
    return PartitionPlan(**kwargs)


def read_bytes(path):
    with open(path, "rb") as handle:
        return handle.read()


# ----------------------------------------------------------------------
# plan construction
# ----------------------------------------------------------------------


class TestPartitionPlan:
    def test_slices_split_seed_and_rate(self):
        plan = tiny_plan(seed=20, rate=300.0, slices=3)
        specs = plan.specs()
        assert [spec.seed for spec in specs] == [20, 21, 22]
        assert all(spec.rate == pytest.approx(100.0) for spec in specs)
        assert all(spec.workload == "steady" for spec in specs)

    def test_slice_set_is_independent_of_worker_count(self):
        plan = tiny_plan()
        keys = [spec.key for spec in plan.specs()]
        assert keys == [spec.key for spec in tiny_plan().specs()]

    def test_describe_is_deterministic(self):
        assert tiny_plan().describe() == tiny_plan().describe()
        assert tiny_plan().describe()["slices"] == 2

    @pytest.mark.parametrize("kwargs", [
        dict(scenario="nope"),
        dict(slices=0),
        dict(slices=-1),
        dict(slices=2.0),
        dict(slices=True),
        dict(rate=0.0),
        dict(rate=-5.0),
    ])
    def test_invalid_plan_rejected(self, kwargs):
        with pytest.raises(PartitionError):
            tiny_plan(**kwargs)

    def test_slice_name_orders_lexically(self):
        names = [slice_name(index) for index in range(12)]
        assert names == sorted(names)


# ----------------------------------------------------------------------
# pooled execution + deterministic merge
# ----------------------------------------------------------------------


class TestPartitionedRun:
    def test_merge_is_byte_identical_across_worker_counts(self, tmp_path):
        """The acceptance scenario: 1, 2 and 4 workers, same bytes."""
        plan = tiny_plan()
        outs = {}
        for workers in (1, 2, 4):
            out = str(tmp_path / f"w{workers}")
            run_partitioned(plan, out, partitions=workers)
            outs[workers] = out
        for filename in MERGED_FILES:
            reference = read_bytes(os.path.join(outs[1], filename))
            assert read_bytes(os.path.join(outs[2], filename)) == reference
            assert read_bytes(os.path.join(outs[4], filename)) == reference

    def test_merged_totals_sum_slice_events(self, tmp_path):
        plan = tiny_plan()
        merged = run_partitioned(plan, str(tmp_path / "out"), partitions=2)
        slices = merged["slices"]
        assert len(slices) == plan.slices
        fired = sum(result["fired_events"] for result in slices)
        assert merged["totals"]["fired_events"] == fired
        assert fired > 0
        for bucket in merged["totals"]["constraints"].values():
            assert 0.0 <= bucket["fulfillment_ratio"] <= 1.0

    def test_slices_merge_in_index_order(self, tmp_path):
        plan = tiny_plan()
        merged = run_partitioned(plan, str(tmp_path / "out"), partitions=2)
        keys = [result["key"] for result in merged["slices"]]
        assert keys == [spec.key for spec in plan.specs()]

    def test_crashed_slice_is_retried_and_merge_unchanged(self, tmp_path):
        plan = tiny_plan()
        clean = str(tmp_path / "clean")
        run_partitioned(plan, clean, partitions=2)
        crashy = str(tmp_path / "crashy")
        run_partitioned(plan, crashy, partitions=2,
                        fail_once_marker=str(tmp_path / "crash-once"))
        for filename in MERGED_FILES:
            assert (read_bytes(os.path.join(crashy, filename))
                    == read_bytes(os.path.join(clean, filename)))
        stats = json.loads(read_bytes(os.path.join(crashy, PARTITION_STATS_FILE)))
        assert stats["retried"] == 1
        assert stats["done"] == plan.slices

    def test_slice_failing_every_attempt_aborts_without_partial_merge(self, tmp_path):
        plan = tiny_plan()
        out = str(tmp_path / "out")
        # a marker path that can never be created -> crashes every attempt
        marker = str(tmp_path / "missing-dir" / "marker")
        with pytest.raises(PartitionError, match="refusing to merge"):
            run_partitioned(plan, out, partitions=2, max_retries=1,
                            fail_once_marker=marker)
        for filename in MERGED_FILES:
            assert not os.path.exists(os.path.join(out, filename))

    def test_invalid_partitions_rejected(self, tmp_path):
        with pytest.raises(PartitionError):
            run_partitioned(tiny_plan(), str(tmp_path / "out"), partitions=0)

    def test_stats_record_wall_clock_only_outside_merged_files(self, tmp_path):
        out = str(tmp_path / "out")
        run_partitioned(tiny_plan(), out, partitions=2)
        stats = json.loads(read_bytes(os.path.join(out, PARTITION_STATS_FILE)))
        assert stats["partitions"] == 2
        assert stats["slices"] == 2
        assert stats["wall_s"] > 0.0
        assert stats["events_per_sec"] > 0.0
        merged = json.loads(read_bytes(os.path.join(out, PARTITIONS_FILE)))
        assert "wall_s" not in json.dumps(merged)


# ----------------------------------------------------------------------
# the generic pool
# ----------------------------------------------------------------------


def _pool_write_entry(path, payload):
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)


class TestPool:
    def test_runs_every_job(self, tmp_path):
        jobs = [
            PoolJob(f"job-{index}", _pool_write_entry,
                    (str(tmp_path / f"job-{index}.txt"), f"payload-{index}"))
            for index in range(4)
        ]
        stats, outcomes = run_pool(jobs, workers=2)
        assert stats.done == 4
        assert stats.failed == 0
        assert sorted(outcome.key for outcome in outcomes) == sorted(
            job.key for job in jobs)
        for index in range(4):
            assert (tmp_path / f"job-{index}.txt").read_text() == f"payload-{index}"

    def test_verify_failure_triggers_retry(self, tmp_path):
        # job writes its file, but verify only accepts it once a side
        # marker exists -> first attempt "fails", retry succeeds
        target = str(tmp_path / "out.txt")
        marker = tmp_path / "marker"

        def verify(job):
            if not marker.exists():
                marker.write_text("seen")
                return False
            return True

        jobs = [PoolJob("only", _pool_write_entry, (target, "data"))]
        stats, outcomes = run_pool(jobs, workers=1, max_retries=1, verify=verify)
        assert stats.done == 1
        assert stats.retried == 1
        assert outcomes[-1].attempts == 2

    @pytest.mark.parametrize("kwargs", [
        dict(workers=0), dict(workers=-2), dict(workers=True),
        dict(max_retries=-1), dict(max_retries=False),
    ])
    def test_invalid_pool_args_rejected(self, kwargs):
        with pytest.raises(PoolError):
            run_pool([], **kwargs)

    def test_speedup_defaults_to_one(self):
        stats = PoolStats()
        assert stats.speedup == 1.0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestPartitionCli:
    def test_run_partitions_writes_merged_bundle(self, tmp_path, capsys):
        out = str(tmp_path / "bundle")
        code = cli.main(["run", "--partitions", "2", "--slices", "2",
                         "--duration", "4", "--rate", "250",
                         "--obs-dir", out])
        assert code == 0
        for filename in MERGED_FILES + (PARTITION_STATS_FILE,):
            assert os.path.exists(os.path.join(out, filename))
        captured = capsys.readouterr().out
        assert "fired events" in captured
        assert "constraint" in captured

    def test_merged_bundle_passes_trace_check(self, tmp_path, capsys):
        """repro trace --check validates a partitioned bundle's artifacts."""
        out = str(tmp_path / "bundle")
        assert cli.main(["run", "--partitions", "2", "--slices", "2",
                         "--duration", "4", "--rate", "250",
                         "--obs-dir", out]) == 0
        capsys.readouterr()
        assert cli.main(["trace", "--check", "--obs-dir", out]) == 0
        assert "trace check OK" in capsys.readouterr().out

    def test_run_partitions_failure_exits_nonzero(self, tmp_path, capsys):
        code = cli.main(["run", "--partitions", "0",
                         "--obs-dir", str(tmp_path / "x")])
        assert code == 1
        assert "partitioned run failed" in capsys.readouterr().out
