"""Byte-identity regression test for the stateful-chaos scenario.

Replays the pinned golden stateful scenario
(``tests/golden_stateful_scenario.py``) — a stateful worker under a
service spike with a migration-failure window (forcing an in-flight
migration to roll back) and a task crash (checkpoint-restore recovery) —
and diffs its ``export_run`` artifacts byte-for-byte against the
committed copies in ``tests/golden/stateful/``. Any change to the
migration protocol's event ordering, RNG stream consumption, state
accounting or trace v3 emission shows up here as a diff — intentional
behavior changes must regenerate the goldens via ``PYTHONPATH=src
python tests/golden_stateful_scenario.py --write`` and say so in the PR
description.
"""

from __future__ import annotations

import json
import os

import pytest

from golden_stateful_scenario import GOLDEN_DIR, GOLDEN_FILES, run_scenario


def _read_bytes(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


def _first_diff_line(golden: bytes, fresh: bytes) -> str:
    golden_lines = golden.splitlines()
    fresh_lines = fresh.splitlines()
    for index, (g, f) in enumerate(zip(golden_lines, fresh_lines)):
        if g != f:
            return (
                f"first diff at line {index + 1}:\n"
                f"  golden: {g[:200]!r}\n"
                f"  fresh:  {f[:200]!r}"
            )
    return (
        f"line counts differ: golden={len(golden_lines)} fresh={len(fresh_lines)}"
    )


@pytest.fixture(scope="module")
def fresh_export(tmp_path_factory):
    """One replay of the stateful golden scenario, shared module-wide."""
    export_dir = str(tmp_path_factory.mktemp("stateful_golden_replay"))
    run_scenario(export_dir)
    return export_dir


class TestStatefulGoldenByteIdentity:
    def test_golden_files_exist(self):
        for name in GOLDEN_FILES:
            assert os.path.isfile(os.path.join(GOLDEN_DIR, name)), (
                f"missing golden file {name}; regenerate with "
                f"PYTHONPATH=src python tests/golden_stateful_scenario.py --write"
            )

    @pytest.mark.parametrize("name", GOLDEN_FILES)
    def test_replay_is_byte_identical(self, fresh_export, name):
        golden = _read_bytes(os.path.join(GOLDEN_DIR, name))
        fresh = _read_bytes(os.path.join(fresh_export, name))
        assert fresh == golden, (
            f"{name} diverged from the golden copy "
            f"({_first_diff_line(golden, fresh)})"
        )

    def test_trace_covers_the_migration_lifecycle(self):
        """The pinned trace exercises every v3 migration branch."""
        branches = set()
        with open(os.path.join(GOLDEN_DIR, "trace.jsonl")) as handle:
            records = [json.loads(line) for line in handle if line.strip()]
        for record in records:
            branches.add(record["branch"])
        assert {
            "migration-pending",
            "migration-failed",
            "migration-rolled-back",
            "migration-deferred",
        } <= branches, f"golden trace misses migration branches (have {sorted(branches)})"
        # migration records are schema 3 and carry moved-bytes accounting
        for record in records:
            if record["branch"].startswith("migration-"):
                assert record["schema"] == 3
        assert any(
            record.get("state_bytes") for record in records
        ), "no migration record carries state_bytes"

    def test_manifest_records_the_state_section(self):
        with open(os.path.join(GOLDEN_DIR, "manifest.json")) as handle:
            manifest = json.load(handle)
        state = manifest["state"]
        assert state["migrations"]["rolled_back"] >= 1
        assert state["migrations"]["deferred"] >= 1
        assert state["crash_recoveries"] >= 1
        assert state["recovery_time_s"] > 0
        assert state["state_migrated_bytes"] > 0


class TestStatefulDoubleRunIdentity:
    def test_two_replays_are_byte_identical(self, fresh_export, tmp_path):
        """Same-seed determinism: two in-process runs export identical bytes."""
        second = str(tmp_path / "second")
        run_scenario(second)
        for name in GOLDEN_FILES:
            a = _read_bytes(os.path.join(fresh_export, name))
            b = _read_bytes(os.path.join(second, name))
            assert a == b, f"{name} differs between two same-seed runs"
