"""The pinned scenario behind the byte-identity regression test.

``tests/golden/`` holds the ``export_run`` artifacts (manifest, scaler
decision trace, metrics) of this scenario as produced *before* the
simulation fast path landed. ``tests/test_determinism.py`` replays the
scenario on every run and diffs the export byte-for-byte against the
golden copies: any optimization that changes event order, RNG
consumption or float arithmetic on the obs-off/actuation-off hot path
shows up as a diff.

Regenerating the goldens (only when a PR *intentionally* changes
behavior — say so in the PR description)::

    PYTHONPATH=src python tests/golden_scenario.py --write
"""

from __future__ import annotations

import os
import sys

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden")

#: the export files pinned by the golden copies
GOLDEN_FILES = ("manifest.json", "trace.jsonl", "metrics.jsonl")

#: bump alongside intentional behavior changes so stale goldens fail loudly
SCENARIO_SEED = 2024
SCENARIO_DURATION = 60.0


def run_scenario(export_dir: str):
    """Run the pinned elastic scenario and export into ``export_dir``."""
    from repro.builder import PipelineBuilder
    from repro.engine.engine import EngineConfig, StreamProcessingEngine
    from repro.simulation.randomness import Gamma
    from repro.workloads.rates import ConstantRate, PiecewiseRate

    pipeline = (
        PipelineBuilder("golden")
        .source(
            lambda now, rng: rng.random(),
            rate=PiecewiseRate([(0.0, 200.0), (20.0, 500.0), (40.0, 250.0)]),
        )
        .map("worker", lambda x: x * x, service=Gamma(0.004, 0.7), parallelism=(4, 1, 32))
        .sink()
        .constrain(bound=0.030, name="e2e")
        .observe(export_dir=export_dir, pin_wall_time=True)
        .build()
    )
    engine = StreamProcessingEngine(EngineConfig(elastic=True, seed=SCENARIO_SEED))
    engine.submit(pipeline)
    engine.run(SCENARIO_DURATION)
    return engine.export_run()


def main(argv) -> int:
    if "--write" not in argv:
        print(__doc__)
        return 2
    paths = run_scenario(GOLDEN_DIR)
    for kind, path in sorted(paths.items()):
        print(f"wrote {kind}: {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
