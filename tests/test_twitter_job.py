"""Unit tests for the TwitterSentiment job (Fig. 7 topology and UDFs)."""

import pytest

from repro.simulation.randomness import Deterministic
from repro.workloads.tweets import Tweet
from repro.workloads.twitter_job import (
    HotTopicsMergerUDF,
    MergedTopics,
    SentimentResult,
    SentimentUDF,
    TopicFilterUDF,
    TopicList,
    TwitterSentimentParams,
    build_twitter_sentiment_job,
)


def tweet(*topics, text="watching {}"):
    return Tweet(text.format(topics[0]), tuple(topics), "user1")


class TestTopology:
    def test_vertices(self):
        graph, constraints = build_twitter_sentiment_job()
        assert set(graph.vertices) == {
            "TweetSource", "HotTopics", "HotTopicsMerger", "Filter", "Sentiment", "Sink",
        }

    def test_edges_and_patterns(self):
        graph, _ = build_twitter_sentiment_job()
        assert graph.edge_between("HotTopicsMerger", "Filter").pattern == "broadcast"
        assert graph.edge_between("TweetSource", "Filter").pattern == "round_robin"
        assert len(graph.edges) == 6

    def test_elastic_vertices(self):
        graph, _ = build_twitter_sentiment_job()
        for name in ("HotTopics", "Filter", "Sentiment"):
            assert graph.vertex(name).elastic, name
        for name in ("TweetSource", "HotTopicsMerger", "Sink"):
            assert not graph.vertex(name).elastic, name

    def test_constraints_match_paper(self):
        _, constraints = build_twitter_sentiment_job()
        one, two = constraints
        assert one.bound == pytest.approx(0.215)
        assert one.sequence.vertex_names() == ["HotTopics", "HotTopicsMerger", "Filter"]
        assert two.bound == pytest.approx(0.030)
        assert two.sequence.vertex_names() == ["Filter", "Sentiment"]
        assert two.sequence.edge_names() == [
            "TweetSource->Filter", "Filter->Sentiment", "Sentiment->Sink",
        ]

    def test_source_profile_attached(self):
        graph, _ = build_twitter_sentiment_job()
        assert graph.vertex("TweetSource").rate_profile is not None

    def test_params_respected(self):
        params = TwitterSentimentParams(ht_initial=7, sentiment_max=33)
        graph, _ = build_twitter_sentiment_job(params)
        assert graph.vertex("HotTopics").parallelism == 7
        assert graph.vertex("Sentiment").max_parallelism == 33


class FakeSimTask:
    """Minimal host for UDFs needing a clock."""

    class _Sim:
        now = 0.0

    def __init__(self):
        self.sim = self._Sim()


class TestHotTopicsMerger:
    def make(self, staleness=1.0):
        udf = HotTopicsMergerUDF(top_k=3, staleness=staleness, service_dist=Deterministic(0))
        host = FakeSimTask()
        udf.open(host)
        return udf, host

    def test_merges_partials(self):
        udf, _ = self.make()
        udf.process(TopicList(1, (("#a", 5), ("#b", 2))))
        (merged,) = udf.process(TopicList(2, (("#b", 4), ("#c", 1))))
        assert isinstance(merged, MergedTopics)
        assert merged.topics == frozenset({"#a", "#b", "#c"})

    def test_latest_partial_per_source_wins(self):
        udf, _ = self.make()
        udf.process(TopicList(1, (("#a", 10),)))
        (merged,) = udf.process(TopicList(1, (("#z", 1),)))
        assert merged.topics == frozenset({"#z"})

    def test_top_k_enforced(self):
        udf, _ = self.make()
        counts = tuple((f"#t{i}", 10 - i) for i in range(6))
        (merged,) = udf.process(TopicList(1, counts))
        assert len(merged.topics) == 3
        assert "#t0" in merged.topics

    def test_stale_partials_expire(self):
        udf, host = self.make(staleness=1.0)
        udf.process(TopicList(1, (("#old", 99),)))
        host.sim.now = 5.0
        (merged,) = udf.process(TopicList(2, (("#new", 1),)))
        assert merged.topics == frozenset({"#new"})


class TestTopicFilter:
    def make(self):
        return TopicFilterUDF(Deterministic(0.001), Deterministic(0.0001))

    def test_drops_off_topic_tweets(self):
        udf = self.make()
        udf.process(MergedTopics(("#hot",)))
        assert list(udf.process(tweet("#cold"))) == []
        assert udf.tweets_seen == 1
        assert udf.tweets_passed == 0

    def test_forwards_on_topic_tweets(self):
        udf = self.make()
        udf.process(MergedTopics(("#hot",)))
        t = tweet("#hot", "#other")
        assert list(udf.process(t)) == [t]
        assert udf.tweets_passed == 1

    def test_topic_list_updates_state_silently(self):
        udf = self.make()
        assert list(udf.process(MergedTopics(("#a",)))) == []

    def test_no_topics_drops_everything(self):
        udf = self.make()
        assert list(udf.process(tweet("#any"))) == []

    def test_service_time_cheaper_for_lists(self, rng):
        udf = self.make()
        assert udf.service_time(MergedTopics(("#a",)), rng) == pytest.approx(0.0001)
        assert udf.service_time(tweet("#a"), rng) == pytest.approx(0.001)


class TestSentimentUDF:
    def test_classifies_first_topic(self):
        udf = SentimentUDF(Deterministic(0.001))
        (result,) = udf.process(tweet("#x", text="i love {}"))
        assert isinstance(result, SentimentResult)
        assert result.topic == "#x"
        assert result.label == "positive"


class TestSinkCounting:
    def test_sentiment_counts_accumulate(self):
        graph, _ = build_twitter_sentiment_job()
        sink = graph.vertex("Sink").udf_factory()
        sink.process(SentimentResult("#a", "positive"))
        sink.process(SentimentResult("#a", "positive"))
        sink.process(SentimentResult("#b", "negative"))
        assert sink.sentiment_counts[("#a", "positive")] == 2
        assert sink.sentiment_counts[("#b", "negative")] == 1
