"""Tests for the fluent pipeline builder."""

import pytest

from repro.builder import BuiltPipeline, PipelineBuilder
from repro.engine.engine import EngineConfig, StreamProcessingEngine
from repro.simulation.randomness import Gamma
from repro.workloads.rates import ConstantRate


def simple_pipeline(bound=None, parallelism=(2, 1, 8)):
    builder = (
        PipelineBuilder("test")
        .source(lambda now, rng: rng.random(), rate=ConstantRate(100.0))
        .map("double", lambda x: 2 * x, service=Gamma(0.002, 0.5), parallelism=parallelism)
        .sink()
    )
    if bound is not None:
        builder.constrain(bound)
    return builder.build()


class TestBuilderStructure:
    def test_linear_chain(self):
        built = simple_pipeline()
        assert [v.name for v in built.graph.topological_order()] == [
            "source", "double", "sink",
        ]

    def test_parallelism_tuple(self):
        built = simple_pipeline(parallelism=(3, 1, 10))
        vertex = built.graph.vertex("double")
        assert vertex.parallelism == 3
        assert vertex.min_parallelism == 1
        assert vertex.max_parallelism == 10
        assert vertex.elastic

    def test_parallelism_int_is_fixed(self):
        built = simple_pipeline(parallelism=4)
        assert not built.graph.vertex("double").elastic

    def test_filter_and_flat_map(self):
        built = (
            PipelineBuilder("t")
            .source(lambda now, rng: 1, rate=ConstantRate(10.0))
            .filter("f", lambda x: x > 0)
            .flat_map("fm", lambda x: [x, x])
            .sink()
            .build()
        )
        assert set(built.graph.vertices) == {"source", "f", "fm", "sink"}

    def test_key_by_sets_pattern(self):
        built = (
            PipelineBuilder("t")
            .source(lambda now, rng: rng.random(), rate=ConstantRate(10.0))
            .key_by(lambda x: int(x * 10))
            .map("m", lambda x: x)
            .sink()
            .build()
        )
        assert built.graph.edge_between("source", "m").pattern == "key"
        # pattern resets for the next edge
        assert built.graph.edge_between("m", "sink").pattern == "round_robin"

    def test_broadcast_sets_pattern(self):
        built = (
            PipelineBuilder("t")
            .source(lambda now, rng: 1, rate=ConstantRate(10.0))
            .broadcast()
            .map("m", lambda x: x, parallelism=3)
            .sink()
            .build()
        )
        assert built.graph.edge_between("source", "m").pattern == "broadcast"

    def test_constraint_shape(self):
        built = simple_pipeline(bound=0.030)
        (constraint,) = built.constraints
        assert constraint.bound == 0.030
        assert constraint.sequence.vertex_names() == ["double"]
        assert constraint.sequence.edge_names() == ["source->double", "double->sink"]


class TestBuilderErrors:
    def test_two_sources_rejected(self):
        builder = PipelineBuilder("t").source(lambda n, r: 1, ConstantRate(1.0))
        with pytest.raises(ValueError):
            builder.source(lambda n, r: 1, ConstantRate(1.0))

    def test_stage_before_source_rejected(self):
        with pytest.raises(ValueError):
            PipelineBuilder("t").map("m", lambda x: x)

    def test_stage_after_sink_rejected(self):
        builder = (
            PipelineBuilder("t")
            .source(lambda n, r: 1, ConstantRate(1.0))
            .map("m", lambda x: x)
            .sink()
        )
        with pytest.raises(ValueError):
            builder.map("late", lambda x: x)

    def test_build_without_sink_rejected(self):
        builder = PipelineBuilder("t").source(lambda n, r: 1, ConstantRate(1.0))
        with pytest.raises(ValueError):
            builder.build()

    def test_constrain_without_middle_stage_rejected(self):
        builder = (
            PipelineBuilder("t").source(lambda n, r: 1, ConstantRate(1.0)).sink()
        )
        with pytest.raises(ValueError):
            builder.constrain(0.01)

    def test_constrain_before_sink_rejected(self):
        builder = (
            PipelineBuilder("t")
            .source(lambda n, r: 1, ConstantRate(1.0))
            .map("m", lambda x: x)
        )
        with pytest.raises(ValueError):
            builder.constrain(0.01)


class TestBuilderEndToEnd:
    def test_built_pipeline_runs_elastically(self):
        built = simple_pipeline(bound=0.030)
        engine = StreamProcessingEngine(EngineConfig.nephele_adaptive(elastic=True))
        engine.submit(built)
        engine.run(30.0)
        tracker = engine.trackers[0]
        assert tracker.intervals_observed > 0
        assert tracker.fulfillment_ratio > 0.5

    def test_sink_callback_sees_payloads(self):
        seen = []
        built = (
            PipelineBuilder("t")
            .source(lambda now, rng: 21, rate=ConstantRate(50.0, jitter="deterministic"))
            .map("double", lambda x: 2 * x)
            .sink(on_item=seen.append)
            .build()
        )
        engine = StreamProcessingEngine(EngineConfig())
        engine.submit(built)
        engine.run(5.0)
        assert seen
        assert all(v == 42 for v in seen)

    def test_doctest_example(self):
        import doctest
        import repro.builder as module

        failures, _ = doctest.testmod(module)
        assert failures == 0
