"""Unit tests for the analytic queueing module + DES-vs-theory validation.

The last test class is load-bearing for the whole reproduction: it runs
the discrete-event engine in configurations with known closed forms
(M/M/1, M/D/1) and checks the *measured* queue waits against theory.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.pipeline import PipelineStage, predict_pipeline_latency, saturation_rate
from repro.analysis.queueing import (
    INFINITY,
    allen_cunneen_waiting_time,
    erlang_c,
    md1_waiting_time,
    mg1_waiting_time,
    mm1_queue_length,
    mm1_waiting_time,
    mmc_waiting_time,
    required_servers,
)


class TestMM1:
    def test_known_value(self):
        # lambda = 80/s, S = 10 ms -> rho = 0.8, Wq = 0.8/(100-80) = 40 ms
        assert mm1_waiting_time(80.0, 0.010) == pytest.approx(0.040)

    def test_zero_load(self):
        assert mm1_waiting_time(0.0, 0.01) == 0.0

    def test_saturated(self):
        assert mm1_waiting_time(100.0, 0.01) == INFINITY

    def test_queue_length_littles_law(self):
        lam, s = 50.0, 0.01
        wq = mm1_waiting_time(lam, s)
        assert mm1_queue_length(lam, s) == pytest.approx(lam * wq)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mm1_waiting_time(-1.0, 0.01)


class TestMG1:
    def test_md1_is_half_mm1(self):
        assert md1_waiting_time(50.0, 0.01) == pytest.approx(
            mm1_waiting_time(50.0, 0.01) / 2.0
        )

    def test_pk_reduces_to_mm1_for_cv_one(self):
        assert mg1_waiting_time(50.0, 0.01, 1.0) == pytest.approx(
            mm1_waiting_time(50.0, 0.01)
        )

    def test_pk_reduces_to_md1_for_cv_zero(self):
        assert mg1_waiting_time(50.0, 0.01, 0.0) == pytest.approx(
            md1_waiting_time(50.0, 0.01)
        )

    def test_higher_cv_longer_wait(self):
        low = mg1_waiting_time(50.0, 0.01, 0.5)
        high = mg1_waiting_time(50.0, 0.01, 2.0)
        assert high > low

    def test_negative_cv_rejected(self):
        with pytest.raises(ValueError):
            mg1_waiting_time(50.0, 0.01, -0.1)


class TestErlangC:
    def test_single_server_reduces_to_rho(self):
        # For M/M/1, P(wait) = rho.
        assert erlang_c(1, 0.7) == pytest.approx(0.7)

    def test_saturated_always_waits(self):
        assert erlang_c(4, 4.0) == 1.0
        assert erlang_c(4, 5.0) == 1.0

    def test_zero_load_never_waits(self):
        assert erlang_c(8, 0.0) == 0.0

    def test_known_value(self):
        # Classic Erlang C table: c = 2, a = 1 -> P(wait) = 1/3.
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)

    def test_more_servers_less_waiting(self):
        values = [erlang_c(c, 3.5) for c in (4, 6, 8, 12)]
        assert values == sorted(values, reverse=True)

    @given(
        c=st.integers(min_value=1, max_value=50),
        load_fraction=st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=80, deadline=None)
    def test_probability_bounds(self, c, load_fraction):
        p = erlang_c(c, c * load_fraction)
        assert 0.0 <= p <= 1.0


class TestMMC:
    def test_single_server_matches_mm1(self):
        assert mmc_waiting_time(50.0, 0.01, 1) == pytest.approx(
            mm1_waiting_time(50.0, 0.01)
        )

    def test_saturated(self):
        assert mmc_waiting_time(400.0, 0.01, 4) == INFINITY

    def test_pooling_beats_split_queues(self):
        # One shared c=2 queue waits less than two independent M/M/1s.
        shared = mmc_waiting_time(160.0, 0.01, 2)
        split = mm1_waiting_time(80.0, 0.01)
        assert shared < split


class TestAllenCunneen:
    def test_reduces_to_mmc_for_unit_cv(self):
        assert allen_cunneen_waiting_time(50.0, 0.01, 2, 1.0, 1.0) == pytest.approx(
            mmc_waiting_time(50.0, 0.01, 2)
        )

    def test_variability_scaling(self):
        base = allen_cunneen_waiting_time(50.0, 0.01, 2, 1.0, 1.0)
        halved = allen_cunneen_waiting_time(50.0, 0.01, 2, 1.0, 0.0)
        assert halved == pytest.approx(base / 2.0)

    def test_invalid_servers(self):
        with pytest.raises(ValueError):
            allen_cunneen_waiting_time(50.0, 0.01, 0)


class TestRequiredServers:
    def test_minimal_and_sufficient(self):
        c = required_servers(500.0, 0.01, wait_budget=0.002)
        assert allen_cunneen_waiting_time(500.0, 0.01, c) <= 0.002
        assert (
            c == 6  # offered load 5: stability alone needs 6
            or allen_cunneen_waiting_time(500.0, 0.01, c - 1) > 0.002
        )

    def test_tighter_budget_needs_more(self):
        loose = required_servers(500.0, 0.01, 0.01)
        tight = required_servers(500.0, 0.01, 0.0001)
        assert tight >= loose

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            required_servers(10.0, 0.01, 0.0)


class TestPipelinePrediction:
    def stages(self):
        return [
            PipelineStage("a", 0.002, service_cv=1.0, parallelism=2),
            PipelineStage("b", 0.005, service_cv=0.5, parallelism=4, selectivity=0.5),
            PipelineStage("c", 0.001, service_cv=1.0, parallelism=1),
        ]

    def test_prediction_positive_and_finite(self):
        latency = predict_pipeline_latency(self.stages(), input_rate=200.0)
        assert latency is not None
        assert latency > 0.002 + 0.005 + 0.001

    def test_saturated_returns_none(self):
        assert predict_pipeline_latency(self.stages(), input_rate=5000.0) is None

    def test_selectivity_reduces_downstream_load(self):
        stages = self.stages()
        # stage c sees half the rate; at 700/s it survives only thanks to
        # stage b's 0.5 selectivity (c capacity = 1000/s).
        latency = predict_pipeline_latency(stages, input_rate=700.0)
        assert latency is not None

    def test_saturation_rate(self):
        stages = self.stages()
        # capacities: a: 1000/s, b: 800/s, c: 1000/s at half rate -> 2000/s
        assert saturation_rate(stages) == pytest.approx(800.0)

    def test_latency_grows_with_rate(self):
        low = predict_pipeline_latency(self.stages(), 100.0)
        high = predict_pipeline_latency(self.stages(), 700.0)
        assert high > low

    def test_hop_costs_added(self):
        bare = predict_pipeline_latency(self.stages(), 100.0, hop_latency=0.0)
        hops = predict_pipeline_latency(self.stages(), 100.0, hop_latency=0.001)
        assert hops == pytest.approx(bare + 3 * 0.001)

    def test_invalid_stage_params(self):
        with pytest.raises(ValueError):
            PipelineStage("x", -0.001)
        with pytest.raises(ValueError):
            PipelineStage("x", 0.001, parallelism=0)


class TestEngineMatchesTheory:
    """Validate the DES against closed-form queueing results."""

    def run_station(self, rate, service_mean, service_cv, jitter, duration=120.0):
        """Ground-truth mean queue wait from per-item end-to-end samples.

        e2e = queue wait + service (network, batching and sink cost are
        zeroed), so the item-weighted mean wait is ``mean(e2e) - E[S]``.
        Note the engine's own summaries use the paper's Eq. 2 interval
        averaging, which deliberately underweights bursty intervals — for
        comparing against closed forms we need the per-item mean.
        """
        from repro.engine.engine import EngineConfig, StreamProcessingEngine
        from conftest import make_linear_job

        config = EngineConfig(
            base_latency=0.0,
            per_batch_overhead=0.0,
            per_item_overhead=0.0,
            queue_capacity=100_000,
            channel_capacity=100_000,
            seed=3,
        )
        engine = StreamProcessingEngine(config)
        graph = make_linear_job(
            source_rate=rate,
            service_mean=service_mean,
            service_cv=service_cv,
            n_workers=1,
            n_sinks=1,
            jitter=jitter,
        )
        graph.vertex("Sink").udf_factory = lambda: __import__(
            "repro.engine.udf", fromlist=["SinkUDF"]
        ).SinkUDF()
        engine.submit(graph)
        engine.run(duration)
        samples = [latency for _, latency in engine.drain_sink_samples("Sink")]
        assert len(samples) > 1000
        return sum(samples) / len(samples) - service_mean

    def test_mm1_wait_matches(self):
        # M/M/1: Poisson arrivals, exponential-ish service via Gamma cv=1.
        measured = self.run_station(70.0, 0.010, 1.0, jitter="exponential")
        expected = mm1_waiting_time(70.0, 0.010)
        assert measured == pytest.approx(expected, rel=0.30)

    def test_md1_wait_matches(self):
        measured = self.run_station(70.0, 0.010, 0.0, jitter="exponential")
        expected = md1_waiting_time(70.0, 0.010)
        assert measured == pytest.approx(expected, rel=0.30)

    def test_dd1_has_no_queueing(self):
        measured = self.run_station(50.0, 0.010, 0.0, jitter="deterministic")
        assert measured < 0.001

    def test_super_linear_growth_with_load(self):
        """The paper's Sec. III-C observation, reproduced by the engine."""
        waits = [
            self.run_station(rate, 0.010, 1.0, jitter="exponential")
            for rate in (50.0, 80.0, 95.0)
        ]
        assert waits[0] < waits[1] < waits[2]
        # super-linear: going 80 -> 95 (+19 % load) must grow the wait
        # far more than 50 -> 80 (+60 % load) per unit of added load
        assert (waits[2] - waits[1]) > (waits[1] - waits[0])
