"""Unit tests: constraints, trackers, bottlenecks, batching policy, Alg. 2."""

import pytest

from repro.core.batching_policy import AdaptiveBatchingPolicy
from repro.core.bottlenecks import find_bottlenecks, resolve_bottlenecks
from repro.core.constraints import ConstraintTracker, LatencyConstraint
from repro.core.scale_reactively import ScaleReactivelyPolicy, ScalingDecision
from repro.engine.udf import MapUDF, SinkUDF, SourceUDF
from repro.graphs.job_graph import JobGraph
from repro.graphs.sequences import JobSequence
from repro.qos.summary import EdgeSummary, GlobalSummary, VertexSummary


def make_graph(worker_max=16, worker_p=2):
    graph = JobGraph("g")
    src = graph.add_vertex("Src", lambda: SourceUDF(lambda n, r: 0))
    worker = graph.add_vertex(
        "Worker", lambda: MapUDF(lambda x: x),
        parallelism=worker_p, min_parallelism=1, max_parallelism=worker_max,
    )
    sink = graph.add_vertex("Snk", lambda: SinkUDF())
    graph.connect(src, worker)
    graph.connect(worker, sink)
    return graph


def make_summary(
    worker_service=0.004,
    worker_interarrival=0.02,
    worker_latency=0.004,
    edge_latency=0.003,
    edge_obl=0.001,
    cv=1.0,
):
    summary = GlobalSummary(10.0)
    summary.vertices["Worker"] = VertexSummary(
        "Worker", worker_latency, worker_service, cv, worker_interarrival, cv, n_tasks=2
    )
    summary.edges["Src->Worker"] = EdgeSummary("Src->Worker", edge_latency, edge_obl, 2)
    summary.edges["Worker->Snk"] = EdgeSummary("Worker->Snk", 0.002, 0.001, 2)
    return summary


def make_constraint(graph, bound=0.020):
    js = JobSequence.from_names(graph, ["Worker"], leading_edge=True, trailing_edge=True)
    return LatencyConstraint(js, bound)


class TestLatencyConstraint:
    def test_measured_latency_sums_elements(self):
        graph = make_graph()
        constraint = make_constraint(graph)
        summary = make_summary()
        # edges 0.003 + 0.002, vertex 0.004
        assert constraint.measured_latency(summary) == pytest.approx(0.009)

    def test_missing_edge_returns_none(self):
        graph = make_graph()
        constraint = make_constraint(graph)
        summary = make_summary()
        del summary.edges["Worker->Snk"]
        assert constraint.measured_latency(summary) is None

    def test_missing_vertex_contributes_zero(self):
        graph = make_graph()
        constraint = make_constraint(graph)
        summary = make_summary()
        del summary.vertices["Worker"]
        assert constraint.measured_latency(summary) == pytest.approx(0.005)

    def test_violation_check(self):
        graph = make_graph()
        summary = make_summary()
        assert LatencyConstraint(make_constraint(graph).sequence, 0.008).is_violated(summary)
        assert not LatencyConstraint(make_constraint(graph).sequence, 0.020).is_violated(summary)

    def test_task_latency_sum(self):
        graph = make_graph()
        constraint = make_constraint(graph)
        assert constraint.task_latency_sum(make_summary()) == pytest.approx(0.004)

    def test_invalid_params_rejected(self):
        graph = make_graph()
        js = make_constraint(graph).sequence
        with pytest.raises(ValueError):
            LatencyConstraint(js, 0.0)
        with pytest.raises(ValueError):
            LatencyConstraint(js, 0.1, window=0.0)


class TestConstraintTracker:
    def test_fulfillment_ratio(self):
        graph = make_graph()
        constraint = make_constraint(graph, bound=0.008)
        tracker = ConstraintTracker(constraint)
        ok = make_summary(edge_latency=0.001)      # total 0.007 < 0.008... edges 0.001+0.002 + 0.004 = 0.007
        bad = make_summary(edge_latency=0.010)     # total 0.016 > 0.008
        tracker.observe(1.0, ok)
        tracker.observe(2.0, bad)
        tracker.observe(3.0, ok)
        assert tracker.intervals_observed == 3
        assert tracker.violations == 1
        assert tracker.fulfillment_ratio == pytest.approx(2 / 3)

    def test_unmeasured_intervals_skipped(self):
        graph = make_graph()
        tracker = ConstraintTracker(make_constraint(graph))
        summary = GlobalSummary(1.0)
        tracker.observe(1.0, summary)
        assert tracker.intervals_observed == 0

    def test_latency_series(self):
        graph = make_graph()
        tracker = ConstraintTracker(make_constraint(graph))
        tracker.observe(1.0, make_summary())
        series = tracker.latency_series()
        assert len(series) == 1
        assert series[0][0] == 1.0


class TestBottlenecks:
    def test_detects_high_utilization(self):
        graph = make_graph()
        js = make_constraint(graph).sequence
        summary = make_summary(worker_service=0.019, worker_interarrival=0.02)  # rho = 0.95
        assert find_bottlenecks(js, summary, rho_max=0.9) == ["Worker"]

    def test_no_bottleneck_below_threshold(self):
        graph = make_graph()
        js = make_constraint(graph).sequence
        summary = make_summary()  # rho = 0.2
        assert find_bottlenecks(js, summary, rho_max=0.9) == []

    def test_resolve_doubles_parallelism(self):
        graph = make_graph(worker_max=64)
        js = make_constraint(graph).sequence
        summary = make_summary(worker_service=0.019, worker_interarrival=0.02)
        targets, unresolvable = resolve_bottlenecks(js, summary, {"Worker": 4})
        assert targets == {"Worker": 8}
        assert unresolvable == []

    def test_resolve_uses_offered_load_when_larger(self):
        graph = make_graph(worker_max=64)
        js = make_constraint(graph).sequence
        # rho = 3 per task (deep overload): 2*lambda*p*S = 2*3*p
        summary = make_summary(worker_service=0.03, worker_interarrival=0.01)
        targets, _ = resolve_bottlenecks(js, summary, {"Worker": 4})
        assert targets["Worker"] == 24  # max(8, ceil(2*3*4))

    def test_resolve_clamps_to_pmax(self):
        graph = make_graph(worker_max=6)
        js = make_constraint(graph).sequence
        summary = make_summary(worker_service=0.019, worker_interarrival=0.02)
        targets, _ = resolve_bottlenecks(js, summary, {"Worker": 4})
        assert targets["Worker"] == 6

    def test_fully_scaled_out_unresolvable(self):
        graph = make_graph(worker_max=4)
        js = make_constraint(graph).sequence
        summary = make_summary(worker_service=0.019, worker_interarrival=0.02)
        targets, unresolvable = resolve_bottlenecks(js, summary, {"Worker": 4})
        assert targets == {}
        assert unresolvable == ["Worker"]

    def test_invalid_rho_max_rejected(self):
        graph = make_graph()
        js = make_constraint(graph).sequence
        with pytest.raises(ValueError):
            find_bottlenecks(js, make_summary(), rho_max=0.0)


class TestAdaptiveBatchingPolicy:
    def test_budget_split_across_edges(self):
        graph = make_graph()
        constraint = make_constraint(graph, bound=0.020)
        policy = AdaptiveBatchingPolicy([constraint], batch_fraction=0.8, deadline_factor=1.0)
        targets = policy.compute_targets(make_summary(worker_latency=0.004))
        # slack = 0.016, budget = 0.0128, two edges -> 0.0064 each
        assert targets["Src->Worker"] == pytest.approx(0.0064)
        assert targets["Worker->Snk"] == pytest.approx(0.0064)

    def test_negative_slack_gives_min_deadline(self):
        graph = make_graph()
        constraint = make_constraint(graph, bound=0.002)
        policy = AdaptiveBatchingPolicy([constraint], min_deadline=0.0)
        targets = policy.compute_targets(make_summary(worker_latency=0.005))
        assert targets["Src->Worker"] == 0.0

    def test_tightest_constraint_wins_shared_edge(self):
        graph = make_graph()
        loose = make_constraint(graph, bound=0.100)
        tight = make_constraint(graph, bound=0.010)
        policy = AdaptiveBatchingPolicy([loose, tight], deadline_factor=1.0)
        targets = policy.compute_targets(make_summary())
        slack = 0.010 - 0.004
        assert targets["Src->Worker"] == pytest.approx(0.8 * slack / 2)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveBatchingPolicy([], batch_fraction=0.0)
        with pytest.raises(ValueError):
            AdaptiveBatchingPolicy([], deadline_factor=0.0)


class TestScaleReactively:
    def test_rebalance_path_produces_targets(self):
        graph = make_graph()
        constraint = make_constraint(graph, bound=0.020)
        policy = ScaleReactivelyPolicy([constraint])
        # moderately loaded worker: rho=0.6 per task at p=2
        summary = make_summary(worker_service=0.012, worker_interarrival=0.02)
        decision = policy.decide(summary, {"Worker": 2})
        assert "Worker" in decision.parallelism
        assert not decision.bottleneck_constraints

    def test_bottleneck_path_doubles(self):
        graph = make_graph()
        constraint = make_constraint(graph, bound=0.020)
        policy = ScaleReactivelyPolicy([constraint], rho_max=0.9)
        summary = make_summary(worker_service=0.019, worker_interarrival=0.02)
        decision = policy.decide(summary, {"Worker": 2})
        assert decision.bottleneck_constraints == [constraint.name]
        assert decision.parallelism["Worker"] == 4

    def test_missing_measurements_skip_constraint(self):
        graph = make_graph()
        constraint = make_constraint(graph)
        policy = ScaleReactivelyPolicy([constraint])
        decision = policy.decide(GlobalSummary(1.0), {"Worker": 2})
        assert decision.skipped_constraints == [constraint.name]
        assert not decision.has_actions

    def test_unattainable_bound_scales_to_max(self):
        graph = make_graph(worker_max=16)
        constraint = make_constraint(graph, bound=0.003)
        policy = ScaleReactivelyPolicy([constraint])
        summary = make_summary(worker_latency=0.005)  # task latency alone > bound
        decision = policy.decide(summary, {"Worker": 2})
        assert decision.infeasible_constraints == [constraint.name]
        assert decision.parallelism["Worker"] == 16

    def test_multiple_constraints_merge_max(self):
        graph = make_graph()
        tight = make_constraint(graph, bound=0.006)
        loose = make_constraint(graph, bound=0.200)
        policy = ScaleReactivelyPolicy([loose, tight])
        summary = make_summary(worker_service=0.012, worker_interarrival=0.02, cv=1.0)
        merged = policy.decide(summary, {"Worker": 2})
        loose_only = ScaleReactivelyPolicy([loose]).decide(summary, {"Worker": 2})
        tight_only = ScaleReactivelyPolicy([tight]).decide(summary, {"Worker": 2})
        assert merged.parallelism["Worker"] >= max(
            loose_only.parallelism.get("Worker", 0),
            tight_only.parallelism.get("Worker", 0),
        )

    def test_decision_merge_max_helper(self):
        decision = ScalingDecision()
        decision.merge_max({"a": 3})
        decision.merge_max({"a": 2, "b": 5})
        assert decision.parallelism == {"a": 3, "b": 5}

    def test_invalid_w_fraction_rejected(self):
        with pytest.raises(ValueError):
            ScaleReactivelyPolicy([], w_fraction=0.0)

    def test_w_fraction_boundaries(self):
        # (0, 1] is the valid interval: 1.0 is in, 0.0 and >1 are out.
        assert ScaleReactivelyPolicy([], w_fraction=1.0).w_fraction == 1.0
        assert ScaleReactivelyPolicy([], w_fraction=1e-9).w_fraction == 1e-9
        for bad in (-0.2, 0.0, 1.0000001, 2.0):
            with pytest.raises(ValueError, match=r"w_fraction must be .* \(0, 1\]"):
                ScaleReactivelyPolicy([], w_fraction=bad)

    def test_non_numeric_w_fraction_rejected_with_clear_message(self):
        with pytest.raises(ValueError, match="got '0.2'"):
            ScaleReactivelyPolicy([], w_fraction="0.2")
        with pytest.raises(ValueError, match="got None"):
            ScaleReactivelyPolicy([], w_fraction=None)

    def test_invalid_staleness_threshold_rejected(self):
        with pytest.raises(ValueError):
            ScaleReactivelyPolicy([], staleness_threshold=0.0)
        with pytest.raises(ValueError):
            ScaleReactivelyPolicy([], staleness_threshold=-5.0)
        # None disables the gate entirely
        assert ScaleReactivelyPolicy([], staleness_threshold=None).staleness_threshold is None
