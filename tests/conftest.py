"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.engine.engine import EngineConfig, StreamProcessingEngine
from repro.engine.udf import MapUDF, SinkUDF, SourceUDF
from repro.graphs.job_graph import JobGraph
from repro.simulation.kernel import Simulator
from repro.simulation.randomness import Deterministic, Gamma
from repro.workloads.rates import ConstantRate


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for tests."""
    return random.Random(12345)


def make_linear_job(
    source_rate: float = 100.0,
    service_mean: float = 0.002,
    service_cv: float = 0.0,
    n_workers: int = 2,
    n_sinks: int = 1,
    jitter: str = "deterministic",
    worker_min: int = None,
    worker_max: int = None,
) -> JobGraph:
    """Source -> Worker -> Sink with configurable rates and service."""
    graph = JobGraph("linear")
    if service_cv > 0:
        dist = Gamma(service_mean, service_cv)
    else:
        dist = Deterministic(service_mean)
    source = graph.add_vertex(
        "Source", lambda: SourceUDF(lambda now, rng: rng.random()), parallelism=1
    )
    worker = graph.add_vertex(
        "Worker",
        lambda: MapUDF(lambda x: x, service_dist=dist),
        parallelism=n_workers,
        min_parallelism=worker_min if worker_min is not None else n_workers,
        max_parallelism=worker_max if worker_max is not None else n_workers,
    )
    sink = graph.add_vertex("Sink", lambda: SinkUDF(), parallelism=n_sinks)
    graph.connect(source, worker)
    graph.connect(worker, sink)
    source.rate_profile = ConstantRate(source_rate, jitter=jitter)
    return graph


def run_linear(
    config: EngineConfig = None,
    duration: float = 10.0,
    **job_kwargs,
):
    """Build + run a linear job; returns the engine."""
    engine = StreamProcessingEngine(config or EngineConfig())
    graph = make_linear_job(**job_kwargs)
    engine.submit(graph)
    engine.run(duration)
    return engine
