"""Unit and property tests for the queueing latency model (Sec. IV-C)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.latency_model import (
    INFINITY,
    SequenceLatencyModel,
    VertexModel,
    fit_coefficient,
    kingman_waiting_time,
)
from repro.qos.summary import EdgeSummary, VertexSummary


class TestKingman:
    def test_zero_load_zero_wait(self):
        assert kingman_waiting_time(0.0, 0.01, 1.0, 1.0) == 0.0

    def test_saturated_is_infinite(self):
        assert kingman_waiting_time(100.0, 0.01, 1.0, 1.0) == INFINITY
        assert kingman_waiting_time(200.0, 0.01, 1.0, 1.0) == INFINITY

    def test_mm1_special_case(self):
        # For M/M/1 (cA = cS = 1), Kingman is exact: W = rho/(mu - lambda).
        lam, s = 50.0, 0.01
        rho = lam * s
        expected = rho / (1 / s - lam)
        assert kingman_waiting_time(lam, s, 1.0, 1.0) == pytest.approx(expected)

    def test_md1_special_case(self):
        # M/D/1 (cS = 0) halves the M/M/1 wait.
        lam, s = 50.0, 0.01
        mm1 = kingman_waiting_time(lam, s, 1.0, 1.0)
        md1 = kingman_waiting_time(lam, s, 1.0, 0.0)
        assert md1 == pytest.approx(mm1 / 2)

    def test_monotone_in_utilization(self):
        waits = [kingman_waiting_time(lam, 0.01, 1.0, 1.0) for lam in (10, 50, 90)]
        assert waits[0] < waits[1] < waits[2]

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            kingman_waiting_time(-1.0, 0.01, 1.0, 1.0)


def make_model(
    lam=100.0, s=0.004, var=1.0, p=4, p_min=1, p_max=32, e=1.0, scalable=True
):
    return VertexModel(
        "v", p_current=p, p_min=p_min, p_max=p_max,
        arrival_rate=lam, service_mean=s, variability=var,
        fitting_coefficient=e, scalable=scalable,
    )


class TestVertexModel:
    def test_current_wait_matches_fitted_kingman(self):
        m = make_model(lam=100.0, s=0.004, var=1.0, p=4, e=1.0)
        # At p = p_current the model must equal e * Kingman of the summary.
        expected = kingman_waiting_time(100.0, 0.004, 1.0, 1.0)
        assert m.waiting_time(4) == pytest.approx(expected)

    def test_fitting_coefficient_scales_wait(self):
        base = make_model(e=1.0).waiting_time(4)
        fitted = make_model(e=2.5).waiting_time(4)
        assert fitted == pytest.approx(2.5 * base)

    def test_wait_infinite_at_or_below_b(self):
        m = make_model(lam=100.0, s=0.004, p=4)  # b = 1.6
        assert m.waiting_time(1) == INFINITY
        assert m.waiting_time(2) < INFINITY

    def test_wait_monotonically_decreasing(self):
        m = make_model()
        waits = [m.waiting_time(p) for p in range(2, 20)]
        assert all(a > b for a, b in zip(waits, waits[1:]))

    def test_marginal_gain_nonpositive(self):
        m = make_model()
        for p in range(2, 20):
            assert m.marginal_gain(p) <= 0

    def test_marginal_gain_infinite_from_instability(self):
        m = make_model(lam=100.0, s=0.004, p=4)
        assert m.marginal_gain(1) == -INFINITY

    def test_p_for_wait_is_minimal(self):
        m = make_model()
        for w in (0.0005, 0.002, 0.01):
            p = m.p_for_wait(w)
            assert m.waiting_time(p) <= w
            if p > 1:
                assert m.waiting_time(p - 1) > w

    def test_p_for_wait_nonpositive_budget_gives_pmax(self):
        m = make_model()
        assert m.p_for_wait(0.0) == m.p_max
        assert m.p_for_wait(-1.0) == m.p_max

    def test_p_for_marginal_matches_bruteforce(self):
        m = make_model()
        for delta in (-0.01, -0.001, -0.0001):
            p = m.p_for_marginal(delta)
            # P_delta: the smallest p whose marginal gain is no better
            # (no more negative) than delta.
            assert m.marginal_gain(p) >= delta
            if p > m.min_stable_parallelism():
                assert m.marginal_gain(p - 1) < delta

    def test_min_stable_parallelism(self):
        m = make_model(lam=100.0, s=0.004, p=4)  # b = 1.6
        assert m.min_stable_parallelism() == 2
        assert m.utilization_at(2) < 1.0

    def test_zero_arrivals_zero_wait(self):
        m = make_model(lam=0.0)
        assert m.waiting_time(1) == 0.0

    def test_utilization_extrapolation(self):
        m = make_model(lam=100.0, s=0.004, p=4)  # rho = 0.4 at p=4
        assert m.utilization_at(4) == pytest.approx(0.4)
        assert m.utilization_at(8) == pytest.approx(0.2)
        assert m.utilization_at(2) == pytest.approx(0.8)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            make_model(p=0)
        with pytest.raises(ValueError):
            make_model(lam=-1.0)
        with pytest.raises(ValueError):
            VertexModel("v", 1, 3, 2, 1.0, 0.01, 1.0)

    @given(
        lam=st.floats(min_value=1.0, max_value=500.0),
        s=st.floats(min_value=0.0001, max_value=0.05),
        var=st.floats(min_value=0.01, max_value=3.0),
        p=st.integers(min_value=1, max_value=16),
        w=st.floats(min_value=1e-5, max_value=1.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_p_for_wait_property(self, lam, s, var, p, w):
        m = VertexModel("v", p, 1, 10_000, lam, s, var)
        p_star = m.p_for_wait(w)
        assert m.waiting_time(p_star) <= w + 1e-12
        if p_star > 1:
            assert m.waiting_time(p_star - 1) > w or p_star == m.min_stable_parallelism()


class TestLatencyModelProperties:
    """Hypothesis properties the scaler's arithmetic relies on."""

    @given(
        lam=st.floats(min_value=0.1, max_value=1000.0),
        s=st.floats(min_value=1e-5, max_value=0.1),
        var=st.floats(min_value=0.0, max_value=5.0),
        p=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=200, deadline=None)
    def test_waiting_time_nonincreasing_in_parallelism(self, lam, s, var, p):
        # More tasks never predict more queue wait: W(p*) is monotonically
        # non-increasing in p*, which is what makes the policy's binary
        # searches (p_for_wait, p_for_marginal) sound.
        m = VertexModel("v", p_current=p, p_min=1, p_max=10_000,
                        arrival_rate=lam, service_mean=s, variability=var)
        waits = [m.waiting_time(q) for q in range(1, 65)]
        assert all(a >= b for a, b in zip(waits, waits[1:]))

    @given(
        lam=st.floats(min_value=0.1, max_value=1000.0),
        s=st.floats(min_value=1e-5, max_value=0.1),
        var=st.floats(min_value=0.0, max_value=5.0),
        p=st.integers(min_value=1, max_value=64),
        q=st.integers(min_value=1, max_value=256),
    )
    @settings(max_examples=200, deadline=None)
    def test_waiting_time_nonnegative_and_finite_when_stable(self, lam, s, var, p, q):
        # Whenever the extrapolated utilization stays below 1 the
        # predicted wait is a finite, non-negative number — the policy
        # never sees NaN or a negative latency budget contribution.
        m = VertexModel("v", p_current=p, p_min=1, p_max=10_000,
                        arrival_rate=lam, service_mean=s, variability=var)
        if m.utilization_at(q) < 1.0:
            w = m.waiting_time(q)
            assert 0.0 <= w < INFINITY
            assert not math.isnan(w)

    @given(
        lam=st.floats(min_value=0.1, max_value=500.0),
        s=st.floats(min_value=1e-5, max_value=0.05),
        var=st.floats(min_value=0.0, max_value=3.0),
        e=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_fitting_coefficient_preserves_monotonicity(self, lam, s, var, e):
        # The measured-reality correction e_jv rescales but never
        # reorders the predictions.
        m = VertexModel("v", 4, 1, 10_000, lam, s, var, fitting_coefficient=e)
        waits = [m.waiting_time(q) for q in range(1, 33)]
        assert all(a >= b for a, b in zip(waits, waits[1:]))
        assert all(w >= 0.0 for w in waits if w < INFINITY)


class TestSequenceModel:
    def test_total_is_sum(self):
        m1 = make_model(lam=50.0)
        m2 = VertexModel("w", 4, 1, 32, 80.0, 0.002, 0.5)
        model = SequenceLatencyModel("js", [m1, m2])
        total = model.total_waiting_time({"v": 4, "w": 4})
        assert total == pytest.approx(m1.waiting_time(4) + m2.waiting_time(4))

    def test_missing_vertex_uses_current_parallelism(self):
        m1 = make_model()
        model = SequenceLatencyModel("js", [m1])
        assert model.total_waiting_time({}) == pytest.approx(m1.waiting_time(m1.p_current))

    def test_infinite_member_makes_total_infinite(self):
        m1 = make_model(lam=100.0, s=0.004, p=4)
        model = SequenceLatencyModel("js", [m1])
        assert model.total_waiting_time({"v": 1}) == INFINITY

    def test_scalable_filter(self):
        m1 = make_model()
        m2 = VertexModel("w", 1, 1, 1, 10.0, 0.001, 1.0, scalable=False)
        model = SequenceLatencyModel("js", [m1, m2])
        assert [m.name for m in model.scalable_models()] == ["v"]

    def test_lookup(self):
        m1 = make_model()
        model = SequenceLatencyModel("js", [m1])
        assert model.model("v") is m1


class TestFitCoefficient:
    def vertex_summary(self, lam=100.0, s=0.004, ca=1.0, cs=1.0):
        return VertexSummary("v", 0.004, s, cs, 1.0 / lam, ca, n_tasks=4)

    def test_exact_fit(self):
        vs = self.vertex_summary()
        predicted = kingman_waiting_time(100.0, 0.004, 1.0, 1.0)
        es = EdgeSummary("e", channel_latency=predicted + 0.001, output_batch_latency=0.001, n_channels=4)
        assert fit_coefficient(vs, es) == pytest.approx(1.0, rel=1e-6)

    def test_underprediction_raises_e(self):
        vs = self.vertex_summary()
        predicted = kingman_waiting_time(100.0, 0.004, 1.0, 1.0)
        es = EdgeSummary("e", channel_latency=3 * predicted, output_batch_latency=0.0, n_channels=4)
        assert fit_coefficient(vs, es) == pytest.approx(3.0, rel=1e-6)

    def test_clamped_to_bounds(self):
        vs = self.vertex_summary()
        es = EdgeSummary("e", channel_latency=100.0, output_batch_latency=0.0, n_channels=4)
        assert fit_coefficient(vs, es, bounds=(0.1, 50.0)) == 50.0

    def test_saturated_prediction_falls_back_to_one(self):
        vs = VertexSummary("v", 0.004, 0.02, 1.0, 0.01, 1.0, n_tasks=4)  # rho = 2
        es = EdgeSummary("e", 0.5, 0.0, 4)
        assert fit_coefficient(vs, es) == 1.0

    def test_zero_prediction_falls_back_to_one(self):
        vs = VertexSummary("v", 0.0, 0.0, 0.0, 0.01, 0.0, n_tasks=4)
        es = EdgeSummary("e", 0.5, 0.0, 4)
        assert fit_coefficient(vs, es) == 1.0
