"""Keep documentation and packaging honest.

Checks that the commands, modules and files the documentation references
actually exist, that the public API advertised by ``repro.__all__``
imports, and that every example script at least parses.
"""

import ast
import importlib
import os
import re

import pytest

import repro

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def read(path):
    with open(os.path.join(ROOT, path)) as handle:
        return handle.read()


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_declared(self):
        assert re.match(r"^\d+\.\d+\.\d+$", repro.__version__)

    @pytest.mark.parametrize(
        "module",
        [
            "repro.simulation",
            "repro.graphs",
            "repro.engine",
            "repro.engine.operators",
            "repro.engine.state",
            "repro.qos",
            "repro.qos.diagnostics",
            "repro.core",
            "repro.core.policy",
            "repro.core.policies",
            "repro.core.predictive",
            "repro.core.drs",
            "repro.core.daedalus",
            "repro.actuation",
            "repro.actuation.config",
            "repro.actuation.reconciler",
            "repro.analysis",
            "repro.workloads",
            "repro.workloads.keys",
            "repro.workloads.traces",
            "repro.builder",
            "repro.experiments",
            "repro.experiments.fig3_motivation",
            "repro.experiments.fig5_surface",
            "repro.experiments.fig6_primetester",
            "repro.experiments.fig8_twitter",
            "repro.experiments.sensitivity",
            "repro.experiments.validation",
            "repro.experiments.compare_policies",
            "repro.experiments.ascii",
            "repro.sweep",
            "repro.sweep.grid",
            "repro.sweep.shard",
            "repro.sweep.orchestrator",
            "repro.sweep.report",
            "repro.evaluate",
            "repro.evaluate.metrics",
            "repro.evaluate.tolerance",
            "repro.evaluate.baseline",
            "repro.evaluate.compare",
            "repro.evaluate.render",
            "repro.evaluate.history",
            "repro.evaluate.scoreboard",
            "repro.cli",
        ],
    )
    def test_module_imports_and_has_docstring(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__, f"{module} lacks a module docstring"


class TestReadme:
    def test_referenced_files_exist(self):
        readme = read("README.md")
        for path in re.findall(r"\]\((\w[\w./-]*)\)", readme):
            assert os.path.exists(os.path.join(ROOT, path)), path

    def test_referenced_example_scripts_exist(self):
        readme = read("README.md")
        for script in re.findall(r"python (examples/[\w_]+\.py)", readme):
            assert os.path.exists(os.path.join(ROOT, script)), script

    def test_referenced_experiment_modules_exist(self):
        readme = read("README.md")
        for module in re.findall(r"python -m (repro[.\w]+)", readme):
            importlib.import_module(module)


class TestDesignAndExperiments:
    def test_design_module_map_paths_exist(self):
        """Every .py file the DESIGN module map names exists in the tree."""
        design = read("DESIGN.md")
        existing = set()
        for top in ("src", "tests", "benchmarks", "examples"):
            for dirpath, _dirnames, filenames in os.walk(os.path.join(ROOT, top)):
                existing.update(name for name in filenames if name.endswith(".py"))
        for path in re.findall(r"(\w[\w/]*\.py)", design):
            assert os.path.basename(path) in existing, path

    def test_experiments_md_commands_importable(self):
        text = read("EXPERIMENTS.md")
        for module in set(re.findall(r"python -m (repro[.\w]+)", text)):
            importlib.import_module(module)

    def test_experiments_md_bench_files_exist(self):
        text = read("EXPERIMENTS.md")
        for path in set(re.findall(r"`(benchmarks/[\w_]+\.py)`", text)):
            assert os.path.exists(os.path.join(ROOT, path)), path
        for path in set(re.findall(r"`(tests/[\w_]+\.py)`", text)):
            assert os.path.exists(os.path.join(ROOT, path)), path


class TestExamples:
    @pytest.mark.parametrize(
        "script",
        sorted(
            name
            for name in os.listdir(os.path.join(ROOT, "examples"))
            if name.endswith(".py")
        ),
    )
    def test_example_parses_and_has_docstring(self, script):
        source = read(os.path.join("examples", script))
        tree = ast.parse(source)
        assert ast.get_docstring(tree), f"{script} lacks a module docstring"
        # every example must be directly runnable
        assert '__main__' in source, f"{script} has no __main__ guard"

    def test_at_least_five_examples(self):
        scripts = [
            name
            for name in os.listdir(os.path.join(ROOT, "examples"))
            if name.endswith(".py")
        ]
        assert len(scripts) >= 5


class TestPackaging:
    def test_setup_cfg_points_at_src(self):
        cfg = read("setup.cfg")
        assert "package_dir" in cfg
        assert "= src" in cfg

    def test_no_runtime_third_party_imports(self):
        """The library must run stdlib-only: no hard third-party imports.

        numpy is the one sanctioned *optional* accelerator (the vectorized
        sampling hot path): its import must sit inside a try/except so the
        library degrades gracefully when the package is absent. Everything
        else on the banned list stays out entirely.
        """
        banned = ("numpy", "scipy", "networkx", "pandas", "matplotlib")
        optional = {"numpy"}
        for dirpath, _dirnames, filenames in os.walk(os.path.join(ROOT, "src")):
            for filename in filenames:
                if not filename.endswith(".py"):
                    continue
                source = read(os.path.join(dirpath, filename))
                tree = ast.parse(source)
                guarded = set()
                for node in ast.walk(tree):
                    if not isinstance(node, ast.Try):
                        continue
                    catches_import_error = any(
                        handler.type is None
                        or any(
                            getattr(name, "id", None) in ("ImportError", "Exception")
                            for name in (
                                handler.type.elts
                                if isinstance(handler.type, ast.Tuple)
                                else [handler.type]
                            )
                        )
                        for handler in node.handlers
                    )
                    if catches_import_error:
                        for child in node.body:
                            for sub in ast.walk(child):
                                guarded.add(id(sub))
                for node in ast.walk(tree):
                    if isinstance(node, ast.Import):
                        names = [alias.name for alias in node.names]
                    elif isinstance(node, ast.ImportFrom):
                        names = [node.module or ""]
                    else:
                        continue
                    for name in names:
                        root = name.split(".")[0]
                        if root not in banned:
                            continue
                        assert root in optional and id(node) in guarded, (
                            filename,
                            name,
                            "third-party import must be optional "
                            "(guarded by try/except ImportError)",
                        )
