"""Fault injection: determinism, graceful degradation, unit behavior.

The acceptance scenario from the issue: a task crash at t=30 s plus a
QoS measurement dropout, run twice with the same seed, must produce
byte-identical fault traces, scaling logs and final parallelism — and
the scaler must never issue a scale-down while its measurements are
stale.
"""

from __future__ import annotations

import pytest

from repro.builder import PipelineBuilder
from repro.engine.engine import EngineConfig, StreamProcessingEngine
from repro.simulation.faults import (
    FaultInjector,
    FaultPlan,
    MeasurementDropout,
    ServiceSpike,
    TaskCrash,
    WorkerLoss,
)
from repro.simulation.randomness import Gamma
from repro.workloads.rates import ConstantRate

from conftest import make_linear_job


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def build_chaos_pipeline(rate: float = 400.0, fault_seed: int = 0):
    """The issue's acceptance pipeline: crash at t=30 + dropout at t=30."""
    return (
        PipelineBuilder("chaos")
        .source(lambda now, rng: rng.random(), rate=ConstantRate(rate))
        .map("worker", lambda x: x, service=Gamma(0.004, 0.7), parallelism=(4, 1, 32))
        .sink()
        .constrain(bound=0.030)
        .inject(
            TaskCrash(at=30.0, vertex="worker", restart_delay=2.0),
            MeasurementDropout(at=30.0, duration=20.0),
            seed=fault_seed,
        )
        .build()
    )


def run_chaos(duration: float = 80.0, engine_seed: int = 7, fault_seed: int = 0):
    """Run the acceptance scenario; returns (engine, job)."""
    pipeline = build_chaos_pipeline(fault_seed=fault_seed)
    engine = StreamProcessingEngine(EngineConfig(elastic=True, seed=engine_seed))
    job = engine.submit(pipeline)
    engine.run(duration)
    return engine, job


def deploy_faulty_linear(plan: FaultPlan, duration: float = 0.0, **job_kwargs):
    """Submit a (fixed-parallelism) linear job with a fault plan armed."""
    engine = StreamProcessingEngine(EngineConfig())
    graph = make_linear_job(**job_kwargs)
    job = engine.submit(graph, fault_plan=plan)
    if duration > 0:
        engine.run(duration)
    return engine, job


# ----------------------------------------------------------------------
# acceptance: deterministic chaos, graceful degradation
# ----------------------------------------------------------------------


class TestChaosAcceptance:
    def _fingerprint(self, engine, job):
        return {
            "faults": job.fault_injector.trace(),
            "scaling_log": list(job.scheduler.scaling_log),
            "scaler_events": [repr(e) for e in job.scaler.events],
            "parallelism": {
                name: rv.parallelism for name, rv in job.runtime.vertices.items()
            },
            "targets": {
                name: rv.target_parallelism
                for name, rv in job.runtime.vertices.items()
            },
        }

    def test_same_seed_is_byte_identical(self):
        first = self._fingerprint(*reversed(run_chaos()))
        second = self._fingerprint(*reversed(run_chaos()))
        assert first == second

    def test_fault_seed_changes_only_victim_choice(self):
        _, job_a = run_chaos(fault_seed=0)
        _, job_b = run_chaos(fault_seed=1)
        kinds_a = [kind for _, kind, _, _ in job_a.fault_injector.trace()]
        kinds_b = [kind for _, kind, _, _ in job_b.fault_injector.trace()]
        assert kinds_a == kinds_b  # same schedule, possibly different victims

    def test_crash_and_dropout_fire(self):
        _, job = run_chaos()
        kinds = [kind for _, kind, _, _ in job.fault_injector.trace()]
        assert "task_crash" in kinds
        assert "measurement_dropout" in kinds
        assert "task_restart" in kinds
        assert "measurement_restored" in kinds

    def test_no_scale_down_from_stale_measurements(self):
        engine, job = run_chaos()
        # the staleness gate actually engaged during the dropout...
        assert job.scaler.skipped_stale > 0
        # ...and no scale-down was issued while measurements were stale:
        # between the dropout start (t=30) and the moment fresh data
        # returns (t=50), the scaling log may contain only crash bookkeeping
        # and restarts/scale-ups — never a deliberate shrink.
        crashes = {
            (t, task_id.split("[")[0]) for t, task_id in job.scheduler.failure_log
        }
        for time, vertex, old_p, new_p in job.scheduler.scaling_log:
            if 30.0 <= time < 50.0 and (time, vertex) not in crashes:
                assert new_p >= old_p, (
                    f"scale-down of {vertex} at t={time} during dropout"
                )

    def test_restart_restores_parallelism(self):
        _, job = run_chaos()
        rv = job.runtime.vertex("worker")
        assert rv.crashes == 1
        # the crash never reduced the target, and the restart restored
        # the live parallelism to it
        assert rv.parallelism >= 1
        assert rv.parallelism == rv.target_parallelism


# ----------------------------------------------------------------------
# task crash / restart mechanics
# ----------------------------------------------------------------------


class TestTaskCrash:
    def test_crash_without_restart_loses_parallelism(self):
        plan = FaultPlan((TaskCrash(at=2.0, vertex="Worker", restart_delay=None),))
        _, job = deploy_faulty_linear(plan, duration=6.0, n_workers=2)
        rv = job.runtime.vertex("Worker")
        assert rv.crashes == 1
        assert rv.parallelism == 1
        assert [kind for _, kind, _, _ in job.fault_injector.trace()] == ["task_crash"]

    def test_crash_with_restart_recovers(self):
        plan = FaultPlan((TaskCrash(at=2.0, vertex="Worker", restart_delay=1.5),))
        _, job = deploy_faulty_linear(plan, duration=8.0, n_workers=2)
        rv = job.runtime.vertex("Worker")
        assert rv.crashes == 1
        assert rv.parallelism == 2
        trace = job.fault_injector.trace()
        assert trace[0][1] == "task_crash"
        assert trace[1] == (3.5, "task_restart", trace[0][2], "")

    def test_target_parallelism_stable_during_restart_gap(self):
        plan = FaultPlan((TaskCrash(at=2.0, vertex="Worker", restart_delay=3.0),))
        engine, job = deploy_faulty_linear(plan, n_workers=2)
        engine.run(3.0)  # crash happened, restart pending
        rv = job.runtime.vertex("Worker")
        assert rv.parallelism == 1
        assert rv.target_parallelism == 2  # scaler sees no hole to fill

    def test_subtask_picks_exact_victim(self):
        plan = FaultPlan(
            (TaskCrash(at=2.0, vertex="Worker", subtask=1, restart_delay=None),)
        )
        _, job = deploy_faulty_linear(plan, duration=4.0, n_workers=3)
        (record,) = job.fault_injector.trace()
        assert record[2] == "Worker[1]"

    def test_restarted_task_gets_fresh_qos_reporter(self):
        plan = FaultPlan((TaskCrash(at=2.0, vertex="Worker", restart_delay=1.0),))
        _, job = deploy_faulty_linear(plan, duration=8.0, n_workers=2)
        live_uids = {t.uid for t in job.runtime.vertex("Worker").active_tasks()}
        registered = set()
        for manager in job._managers:
            registered.update(
                task.uid for task, _r, _w in manager._tasks.values()
            )
        assert live_uids <= registered

    def test_crashed_task_counts_as_failure_not_drain(self):
        plan = FaultPlan((TaskCrash(at=2.0, vertex="Worker", restart_delay=None),))
        _, job = deploy_faulty_linear(plan, duration=4.0, n_workers=2)
        assert len(job.scheduler.failure_log) == 1
        time, task_id = job.scheduler.failure_log[0]
        assert time == 2.0 and task_id.startswith("Worker")

    def test_crash_on_missing_vertex_raises(self):
        plan = FaultPlan((TaskCrash(at=2.0, vertex="Nope"),))
        engine, job = deploy_faulty_linear(plan)
        with pytest.raises(KeyError):
            engine.run(4.0)


# ----------------------------------------------------------------------
# worker loss
# ----------------------------------------------------------------------


class TestWorkerLoss:
    def test_worker_loss_crashes_all_hosted_tasks(self):
        plan = FaultPlan((WorkerLoss(at=2.0, worker_index=0, restart_delay=None),))
        engine, job = deploy_faulty_linear(plan, duration=5.0, n_workers=2)
        (record,) = job.fault_injector.trace()
        assert record[1] == "worker_loss"
        lost = int(record[3].split(",")[0].split("=")[1])
        assert lost >= 1
        assert sum(rv.crashes for rv in job.runtime.vertices.values()) == lost

    def test_worker_loss_with_restart_recovers_parallelism(self):
        plan = FaultPlan((WorkerLoss(at=2.0, worker_index=0, restart_delay=1.0),))
        _, job = deploy_faulty_linear(plan, duration=8.0, n_workers=2)
        for name, rv in job.runtime.vertices.items():
            assert rv.parallelism == rv.target_parallelism, name
        kinds = [kind for _, kind, _, _ in job.fault_injector.trace()]
        assert kinds == ["worker_loss", "worker_restart"]

    def test_out_of_range_index_is_noop(self):
        plan = FaultPlan((WorkerLoss(at=2.0, worker_index=99),))
        _, job = deploy_faulty_linear(plan, duration=4.0)
        (record,) = job.fault_injector.trace()
        assert record[3].startswith("noop:")
        assert all(rv.crashes == 0 for rv in job.runtime.vertices.values())


# ----------------------------------------------------------------------
# measurement dropout / staleness
# ----------------------------------------------------------------------


class TestMeasurementDropout:
    def test_dropout_suppresses_collection_and_raises_staleness(self):
        plan = FaultPlan((MeasurementDropout(at=2.0, duration=4.0),))
        engine, job = deploy_faulty_linear(plan)
        engine.run(5.0)
        assert any(m.dropped_collects > 0 for m in job._managers)
        staleness = max(m.staleness(engine.sim.now) for m in job._managers)
        assert staleness > 1.0
        engine.run(5.0)  # past the dropout: fresh measurements resume
        staleness = max(m.staleness(engine.sim.now) for m in job._managers)
        assert staleness < 2.0

    def test_summaries_carry_staleness(self):
        plan = FaultPlan((MeasurementDropout(at=2.0, duration=6.0),))
        engine, job = deploy_faulty_linear(plan)
        engine.run(7.0)
        summary = job.last_summary
        assert summary is not None
        worst = max(vs.staleness for vs in summary.vertices.values())
        assert worst > 1.0

    def test_fault_free_staleness_is_negligible(self):
        engine, job = deploy_faulty_linear(FaultPlan(), duration=12.0)
        assert job.fault_injector is None  # empty plan is not armed
        summary = job.last_summary
        assert summary is not None
        assert all(vs.staleness < 0.1 for vs in summary.vertices.values())


# ----------------------------------------------------------------------
# service spike
# ----------------------------------------------------------------------


class TestServiceSpike:
    def test_spike_applies_and_restores_multiplier(self):
        plan = FaultPlan(
            (ServiceSpike(at=2.0, vertex="Worker", factor=4.0, duration=3.0),)
        )
        engine, job = deploy_faulty_linear(plan, n_workers=2)
        engine.run(3.0)
        rv = job.runtime.vertex("Worker")
        assert all(t.service_multiplier == 4.0 for t in rv.active_tasks())
        engine.run(4.0)
        assert all(t.service_multiplier == 1.0 for t in rv.active_tasks())
        kinds = [kind for _, kind, _, _ in job.fault_injector.trace()]
        assert kinds == ["service_spike", "service_spike_end"]

    def test_spike_inflates_measured_service_time(self):
        plan = FaultPlan(
            (ServiceSpike(at=5.0, vertex="Worker", factor=5.0, duration=30.0),)
        )
        engine, job = deploy_faulty_linear(
            plan, duration=30.0, source_rate=50.0, service_mean=0.002
        )
        summary = job.last_summary
        assert summary.vertices["Worker"].service_mean > 0.005


# ----------------------------------------------------------------------
# recovery cooldown
# ----------------------------------------------------------------------


class TestRecoveryCooldown:
    def test_notify_starts_and_extends_cooldown(self):
        engine, job = run_chaos(duration=10.0)
        scaler = job.scaler
        assert not scaler.in_recovery_cooldown
        scaler.notify_fault_recovery()
        assert scaler.in_recovery_cooldown
        assert scaler._no_scale_down_until == engine.sim.now + scaler.recovery_cooldown

    def test_cooldown_engaged_by_acceptance_run(self):
        _, job = run_chaos()
        assert job.scaler.suppressed_scale_downs >= 0
        # the last fault notification was measurement_restored at t=50,
        # so the cooldown covered at least (50, 50+cooldown)
        restored = [t for t, k, _, _ in job.fault_injector.trace()
                    if k == "measurement_restored"]
        assert restored == [50.0]


# ----------------------------------------------------------------------
# plan validation and arming
# ----------------------------------------------------------------------


class TestPlanValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="must be >= 0"):
            FaultPlan((TaskCrash(at=-1.0, vertex="w"),))

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError, match="duration must be > 0"):
            FaultPlan((MeasurementDropout(at=1.0, duration=0.0),))

    def test_nonpositive_factor_rejected(self):
        with pytest.raises(ValueError, match="factor must be > 0"):
            FaultPlan((ServiceSpike(at=1.0, vertex="w", factor=0.0),))

    def test_negative_restart_delay_rejected(self):
        with pytest.raises(ValueError, match="restart_delay must be >= 0"):
            FaultPlan((TaskCrash(at=1.0, vertex="w", restart_delay=-0.5),))
        with pytest.raises(ValueError, match="restart_delay must be >= 0"):
            FaultPlan((WorkerLoss(at=1.0, restart_delay=-1.0),))
        # None (no restart) and zero (immediate) both stay legal
        FaultPlan((TaskCrash(at=1.0, vertex="w", restart_delay=None),))
        FaultPlan((TaskCrash(at=1.0, vertex="w", restart_delay=0.0),))

    def test_builder_rejects_unknown_vertex(self):
        builder = (
            PipelineBuilder("p")
            .source(lambda now, rng: 1, rate=ConstantRate(10.0))
            .map("worker", lambda x: x, parallelism=2)
            .sink()
            .constrain(bound=0.030)
            .inject(TaskCrash(at=5.0, vertex="typo"))
        )
        with pytest.raises(ValueError, match="unknown vertex 'typo'"):
            builder.build()

    def test_arming_past_fault_raises(self):
        plan = FaultPlan((TaskCrash(at=1.0, vertex="Worker"),))
        engine, job = deploy_faulty_linear(FaultPlan())
        engine.run(5.0)
        with pytest.raises(ValueError, match="lies in the past"):
            FaultInjector(plan, job).arm()

    def test_arm_is_idempotent(self):
        plan = FaultPlan((TaskCrash(at=2.0, vertex="Worker", restart_delay=None),))
        engine, job = deploy_faulty_linear(plan)
        job.fault_injector.arm()  # second arm: no duplicate events
        engine.run(4.0)
        assert len(job.fault_injector.trace()) == 1

    def test_plan_add_returns_new_plan(self):
        plan = FaultPlan()
        extended = plan.add(TaskCrash(at=1.0, vertex="w"))
        assert not plan and extended
        assert len(extended.events) == 1


# ----------------------------------------------------------------------
# recorder integration
# ----------------------------------------------------------------------


class TestRecorderIntegration:
    def test_recorder_captures_fault_rows(self):
        from repro.experiments.recording import SeriesRecorder

        pipeline = build_chaos_pipeline()
        engine = StreamProcessingEngine(EngineConfig(elastic=True, seed=7))
        recorder = SeriesRecorder(engine, interval=5.0)
        engine.submit(pipeline)
        engine.run(60.0)
        series = recorder.fault_series()
        kinds = [kind for _, kind, _, _ in series]
        assert "task_crash" in kinds and "measurement_dropout" in kinds
        # each fault lands in exactly one row (cursor advances, no dupes)
        assert len(series) == len(set(series))
