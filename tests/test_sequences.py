"""Unit tests for job sequences."""

import pytest

from repro.engine.udf import MapUDF
from repro.graphs.job_graph import GraphError, JobGraph
from repro.graphs.sequences import JobSequence


def udf_factory():
    return MapUDF(lambda x: x)


@pytest.fixture
def chain():
    graph = JobGraph("chain")
    a = graph.add_vertex("a", udf_factory)
    b = graph.add_vertex("b", udf_factory)
    c = graph.add_vertex("c", udf_factory)
    graph.connect(a, b)
    graph.connect(b, c)
    return graph


class TestConstruction:
    def test_vertex_only_sequence(self, chain):
        js = JobSequence([chain.vertex("b")])
        assert js.vertex_names() == ["b"]
        assert js.edge_names() == []

    def test_edge_only_sequence(self, chain):
        edge = chain.edge_between("a", "b")
        js = JobSequence([edge])
        assert js.edge_names() == ["a->b"]

    def test_alternating_sequence(self, chain):
        e1 = chain.edge_between("a", "b")
        e2 = chain.edge_between("b", "c")
        js = JobSequence([e1, chain.vertex("b"), e2])
        assert js.vertex_names() == ["b"]
        assert js.edge_names() == ["a->b", "b->c"]
        assert len(js) == 3

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            JobSequence([])

    def test_two_vertices_in_a_row_rejected(self, chain):
        with pytest.raises(GraphError):
            JobSequence([chain.vertex("a"), chain.vertex("b")])

    def test_two_edges_in_a_row_rejected(self, chain):
        with pytest.raises(GraphError):
            JobSequence([chain.edge_between("a", "b"), chain.edge_between("b", "c")])

    def test_disconnected_edge_rejected(self, chain):
        with pytest.raises(GraphError):
            JobSequence([chain.vertex("a"), chain.edge_between("b", "c")])

    def test_edge_vertex_mismatch_rejected(self, chain):
        with pytest.raises(GraphError):
            JobSequence([chain.edge_between("a", "b"), chain.vertex("c")])


class TestFromNames:
    def test_simple_path(self, chain):
        js = JobSequence.from_names(chain, ["a", "b", "c"])
        assert js.vertex_names() == ["a", "b", "c"]
        assert js.edge_names() == ["a->b", "b->c"]

    def test_leading_edge(self, chain):
        js = JobSequence.from_names(chain, ["b"], leading_edge=True)
        assert js.edge_names() == ["a->b"]
        assert isinstance(js.elements[0], type(chain.edge_between("a", "b")))

    def test_trailing_edge(self, chain):
        js = JobSequence.from_names(chain, ["b"], trailing_edge=True)
        assert js.edge_names() == ["b->c"]

    def test_both_edges(self, chain):
        js = JobSequence.from_names(chain, ["b"], leading_edge=True, trailing_edge=True)
        assert js.edge_names() == ["a->b", "b->c"]
        assert js.name == "(e:a->b, b, e:b->c)"

    def test_leading_edge_ambiguous_rejected(self):
        graph = JobGraph("merge")
        a = graph.add_vertex("a", udf_factory)
        b = graph.add_vertex("b", udf_factory)
        c = graph.add_vertex("c", udf_factory)
        graph.connect(a, c)
        graph.connect(b, c)
        with pytest.raises(GraphError):
            JobSequence.from_names(graph, ["c"], leading_edge=True)

    def test_missing_edge_between_names(self, chain):
        with pytest.raises(KeyError):
            JobSequence.from_names(chain, ["a", "c"])

    def test_empty_names_rejected(self, chain):
        with pytest.raises(GraphError):
            JobSequence.from_names(chain, [])


class TestAccessors:
    def test_contains(self, chain):
        js = JobSequence.from_names(chain, ["a", "b"])
        assert chain.vertex("a") in js
        assert chain.vertex("c") not in js

    def test_elastic_vertices(self):
        graph = JobGraph("g")
        a = graph.add_vertex("a", udf_factory)
        b = graph.add_vertex("b", udf_factory, parallelism=2, min_parallelism=1, max_parallelism=4)
        graph.connect(a, b)
        js = JobSequence.from_names(graph, ["a", "b"])
        assert [v.name for v in js.elastic_vertices()] == ["b"]
