"""Setuptools shim for legacy editable installs (pip install -e .).

All metadata lives in pyproject.toml; this file exists so environments
without the ``wheel`` package (offline clusters) can still do editable
installs through the legacy setup.py code path.
"""

from setuptools import setup

setup()
