"""Actuation supervision: asynchronous, failure-prone, retried rescaling.

The paper assumes rescaling is instantaneous and infallible; this
subpackage models it as what it really is — an asynchronous runtime
operation with provisioning delay that can fail, time out, and need
retries. :class:`ActuationConfig` holds the knobs (delay distribution,
failure model, exponential backoff, guardrails);
:class:`ReconciliationController` converges actual parallelism to the
scaler's desired parallelism and escalates through a constraint-violation
watchdog when reconciliation lags. Attach a config with
``PipelineBuilder.actuate(...)`` or ``EngineConfig(actuation=...)``;
without one (the default), rescaling stays synchronous and byte-identical
to unsupervised behavior.
"""

from repro.actuation.config import ActuationConfig
from repro.actuation.reconciler import ActuationRequest, ReconciliationController

__all__ = [
    "ActuationConfig",
    "ActuationRequest",
    "ReconciliationController",
]
