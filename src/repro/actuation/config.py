"""Actuation supervision knobs (provisioning delay, retry, guardrails).

The paper's ScaleReactively loop treats rescaling as instantaneous and
infallible. Real elasticity controllers must survive slow and failed
actuations: a scale-up order takes provisioning time, may time out, and
may need retries before the cluster converges to the desired
parallelism. :class:`ActuationConfig` is the frozen knob bundle for that
supervision layer — provisioning-delay distribution, failure/timeout
model, exponential-backoff retry policy, and the guardrails (per-round
max step, hysteresis band, constraint-violation watchdog).

With no :class:`ActuationConfig` attached to a job (the default), the
scheduler applies rescaling synchronously exactly as before and runs
stay byte-identical to unsupervised behavior.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.simulation.randomness import Distribution, Uniform


def _require_number(name: str, value: object, *, minimum: float = 0.0,
                    allow_equal: bool = True) -> float:
    """Reject non-numeric / NaN / out-of-range values at construction."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a number (got {value!r})")
    value = float(value)
    if math.isnan(value) or math.isinf(value):
        raise ValueError(f"{name} must be finite (got {value!r})")
    if allow_equal:
        if value < minimum:
            raise ValueError(f"{name} must be >= {minimum} (got {value!r})")
    elif value <= minimum:
        raise ValueError(f"{name} must be > {minimum} (got {value!r})")
    return value


@dataclass(frozen=True)
class ActuationConfig:
    """Supervised-actuation parameters for one job.

    Provisioning model
        ``provisioning_delay`` is sampled (deterministically, from the
        job's ``actuation`` random stream) per request; a sample above
        ``timeout`` counts as a timed-out attempt. ``failure_rate`` adds
        i.i.d. attempt failures on top.

    Retry policy
        attempt ``k`` (1-based) backs off
        ``min(backoff_max, backoff_base * backoff_factor**(k-1))``
        scaled by a symmetric jitter of relative width
        ``backoff_jitter``. After ``max_retries`` failed retries the
        request is abandoned (a *give-up*).

    Guardrails
        ``max_step`` caps the per-request parallelism change;
        ``hysteresis`` suppresses requests within that many tasks of
        the current target; the watchdog escalates to bottleneck-style
        doubling once the constraint has been violated while
        reconciliation lagged for ``watchdog_intervals`` consecutive
        adjustment intervals.
    """

    enabled: bool = True
    provisioning_delay: Distribution = field(
        default_factory=lambda: Uniform(0.3, 1.2))
    failure_rate: float = 0.0
    timeout: float = 10.0
    max_retries: int = 5
    backoff_base: float = 1.0
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    backoff_jitter: float = 0.1
    max_step: Optional[int] = None
    hysteresis: int = 0
    watchdog_intervals: int = 3

    def __post_init__(self) -> None:
        if not isinstance(self.provisioning_delay, Distribution):
            raise TypeError(
                "provisioning_delay must be a Distribution "
                f"(got {self.provisioning_delay!r})")
        rate = _require_number("failure_rate", self.failure_rate)
        if rate >= 1.0:
            raise ValueError(
                f"failure_rate must be in [0, 1) (got {rate!r}); a rate of 1 "
                "would make every attempt fail and reconciliation diverge")
        _require_number("timeout", self.timeout, allow_equal=False)
        if isinstance(self.max_retries, bool) or not isinstance(self.max_retries, int):
            raise TypeError(f"max_retries must be an int (got {self.max_retries!r})")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0 (got {self.max_retries!r})")
        _require_number("backoff_base", self.backoff_base, allow_equal=False)
        _require_number("backoff_factor", self.backoff_factor, minimum=1.0)
        _require_number("backoff_max", self.backoff_max, allow_equal=False)
        jitter = _require_number("backoff_jitter", self.backoff_jitter)
        if jitter > 1.0:
            raise ValueError(f"backoff_jitter must be in [0, 1] (got {jitter!r})")
        if self.max_step is not None:
            if isinstance(self.max_step, bool) or not isinstance(self.max_step, int):
                raise TypeError(f"max_step must be an int or None (got {self.max_step!r})")
            if self.max_step < 1:
                raise ValueError(f"max_step must be >= 1 (got {self.max_step!r})")
        if isinstance(self.hysteresis, bool) or not isinstance(self.hysteresis, int):
            raise TypeError(f"hysteresis must be an int (got {self.hysteresis!r})")
        if self.hysteresis < 0:
            raise ValueError(f"hysteresis must be >= 0 (got {self.hysteresis!r})")
        if isinstance(self.watchdog_intervals, bool) or not isinstance(self.watchdog_intervals, int):
            raise TypeError(
                f"watchdog_intervals must be an int (got {self.watchdog_intervals!r})")
        if self.watchdog_intervals < 1:
            raise ValueError(
                f"watchdog_intervals must be >= 1 (got {self.watchdog_intervals!r})")

    def describe(self) -> dict:
        """JSON-serializable summary for manifests."""
        return {
            "enabled": self.enabled,
            "provisioning_delay": type(self.provisioning_delay).__name__,
            "provisioning_delay_mean": self.provisioning_delay.mean,
            "failure_rate": self.failure_rate,
            "timeout": self.timeout,
            "max_retries": self.max_retries,
            "backoff_base": self.backoff_base,
            "backoff_factor": self.backoff_factor,
            "backoff_max": self.backoff_max,
            "backoff_jitter": self.backoff_jitter,
            "max_step": self.max_step,
            "hysteresis": self.hysteresis,
            "watchdog_intervals": self.watchdog_intervals,
        }
