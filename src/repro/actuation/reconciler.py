"""Supervised actuation: asynchronous, failure-prone rescaling.

The scheduler's ``set_parallelism`` is synchronous and infallible; real
actuation is neither. When a job carries an
:class:`~repro.actuation.config.ActuationConfig`, the elastic scaler no
longer applies its decisions directly — it hands each one to the
:class:`ReconciliationController`, which:

* turns it into an :class:`ActuationRequest` whose provisioning delay is
  sampled (deterministically, from the job's ``actuation`` random
  stream) on the simulator heap;
* lets the request fail (sampled ``failure_rate``, an active
  ``ActuationFailure`` fault window, a provisioning sample above
  ``timeout``, or insufficient cluster resources) and retries with
  exponential backoff + jitter until ``max_retries`` is exhausted;
* applies the guardrails: per-request ``max_step`` clamping, a
  ``hysteresis`` dead-band around the current target, and a
  constraint-violation watchdog that escalates to bottleneck-style
  doubling when reconciliation has lagged a violated constraint for
  ``watchdog_intervals`` consecutive adjustment intervals;
* tracks desired / applied / in-flight state per vertex so the scaler
  can suppress re-deciding vertices whose actuation is still pending,
  and exposes the convergence lag (total desired-minus-actual
  parallelism distance) as a gauge.

Request lifecycle invariants:

* at most one live request per vertex — issuing a new request for a
  vertex marks any replaced in-flight request ``superseded``, so stale
  ``_complete`` / ``_retry`` callbacks still on the heap can never apply
  an outdated target over the newer one;
* a *partial* application (``ScalingResult.partial``, e.g. a scale-down
  limited by still-pending additions) does not count as convergence:
  the vertex's desired state is kept, ``convergence_lag()`` keeps
  reporting the distance, and the remainder is re-issued on the next
  adjustment tick.

Every lifecycle step is appended to :attr:`ReconciliationController.log`
(plain tuples, byte-comparable across same-seed runs) and, when tracing
is on, emitted as schema-v2 :class:`~repro.obs.trace.TraceRecord` rows
(``actuation-pending`` / ``actuation-failed`` / ``retry-backoff`` /
``watchdog-escalation``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING, Tuple

from repro.actuation.config import ActuationConfig
from repro.obs.trace import (
    BRANCH_ACTUATION_FAILED,
    BRANCH_ACTUATION_PENDING,
    BRANCH_ADMISSION_DENIED,
    BRANCH_MIGRATION_FAILED,
    BRANCH_MIGRATION_PENDING,
    BRANCH_MIGRATION_ROLLED_BACK,
    BRANCH_RETRY_BACKOFF,
    BRANCH_WATCHDOG_ESCALATION,
    TraceRecord,
)
from repro.simulation.kernel import Simulator
from repro.simulation.randomness import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - avoids a package import cycle
    from repro.engine.runtime import RuntimeGraph
    from repro.engine.scheduler import Scheduler


class ActuationRequest:
    """One in-flight rescaling order (vertex → target parallelism)."""

    __slots__ = (
        "vertex", "target", "p_before", "attempt", "issued_at",
        "round", "superseded", "escalated",
    )

    def __init__(
        self,
        vertex: str,
        target: int,
        p_before: int,
        issued_at: float,
        round: int = 0,
        escalated: bool = False,
    ) -> None:
        self.vertex = vertex
        self.target = target
        self.p_before = p_before
        #: 1-based attempt counter (bumped on every retry)
        self.attempt = 1
        self.issued_at = issued_at
        self.round = round
        #: set when a newer request (scaler re-request or watchdog
        #: escalation) replaced this one — completion/retry no-op
        self.superseded = False
        self.escalated = escalated

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ActuationRequest({self.vertex}: {self.p_before}->{self.target}, "
            f"attempt {self.attempt})"
        )


class ReconciliationController:
    """Converges actual parallelism to desired through unreliable actuation."""

    def __init__(
        self,
        sim: Simulator,
        scheduler: "Scheduler",
        runtime: "RuntimeGraph",
        config: ActuationConfig,
        streams: RandomStreams,
        metrics=None,
        trace_sink=None,
        job_name: str = "",
    ) -> None:
        self.sim = sim
        self.scheduler = scheduler
        self.runtime = runtime
        self.config = config
        #: deterministic actuation stream, independent of service-time
        #: streams (adding it does not perturb existing stream draws)
        self._rng = streams.get("actuation")
        self.metrics = metrics
        #: optional DecisionTrace receiving schema-v2 actuation records
        self.trace_sink = trace_sink
        self.job_name = job_name
        #: set by the engine when the job carries stateful vertices; a
        #: rescale of a stateful vertex then routes through the
        #: multi-phase migration protocol instead of a direct apply
        self.state_manager = None
        #: desired parallelism per vertex (last accepted request target)
        self.desired: Dict[str, int] = {}
        #: in-flight request per vertex (at most one at a time)
        self.in_flight: Dict[str, ActuationRequest] = {}
        #: chronological actuation lifecycle log:
        #: (time, kind, vertex, attempt, detail) — byte-comparable
        self.log: List[Tuple[float, str, str, int, str]] = []
        # lifetime counters (mirrored into the metrics registry when set)
        self.requests = 0
        self.retries = 0
        self.failures = 0
        self.give_ups = 0
        self.applied = 0
        self.escalations = 0
        self.suppressed_hysteresis = 0
        self.clamped_steps = 0
        self.superseded_requests = 0
        self.partials = 0
        #: requests permanently abandoned after retry exhaustion
        self.abandoned = 0
        #: scale-ups refused by the cluster's admission controller
        self.admission_denials = 0
        # state-migration lifecycle counters
        self.migrations_started = 0
        self.migrations_applied = 0
        self.migrations_rolled_back = 0
        #: vertices whose last success applied less than desired; the
        #: remainder is re-issued on the next adjustment tick
        self._partial_pending: set = set()
        #: consecutive adjustment intervals with a violated constraint
        #: while reconciliation lagged (watchdog trigger state)
        self._lagging_intervals = 0
        # fault windows set by ActuationFailure / ActuationDelay
        # ("*" = all vertices)
        self._fail_until: Dict[str, float] = {}
        self._delay_windows: Dict[str, Tuple[float, float]] = {}
        # migration fault windows set by MigrationFailure ("*" = all)
        self._migrate_fail_until: Dict[str, float] = {}
        #: in-transfer migration plan per vertex — a task crash on the
        #: vertex aborts it so _finish_transfer rolls back instead of
        #: applying a plan computed over pre-crash state
        self._migrating: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # bookkeeping helpers
    # ------------------------------------------------------------------

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"actuation.{name}").inc(amount)

    def _gauge(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.gauge(f"actuation.{name}").set(value)

    def _record(self, kind: str, vertex: str, attempt: int, detail: str = "") -> None:
        self.log.append((self.sim.now, kind, vertex, attempt, detail))

    def _emit(self, record: TraceRecord) -> None:
        if self.trace_sink is not None:
            self.trace_sink.append(record)

    def _trace(
        self,
        branch: str,
        req: ActuationRequest,
        detail: str,
        p_applied: Optional[int] = None,
        state_bytes: Optional[int] = None,
    ) -> TraceRecord:
        return TraceRecord(
            self.sim.now, "*", branch,
            vertex=req.vertex,
            job=self.job_name,
            round=req.round,
            p_before=req.p_before,
            p_target=req.target,
            p_applied=p_applied,
            attempt=req.attempt,
            detail=detail,
            state_bytes=state_bytes,
        )

    # ------------------------------------------------------------------
    # fault-window hooks (driven by simulation.faults)
    # ------------------------------------------------------------------

    def fail_actuations(self, vertex: Optional[str], until: float) -> None:
        """Make every attempt for ``vertex`` (None = all) fail until ``until``."""
        key = vertex if vertex is not None else "*"
        self._fail_until[key] = max(self._fail_until.get(key, 0.0), until)

    def delay_actuations(self, vertex: Optional[str], factor: float, until: float) -> None:
        """Stretch provisioning delays for ``vertex`` (None = all) until ``until``."""
        key = vertex if vertex is not None else "*"
        self._delay_windows[key] = (factor, until)

    def _fault_active(self, vertex: str) -> bool:
        now = self.sim.now
        return (
            now < self._fail_until.get("*", 0.0)
            or now < self._fail_until.get(vertex, 0.0)
        )

    def fail_migrations(self, vertex: Optional[str], until: float) -> None:
        """Make state transfers for ``vertex`` (None = all) fail until ``until``."""
        key = vertex if vertex is not None else "*"
        self._migrate_fail_until[key] = max(
            self._migrate_fail_until.get(key, 0.0), until
        )

    def _migration_fault_active(self, vertex: str) -> bool:
        now = self.sim.now
        return (
            now < self._migrate_fail_until.get("*", 0.0)
            or now < self._migrate_fail_until.get(vertex, 0.0)
        )

    def abort_migrations(self, vertex: str, reason: str) -> None:
        """Abort an in-transfer migration for ``vertex`` (e.g. task crash).

        The plan was computed over pre-crash state; applying it would
        resurrect lost keys. Marking it aborted makes the pending
        ``_finish_transfer`` roll back instead.
        """
        plan = self._migrating.get(vertex)
        if plan is not None and not plan.aborted:
            plan.aborted = True
            plan.abort_reason = reason
            self._record("migration-aborted", vertex, 0, reason)

    def _delay_factor(self, vertex: str) -> float:
        now = self.sim.now
        factor = 1.0
        for key in ("*", vertex):
            window = self._delay_windows.get(key)
            if window is not None and now < window[1]:
                factor = max(factor, window[0])
        return factor

    # ------------------------------------------------------------------
    # request intake (called by the elastic scaler)
    # ------------------------------------------------------------------

    def in_flight_vertices(self) -> List[str]:
        """Vertices with a pending actuation (scaler suppresses these)."""
        return sorted(self.in_flight)

    def request(self, vertex: str, target: int, round: int = 0) -> int:
        """Accept a rescaling order for ``vertex``; returns the accepted delta.

        The target passes through the guardrails (vertex bounds clamp,
        hysteresis dead-band, per-request ``max_step``) before an
        :class:`ActuationRequest` is issued. Returns the signed change the
        request aims for, or 0 when it was suppressed.
        """
        rv = self.runtime.vertex(vertex)
        clamped = rv.job_vertex.clamp(target)
        current = rv.target_parallelism
        step = clamped - current
        if step == 0:
            self.desired.pop(vertex, None)
            self._partial_pending.discard(vertex)
            return 0
        if self.config.hysteresis > 0 and abs(step) <= self.config.hysteresis:
            self.suppressed_hysteresis += 1
            self._count("suppressed_hysteresis")
            self._record(
                "suppressed", vertex, 0,
                f"hysteresis: |{step}| <= {self.config.hysteresis}",
            )
            return 0
        if self.config.max_step is not None and abs(step) > self.config.max_step:
            self.clamped_steps += 1
            self._count("clamped_steps")
            limited = self.config.max_step if step > 0 else -self.config.max_step
            self._record(
                "clamped", vertex, 0,
                f"max_step: {step:+d} -> {limited:+d}",
            )
            clamped = current + limited
            step = limited
        return self._issue(vertex, clamped, current, round)

    def _issue(
        self,
        vertex: str,
        target: int,
        current: int,
        round: int,
        escalated: bool = False,
    ) -> int:
        req = ActuationRequest(
            vertex, target, current, self.sim.now, round=round, escalated=escalated
        )
        # A replaced in-flight request must be marked superseded before
        # the overwrite: its _complete/_retry callbacks are still on the
        # heap and would otherwise apply an outdated target over this
        # newer one later.
        previous = self.in_flight.get(vertex)
        if previous is not None and not previous.superseded:
            previous.superseded = True
            self.superseded_requests += 1
            self._count("superseded")
            self._record(
                "superseded", vertex, previous.attempt,
                f"replaced by {current}->{target}",
            )
        self.desired[vertex] = target
        self.in_flight[vertex] = req
        self.requests += 1
        self._count("requests")
        self._gauge("in_flight", len(self.in_flight))
        self._record("request", vertex, req.attempt, f"{current}->{target}")
        self._emit(self._trace(
            BRANCH_ACTUATION_PENDING, req,
            "escalated actuation issued" if escalated else "actuation issued",
        ))
        self._schedule_attempt(req)
        return target - current

    # ------------------------------------------------------------------
    # attempt lifecycle (simulator callbacks)
    # ------------------------------------------------------------------

    def _schedule_attempt(self, req: ActuationRequest) -> None:
        delay = self.config.provisioning_delay.sample(self._rng)
        delay *= self._delay_factor(req.vertex)
        timed_out = delay > self.config.timeout
        self.sim.schedule(min(delay, self.config.timeout), self._complete, req, timed_out)

    def _complete(self, req: ActuationRequest, timed_out: bool) -> None:
        if req.superseded:
            return
        failure = None
        if timed_out:
            failure = f"timeout after {self.config.timeout}s"
        elif self._fault_active(req.vertex):
            failure = "actuation fault window active"
        elif self.config.failure_rate > 0.0 and self._rng.random() < self.config.failure_rate:
            failure = "provisioning failure (sampled)"
        if failure is None:
            if (
                self.state_manager is not None
                and self.state_manager.is_stateful(req.vertex)
            ):
                self._begin_migration(req)
                return
            from repro.engine.resources import InsufficientResourcesError

            try:
                result = self.scheduler.set_parallelism(req.vertex, req.target)
            except InsufficientResourcesError:
                failure = "insufficient cluster resources"
            else:
                if result.denied:
                    # Admission denial is a first-class retryable outcome:
                    # nothing was announced, so the request re-enters the
                    # normal retry/backoff path and may succeed once other
                    # jobs release slots.
                    self.admission_denials += 1
                    self._count("admission_denials")
                    self._emit(self._trace(BRANCH_ADMISSION_DENIED, req, result.reason))
                    self._fail(req, f"admission denied: {result.reason}")
                    return
                self._succeed(req, result)
                return
        self._fail(req, failure)

    def _succeed(self, req: ActuationRequest, result) -> None:
        self.in_flight.pop(req.vertex, None)
        self.applied += 1
        self._count("applied")
        self._gauge("in_flight", len(self.in_flight))
        self._record("applied", req.vertex, req.attempt, f"delta={result.applied:+d}")
        desired = self.desired.get(req.vertex)
        actual = self.runtime.vertex(req.vertex).target_parallelism
        if result.partial and desired is not None and actual != desired:
            # Partial application (e.g. scale-down limited by pending
            # additions / min_parallelism): convergence is NOT reached.
            # Keep the desired state so convergence_lag() stays honest
            # and re-issue for the remainder on the next adjustment tick.
            self.partials += 1
            self._count("partials")
            self._partial_pending.add(req.vertex)
            self._record(
                "partial", req.vertex, req.attempt,
                f"applied={result.applied:+d} of {result.requested:+d}, "
                f"actual={actual}, desired={desired}",
            )
            return
        self.desired.pop(req.vertex, None)
        self._partial_pending.discard(req.vertex)

    def _fail(self, req: ActuationRequest, reason: str) -> None:
        self.failures += 1
        self._count("failures")
        self._record("failed", req.vertex, req.attempt, reason)
        self._emit(self._trace(BRANCH_ACTUATION_FAILED, req, reason))
        if req.attempt > self.config.max_retries:
            self.give_ups += 1
            self._count("give_ups")
            # Retry exhaustion is surfaced as its own first-class metric
            # (un-prefixed: it is an outcome, not a lifecycle step) so
            # dashboards can alert on silently-dropped rescale orders.
            self.abandoned += 1
            if self.metrics is not None:
                self.metrics.counter("reconciler.abandoned").inc()
            self.in_flight.pop(req.vertex, None)
            self._gauge("in_flight", len(self.in_flight))
            self._record(
                "give-up", req.vertex, req.attempt,
                f"abandoned after {req.attempt} attempts",
            )
            return
        backoff = min(
            self.config.backoff_max,
            self.config.backoff_base * self.config.backoff_factor ** (req.attempt - 1),
        )
        if self.config.backoff_jitter > 0.0:
            backoff *= 1.0 + self.config.backoff_jitter * (2.0 * self._rng.random() - 1.0)
        req.attempt += 1
        self.retries += 1
        self._count("retries")
        self._record("retry", req.vertex, req.attempt, f"backoff={backoff:.3f}")
        self._emit(self._trace(
            BRANCH_RETRY_BACKOFF, req, f"retry in {backoff:.3f}s",
        ))
        self.sim.schedule(backoff, self._retry, req)

    def _retry(self, req: ActuationRequest) -> None:
        if req.superseded:
            return
        self._schedule_attempt(req)

    # ------------------------------------------------------------------
    # stateful migration protocol (quiesce → snapshot → transfer → restore)
    # ------------------------------------------------------------------

    def _begin_migration(self, req: ActuationRequest) -> None:
        """Start the multi-phase state migration for a stateful rescale.

        The vertex's tasks are paused for the quiesce + snapshot +
        transfer phases (pause scales with moved state bytes); the plan
        is held in ``_migrating`` so a concurrent crash can abort it.
        The rescale itself is applied only at ``_finish_transfer``.
        """
        manager = self.state_manager
        plan = manager.plan_migration(req.vertex, req.target)
        t_quiesce, t_snapshot, t_transfer, t_restore = manager.sample_phase_times(
            req.vertex, plan.moved_bytes
        )
        pause = t_quiesce + t_snapshot + t_transfer
        self.migrations_started += 1
        self._count("migrations_started")
        self._record(
            "migration-start", req.vertex, req.attempt,
            f"{req.p_before}->{req.target}, {plan.moved_bytes}B moved, "
            f"pause={pause:.3f}s",
        )
        self._emit(self._trace(
            BRANCH_MIGRATION_PENDING, req,
            f"migrating {plan.moved_bytes} bytes "
            f"(quiesce+snapshot+transfer {pause:.3f}s)",
            state_bytes=plan.moved_bytes,
        ))
        manager.note_migration_pause(req.vertex, pause)
        self._migrating[req.vertex] = plan
        self.sim.schedule(pause, self._finish_transfer, req, plan, t_restore)

    def _finish_transfer(self, req: ActuationRequest, plan, t_restore: float) -> None:
        if self._migrating.get(req.vertex) is plan:
            self._migrating.pop(req.vertex, None)
        if req.superseded:
            # Nothing was applied yet — state layout is untouched, so
            # the newer request simply starts from the same baseline.
            self._record(
                "migration-dropped", req.vertex, req.attempt,
                "request superseded mid-transfer",
            )
            return
        if plan.aborted or self._migration_fault_active(req.vertex):
            reason = plan.abort_reason or "migration fault window active"
            self._rollback_migration(req, plan, t_restore, reason)
            return
        self.state_manager.apply_migration(plan)
        from repro.engine.resources import InsufficientResourcesError

        try:
            result = self.scheduler.set_parallelism(req.vertex, req.target)
        except InsufficientResourcesError:
            result = None
            reason = "insufficient cluster resources"
        if result is not None and result.denied:
            reason = f"admission denied: {result.reason}"
            result = None
            self.admission_denials += 1
            self._count("admission_denials")
            self._emit(self._trace(BRANCH_ADMISSION_DENIED, req, reason))
        if result is None:
            self.state_manager.rollback_migration(plan)
            self.migrations_rolled_back += 1
            self._count("migrations_rolled_back")
            self._record("migration-rolled-back", req.vertex, req.attempt, reason)
            self._emit(self._trace(
                BRANCH_MIGRATION_ROLLED_BACK, req,
                f"rolled back to p={req.p_before}: {reason}",
                state_bytes=plan.moved_bytes,
            ))
            self._fail(req, reason)
            return
        self.state_manager.note_migration_pause(req.vertex, t_restore)
        self.migrations_applied += 1
        self._count("migrations_applied")
        self._record(
            "migration-applied", req.vertex, req.attempt,
            f"{plan.moved_bytes}B restored in {t_restore:.3f}s",
        )
        self._succeed(req, result)

    def _rollback_migration(
        self, req: ActuationRequest, plan, t_restore: float, reason: str
    ) -> None:
        """Failed mid-transfer: restore the pre-rescale partitioning.

        Rollback pays the restore cost too (re-installing the snapshot
        on the original tasks), then the request enters the normal
        retry/backoff/give-up path.
        """
        self.state_manager.note_migration_pause(req.vertex, t_restore)
        self.state_manager.rollback_migration(plan)
        self.migrations_rolled_back += 1
        self._count("migrations_rolled_back")
        self._emit(self._trace(
            BRANCH_MIGRATION_FAILED, req, reason,
            state_bytes=plan.moved_bytes,
        ))
        self._record("migration-rolled-back", req.vertex, req.attempt, reason)
        self._emit(self._trace(
            BRANCH_MIGRATION_ROLLED_BACK, req,
            f"rolled back to p={req.p_before} without state loss",
            state_bytes=plan.moved_bytes,
        ))
        self._fail(req, reason)

    # ------------------------------------------------------------------
    # watchdog (driven from the adjustment tick)
    # ------------------------------------------------------------------

    def _reissue_partials(self) -> None:
        """Re-issue the remainder of partially applied requests.

        Runs once per adjustment tick. A vertex whose last success
        applied less than desired (and that has no newer in-flight
        request) gets a fresh request towards the still-recorded desired
        target — by now previously pending additions may have become
        drainable, so the remainder can complete.
        """
        for vertex in sorted(self._partial_pending):
            if vertex in self.in_flight:
                continue
            desired = self.desired.get(vertex)
            if desired is None:
                self._partial_pending.discard(vertex)
                continue
            current = self.runtime.vertex(vertex).target_parallelism
            if desired == current:
                self.desired.pop(vertex, None)
                self._partial_pending.discard(vertex)
                continue
            self._partial_pending.discard(vertex)
            self._record("re-issue", vertex, 0, f"partial remainder {current}->{desired}")
            self._issue(vertex, desired, current, round=0)

    def convergence_lag(self) -> int:
        """Total |desired − actual target| parallelism across vertices."""
        lag = 0
        for vertex, target in self.desired.items():
            lag += abs(target - self.runtime.vertex(vertex).target_parallelism)
        return lag

    def on_adjustment_tick(self, violated: bool) -> None:
        """Per-interval watchdog: escalate when actuation lags a violation.

        Called once per adjustment interval (after the scaler ran) with
        whether any latency constraint is currently violated. When the
        constraint has been violated for ``watchdog_intervals``
        consecutive intervals while reconciliation lagged (desired ≠
        actual), the watchdog supersedes the stuck requests and issues
        bottleneck-style doubling orders, bypassing hysteresis and
        ``max_step``.
        """
        self._reissue_partials()
        lag = self.convergence_lag()
        self._gauge("convergence_lag", lag)
        if violated and lag > 0:
            self._lagging_intervals += 1
        else:
            self._lagging_intervals = 0
            return
        if self._lagging_intervals < self.config.watchdog_intervals:
            return
        self._lagging_intervals = 0
        for vertex in sorted(self.desired):
            rv = self.runtime.vertex(vertex)
            current = rv.target_parallelism
            desired = self.desired[vertex]
            if desired <= current:
                continue  # escalation only accelerates scale-ups
            pending = self.in_flight.get(vertex)
            if pending is not None:
                pending.superseded = True
                self.in_flight.pop(vertex, None)
            target = rv.job_vertex.clamp(max(desired, 2 * max(current, 1)))
            self.escalations += 1
            self._count("escalations")
            self._record(
                "escalate", vertex, 0,
                f"watchdog: lagged {self.config.watchdog_intervals} intervals, "
                f"{current}->{target}",
            )
            self._emit(TraceRecord(
                self.sim.now, "*", BRANCH_WATCHDOG_ESCALATION,
                vertex=vertex,
                job=self.job_name,
                p_before=current,
                p_target=target,
                detail=(
                    f"reconciliation lagged violated constraint for "
                    f"{self.config.watchdog_intervals} intervals; doubling"
                ),
            ))
            self._issue(vertex, target, current, round=0, escalated=True)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def trace(self) -> List[Tuple[float, str, str, int, str]]:
        """The actuation log as plain tuples (determinism assertions)."""
        return list(self.log)

    def summary(self) -> Dict[str, object]:
        """JSON-serializable lifetime summary for manifests/dashboards."""
        summary: Dict[str, object] = {
            "requests": self.requests,
            "retries": self.retries,
            "failures": self.failures,
            "give_ups": self.give_ups,
            "abandoned": self.abandoned,
            "applied": self.applied,
            "escalations": self.escalations,
            "suppressed_hysteresis": self.suppressed_hysteresis,
            "clamped_steps": self.clamped_steps,
            "superseded": self.superseded_requests,
            "partials": self.partials,
            "in_flight": len(self.in_flight),
            "convergence_lag": self.convergence_lag(),
            "config": self.config.describe(),
        }
        if self.state_manager is not None:
            summary["migrations"] = {
                "started": self.migrations_started,
                "applied": self.migrations_applied,
                "rolled_back": self.migrations_rolled_back,
            }
        # Only present when admission ever refused a request, so manifests
        # of single-job runs stay byte-identical to pre-admission output.
        if self.admission_denials:
            summary["admission_denials"] = self.admission_denials
        return summary

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ReconciliationController({self.requests} requests, "
            f"{self.retries} retries, {len(self.in_flight)} in flight)"
        )
