"""Process-wide metrics primitives: counters, gauges, histograms.

A :class:`MetricsRegistry` is a flat, insertion-ordered namespace of
instruments. The registry is deliberately simulation-agnostic (it never
touches the event heap or any RNG), so instrumented code behaves
identically whether metrics are collected or not — the property the
engine's byte-identical-when-disabled guarantee rests on.

Instruments are get-or-create: ``registry.counter("scheduler.tasks_started")``
returns the same object on every call, so hot paths can cache the handle.
A module-level default registry exists for ad-hoc instrumentation
(:func:`global_registry`); the engine creates one private registry per
run so concurrent engines and tests never share state.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

#: default histogram bucket upper bounds (seconds) — tuned for the
#: sub-second service times of the simulated tasks; the last implicit
#: bucket is +inf
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: cannot decrease (got {amount})")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value that may go up or down."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = float(value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """A fixed-bucket histogram with count/sum/min/max.

    ``bounds`` are the inclusive upper bounds of the finite buckets; one
    overflow bucket is appended implicitly. Bucket counts are cumulative
    in :meth:`snapshot` (Prometheus convention) so downstream tooling can
    derive quantile estimates.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, name: str, bounds: Optional[Sequence[float]] = None) -> None:
        self.name = name
        chosen = tuple(bounds) if bounds is not None else DEFAULT_BUCKETS
        if not chosen or list(chosen) != sorted(chosen):
            raise ValueError(f"histogram {name!r}: bounds must be non-empty and sorted")
        self.bounds: Tuple[float, ...] = chosen
        self.bucket_counts: List[int] = [0] * (len(chosen) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        """Mean of all observed samples (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly view with cumulative bucket counts."""
        cumulative = []
        running = 0
        for count in self.bucket_counts:
            running += count
            cumulative.append(running)
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {
                **{f"le_{bound:g}": c for bound, c in zip(self.bounds, cumulative)},
                "le_inf": cumulative[-1],
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.6f})"


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Insertion-ordered namespace of instruments with get-or-create access."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def _get_or_create(self, name: str, kind, factory) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first access)."""
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first access)."""
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None) -> Histogram:
        """The histogram named ``name`` (created on first access)."""
        return self._get_or_create(name, Histogram, lambda: Histogram(name, bounds))

    def names(self) -> List[str]:
        """Registered metric names in creation order."""
        return list(self._instruments)

    def get(self, name: str) -> Optional[Instrument]:
        """The instrument named ``name``, or None."""
        return self._instruments.get(name)

    def snapshot(self) -> Dict[str, object]:
        """Flat ``{name: value-or-histogram-dict}`` view of all instruments."""
        out: Dict[str, object] = {}
        for name, instrument in self._instruments.items():
            if isinstance(instrument, Histogram):
                out[name] = instrument.snapshot()
            else:
                out[name] = instrument.value
        return out

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MetricsRegistry({len(self._instruments)} instruments)"


_GLOBAL_REGISTRY = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide default registry (ad-hoc instrumentation)."""
    return _GLOBAL_REGISTRY
