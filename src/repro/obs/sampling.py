"""A shared per-interval sampling clock and the engine metrics sampler.

Before this module existed, every observer (the experiments'
:class:`~repro.experiments.recording.SeriesRecorder`, ad-hoc probes)
scheduled its own periodic process on the simulator. A
:class:`SamplingClock` owns exactly one periodic process per interval
and fans each tick out to its subscribers in subscription order, so the
metrics layer and the series recorder sample the *same* instants and the
event heap carries one timer instead of N.

Subscribers must be read-only with respect to simulation state (they
run on the shared event heap); all built-in subscribers only read
counters and gauges, which is what keeps observability-enabled runs
behaviorally identical to disabled ones.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - avoids package import cycles
    from repro.simulation.kernel import Simulator

#: epsilon offset used since the first SeriesRecorder: samples strictly
#: follow the measurement/adjustment ticks sharing the same instant
SAMPLE_EPSILON = 2e-6


class SamplingClock:
    """One periodic process fanning ticks out to subscribers."""

    def __init__(
        self,
        sim: "Simulator",
        interval: float,
        start_delay: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"sampling interval must be positive (got {interval})")
        self.sim = sim
        self.interval = interval
        self._subscribers: List[Callable[[float], None]] = []
        first = interval + SAMPLE_EPSILON if start_delay is None else start_delay
        self._process = sim.every(interval, self._tick, start_delay=first)

    def subscribe(self, callback: Callable[[float], None]) -> None:
        """Call ``callback(now)`` on every tick (in subscription order)."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[float], None]) -> None:
        """Remove a subscriber (no-op if absent)."""
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    def stop(self) -> None:
        """Halt the clock (all subscribers stop receiving ticks)."""
        self._process.stop()

    @property
    def subscriber_count(self) -> int:
        """Number of attached subscribers."""
        return len(self._subscribers)

    def _tick(self) -> None:
        now = self.sim.now
        for callback in list(self._subscribers):
            callback(now)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SamplingClock(interval={self.interval}, "
            f"subscribers={len(self._subscribers)})"
        )


def utilization_samples(
    tasks,
    last_busy: Dict[int, float],
    interval: float,
) -> List[float]:
    """Per-task CPU utilization over the last interval (busy-time deltas).

    Shared by the series recorder and the metrics sampler: diffs each
    task's lifetime ``busy_time`` against ``last_busy`` (mutated in
    place; dead task entries are evicted) and clamps to [0, 1]. A task
    seen for the first time contributes 0 for this interval.
    """
    samples: List[float] = []
    seen = set()
    for task in tasks:
        seen.add(task.uid)
        last = last_busy.get(task.uid, task.busy_time)
        delta = task.busy_time - last
        last_busy[task.uid] = task.busy_time
        samples.append(min(1.0, max(0.0, delta / interval)))
    for uid in [uid for uid in last_busy if uid not in seen]:
        del last_busy[uid]
    return samples


class MetricsSampler:
    """Samples engine-wide gauges into a registry once per clock tick.

    Covers the instrumentation points that are cheaper to *sample* than
    to count on the hot path: simulation-kernel stats (events fired,
    heap size and high-water mark), cluster resource usage, per-task CPU
    utilization and QoS-manager staleness. Each tick also appends one
    JSONL-able snapshot row (``{"time": ..., "metrics": {...}}``) for
    ``metrics.jsonl`` export.
    """

    def __init__(self, engine, registry: MetricsRegistry, clock: SamplingClock) -> None:
        self.engine = engine
        self.registry = registry
        self.clock = clock
        #: one ``{"time", "metrics"}`` row per tick, for metrics.jsonl
        self.snapshots: List[Dict[str, object]] = []
        self._last_fired = 0
        self._last_busy: Dict[int, float] = {}
        clock.subscribe(self.sample)

    def sample(self, now: float) -> None:
        """Take one sample (normally driven by the clock)."""
        engine = self.engine
        registry = self.registry
        sim = engine.sim
        # -- simulation kernel ------------------------------------------
        fired = sim.fired_events
        registry.counter("sim.events_fired").inc(fired - self._last_fired)
        self._last_fired = fired
        registry.gauge("sim.heap_size").set(sim.pending_events)
        registry.gauge("sim.heap_high_water").set(sim.max_heap_size)
        # -- cluster resources ------------------------------------------
        resources = engine.resources
        registry.gauge("cluster.active_tasks").set(resources.active_tasks)
        registry.gauge("cluster.leased_workers").set(resources.leased_workers)
        registry.gauge("cluster.task_seconds").set(resources.task_seconds())
        # -- per-task utilization (shared busy-delta logic) -------------
        tasks = [t for job in engine.jobs for t in job.runtime.all_tasks()]
        samples = utilization_samples(tasks, self._last_busy, self.clock.interval)
        mean = sum(samples) / len(samples) if samples else 0.0
        registry.gauge("tasks.cpu_utilization").set(mean)
        # -- QoS measurement health -------------------------------------
        dropped = sum(m.dropped_collects for job in engine.jobs for m in job._managers)
        registry.gauge("qos.dropped_collects").set(dropped)
        staleness = max(
            (m.staleness(now) for job in engine.jobs for m in job._managers),
            default=0.0,
        )
        registry.gauge("qos.max_staleness").set(staleness)
        self.snapshots.append({"time": now, "metrics": registry.snapshot()})

    def write_jsonl(self, path: str) -> str:
        """Write all snapshot rows as JSONL; returns the path."""
        import json
        import os

        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            for row in self.snapshots:
                f.write(json.dumps(row, allow_nan=False) + "\n")
        return path

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MetricsSampler({len(self.snapshots)} snapshots)"
