"""The single observability opt-in surface.

One :class:`ObservabilityConfig` replaces per-call keyword sprawl: it is
accepted by ``StreamProcessingEngine(config, observability=...)``,
produced by ``PipelineBuilder.observe(...)`` (adopted by the engine at
submit when the engine has none of its own), and populated from the
``--obs-dir`` CLI flag shared by the ``run``/``chaos``/``trace``
subcommands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ObservabilityConfig:
    """What to observe and where to export it."""

    #: collect engine metrics (registry + periodic sampler)
    metrics: bool = True
    #: record scaler decision traces (one DecisionTrace per job)
    trace: bool = True
    #: directory for manifest.json / metrics.jsonl / trace.jsonl
    #: (None = in-memory only; export explicitly via engine.export_run)
    export_dir: Optional[str] = None
    #: metrics sampling interval in virtual seconds
    sample_interval: float = 5.0
    #: write ``wall_time_s: 0.0`` into exported manifests instead of the
    #: real wall-clock duration — the only nondeterministic manifest
    #: field; pin it when diffing same-seed runs byte-for-byte
    pin_wall_time: bool = False

    def __post_init__(self) -> None:
        if self.sample_interval <= 0:
            raise ValueError(
                f"sample_interval must be positive (got {self.sample_interval})"
            )

    @property
    def enabled(self) -> bool:
        """Whether any observability feature is switched on."""
        return self.metrics or self.trace
