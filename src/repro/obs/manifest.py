"""Run manifests: one ``manifest.json`` per engine run.

The manifest pins everything needed to reproduce and audit a run — the
seed, a stable hash of the job graph, the constraint set, the fault
plan, virtual/wall duration, the final parallelism and the scaler's
activity counters — and names the sibling ``metrics.jsonl`` /
``trace.jsonl`` exports. It is the artifact future perf PRs diff against
to prove a speedup changed nothing behavioral.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional

#: bump when the manifest layout changes incompatibly
MANIFEST_SCHEMA_VERSION = 1

#: canonical export file names
MANIFEST_FILE = "manifest.json"
METRICS_FILE = "metrics.jsonl"
TRACE_FILE = "trace.jsonl"


def graph_hash(graph) -> str:
    """Stable short hash of a job graph's structure.

    Covers vertex names, parallelism bounds and elasticity plus edge
    wiring patterns — everything the scaler's behavior depends on. UDF
    code is deliberately excluded (callables have no stable identity),
    so the hash identifies the *shape* of the job, not its payload.
    """
    structure = {
        "name": graph.name,
        "vertices": sorted(
            (
                v.name,
                v.parallelism,
                v.min_parallelism,
                v.max_parallelism,
                bool(v.elastic),
            )
            for v in graph.vertices.values()
        ),
        "edges": sorted(
            (e.source.name, e.target.name, e.pattern) for e in graph.edges
        ),
    }
    digest = hashlib.sha256(
        json.dumps(structure, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return digest[:16]


def git_provenance(cwd: Optional[str] = None) -> Optional[Dict[str, object]]:
    """Best-effort git provenance of the working tree: commit/branch/dirty.

    Returns ``None`` when git is unavailable or ``cwd`` is not inside a
    repository — callers (the sweep's shard export, the run-history
    index) treat provenance as optional. Deliberately *not* part of
    :func:`build_manifest`'s defaults: plain manifests stay byte-stable
    across commits (the golden runs pin them); provenance is merged via
    the ``extra`` mechanism where wanted.
    """
    import subprocess

    def _git(*args: str) -> Optional[str]:
        try:
            out = subprocess.run(
                ("git",) + args, cwd=cwd, capture_output=True, text=True, timeout=10,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if out.returncode != 0:
            return None
        return out.stdout.strip()

    commit = _git("rev-parse", "HEAD")
    if not commit:
        return None
    status = _git("status", "--porcelain")
    return {
        "commit": commit,
        "branch": _git("rev-parse", "--abbrev-ref", "HEAD"),
        "dirty": bool(status),
    }


def _fault_plan_dict(plan) -> Optional[Dict[str, object]]:
    if plan is None or not plan:
        return None
    events: List[Dict[str, object]] = []
    for spec in plan.events:
        event: Dict[str, object] = {"kind": type(spec).__name__, "at": spec.at}
        vertex = getattr(spec, "vertex", None)
        if vertex is not None:
            event["vertex"] = vertex
        events.append(event)
    return {"name": plan.name, "seed": plan.seed, "events": events}


class RunManifest:
    """The manifest of one engine run (JSON-dict backed)."""

    def __init__(self, data: Dict[str, object]) -> None:
        self.data = data

    def __getitem__(self, key: str) -> object:
        return self.data[key]

    def get(self, key: str, default=None):
        """Dict-style access with default."""
        return self.data.get(key, default)

    def to_json(self) -> str:
        """Pretty-printed strict JSON."""
        return json.dumps(self.data, indent=2, sort_keys=False, allow_nan=False)

    def write(self, path: str) -> str:
        """Write the manifest atomically; returns the path.

        Routes through the canonical atomic text writer, so a crash
        mid-export can never leave a half-written manifest behind (the
        run-history index and sweep resume treat manifest presence as
        truth). The byte layout is unchanged from the non-atomic writer.
        """
        from repro.experiments.report import write_text

        return write_text(path, self.to_json() + "\n")

    @staticmethod
    def read(path: str) -> "RunManifest":
        """Load a manifest written by :meth:`write`."""
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
        if data.get("schema") != MANIFEST_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported manifest schema {data.get('schema')!r} "
                f"(expected {MANIFEST_SCHEMA_VERSION})"
            )
        return RunManifest(data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RunManifest(job={self.data.get('job')!r}, seed={self.data.get('seed')})"


def build_manifest(
    job,
    wall_time_s: Optional[float] = None,
    extra: Optional[Dict[str, object]] = None,
) -> RunManifest:
    """Assemble the manifest of a deployed job's run so far.

    ``extra`` merges additional provenance sections (e.g. the sweep
    orchestrator's ``{"sweep": {...}}`` shard identity) into the
    manifest; it must not collide with the built-in keys.
    """
    engine = job.engine
    config = engine.config
    constraints = [
        {
            "name": c.name,
            "bound": c.bound,
            "window": c.window,
            "sequence": list(c.sequence.vertex_names()),
        }
        for c in job.constraints
    ]
    final_parallelism = {
        name: rv.parallelism for name, rv in job.runtime.vertices.items()
    }
    scaler = job.scaler
    scaling: Optional[Dict[str, object]] = None
    if scaler is not None:
        policy_spec = getattr(job, "policy_spec", None)
        scaling = {
            "policy": scaler.policy_name,
            "policy_spec": (
                policy_spec.canonical() if policy_spec is not None
                else scaler.policy_name
            ),
            "policy_knobs": getattr(scaler.policy, "knobs", dict)(),
            "rounds": scaler.rounds,
            "activations": len(scaler.events),
            "skipped_inactive": scaler.skipped_inactive,
            "skipped_stale": scaler.skipped_stale,
            "suppressed_scale_downs": scaler.suppressed_scale_downs,
            "unresolvable": len(scaler.unresolvable_log),
        }
    reconciler = getattr(job, "reconciler", None)
    obs = engine.observability
    if wall_time_s is None:
        if obs is not None and getattr(obs, "pin_wall_time", False):
            wall_time_s = 0.0
        else:
            wall_time_s = engine.wall_time_s
    trace = getattr(job, "trace", None)
    fault_plan = job.fault_injector.plan if job.fault_injector is not None else None
    data: Dict[str, object] = {
        "schema": MANIFEST_SCHEMA_VERSION,
        "job": job.job_graph.name,
        "seed": config.seed,
        "graph_hash": graph_hash(job.job_graph),
        "elastic": config.elastic,
        "constraints": constraints,
        "fault_plan": _fault_plan_dict(fault_plan),
        "virtual_time_s": engine.now,
        "wall_time_s": wall_time_s,
        "final_parallelism": final_parallelism,
        "scaling": scaling,
        "observability": {
            "metrics": bool(obs is not None and obs.metrics),
            "trace": bool(obs is not None and obs.trace),
            "trace_records": len(trace) if trace is not None else 0,
        },
        "files": {},
    }
    # Supervised-actuation section only when the job runs a reconciler,
    # so unsupervised manifests keep their pre-actuation byte layout.
    if reconciler is not None:
        data["actuation"] = reconciler.summary()
    # Keyed-state section only for stateful jobs, same byte-stability
    # contract: stateless manifests are unchanged.
    state_manager = getattr(job, "state_manager", None)
    if state_manager is not None:
        data["state"] = state_manager.summary()
    # Shared-cluster section only when the engine hosts more than one
    # job (single-job manifests keep their exact pre-admission bytes):
    # this job's slot account plus the cluster-wide admission counters.
    if len(getattr(engine, "jobs", ())) > 1:
        resources = engine.resources
        account = resources.account(job.job_id)
        data["shared_cluster"] = {
            "jobs": len(engine.jobs),
            "admission": resources.arbitration.name,
            # job_summaries() advances the usage integrals to `now`
            "account": resources.job_summaries()[account.name],
            "cluster": {
                "total_slots": resources.total_slots,
                "admission_denials": resources.admission_denials,
                "preempted_tasks": resources.preempted_tasks,
            },
        }
    if extra:
        collisions = sorted(set(extra) & set(data))
        if collisions:
            raise ValueError(
                f"extra manifest sections collide with built-in keys: "
                f"{', '.join(collisions)}"
            )
        data.update(extra)
    return RunManifest(data)


def export_run(
    job, directory: str, extra: Optional[Dict[str, object]] = None
) -> Dict[str, str]:
    """Write ``manifest.json`` (+ ``metrics.jsonl`` / ``trace.jsonl``).

    Only the files whose observability feature is enabled are written;
    the manifest's ``files`` section names what exists. ``extra`` merges
    additional provenance sections into the manifest (see
    :func:`build_manifest`). Returns ``{kind: path}`` for everything
    written.
    """
    os.makedirs(directory, exist_ok=True)
    engine = job.engine
    manifest = build_manifest(job, extra=extra)
    paths: Dict[str, str] = {}
    sampler = getattr(engine, "_metrics_sampler", None)
    if sampler is not None:
        paths["metrics"] = sampler.write_jsonl(os.path.join(directory, METRICS_FILE))
        manifest.data["files"]["metrics"] = METRICS_FILE
    trace = getattr(job, "trace", None)
    if trace is not None:
        paths["trace"] = trace.write_jsonl(os.path.join(directory, TRACE_FILE))
        manifest.data["files"]["trace"] = TRACE_FILE
    manifest.data["files"]["manifest"] = MANIFEST_FILE
    paths["manifest"] = manifest.write(os.path.join(directory, MANIFEST_FILE))
    return paths
