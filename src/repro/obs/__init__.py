"""Structured observability: metrics, scaler decision traces, manifests.

The package is deliberately dependency-free with respect to the engine —
it only ever receives engine/job objects duck-typed, so instrumented
code can import ``repro.obs`` without cycles and observability stays a
strict add-on: disabling it leaves runs byte-identical.
"""

from repro.obs.config import ObservabilityConfig
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)
from repro.obs.sampling import (
    SAMPLE_EPSILON,
    MetricsSampler,
    SamplingClock,
    utilization_samples,
)
from repro.obs.trace import (
    BRANCH_BOTTLENECK,
    BRANCH_COOLDOWN,
    BRANCH_INACTIVE,
    BRANCH_INFEASIBLE,
    BRANCH_NO_MODEL_SKIP,
    BRANCH_REBALANCE,
    BRANCH_STALE_SKIP,
    BRANCH_UNRESOLVABLE,
    BRANCHES,
    TRACE_FIELDS,
    TRACE_SCHEMA_VERSION,
    DecisionTrace,
    TraceRecord,
    finite_or_none,
    validate_record_dict,
    validate_trace_file,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    build_manifest,
    export_run,
    git_provenance,
    graph_hash,
)

__all__ = [
    # config
    "ObservabilityConfig",
    # metrics
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    # sampling
    "SAMPLE_EPSILON",
    "MetricsSampler",
    "SamplingClock",
    "utilization_samples",
    # trace
    "BRANCH_BOTTLENECK",
    "BRANCH_COOLDOWN",
    "BRANCH_INACTIVE",
    "BRANCH_INFEASIBLE",
    "BRANCH_NO_MODEL_SKIP",
    "BRANCH_REBALANCE",
    "BRANCH_STALE_SKIP",
    "BRANCH_UNRESOLVABLE",
    "BRANCHES",
    "TRACE_FIELDS",
    "TRACE_SCHEMA_VERSION",
    "DecisionTrace",
    "TraceRecord",
    "finite_or_none",
    "validate_record_dict",
    "validate_trace_file",
    # manifest
    "MANIFEST_SCHEMA_VERSION",
    "RunManifest",
    "build_manifest",
    "export_run",
    "git_provenance",
    "graph_hash",
]
