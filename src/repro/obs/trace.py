"""Scaler decision traces: why ScaleReactively chose a parallelism.

Every adjustment interval the scaler evaluates each constraint and
either Rebalances, resolves a bottleneck, or skips (stale measurements,
missing model, inactivity phase). All the intermediate quantities — the
measured queue wait, the predicted wait at the chosen ``p*``, the
fitting coefficient ``e_jv``, utilization extrapolations and the Ŵ
budget split — are captured as :class:`TraceRecord` rows so an operator
can audit *why* a scaling action happened instead of reverse-engineering
it from the parallelism series.

Records use a versioned, flat JSON schema (``trace.jsonl``, one record
per line) consumed by ``python -m repro trace show`` / ``--check`` and
the :class:`~repro.experiments.dashboard.Dashboard` decisions panel.

Schema history
--------------
* **v1** — the original eight Algorithm-2 branches.
* **v2** — actuation supervision: new branches ``actuation-pending``,
  ``actuation-failed``, ``retry-backoff``, ``watchdog-escalation`` and
  ``scale-down-clamped``, plus the optional integer ``attempt`` field
  (which actuation attempt a record belongs to). v1 files remain
  readable (``attempt`` defaults to null); a v1 record using a v2-only
  branch or the ``attempt`` field is a validation error.
* **v3** — stateful migration lifecycle: new branches
  ``migration-pending``, ``migration-failed``, ``migration-rolled-back``
  and ``migration-deferred``, plus the optional integer ``state_bytes``
  field (migrated/assessed state volume). v1/v2 files remain readable; a
  pre-v3 record using a v3-only branch or ``state_bytes`` is a
  validation error. Writers emit the lowest schema a record needs (≥2):
  a record only stamps ``schema: 3`` when it uses a v3 branch or sets
  ``state_bytes`` — and only then carries the ``state_bytes`` key — so
  stateless traces stay byte-identical to pre-v3 output.
* **v4** — shared-cluster admission: new branches ``admission-denied``
  (a scale-up the cluster's admission controller refused — quota or
  capacity) and ``preempted`` (a task force-stopped by arbitration in
  favor of another job). No new fields. Lowest-schema emission applies
  as before, so single-job traces that never hit admission stay
  byte-identical to pre-v4 output; a pre-v4 record using a v4-only
  branch is a validation error.
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, Iterable, Iterator, List, Optional

#: bump when the record schema changes incompatibly
TRACE_SCHEMA_VERSION = 4

#: the schema a record without any v3 feature is written as
_BASE_SCHEMA_VERSION = 2

#: the schema a record with v3 features but no v4 branch is written as
_MIGRATION_SCHEMA_VERSION = 3

#: schema versions this module can still read (older are strict subsets)
SUPPORTED_TRACE_SCHEMAS = frozenset({1, 2, 3, TRACE_SCHEMA_VERSION})

# --- branch names (which part of Algorithm 2 produced the record) -------
BRANCH_REBALANCE = "rebalance"
BRANCH_BOTTLENECK = "bottleneck"
BRANCH_STALE_SKIP = "stale-skip"
BRANCH_NO_MODEL_SKIP = "no-model-skip"
BRANCH_INFEASIBLE = "infeasible"
BRANCH_INACTIVE = "inactive"
BRANCH_COOLDOWN = "cooldown-suppressed"
BRANCH_UNRESOLVABLE = "unresolvable"

# --- v2 branches (actuation supervision lifecycle) ----------------------
BRANCH_ACTUATION_PENDING = "actuation-pending"
BRANCH_ACTUATION_FAILED = "actuation-failed"
BRANCH_RETRY_BACKOFF = "retry-backoff"
BRANCH_WATCHDOG_ESCALATION = "watchdog-escalation"
BRANCH_SCALE_DOWN_CLAMPED = "scale-down-clamped"

V1_BRANCHES = frozenset({
    BRANCH_REBALANCE,
    BRANCH_BOTTLENECK,
    BRANCH_STALE_SKIP,
    BRANCH_NO_MODEL_SKIP,
    BRANCH_INFEASIBLE,
    BRANCH_INACTIVE,
    BRANCH_COOLDOWN,
    BRANCH_UNRESOLVABLE,
})

V2_BRANCHES = frozenset({
    BRANCH_ACTUATION_PENDING,
    BRANCH_ACTUATION_FAILED,
    BRANCH_RETRY_BACKOFF,
    BRANCH_WATCHDOG_ESCALATION,
    BRANCH_SCALE_DOWN_CLAMPED,
})

# --- v3 branches (stateful migration lifecycle) -------------------------
BRANCH_MIGRATION_PENDING = "migration-pending"
BRANCH_MIGRATION_FAILED = "migration-failed"
BRANCH_MIGRATION_ROLLED_BACK = "migration-rolled-back"
BRANCH_MIGRATION_DEFERRED = "migration-deferred"

V3_BRANCHES = frozenset({
    BRANCH_MIGRATION_PENDING,
    BRANCH_MIGRATION_FAILED,
    BRANCH_MIGRATION_ROLLED_BACK,
    BRANCH_MIGRATION_DEFERRED,
})

# --- v4 branches (shared-cluster admission) -----------------------------
BRANCH_ADMISSION_DENIED = "admission-denied"
BRANCH_PREEMPTED = "preempted"

V4_BRANCHES = frozenset({
    BRANCH_ADMISSION_DENIED,
    BRANCH_PREEMPTED,
})

BRANCHES = V1_BRANCHES | V2_BRANCHES | V3_BRANCHES | V4_BRANCHES

#: the frozen field order of the JSONL schema (append-only by policy;
#: ``attempt`` was appended in v2, ``state_bytes`` in v3 — the latter is
#: omitted from serialized records when null, see TraceRecord.to_dict)
TRACE_FIELDS = (
    "schema",
    "time",
    "job",
    "round",
    "constraint",
    "vertex",
    "branch",
    "budget",
    "measured_wait",
    "predicted_wait",
    "e",
    "utilization",
    "utilization_at_target",
    "p_before",
    "p_target",
    "p_applied",
    "detail",
    "attempt",
    "state_bytes",
)


def finite_or_none(value: Optional[float]) -> Optional[float]:
    """Map inf/nan to None so records stay strict-JSON serializable."""
    if value is None:
        return None
    if math.isinf(value) or math.isnan(value):
        return None
    return float(value)


class TraceRecord:
    """One structured scaler-decision row (one constraint x one vertex).

    Skip branches that apply to a whole constraint (or a whole round, for
    the inactivity phase) carry ``vertex=None``; action branches carry
    the per-vertex model terms.
    """

    __slots__ = (
        "time", "job", "round", "constraint", "vertex", "branch", "budget",
        "measured_wait", "predicted_wait", "e", "utilization",
        "utilization_at_target", "p_before", "p_target", "p_applied", "detail",
        "attempt", "state_bytes",
    )

    def __init__(
        self,
        time: float,
        constraint: str,
        branch: str,
        vertex: Optional[str] = None,
        job: str = "",
        round: int = 0,
        budget: Optional[float] = None,
        measured_wait: Optional[float] = None,
        predicted_wait: Optional[float] = None,
        e: Optional[float] = None,
        utilization: Optional[float] = None,
        utilization_at_target: Optional[float] = None,
        p_before: Optional[int] = None,
        p_target: Optional[int] = None,
        p_applied: Optional[int] = None,
        detail: str = "",
        attempt: Optional[int] = None,
        state_bytes: Optional[int] = None,
    ) -> None:
        if branch not in BRANCHES:
            raise ValueError(f"unknown trace branch {branch!r} (have: {sorted(BRANCHES)})")
        self.time = float(time)
        self.job = job
        self.round = round
        self.constraint = constraint
        self.vertex = vertex
        self.branch = branch
        self.budget = finite_or_none(budget)
        self.measured_wait = finite_or_none(measured_wait)
        self.predicted_wait = finite_or_none(predicted_wait)
        self.e = finite_or_none(e)
        self.utilization = finite_or_none(utilization)
        self.utilization_at_target = finite_or_none(utilization_at_target)
        self.p_before = p_before
        self.p_target = p_target
        self.p_applied = p_applied
        self.detail = detail
        self.attempt = attempt
        self.state_bytes = state_bytes

    def schema_version(self) -> int:
        """The lowest schema this record needs (the version it is written as)."""
        if self.branch in V4_BRANCHES:
            return TRACE_SCHEMA_VERSION
        if self.branch in V3_BRANCHES or self.state_bytes is not None:
            return _MIGRATION_SCHEMA_VERSION
        return _BASE_SCHEMA_VERSION

    def to_dict(self) -> Dict[str, object]:
        """The record as a dict in the frozen schema field order.

        Records are stamped with the lowest schema they need, and the
        v3-only ``state_bytes`` key is omitted when null — so traces of
        stateless runs stay byte-identical to pre-v3 output.
        """
        out: Dict[str, object] = {"schema": self.schema_version()}
        for field in TRACE_FIELDS[1:-1]:
            out[field] = getattr(self, field)
        if self.state_bytes is not None:
            out["state_bytes"] = self.state_bytes
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TraceRecord":
        """Parse a dict produced by :meth:`to_dict` (schema-checked)."""
        schema = data.get("schema")
        if schema not in SUPPORTED_TRACE_SCHEMAS:
            raise ValueError(
                f"unsupported trace schema {schema!r} "
                f"(supported: {sorted(SUPPORTED_TRACE_SCHEMAS)})"
            )
        kwargs = {field: data[field] for field in TRACE_FIELDS[1:] if field in data}
        missing = [f for f in ("time", "constraint", "branch") if f not in kwargs]
        if missing:
            raise ValueError(f"trace record missing required fields: {missing}")
        return cls(**kwargs)

    def to_json(self) -> str:
        """One strict-JSON line (``allow_nan=False`` guards the schema)."""
        return json.dumps(self.to_dict(), allow_nan=False)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        target = f" p{self.p_before}->{self.p_target}" if self.p_target is not None else ""
        return (
            f"TraceRecord(t={self.time:.1f}, {self.constraint}/"
            f"{self.vertex or '*'}, {self.branch}{target})"
        )


class DecisionTrace:
    """An append-only log of :class:`TraceRecord` rows for one job."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []
        #: scaler rounds observed (including inactive ones)
        self.rounds = 0

    def append(self, record: TraceRecord) -> None:
        """Add one record."""
        self.records.append(record)

    def extend(self, records: Iterable[TraceRecord]) -> None:
        """Add several records."""
        self.records.extend(records)

    def last(self, n: int) -> List[TraceRecord]:
        """The most recent ``n`` records."""
        return self.records[-n:]

    def for_vertex(self, vertex: str) -> List[TraceRecord]:
        """All records about one vertex."""
        return [r for r in self.records if r.vertex == vertex]

    def for_constraint(self, constraint: str) -> List[TraceRecord]:
        """All records about one constraint."""
        return [r for r in self.records if r.constraint == constraint]

    def branches(self) -> Dict[str, int]:
        """Record count per branch."""
        out: Dict[str, int] = {}
        for record in self.records:
            out[record.branch] = out.get(record.branch, 0) + 1
        return out

    def write_jsonl(self, path: str) -> str:
        """Write all records as JSONL; returns the path."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            for record in self.records:
                f.write(record.to_json() + "\n")
        return path

    @staticmethod
    def read_jsonl(path: str) -> "DecisionTrace":
        """Load a trace written by :meth:`write_jsonl`."""
        trace = DecisionTrace()
        with open(path, "r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if line:
                    trace.append(TraceRecord.from_dict(json.loads(line)))
        if trace.records:
            trace.rounds = max(r.round for r in trace.records)
        return trace

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DecisionTrace({len(self.records)} records, {self.rounds} rounds)"


# ----------------------------------------------------------------------
# schema validation (``python -m repro trace --check`` and CI)
# ----------------------------------------------------------------------

_NUMERIC_OPTIONAL = (
    "budget", "measured_wait", "predicted_wait", "e",
    "utilization", "utilization_at_target",
)
_INT_OPTIONAL = ("p_before", "p_target", "p_applied", "attempt", "state_bytes")


def validate_record_dict(data: Dict[str, object], line: int = 0) -> List[str]:
    """Schema errors of one parsed record dict (empty list = valid)."""
    where = f"line {line}: " if line else ""
    errors: List[str] = []
    schema = data.get("schema")
    if schema not in SUPPORTED_TRACE_SCHEMAS:
        errors.append(
            f"{where}schema must be one of {sorted(SUPPORTED_TRACE_SCHEMAS)} "
            f"(got {schema!r})"
        )
    unknown = [k for k in data if k not in TRACE_FIELDS]
    if unknown:
        errors.append(f"{where}unknown fields {unknown}")
    if not isinstance(data.get("time"), (int, float)):
        errors.append(f"{where}time must be a number")
    if not isinstance(data.get("constraint"), str) or not data.get("constraint"):
        errors.append(f"{where}constraint must be a non-empty string")
    branch = data.get("branch")
    if branch not in BRANCHES:
        errors.append(f"{where}branch {branch!r} not in {sorted(BRANCHES)}")
    elif schema == 1 and branch in V2_BRANCHES:
        errors.append(f"{where}branch {branch!r} requires schema >= 2")
    elif schema in (1, 2) and branch in V3_BRANCHES:
        errors.append(f"{where}branch {branch!r} requires schema >= 3")
    elif schema in (1, 2, 3) and branch in V4_BRANCHES:
        errors.append(f"{where}branch {branch!r} requires schema >= 4")
    if schema == 1 and data.get("attempt") is not None:
        errors.append(f"{where}attempt field requires schema >= 2")
    if schema in (1, 2) and data.get("state_bytes") is not None:
        errors.append(f"{where}state_bytes field requires schema >= 3")
    vertex = data.get("vertex")
    if vertex is not None and not isinstance(vertex, str):
        errors.append(f"{where}vertex must be a string or null")
    for field in _NUMERIC_OPTIONAL:
        value = data.get(field)
        if value is not None and not isinstance(value, (int, float)):
            errors.append(f"{where}{field} must be a number or null")
    for field in _INT_OPTIONAL:
        value = data.get(field)
        if value is not None and not isinstance(value, int):
            errors.append(f"{where}{field} must be an integer or null")
    if branch in (BRANCH_REBALANCE, BRANCH_BOTTLENECK) and vertex is None:
        errors.append(f"{where}{branch} records must name a vertex")
    if branch in V2_BRANCHES and vertex is None:
        errors.append(f"{where}{branch} records must name a vertex")
    if branch in V3_BRANCHES and vertex is None:
        errors.append(f"{where}{branch} records must name a vertex")
    if branch in V4_BRANCHES and vertex is None:
        errors.append(f"{where}{branch} records must name a vertex")
    return errors


def validate_trace_file(path: str) -> List[str]:
    """Schema errors of a ``trace.jsonl`` file (empty list = valid)."""
    errors: List[str] = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            for number, line in enumerate(f, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError as exc:
                    errors.append(f"line {number}: not valid JSON ({exc})")
                    continue
                if not isinstance(data, dict):
                    errors.append(f"line {number}: record must be a JSON object")
                    continue
                errors.extend(validate_record_dict(data, line=number))
    except OSError as exc:
        errors.append(f"cannot read {path}: {exc}")
    return errors
