"""Runtime diagnostics for the paper's operating assumptions (Sec. IV-A).

The strategy's correctness rests on three assumptions: (a) homogeneous
worker nodes, (b) effective load balancing, (c) elastically scalable
UDFs. (c) is declared statically on the job graph; (a) and (b) are
*runtime* properties this module checks from the per-task measurement
windows: a task whose service time is far above its vertex's median
indicates a slow worker (hot spot), and a task whose arrival rate
deviates strongly indicates load skew. The engine surfaces the findings
so operators learn *why* the latency model misbehaves instead of
debugging erratic scaling.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

#: diagnostic kinds
HOT_SPOT = "hot-spot"
LOAD_SKEW = "load-skew"


class Finding:
    """One assumption violation detected from measurements."""

    __slots__ = ("kind", "vertex_name", "task_id", "ratio", "message")

    def __init__(self, kind: str, vertex_name: str, task_id: str, ratio: float) -> None:
        self.kind = kind
        self.vertex_name = vertex_name
        self.task_id = task_id
        self.ratio = ratio
        if kind == HOT_SPOT:
            self.message = (
                f"task {task_id} of {vertex_name!r} serves {ratio:.1f}x slower than "
                "its peers — likely a slow worker (violates the homogeneity "
                "assumption, Sec. IV-A a)"
            )
        else:
            self.message = (
                f"task {task_id} of {vertex_name!r} receives {ratio:.1f}x the median "
                "arrival rate — load skew (violates the effective-load-balancing "
                "assumption, Sec. IV-A b)"
            )

    def __repr__(self) -> str:
        return f"Finding({self.kind}, {self.task_id}, x{self.ratio:.2f})"


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


class AssumptionChecker:
    """Detects hot spots and load skew from per-task measurements.

    Parameters
    ----------
    service_ratio:
        A task is flagged as a hot spot when its windowed mean service
        time exceeds ``service_ratio`` x its vertex's median.
    arrival_ratio:
        A task is flagged for skew when its arrival rate exceeds
        ``arrival_ratio`` x the vertex median (or falls below the
        reciprocal).
    min_tasks:
        Vertices with fewer measured tasks are skipped (no meaningful
        median).
    """

    def __init__(
        self,
        service_ratio: float = 2.0,
        arrival_ratio: float = 2.0,
        min_tasks: int = 3,
    ) -> None:
        if service_ratio <= 1.0 or arrival_ratio <= 1.0:
            raise ValueError("ratios must be > 1")
        if min_tasks < 2:
            raise ValueError("min_tasks must be >= 2")
        self.service_ratio = service_ratio
        self.arrival_ratio = arrival_ratio
        self.min_tasks = min_tasks

    def check(
        self,
        per_task_service: Dict[str, Dict[str, float]],
        per_task_arrival_rate: Dict[str, Dict[str, float]],
    ) -> List[Finding]:
        """Analyze ``{vertex: {task_id: value}}`` maps; returns findings."""
        findings: List[Finding] = []
        for vertex, tasks in per_task_service.items():
            values = {tid: v for tid, v in tasks.items() if v > 0}
            if len(values) < self.min_tasks:
                continue
            median = _median(list(values.values()))
            if median <= 0:
                continue
            for task_id, value in values.items():
                ratio = value / median
                if ratio >= self.service_ratio:
                    findings.append(Finding(HOT_SPOT, vertex, task_id, ratio))
        for vertex, tasks in per_task_arrival_rate.items():
            values = {tid: v for tid, v in tasks.items() if v > 0}
            if len(values) < self.min_tasks:
                continue
            median = _median(list(values.values()))
            if median <= 0:
                continue
            for task_id, value in values.items():
                ratio = value / median
                if ratio >= self.arrival_ratio or ratio <= 1.0 / self.arrival_ratio:
                    findings.append(
                        Finding(LOAD_SKEW, vertex, task_id, max(ratio, 1.0 / ratio))
                    )
        return findings


def collect_per_task_measurements(managers) -> tuple:
    """Pull ``{vertex: {task_id: value}}`` maps out of QoS managers.

    Returns ``(service_map, arrival_rate_map)`` built from the managers'
    sliding windows (same data the summaries aggregate, before the
    per-vertex averaging that hides stragglers).
    """
    service: Dict[str, Dict[str, float]] = {}
    arrivals: Dict[str, Dict[str, float]] = {}
    for manager in managers:
        for task, _reporter, windows in manager._tasks.values():
            if task.state == "stopped":
                continue
            if windows.service.has_data:
                service.setdefault(task.vertex_name, {})[task.task_id] = windows.service.mean
            if windows.interarrival.has_data and windows.interarrival.mean > 0:
                arrivals.setdefault(task.vertex_name, {})[task.task_id] = (
                    1.0 / windows.interarrival.mean
                )
    return service, arrivals
