"""QoS reporters: continuous sampling on tasks and channels.

A :class:`TaskReporter` is attached to every latency-constrained runtime
task and a :class:`ChannelReporter` to every constrained channel. The
hosting component feeds raw samples (the engine calls ``record_*`` from
the hot path); once per measurement interval the QoS manager drains the
accumulators into :mod:`~repro.qos.measurements` records (paper: reporters
"report to QoS managers once per measurement interval").
"""

from __future__ import annotations

from typing import Optional

from repro.qos.measurements import ChannelMeasurement, TaskMeasurement
from repro.qos.stats import OnlineStats


class TaskReporter:
    """Accumulates one task's Table-I samples for the current interval."""

    def __init__(self, vertex_name: str, task_id: str) -> None:
        self.vertex_name = vertex_name
        self.task_id = task_id
        self._task_latency = OnlineStats()
        self._service = OnlineStats()
        self._interarrival = OnlineStats()

    def record_task_latency(self, value: float) -> None:
        """One task-latency sample (RR or RW per the UDF's mode)."""
        self._task_latency.add(value)

    def record_service_time(self, value: float) -> None:
        """One service-time sample (read-ready span, includes blocking)."""
        self._service.add(value)

    def record_interarrival(self, value: float) -> None:
        """One interarrival-time sample (measured at queue ingress)."""
        self._interarrival.add(value)

    def flush(self, now: float) -> TaskMeasurement:
        """Freeze and reset the interval accumulators."""
        return TaskMeasurement(
            self.vertex_name,
            self.task_id,
            now,
            self._task_latency.snapshot_and_reset(),
            self._service.snapshot_and_reset(),
            self._interarrival.snapshot_and_reset(),
        )


class ChannelReporter:
    """Accumulates one channel's Table-I samples for the current interval."""

    def __init__(self, edge_name: str, channel_id: int) -> None:
        self.edge_name = edge_name
        self.channel_id = channel_id
        self._latency = OnlineStats()
        self._obl = OnlineStats()

    def record_channel_latency(self, value: float) -> None:
        """One channel-latency sample (emit → consume)."""
        self._latency.add(value)

    def record_output_batch_latency(self, value: float) -> None:
        """One output-batch-latency sample (emit → ship)."""
        self._obl.add(value)

    def flush(self, now: float) -> ChannelMeasurement:
        """Freeze and reset the interval accumulators."""
        return ChannelMeasurement(
            self.edge_name,
            self.channel_id,
            now,
            self._latency.snapshot_and_reset(),
            self._obl.snapshot_and_reset(),
        )
