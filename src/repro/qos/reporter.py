"""QoS reporters: continuous sampling on tasks and channels.

A :class:`TaskReporter` is attached to every latency-constrained runtime
task and a :class:`ChannelReporter` to every constrained channel. The
hosting component feeds raw samples (the engine calls ``record_*`` from
the hot path); once per measurement interval the QoS manager drains the
accumulators into :mod:`~repro.qos.measurements` records (paper: reporters
"report to QoS managers once per measurement interval").

Hot-path layout: ``record_*`` is bound to a plain ``list.append`` so the
per-sample cost is one C call with no Python frame. The Welford
accumulation runs once per interval in :meth:`flush`, walking the buffered
samples in arrival order with the same :class:`OnlineStats` arithmetic the
reporters used to apply per sample — snapshots are bit-identical to the
former incremental scheme.
"""

from __future__ import annotations

from typing import List

from repro.qos.measurements import ChannelMeasurement, TaskMeasurement
from repro.qos.stats import OnlineStats, StatsSnapshot


def _snapshot(samples: List[float]) -> StatsSnapshot:
    """Sequential-Welford snapshot of one interval's buffered samples."""
    stats = OnlineStats()
    add = stats.add
    for value in samples:
        add(value)
    return stats.snapshot_and_reset()


class TaskReporter:
    """Accumulates one task's Table-I samples for the current interval."""

    def __init__(self, vertex_name: str, task_id: str) -> None:
        self.vertex_name = vertex_name
        self.task_id = task_id
        self._task_latency: List[float] = []
        self._service: List[float] = []
        self._interarrival: List[float] = []
        # Hot-path aliases: one sample = one list.append, no Python frame.
        self.record_task_latency = self._task_latency.append
        self.record_service_time = self._service.append
        self.record_interarrival = self._interarrival.append

    def flush(self, now: float) -> TaskMeasurement:
        """Freeze and reset the interval accumulators."""
        measurement = TaskMeasurement(
            self.vertex_name,
            self.task_id,
            now,
            _snapshot(self._task_latency),
            _snapshot(self._service),
            _snapshot(self._interarrival),
        )
        # Clear in place: record_* stays bound to the same list objects.
        del self._task_latency[:]
        del self._service[:]
        del self._interarrival[:]
        return measurement


class ChannelReporter:
    """Accumulates one channel's Table-I samples for the current interval."""

    def __init__(self, edge_name: str, channel_id: int) -> None:
        self.edge_name = edge_name
        self.channel_id = channel_id
        self._latency: List[float] = []
        self._obl: List[float] = []
        # Hot-path aliases (see TaskReporter.__init__).
        self.record_channel_latency = self._latency.append
        self.record_output_batch_latency = self._obl.append

    def flush(self, now: float) -> ChannelMeasurement:
        """Freeze and reset the interval accumulators."""
        measurement = ChannelMeasurement(
            self.edge_name,
            self.channel_id,
            now,
            _snapshot(self._latency),
            _snapshot(self._obl),
        )
        del self._latency[:]
        del self._obl[:]
        return measurement
