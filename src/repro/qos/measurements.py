"""Per-interval measurement records (paper Table I).

Once per measurement interval each QoS reporter freezes its accumulators
into one of these records and ships it to its QoS manager. The records
carry counts so that downstream aggregation can weight correctly.
"""

from __future__ import annotations

from repro.qos.stats import StatsSnapshot


class TaskMeasurement:
    """One task's Table-I measurements for one measurement interval.

    Attributes
    ----------
    task_latency:
        Snapshot of task latency ``l_v`` samples — read-ready or
        read-write depending on the task's UDF.
    service_time:
        Snapshot of service time ``S_v`` samples (mean and variance feed
        Kingman's formula via ``c_S``).
    interarrival:
        Snapshot of interarrival time ``A_v`` samples (``λ_v = 1/Ā_v``).
    """

    __slots__ = ("vertex_name", "task_id", "timestamp", "task_latency", "service_time", "interarrival")

    def __init__(
        self,
        vertex_name: str,
        task_id: str,
        timestamp: float,
        task_latency: StatsSnapshot,
        service_time: StatsSnapshot,
        interarrival: StatsSnapshot,
    ) -> None:
        self.vertex_name = vertex_name
        self.task_id = task_id
        self.timestamp = timestamp
        self.task_latency = task_latency
        self.service_time = service_time
        self.interarrival = interarrival

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TaskMeasurement({self.task_id}, t={self.timestamp:.1f}, "
            f"S̄={self.service_time.mean:.6f}, Ā={self.interarrival.mean:.6f})"
        )


class ChannelMeasurement:
    """One channel's Table-I measurements for one measurement interval.

    ``channel_latency`` is ``l_e`` (emit → consume) and
    ``output_batch_latency`` is ``obl_e`` (emit → ship); by construction
    ``obl_e <= l_e`` in the mean.
    """

    __slots__ = ("edge_name", "channel_id", "timestamp", "channel_latency", "output_batch_latency")

    def __init__(
        self,
        edge_name: str,
        channel_id: int,
        timestamp: float,
        channel_latency: StatsSnapshot,
        output_batch_latency: StatsSnapshot,
    ) -> None:
        self.edge_name = edge_name
        self.channel_id = channel_id
        self.timestamp = timestamp
        self.channel_latency = channel_latency
        self.output_batch_latency = output_batch_latency

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ChannelMeasurement({self.edge_name}#{self.channel_id}, "
            f"l̄={self.channel_latency.mean:.6f})"
        )
