"""QoS measurement architecture (paper Sec. IV-B, Table I).

QoS *reporters* continuously sample task latency, service time,
interarrival time, channel latency and output-batch latency for the
runtime tasks/channels they are attached to, and report aggregates to
QoS *managers* once per measurement interval. Managers build *partial
summaries*; the master merges them into the *global summary* that feeds
the latency model, and distributes adaptive-output-batching deadlines
back to the channels.
"""

from repro.qos.stats import OnlineStats, WindowedStats, percentile
from repro.qos.measurements import TaskMeasurement, ChannelMeasurement
from repro.qos.summary import VertexSummary, EdgeSummary, GlobalSummary, merge_partial_summaries
from repro.qos.reporter import TaskReporter, ChannelReporter
from repro.qos.manager import QoSManager

__all__ = [
    "OnlineStats",
    "WindowedStats",
    "percentile",
    "TaskMeasurement",
    "ChannelMeasurement",
    "VertexSummary",
    "EdgeSummary",
    "GlobalSummary",
    "merge_partial_summaries",
    "TaskReporter",
    "ChannelReporter",
    "QoSManager",
]
