"""QoS managers (paper Sec. IV-B).

A :class:`QoSManager` owns a subset of the constrained tasks and
channels. Once per *measurement interval* it drains their reporters and
pushes the snapshots into per-task/channel sliding windows (the paper's
``m`` past measurements, Eq. 2). Once per *adjustment interval* it emits
a :class:`~repro.qos.summary.PartialSummary` for the master and applies
the adaptive-output-batching deadlines for the channels it manages.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING, Tuple

from repro.qos.reporter import ChannelReporter, TaskReporter

if TYPE_CHECKING:  # pragma: no cover - avoids a package import cycle
    from repro.engine.channel import RuntimeChannel
    from repro.engine.task import RuntimeTask
from repro.qos.stats import WindowedStats
from repro.qos.summary import EdgeSummary, PartialSummary, VertexSummary


class _TaskWindows:
    """Sliding measurement windows for one task."""

    def __init__(self, window: int) -> None:
        self.task_latency = WindowedStats(window)
        self.service = WindowedStats(window)
        self.interarrival = WindowedStats(window)


class _ChannelWindows:
    """Sliding measurement windows for one channel."""

    def __init__(self, window: int) -> None:
        self.latency = WindowedStats(window)
        self.obl = WindowedStats(window)


class QoSManager:
    """Collects measurements for a subset of tasks/channels."""

    def __init__(self, manager_id: int, window: int = 5, metrics=None) -> None:
        self.manager_id = manager_id
        self.window = window
        #: optional MetricsRegistry; collects/summaries counted under ``qos.*``
        self.metrics = metrics
        self._tasks: Dict[int, Tuple["RuntimeTask", TaskReporter, _TaskWindows]] = {}
        self._channels: Dict[int, Tuple["RuntimeChannel", ChannelReporter, _ChannelWindows]] = {}
        #: measurements are discarded while ``now < _suppressed_until``
        #: (fault injection: reporter heartbeat loss)
        self._suppressed_until = 0.0
        #: time of the last collect that actually kept its samples
        self._last_fresh: Optional[float] = None
        #: lifetime count of collects whose samples were dropped
        self.dropped_collects = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def attach_task(self, task: "RuntimeTask", reporter: TaskReporter) -> None:
        """Begin managing a task's measurements."""
        self._tasks[task.uid] = (task, reporter, _TaskWindows(self.window))

    def attach_channel(self, channel: "RuntimeChannel", reporter: ChannelReporter) -> None:
        """Begin managing a channel's measurements."""
        self._channels[channel.channel_id] = (channel, reporter, _ChannelWindows(self.window))

    @property
    def task_count(self) -> int:
        """Number of tasks currently managed."""
        return len(self._tasks)

    @property
    def channel_count(self) -> int:
        """Number of channels currently managed."""
        return len(self._channels)

    # ------------------------------------------------------------------
    # measurement interval
    # ------------------------------------------------------------------

    def suppress_measurements(self, until: float) -> None:
        """Discard all samples collected before virtual time ``until``.

        Models a measurement dropout (lost reporter heartbeats): the
        sliding windows keep their old content, so summaries built during
        the outage are increasingly *stale* — tagged via
        :attr:`~repro.qos.summary.VertexSummary.staleness` so the scaler
        can refuse to act on them.
        """
        self._suppressed_until = max(self._suppressed_until, until)

    @property
    def suppressed_until(self) -> float:
        """Virtual time until which measurement collection is suppressed."""
        return self._suppressed_until

    def staleness(self, now: float) -> float:
        """Seconds since the last collect that kept its samples."""
        if self._last_fresh is None:
            return 0.0
        return max(0.0, now - self._last_fresh)

    def collect(self, now: float) -> None:
        """Drain all reporters into the sliding windows; evict dead entries.

        During a measurement dropout the reporters are still drained
        (their interval accumulators reset) but the samples are dropped.
        """
        suppressed = now < self._suppressed_until
        if suppressed:
            self.dropped_collects += 1
        else:
            self._last_fresh = now
        if self.metrics is not None:
            self.metrics.counter("qos.collects").inc()
            if suppressed:
                self.metrics.counter("qos.suppressed_collects").inc()
        dead_tasks = []
        for uid, (task, reporter, windows) in self._tasks.items():
            if task.state == "stopped":
                dead_tasks.append(uid)
                continue
            measurement = reporter.flush(now)
            if suppressed:
                continue
            windows.task_latency.push(measurement.task_latency)
            windows.service.push(measurement.service_time)
            windows.interarrival.push(measurement.interarrival)
        for uid in dead_tasks:
            del self._tasks[uid]
        dead_channels = []
        for cid, (channel, reporter, windows) in self._channels.items():
            if channel.closed:
                dead_channels.append(cid)
                continue
            measurement = reporter.flush(now)
            if suppressed:
                continue
            windows.latency.push(measurement.channel_latency)
            windows.obl.push(measurement.output_batch_latency)
        for cid in dead_channels:
            del self._channels[cid]

    # ------------------------------------------------------------------
    # adjustment interval
    # ------------------------------------------------------------------

    def partial_summary(self, now: float) -> PartialSummary:
        """Aggregate the sliding windows into a partial summary (Eq. 2)."""
        summary = PartialSummary(now)
        staleness = self.staleness(now)
        if self.metrics is not None:
            self.metrics.counter("qos.partial_summaries").inc()
        per_vertex: Dict[str, List[_TaskWindows]] = {}
        for task, _reporter, windows in self._tasks.values():
            if task.state == "stopped":
                continue
            per_vertex.setdefault(task.vertex_name, []).append(windows)
        for vertex_name, group in per_vertex.items():
            with_service = [w for w in group if w.service.has_data]
            with_arrivals = [w for w in group if w.interarrival.has_data]
            with_latency = [w for w in group if w.task_latency.has_data]
            if not with_service and not with_arrivals and not with_latency:
                continue
            n = max(len(with_service), len(with_arrivals), len(with_latency))
            summary.vertices[vertex_name] = VertexSummary(
                vertex_name,
                task_latency=_mean_of(w.task_latency.mean for w in with_latency),
                service_mean=_mean_of(w.service.mean for w in with_service),
                service_cv=_mean_of(w.service.cv for w in with_service),
                interarrival_mean=_mean_of(w.interarrival.mean for w in with_arrivals),
                interarrival_cv=_mean_of(w.interarrival.cv for w in with_arrivals),
                n_tasks=n,
                staleness=staleness,
            )
        per_edge: Dict[str, List[_ChannelWindows]] = {}
        for channel, _reporter, windows in self._channels.values():
            if channel.closed:
                continue
            per_edge.setdefault(channel.edge_name, []).append(windows)
        for edge_name, group in per_edge.items():
            with_latency = [w for w in group if w.latency.has_data]
            if not with_latency:
                continue
            summary.edges[edge_name] = EdgeSummary(
                edge_name,
                channel_latency=_mean_of(w.latency.mean for w in with_latency),
                output_batch_latency=_mean_of(
                    w.obl.mean for w in with_latency if w.obl.has_data
                ),
                n_channels=len(with_latency),
            )
        return summary

    def apply_batching_deadlines(self, targets: Dict[str, float]) -> None:
        """Re-tune the flush deadline of managed tasks' output gates.

        Targets are keyed by job-edge name; every output gate of a
        managed task instantiating such an edge gets the new deadline.
        """
        for task, _reporter, _windows in self._tasks.values():
            if task.state == "stopped":
                continue
            for gate in task.out_gates:
                deadline = targets.get(gate.edge_name)
                if deadline is not None:
                    gate.set_deadline(deadline)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"QoSManager(#{self.manager_id}, tasks={self.task_count}, "
            f"channels={self.channel_count})"
        )


def _mean_of(values) -> float:
    items = list(values)
    if not items:
        return 0.0
    return sum(items) / len(items)
