"""Streaming statistics primitives.

:class:`OnlineStats` is a numerically stable (Welford) accumulator for
mean/variance, used by the QoS reporters to summarize the samples of one
measurement interval. :class:`WindowedStats` keeps the last *m* interval
aggregates, matching the paper's Eq. (2) averaging over the past *m*
measurements.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, List, Optional, Sequence


class OnlineStats:
    """Welford accumulator for count / mean / variance / min / max.

    Example
    -------
    >>> s = OnlineStats()
    >>> for x in (1.0, 2.0, 3.0):
    ...     s.add(x)
    >>> s.mean
    2.0
    >>> round(s.variance, 6)
    1.0
    """

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        """Incorporate one sample."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def variance(self) -> float:
        """Sample variance (``n-1`` denominator); 0.0 for n < 2."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def cv(self) -> float:
        """Coefficient of variation ``stdev / mean`` (0.0 if mean == 0)."""
        if self.count < 2 or self.mean == 0.0:
            return 0.0
        return self.stdev / self.mean

    def reset(self) -> None:
        """Clear all accumulated state."""
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def snapshot_and_reset(self) -> "StatsSnapshot":
        """Freeze the current aggregate and reset the accumulator."""
        snap = StatsSnapshot(self.count, self.mean, self.variance)
        self.reset()
        return snap

    def __repr__(self) -> str:
        return f"OnlineStats(n={self.count}, mean={self.mean:.6g}, var={self.variance:.6g})"


class StatsSnapshot:
    """An immutable (count, mean, variance) triple for one interval."""

    __slots__ = ("count", "mean", "variance")

    def __init__(self, count: int, mean: float, variance: float) -> None:
        self.count = count
        self.mean = mean
        self.variance = variance

    @property
    def stdev(self) -> float:
        """Standard deviation of the snapshot."""
        return math.sqrt(self.variance)

    @property
    def cv(self) -> float:
        """Coefficient of variation of the snapshot."""
        if self.mean == 0.0:
            return 0.0
        return self.stdev / self.mean

    def __repr__(self) -> str:
        return f"StatsSnapshot(n={self.count}, mean={self.mean:.6g})"


class WindowAggregates:
    """The pooled aggregates of one :class:`WindowedStats` window state."""

    __slots__ = ("has_data", "count", "mean", "weighted_mean", "variance", "cv")

    def __init__(
        self,
        has_data: bool,
        count: int,
        mean: float,
        weighted_mean: float,
        variance: float,
        cv: float,
    ) -> None:
        self.has_data = has_data
        self.count = count
        self.mean = mean
        self.weighted_mean = weighted_mean
        self.variance = variance
        self.cv = cv


class WindowedStats:
    """Keeps the last ``window`` interval snapshots and pools them.

    This realizes the paper's Eq. (2): summary values are means over the
    past *m* per-interval measurements. Pooled variance uses the standard
    combination of within- and between-group sums of squares so the
    coefficient of variation reflects all samples in the window.

    Empty snapshots still advance the window: *m* silent intervals evict
    everything, so stale measurements from a past burst cannot linger on
    a now-idle task or channel (they would otherwise freeze the latency
    model's view of it).

    Aggregates are computed *once per window mutation* and memoized (the
    QoS summary builders read ``mean``/``cv``/``count`` several times per
    interval; pre-fast-path each read re-scanned the snapshot window).
    The single recomputation walks the snapshots in the same order and
    with the same arithmetic as the former per-property scans, so results
    are bit-identical.
    """

    def __init__(self, window: int = 5) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1 (got {window})")
        self.window = window
        self._snaps: Deque[StatsSnapshot] = deque(maxlen=window)
        self._cache: Optional[WindowAggregates] = None

    def push(self, snap: StatsSnapshot) -> None:
        """Append one interval snapshot (empty ones age the window)."""
        self._snaps.append(snap)
        self._cache = None

    def _filled(self) -> List[StatsSnapshot]:
        return [s for s in self._snaps if s.count > 0]

    def _aggregates(self) -> WindowAggregates:
        cache = self._cache
        if cache is None:
            cache = self._cache = self._compute()
        return cache

    def _compute(self) -> WindowAggregates:
        snaps = self._snaps
        filled = [s for s in snaps if s.count > 0]
        total = sum(s.count for s in snaps)
        if filled:
            mean = sum(s.mean for s in filled) / len(filled)
        else:
            mean = 0.0
        if total == 0:
            weighted_mean = 0.0
        else:
            weighted_mean = sum(s.mean * s.count for s in snaps) / total
        if total < 2:
            variance = 0.0
        else:
            ssq = 0.0
            for s in filled:
                ssq += s.variance * max(0, s.count - 1)
                ssq += s.count * (s.mean - weighted_mean) ** 2
            variance = ssq / (total - 1)
        if weighted_mean == 0.0:
            cv = 0.0
        else:
            cv = math.sqrt(variance) / weighted_mean
        return WindowAggregates(bool(filled), total, mean, weighted_mean, variance, cv)

    @property
    def has_data(self) -> bool:
        """Whether any non-empty snapshot is in the window."""
        return self._aggregates().has_data

    @property
    def count(self) -> int:
        """Total number of samples pooled in the window."""
        return self._aggregates().count

    @property
    def mean(self) -> float:
        """Unweighted mean of the non-empty interval means (paper Eq. 2)."""
        return self._aggregates().mean

    @property
    def weighted_mean(self) -> float:
        """Sample-count-weighted mean across the window."""
        return self._aggregates().weighted_mean

    @property
    def variance(self) -> float:
        """Pooled variance across the window's snapshots."""
        return self._aggregates().variance

    @property
    def cv(self) -> float:
        """Pooled coefficient of variation across the window."""
        return self._aggregates().cv

    def clear(self) -> None:
        """Drop all snapshots."""
        self._snaps.clear()
        self._cache = None


class ReservoirSampler:
    """Fixed-memory uniform sample of an unbounded stream (Algorithm R).

    Used where per-item retention would be unbounded (e.g. long latency
    feeds between recorder drains): keeps a uniform random subset of at
    most ``capacity`` values, from which percentiles stay unbiased.
    """

    def __init__(self, capacity: int, seed: int = 0x5EED) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1 (got {capacity})")
        self.capacity = capacity
        self._rng = __import__("random").Random(seed)
        self._values: List[float] = []
        self.seen = 0

    def add(self, value: float) -> None:
        """Offer one value to the reservoir."""
        self.seen += 1
        if len(self._values) < self.capacity:
            self._values.append(value)
            return
        index = self._rng.randrange(self.seen)
        if index < self.capacity:
            self._values[index] = value

    def values(self) -> List[float]:
        """The current sample (at most ``capacity`` values)."""
        return list(self._values)

    def percentile(self, q: float) -> Optional[float]:
        """Percentile of the sample (None while empty)."""
        return percentile(self._values, q)

    def drain(self) -> List[float]:
        """Take the sample and reset the reservoir."""
        values = self._values
        self._values = []
        self.seen = 0
        return values

    def __len__(self) -> int:
        return len(self._values)


def percentile(samples: Sequence[float], q: float) -> Optional[float]:
    """Return the ``q``-th percentile (0..100) via linear interpolation.

    Returns ``None`` on an empty sequence. Used by the experiment
    recorders for the paper's 95th-percentile latency series.
    """
    if not samples:
        return None
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile out of range: {q}")
    ordered: List[float] = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    interpolated = ordered[low] * (1.0 - frac) + ordered[high] * frac
    # Clamp away interpolation rounding (can escape [low, high] by 1 ulp).
    return min(max(interpolated, ordered[low]), ordered[high])
