"""Partial and global summaries (paper Sec. IV-C1).

Each QoS manager aggregates its measurement data into a *partial
summary*: per job vertex the tuple ``(l_jv, S̄_jv, c_S, Ā_jv, c_A, λ_jv)``
and per job edge ``(l_je, obl_je)``, each averaged over the tasks /
channels the manager observes (paper Eq. 2). The master merges the
partial summaries — weighted by how many tasks/channels each one covers —
into the *global summary* that initializes the latency model.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional


class VertexSummary:
    """Summary tuple for one job vertex (paper Sec. IV-C1)."""

    __slots__ = ("vertex_name", "task_latency", "service_mean", "service_cv",
                 "interarrival_mean", "interarrival_cv", "arrival_rate", "n_tasks",
                 "staleness")

    def __init__(
        self,
        vertex_name: str,
        task_latency: float,
        service_mean: float,
        service_cv: float,
        interarrival_mean: float,
        interarrival_cv: float,
        n_tasks: int,
        staleness: float = 0.0,
    ) -> None:
        self.vertex_name = vertex_name
        #: mean task latency ``l_jv`` (seconds)
        self.task_latency = task_latency
        #: mean service time ``S̄_jv`` (seconds)
        self.service_mean = service_mean
        #: coefficient of variation ``c_S``
        self.service_cv = service_cv
        #: mean interarrival time ``Ā_jv`` (seconds); 0 means "no arrivals"
        self.interarrival_mean = interarrival_mean
        #: coefficient of variation ``c_A``
        self.interarrival_cv = interarrival_cv
        #: per-task arrival rate ``λ_jv = 1/Ā_jv`` (items/second)
        self.arrival_rate = 1.0 / interarrival_mean if interarrival_mean > 0 else 0.0
        #: number of tasks averaged into this summary (merge weight)
        self.n_tasks = n_tasks
        #: seconds since the underlying windows last received fresh
        #: samples (> 0 during measurement dropouts; the scaler skips
        #: constraints whose vertices exceed its staleness threshold)
        self.staleness = staleness

    @property
    def utilization(self) -> float:
        """Task utilization ``ρ = λ · S̄`` (Table I, derived)."""
        return self.arrival_rate * self.service_mean

    @property
    def service_rate(self) -> float:
        """Service rate ``μ = 1/S̄`` (items/second); inf for zero cost."""
        if self.service_mean <= 0:
            return float("inf")
        return 1.0 / self.service_mean

    def __repr__(self) -> str:
        return (
            f"VertexSummary({self.vertex_name!r}, l={self.task_latency:.6f}, "
            f"S={self.service_mean:.6f}, rho={self.utilization:.3f}, n={self.n_tasks})"
        )


class EdgeSummary:
    """Summary tuple for one job edge: ``(l_je, obl_je)``."""

    __slots__ = ("edge_name", "channel_latency", "output_batch_latency", "n_channels")

    def __init__(
        self,
        edge_name: str,
        channel_latency: float,
        output_batch_latency: float,
        n_channels: int,
    ) -> None:
        self.edge_name = edge_name
        self.channel_latency = channel_latency
        self.output_batch_latency = output_batch_latency
        self.n_channels = n_channels

    @property
    def queueing_time(self) -> float:
        """Measured consumer-side wait ``W = l_je − obl_je`` (Eq. 4 numerator)."""
        return max(0.0, self.channel_latency - self.output_batch_latency)

    def __repr__(self) -> str:
        return (
            f"EdgeSummary({self.edge_name!r}, l={self.channel_latency:.6f}, "
            f"obl={self.output_batch_latency:.6f}, n={self.n_channels})"
        )


class GlobalSummary:
    """The master's merged view over all partial summaries."""

    def __init__(self, timestamp: float) -> None:
        self.timestamp = timestamp
        self.vertices: Dict[str, VertexSummary] = {}
        self.edges: Dict[str, EdgeSummary] = {}

    def vertex(self, name: str) -> Optional[VertexSummary]:
        """Vertex summary by name (``None`` if unmeasured this round)."""
        return self.vertices.get(name)

    def edge(self, name: str) -> Optional[EdgeSummary]:
        """Edge summary by name (``None`` if unmeasured this round)."""
        return self.edges.get(name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GlobalSummary(t={self.timestamp:.1f}, "
            f"|V|={len(self.vertices)}, |E|={len(self.edges)})"
        )


def _weighted_mean(pairs: Iterable) -> float:
    total_weight = 0.0
    total = 0.0
    for value, weight in pairs:
        total += value * weight
        total_weight += weight
    return total / total_weight if total_weight > 0 else 0.0


def merge_partial_summaries(
    timestamp: float,
    partials: List["PartialSummary"],
) -> GlobalSummary:
    """Merge partial summaries into the global summary (weighted means)."""
    merged = GlobalSummary(timestamp)
    vertex_groups: Dict[str, List[VertexSummary]] = {}
    edge_groups: Dict[str, List[EdgeSummary]] = {}
    for partial in partials:
        for vs in partial.vertices.values():
            vertex_groups.setdefault(vs.vertex_name, []).append(vs)
        for es in partial.edges.values():
            edge_groups.setdefault(es.edge_name, []).append(es)
    for name, group in vertex_groups.items():
        weights = [g.n_tasks for g in group]
        merged.vertices[name] = VertexSummary(
            name,
            task_latency=_weighted_mean((g.task_latency, w) for g, w in zip(group, weights)),
            service_mean=_weighted_mean((g.service_mean, w) for g, w in zip(group, weights)),
            service_cv=_weighted_mean((g.service_cv, w) for g, w in zip(group, weights)),
            interarrival_mean=_weighted_mean(
                (g.interarrival_mean, w) for g, w in zip(group, weights)
            ),
            interarrival_cv=_weighted_mean(
                (g.interarrival_cv, w) for g, w in zip(group, weights)
            ),
            n_tasks=sum(weights),
            # Conservative merge: one stale partial makes the vertex stale.
            staleness=max(g.staleness for g in group),
        )
    for name, group in edge_groups.items():
        weights = [g.n_channels for g in group]
        merged.edges[name] = EdgeSummary(
            name,
            channel_latency=_weighted_mean(
                (g.channel_latency, w) for g, w in zip(group, weights)
            ),
            output_batch_latency=_weighted_mean(
                (g.output_batch_latency, w) for g, w in zip(group, weights)
            ),
            n_channels=sum(weights),
        )
    return merged


class PartialSummary:
    """One QoS manager's summary over the tasks/channels it observes.

    Structurally identical to :class:`GlobalSummary` (the paper makes the
    same observation); kept as its own type for API clarity.
    """

    def __init__(self, timestamp: float) -> None:
        self.timestamp = timestamp
        self.vertices: Dict[str, VertexSummary] = {}
        self.edges: Dict[str, EdgeSummary] = {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PartialSummary(t={self.timestamp:.1f}, "
            f"|V|={len(self.vertices)}, |E|={len(self.edges)})"
        )
