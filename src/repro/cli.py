"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiment {fig3,fig5,fig6,fig8,all}``
    Run a paper-reproduction experiment and print its report
    (``--quick`` for the reduced variant, ``--csv DIR`` to export series).
``trace generate`` / ``trace info``
    Synthesize or inspect rate traces (the stand-in for the paper's
    two-week Twitter replay).
``info``
    Show version and the experiment inventory.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import repro
from repro.workloads.traces import generate_diurnal_trace, load_trace, save_trace

EXPERIMENTS = ("fig3", "fig5", "fig6", "fig8", "sensitivity", "validation", "policies")


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Elastic Stream Processing with Latency Guarantees' (ICDCS 2015)",
    )
    sub = parser.add_subparsers(dest="command")

    exp = sub.add_parser("experiment", help="run a paper experiment")
    exp.add_argument("name", choices=EXPERIMENTS + ("all",))
    exp.add_argument("--quick", action="store_true", help="reduced-scale variant")
    exp.add_argument("--csv", metavar="DIR", help="export series CSVs into DIR")

    trace = sub.add_parser("trace", help="rate-trace tooling")
    trace_sub = trace.add_subparsers(dest="trace_command")
    gen = trace_sub.add_parser("generate", help="synthesize a diurnal rate trace")
    gen.add_argument("--days", type=int, default=14)
    gen.add_argument("--base-rate", type=float, default=3000.0)
    gen.add_argument("--amplitude", type=float, default=0.6)
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--out", required=True, metavar="PATH")
    info = trace_sub.add_parser("info", help="summarize a trace CSV")
    info.add_argument("path")

    sub.add_parser("info", help="version and experiment inventory")
    return parser


def _run_experiment(name: str, quick: bool, csv_dir: Optional[str]) -> None:
    import importlib

    modules = {
        "fig3": "repro.experiments.fig3_motivation",
        "fig5": "repro.experiments.fig5_surface",
        "fig6": "repro.experiments.fig6_primetester",
        "fig8": "repro.experiments.fig8_twitter",
        "sensitivity": "repro.experiments.sensitivity",
        "validation": "repro.experiments.validation",
        "policies": "repro.experiments.compare_policies",
    }
    params_classes = {
        "fig3": "Fig3Params",
        "fig6": "Fig6Params",
        "fig8": "Fig8Params",
        "sensitivity": "SensitivityParams",
        "policies": "CompareParams",
    }
    module = importlib.import_module(modules[name])
    if name in params_classes:
        params = module.__dict__[params_classes[name]]()
        if quick:
            params = params.quick()
        result = module.run(params)
    else:
        result = module.run()
    print(result.report())
    if csv_dir:
        path = result.series_csv(f"{csv_dir}/{name}_series.csv")
        print(f"series written to {path}")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "info":
        print(f"repro {repro.__version__} — Elastic Stream Processing with "
              "Latency Guarantees (ICDCS 2015)")
        print("experiments: " + ", ".join(EXPERIMENTS))
        print("see DESIGN.md for the paper-to-module map and EXPERIMENTS.md "
              "for paper-vs-measured results")
        return 0
    if args.command == "experiment":
        names = EXPERIMENTS if args.name == "all" else (args.name,)
        for name in names:
            _run_experiment(name, args.quick, args.csv)
        return 0
    if args.command == "trace":
        if args.trace_command == "generate":
            trace = generate_diurnal_trace(
                days=args.days,
                base_rate=args.base_rate,
                daily_amplitude=args.amplitude,
                seed=args.seed,
            )
            path = save_trace(args.out, trace)
            print(f"wrote {len(trace)} samples ({args.days} days) to {path}")
            return 0
        if args.trace_command == "info":
            trace = load_trace(args.path)
            rates = [rate for _, rate in trace]
            duration = trace[-1][0]
            print(f"{args.path}: {len(trace)} samples over {duration / 86400:.1f} days")
            print(f"rate min/mean/max: {min(rates):.0f} / "
                  f"{sum(rates) / len(rates):.0f} / {max(rates):.0f} items/s")
            return 0
        parser.parse_args(["trace", "--help"])
        return 2
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
