"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiment {fig3,fig5,fig6,fig8,all}``
    Run a paper-reproduction experiment and print its report
    (``--quick`` for the reduced variant, ``--csv DIR`` to export series).
``run``
    Run a fault-free elastic pipeline with observability on and export
    ``manifest.json`` / ``metrics.jsonl`` / ``trace.jsonl``.
``chaos``
    Run a deterministic fault-injection scenario against an elastic
    pipeline (task crash, worker loss, measurement dropout, service
    spike) and report how the scaler degraded gracefully.
``sweep``
    Expand a declarative grid (seeds × rates × bounds × workloads ×
    actuation × policies) into shards and run them across a
    crash-isolated worker process pool with checkpointed resume
    (``--resume``) and a deterministic byte-identical merged aggregate;
    ``--tournament`` runs the built-in policy-tournament grid and
    repeatable ``--policy`` flags form the policy axis.
``trace generate`` / ``trace info``
    Synthesize or inspect rate traces (the stand-in for the paper's
    two-week Twitter replay).
``trace show`` / ``trace --check``
    Inspect or schema-validate an exported observability directory
    (scaler decision records and the run manifest).
``bench``
    Run the pinned-seed micro/macro benchmark suite and write
    ``BENCH_core.json`` (``--quick`` for the CI smoke variant,
    ``--check BASELINE`` to fail on >30% speedup regression).
``compare``
    Evaluate run(s) against a committed baseline under a tolerance spec
    (see :mod:`repro.evaluate`): exit 0 when every metric statistic is
    in tolerance, 1 otherwise (naming the offending metrics);
    ``--suggest`` derives the empirical tolerance spec that would admit
    the given runs, ``--write-baseline`` pins a new baseline file, and
    ``--scoreboard`` renders the per-policy tournament scoreboard
    (violation rate / task hours / reaction time) baseline-free.
``runs``
    Index exported run artifacts (sweeps, shards, plain observability
    exports) under a root into stable ids that ``compare --index`` can
    address instead of raw paths.
``info``
    Show version and the experiment inventory.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import repro
from repro.workloads.traces import generate_diurnal_trace, load_trace, save_trace

EXPERIMENTS = ("fig3", "fig5", "fig6", "fig8", "sensitivity", "validation", "policies")


def _policy_spec(text: str) -> str:
    """argparse type for ``--policy NAME[:key=val,...]`` flags.

    The one policy-spec parser of the CLI: every command resolves the
    flag through :func:`repro.core.policy.parse_policy_spec`, so the
    accepted syntax (and the unknown-name error) is identical across
    ``run``, ``chaos`` and ``sweep``.
    """
    from repro.core.policy import parse_policy_spec

    try:
        return parse_policy_spec(text).canonical()
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _add_policy_flag(parser: argparse.ArgumentParser, repeatable: bool = False) -> None:
    """Attach the shared ``--policy NAME[:key=val,...]`` flag."""
    if repeatable:
        parser.add_argument(
            "--policy", metavar="SPEC", type=_policy_spec, action="append",
            default=None, dest="policies",
            help="scaling policy spec NAME[:key=val,...]; repeat to sweep "
                 "a policy axis (default: the grid's, or scale-reactively)")
    else:
        parser.add_argument(
            "--policy", metavar="SPEC", type=_policy_spec, default=None,
            help="scaling policy spec NAME[:key=val,...] from the policy "
                 "registry (default: scale-reactively)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Elastic Stream Processing with Latency Guarantees' (ICDCS 2015)",
    )
    sub = parser.add_subparsers(dest="command")

    exp = sub.add_parser("experiment", help="run a paper experiment")
    exp.add_argument("name", choices=EXPERIMENTS + ("all",))
    exp.add_argument("--quick", action="store_true", help="reduced-scale variant")
    exp.add_argument("--csv", metavar="DIR", help="export series CSVs into DIR")

    run = sub.add_parser("run", help="fault-free elastic run with observability export")
    run.add_argument("--duration", type=float, default=None,
                     help="virtual seconds to run (default 120; 240 with "
                          "--shared-cluster)")
    run.add_argument("--rate", type=float, default=None,
                     help="source rate, items/s (default 400; 1400 per-job "
                          "peak with --shared-cluster)")
    run.add_argument("--bound", type=float, default=None,
                     help="latency bound, s (default 0.030; 0.060 with "
                          "--shared-cluster)")
    run.add_argument("--seed", type=int, default=None,
                     help="engine seed (default 7; 11 with --shared-cluster)")
    run.add_argument("--shared-cluster", action="store_true",
                     help="run the canonical two-job shared-cluster scenario "
                          "instead: anti-phased load peaks on an "
                          "under-provisioned pool, admission arbitration "
                          "with denials and preemption, per-job fulfillment "
                          "and Jain's fairness in the report")
    run.add_argument("--workers", type=int, default=3, metavar="N",
                     help="with --shared-cluster: pool size in workers")
    run.add_argument("--slots-per-worker", type=int, default=4, metavar="S",
                     help="with --shared-cluster: slots per worker")
    run.add_argument("--admission", default="fair-share",
                     choices=("fcfs", "priority", "fair-share"),
                     help="with --shared-cluster: slot arbitration policy")
    run.add_argument("--placement", default="pack",
                     choices=("pack", "spread", "network"),
                     help="with --shared-cluster: task placement strategy")
    run.add_argument("--obs-dir", metavar="DIR", default="obs-run",
                     help="export directory for manifest/metrics/trace")
    run.add_argument("--partitions", type=int, default=None, metavar="N",
                     help="run the scenario partitioned across N worker "
                          "processes and merge the slice artifacts "
                          "deterministically (see repro.sweep.partition)")
    run.add_argument("--slices", type=int, default=4, metavar="K",
                     help="with --partitions: number of independent slice "
                          "jobs the scenario is split into (fixed per plan, "
                          "so merged output is byte-identical for any N)")
    run.add_argument("--scenario", choices=("steady", "spike", "dropout",
                                            "stateful", "twitter"),
                     default="steady",
                     help="with --partitions: which shard scenario to slice")
    run.add_argument("--retries", type=int, default=2,
                     help="with --partitions: per-slice retries after a "
                          "worker crash")
    _add_policy_flag(run)

    chaos = sub.add_parser("chaos", help="run a deterministic fault-injection scenario")
    chaos.add_argument("--duration", type=float, default=120.0, help="virtual seconds to run")
    chaos.add_argument("--rate", type=float, default=400.0, help="source rate (items/s)")
    chaos.add_argument("--bound", type=float, default=0.030, help="latency bound (s)")
    chaos.add_argument("--seed", type=int, default=7, help="engine seed")
    chaos.add_argument("--fault-seed", type=int, default=0, help="victim-selection seed")
    chaos.add_argument("--crash-at", type=float, default=30.0,
                       help="crash one worker task at this time (negative = off)")
    chaos.add_argument("--restart-delay", type=float, default=2.0,
                       help="replacement-task delay after a crash")
    chaos.add_argument("--dropout-at", type=float, default=30.0,
                       help="start a QoS measurement dropout (negative = off)")
    chaos.add_argument("--dropout-duration", type=float, default=20.0)
    chaos.add_argument("--spike-at", type=float, default=-1.0,
                       help="service-time spike start (negative = off)")
    chaos.add_argument("--spike-factor", type=float, default=3.0)
    chaos.add_argument("--spike-duration", type=float, default=10.0)
    chaos.add_argument("--worker-loss-at", type=float, default=-1.0,
                       help="lose one leased worker at this time (negative = off)")
    chaos.add_argument("--actuation", action="store_true",
                       help="supervised actuation: rescaling becomes asynchronous, "
                            "failure-prone and retried (see repro.actuation)")
    chaos.add_argument("--actuation-fail-at", type=float, default=5.0,
                       help="with --actuation: start a window in which every "
                            "actuation attempt fails (negative = off)")
    chaos.add_argument("--actuation-fail-duration", type=float, default=20.0,
                       help="length of the actuation-failure window (s)")
    chaos.add_argument("--stateful", action="store_true",
                       help="make the worker stage stateful (key-partitioned "
                            "operator state): rescales become multi-phase state "
                            "migrations, crashes trigger checkpoint-restore "
                            "recovery (implies --actuation)")
    chaos.add_argument("--migration-fail-at", type=float, default=-1.0,
                       help="start a window in which state migrations fail "
                            "mid-transfer and roll back (negative = off; "
                            "implies --stateful and --actuation)")
    chaos.add_argument("--migration-fail-duration", type=float, default=15.0,
                       help="length of the migration-failure window (s)")
    chaos.add_argument("--checkpoint-interval", type=float, default=15.0,
                       help="periodic checkpoint interval for stateful vertices "
                            "(s); shorter = more snapshot pauses, less replay "
                            "after a crash")
    chaos.add_argument("--obs-dir", metavar="DIR", default=None,
                       help="export manifest/metrics/trace into DIR after the run")
    chaos.add_argument("--pin-wall-time", action="store_true",
                       help="write wall_time_s=0.0 into the exported manifest so "
                            "same-seed runs diff byte-for-byte")
    _add_policy_flag(chaos)

    sweep = sub.add_parser(
        "sweep", help="run a seed/workload/knob grid across worker processes"
    )
    sweep.add_argument("--grid", metavar="FILE", default=None,
                       help="JSON grid file (see repro.sweep.SweepGrid)")
    sweep.add_argument("--quick", action="store_true",
                       help="the built-in 8-shard CI smoke grid")
    sweep.add_argument("--seeds", metavar="CSV", default=None,
                       help="comma-separated engine seeds (overrides the grid)")
    sweep.add_argument("--rates", metavar="CSV", default=None,
                       help="comma-separated source rates (items/s)")
    sweep.add_argument("--bounds", metavar="CSV", default=None,
                       help="comma-separated latency bounds (s)")
    sweep.add_argument("--workloads", metavar="CSV", default=None,
                       help="comma-separated workload variants "
                            "(steady, spike, dropout, twitter)")
    sweep.add_argument("--actuation", choices=("off", "on", "both"), default=None,
                       help="supervised-actuation axis (default: grid/off)")
    sweep.add_argument("--duration", type=float, default=None,
                       help="virtual seconds per shard")
    sweep.add_argument("--workers", type=int, default=2,
                       help="concurrent worker processes (1 = serial)")
    sweep.add_argument("--resume", action="store_true",
                       help="skip shards with a valid checkpoint in --out")
    sweep.add_argument("--retries", type=int, default=2,
                       help="per-shard retries after a worker crash")
    sweep.add_argument("--out", metavar="DIR", default="sweep-out",
                       help="checkpoint/aggregate directory")
    _add_policy_flag(sweep, repeatable=True)
    sweep.add_argument("--tournament", action="store_true",
                       help="the built-in 10-shard policy-tournament grid "
                            "(5 policies x 2 seeds, see SweepGrid.tournament)")
    sweep.add_argument("--tournament-stateful", action="store_true",
                       help="the stateful policy tournament: same race on a "
                            "stateful worker, so rescales pay migration "
                            "pauses (see SweepGrid.tournament_stateful)")
    sweep.add_argument("--shared-cluster", action="store_true",
                       help="the built-in 2-shard shared-cluster grid: two "
                            "jobs contending for one pool under fair-share "
                            "admission (see SweepGrid.shared_cluster)")

    trace = sub.add_parser("trace", help="rate traces and scaler decision traces")
    trace.add_argument("--check", action="store_true",
                       help="schema-validate trace.jsonl/manifest.json in --obs-dir")
    trace.add_argument("--obs-dir", metavar="DIR", default=".",
                       help="observability export directory for --check (default: .)")
    trace_sub = trace.add_subparsers(dest="trace_command")
    gen = trace_sub.add_parser("generate", help="synthesize a diurnal rate trace")
    gen.add_argument("--days", type=int, default=14)
    gen.add_argument("--base-rate", type=float, default=3000.0)
    gen.add_argument("--amplitude", type=float, default=0.6)
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--out", required=True, metavar="PATH")
    info = trace_sub.add_parser("info", help="summarize a trace CSV")
    info.add_argument("path")
    show = trace_sub.add_parser("show", help="summarize an exported decision trace")
    show.add_argument("dir", nargs="?", default=".",
                      help="observability export directory (default: .)")
    show.add_argument("--last", type=int, default=10,
                      help="number of most recent decision records to print")

    bench = sub.add_parser("bench", help="run the benchmark suite, write BENCH_core.json")
    bench.add_argument("--quick", action="store_true",
                       help="reduced event counts and macro duration (CI smoke)")
    bench.add_argument("--out", metavar="PATH", default="BENCH_core.json",
                       help="results file to write (default: BENCH_core.json)")
    bench.add_argument("--check", metavar="BASELINE", default=None,
                       help="compare micro speedups and the macro's "
                            "kernel-relative throughput against a committed "
                            "results file; exit 1 on >30%% regression")
    bench.add_argument("--no-macro", action="store_true",
                       help="skip the elastic TwitterSentiment macro benchmark")
    bench.add_argument("--profile", metavar="PATH", default=None,
                       help="additionally run the macro workload under cProfile "
                            "and dump pstats data to PATH")

    comp = sub.add_parser(
        "compare", help="evaluate runs against a committed baseline"
    )
    comp.add_argument("runs", nargs="+", metavar="RUN",
                      help="sweep output dir, aggregate.json, baseline-format "
                           "file, or (with --index) a run-history id")
    comp.add_argument("--baseline", metavar="FILE", default=None,
                      help="baseline file to gate against "
                           "(default: baselines/twitter.json, unless "
                           "--scoreboard runs baseline-free)")
    comp.add_argument("--scoreboard", action="store_true",
                      help="render the per-policy tournament scoreboard "
                           "(violation rate, task hours, reaction time) "
                           "from the first RUN's shards")
    comp.add_argument("--tolerance", metavar="FILE", default=None,
                      help="tolerance spec file overriding the baseline's own")
    comp.add_argument("--suggest", action="store_true",
                      help="derive the empirical tolerance spec that would "
                           "admit every given run (from N same-config runs)")
    comp.add_argument("--index", metavar="ROOT", default=None,
                      help="resolve RUN tokens as run-history ids under ROOT "
                           "(see 'repro runs')")
    comp.add_argument("--json", metavar="PATH", default=None,
                      help="write the machine-readable comparison JSON")
    comp.add_argument("--html", metavar="PATH", default=None,
                      help="write the standalone HTML report")
    comp.add_argument("--write-baseline", metavar="PATH", default=None,
                      help="pin the first RUN as a new baseline file "
                           "(bootstraps when --baseline does not exist yet)")

    runs = sub.add_parser(
        "runs", help="index exported run artifacts under a directory"
    )
    runs.add_argument("--root", metavar="DIR", default=".",
                      help="directory to scan for run artifacts (default: .)")
    runs.add_argument("--json", metavar="PATH", default=None,
                      help="also write the index JSON to PATH")

    sub.add_parser("info", help="version and experiment inventory")
    return parser


def _run_experiment(name: str, quick: bool, csv_dir: Optional[str]) -> None:
    import importlib

    modules = {
        "fig3": "repro.experiments.fig3_motivation",
        "fig5": "repro.experiments.fig5_surface",
        "fig6": "repro.experiments.fig6_primetester",
        "fig8": "repro.experiments.fig8_twitter",
        "sensitivity": "repro.experiments.sensitivity",
        "validation": "repro.experiments.validation",
        "policies": "repro.experiments.compare_policies",
    }
    params_classes = {
        "fig3": "Fig3Params",
        "fig6": "Fig6Params",
        "fig8": "Fig8Params",
        "sensitivity": "SensitivityParams",
        "policies": "CompareParams",
    }
    module = importlib.import_module(modules[name])
    if name in params_classes:
        params = module.__dict__[params_classes[name]]()
        if quick:
            params = params.quick()
        result = module.run(params)
    else:
        result = module.run()
    print(result.report())
    if csv_dir:
        path = result.series_csv(f"{csv_dir}/{name}_series.csv")
        print(f"series written to {path}")


def _format_decision(record) -> str:
    target = ""
    if record.p_target is not None:
        before = record.p_before if record.p_before is not None else "?"
        target = f"  p {before}->{record.p_target}"
        if record.p_applied:
            target += f" (applied {record.p_applied:+d})"
    waits = ""
    if record.measured_wait is not None and record.predicted_wait is not None:
        waits = (f"  wait {record.measured_wait * 1000:.2f}ms"
                 f"->{record.predicted_wait * 1000:.2f}ms")
    detail = f"  [{record.detail}]" if record.detail else ""
    return (f"t={record.time:7.2f}  {record.branch:<19s} "
            f"{record.constraint:<12s} {record.vertex or '*':<10s}"
            f"{target}{waits}{detail}")


def _print_last_decisions(trace, last: int) -> None:
    print(f"last scaler decisions ({min(last, len(trace))} of {len(trace)} records):")
    for record in trace.last(last):
        print("  " + _format_decision(record))


def _run_obs(args: argparse.Namespace) -> None:
    from repro.builder import PipelineBuilder
    from repro.engine.engine import EngineConfig, StreamProcessingEngine
    from repro.simulation.randomness import Gamma
    from repro.workloads.rates import ConstantRate

    builder = (
        PipelineBuilder("obs-run")
        .source(lambda now, rng: rng.random(), rate=ConstantRate(args.rate))
        .map("worker", lambda x: x, service=Gamma(0.004, 0.7), parallelism=(4, 1, 32))
        .sink()
        .constrain(bound=args.bound, name="e2e")
        .observe(export_dir=args.obs_dir)
    )
    if args.policy is not None:
        builder.scale(args.policy)
    pipeline = builder.build()
    engine = StreamProcessingEngine(EngineConfig(elastic=True, seed=args.seed))
    job = engine.submit(pipeline)
    engine.run(args.duration)

    policy_note = f", policy={args.policy}" if args.policy is not None else ""
    print(f"run: {args.duration:.0f}s, rate={args.rate:.0f}/s, "
          f"bound={args.bound * 1000:.0f}ms, seed={args.seed}{policy_note}")
    print(f"final parallelism: "
          f"{ {name: rv.parallelism for name, rv in job.runtime.vertices.items()} }")
    scaler = job.scaler
    if scaler is not None:
        print(f"scaler: {scaler.rounds} rounds, {len(scaler.events)} activations")
    if job.trace is not None and len(job.trace):
        print()
        _print_last_decisions(job.trace, 6)
    paths = engine.export_run()
    print()
    print("exported:")
    for kind, path in sorted(paths.items()):
        print(f"  {kind:<9s} {path}")


def _run_shared_cluster(args: argparse.Namespace) -> int:
    """Two jobs on one under-provisioned pool: the admission scenario."""
    from repro.workloads.multi_job import SharedClusterParams, run_shared_cluster

    defaults = SharedClusterParams()
    params = SharedClusterParams(
        rate=args.rate if args.rate is not None else defaults.rate,
        bound=args.bound if args.bound is not None else defaults.bound,
        duration=args.duration if args.duration is not None else defaults.duration,
        seed=args.seed if args.seed is not None else defaults.seed,
        workers=args.workers,
        slots_per_worker=args.slots_per_worker,
        admission=args.admission,
        placement=args.placement,
    )
    if args.policy is not None:
        params.policy = args.policy
    result = run_shared_cluster(params)

    p = result["params"]
    print(f"shared cluster: {p['workers']} workers x {p['slots_per_worker']} "
          f"slots, admission={p['admission']}, placement={p['placement']}, "
          f"{result['virtual_time_s']:.0f}s virtual, seed={p['seed']}")
    for job in result["jobs"]:
        account = job["account"]
        fulfillment = job["fulfillment"]
        shown = "-" if fulfillment is None else f"{fulfillment:.3f}"
        print(f"  job {job['job']:<8s} fulfillment={shown} "
              f"violations={job['violations']} weight={account['weight']:g} "
              f"held={account['held']} denials={account['denials']} "
              f"preempted={account['preemptions_suffered']}")
    fairness = result["fairness"]
    cluster = result["cluster"]
    shown = "-" if fairness is None else f"{fairness:.4f}"
    print(f"fairness (Jain, per-job fulfillment): {shown}")
    print(f"cluster: {cluster['total_slots']} slots, "
          f"{cluster['admission_denials']} admission denials, "
          f"{cluster['preempted_tasks']} preempted tasks, "
          f"{cluster['task_hours']:.3f} task-hours")
    return 0


def _run_partitioned(args: argparse.Namespace) -> int:
    from repro.sweep.partition import (
        PARTITION_STATS_FILE,
        PartitionError,
        PartitionPlan,
        run_partitioned,
    )

    try:
        plan = PartitionPlan(
            scenario=args.scenario,
            seed=args.seed,
            rate=args.rate,
            bound=args.bound,
            duration=args.duration,
            policy=args.policy if args.policy is not None else "scale-reactively",
            slices=args.slices,
        )
        merged = run_partitioned(
            plan,
            out=args.obs_dir,
            partitions=args.partitions,
            max_retries=args.retries,
            progress=lambda message: print(f"  {message}"),
        )
    except PartitionError as exc:
        print(f"partitioned run failed: {exc}")
        return 1
    totals = merged["totals"]
    print(f"partitioned run: scenario={plan.scenario}, {plan.slices} slices "
          f"x {plan.duration:.0f}s across {args.partitions} workers")
    print(f"fired events (all slices): {totals['fired_events']}")
    for name, bucket in sorted(totals["constraints"].items()):
        print(f"constraint {name}: fulfillment "
              f"{bucket['fulfillment_ratio'] * 100:.2f}% "
              f"({bucket['violations']}/{bucket['intervals']} violated)")
    print(f"merged artifacts in {args.obs_dir}/ "
          f"(wall-clock stats: {PARTITION_STATS_FILE})")
    return 0


def _check_manifest(manifest_path: str) -> list:
    """Validate a manifest file: a plain run's or a partitioned merge's.

    A partitioned run's merged manifest wraps one plain manifest per
    slice; every slice manifest must itself be schema-valid.
    """
    import json

    from repro.obs.manifest import MANIFEST_SCHEMA_VERSION, RunManifest
    from repro.sweep.partition import PARTITION_SCHEMA_VERSION

    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (ValueError, OSError) as exc:
        return [f"{manifest_path}: {exc}"]
    if "partition_schema" not in data:
        try:
            RunManifest.read(manifest_path)
        except (ValueError, OSError) as exc:
            return [f"{manifest_path}: {exc}"]
        return []
    errors = []
    if data["partition_schema"] != PARTITION_SCHEMA_VERSION:
        errors.append(
            f"{manifest_path}: unsupported partition schema "
            f"{data['partition_schema']!r} (expected {PARTITION_SCHEMA_VERSION})"
        )
    for index, entry in enumerate(data.get("slices") or []):
        if not isinstance(entry, dict):
            errors.append(f"{manifest_path}: slice {index} manifest is missing")
        elif entry.get("schema") != MANIFEST_SCHEMA_VERSION:
            errors.append(
                f"{manifest_path}: slice {index} has unsupported manifest "
                f"schema {entry.get('schema')!r} (expected {MANIFEST_SCHEMA_VERSION})"
            )
    return errors


def _trace_check(obs_dir: str) -> int:
    import os

    from repro.obs.manifest import MANIFEST_FILE, TRACE_FILE
    from repro.obs.trace import validate_trace_file

    trace_path = os.path.join(obs_dir, TRACE_FILE)
    manifest_path = os.path.join(obs_dir, MANIFEST_FILE)
    errors = []
    if os.path.exists(trace_path):
        errors.extend(validate_trace_file(trace_path))
    else:
        errors.append(f"missing {trace_path}")
    if os.path.exists(manifest_path):
        errors.extend(_check_manifest(manifest_path))
    else:
        errors.append(f"missing {manifest_path}")
    if errors:
        print(f"trace check FAILED ({len(errors)} errors):")
        for error in errors:
            print(f"  {error}")
        return 1
    print(f"trace check OK: {trace_path} and {manifest_path} are schema-valid")
    return 0


def _trace_show(directory: str, last: int) -> int:
    import os

    from repro.obs.manifest import MANIFEST_FILE, RunManifest, TRACE_FILE
    from repro.obs.trace import DecisionTrace

    manifest_path = os.path.join(directory, MANIFEST_FILE)
    if os.path.exists(manifest_path):
        manifest = RunManifest.read(manifest_path)
        scaling = manifest.get("scaling") or {}
        print(f"job {manifest['job']!r}: seed={manifest['seed']}, "
              f"graph={manifest['graph_hash']}, "
              f"virtual={manifest['virtual_time_s']:.0f}s")
        print(f"final parallelism: {manifest['final_parallelism']}")
        if scaling:
            print(f"scaling: {scaling.get('rounds', 0)} rounds, "
                  f"{scaling.get('activations', 0)} activations, "
                  f"{scaling.get('skipped_stale', 0)} stale skips, "
                  f"{scaling.get('suppressed_scale_downs', 0)} cooldown suppressions")
        print()
    trace_path = os.path.join(directory, TRACE_FILE)
    if not os.path.exists(trace_path):
        print(f"no {trace_path}")
        return 1
    trace = DecisionTrace.read_jsonl(trace_path)
    branches = ", ".join(f"{k}={v}" for k, v in sorted(trace.branches().items()))
    print(f"{len(trace)} decision records over {trace.rounds} rounds ({branches})")
    print()
    _print_last_decisions(trace, last)
    return 0


def _csv_list(text: str, convert) -> list:
    return [convert(part.strip()) for part in text.split(",") if part.strip()]


def _build_sweep_grid(args: argparse.Namespace):
    from repro.sweep import SweepGrid

    built_ins = [
        flag
        for flag in ("--grid", "--quick", "--tournament", "--tournament-stateful",
                     "--shared-cluster")
        if getattr(args, flag.lstrip("-").replace("-", "_"), None)
    ]
    if len(built_ins) > 1:
        raise SystemExit(f"pass only one of {', '.join(built_ins)}")
    if args.grid is not None:
        grid = SweepGrid.from_file(args.grid)
    elif args.quick:
        grid = SweepGrid.quick()
    elif args.tournament:
        grid = SweepGrid.tournament()
    elif args.tournament_stateful:
        grid = SweepGrid.tournament_stateful()
    elif args.shared_cluster:
        grid = SweepGrid.shared_cluster()
    else:
        grid = SweepGrid()
    overrides = {}
    if args.seeds is not None:
        overrides["seeds"] = _csv_list(args.seeds, int)
    if args.rates is not None:
        overrides["rates"] = _csv_list(args.rates, float)
    if args.bounds is not None:
        overrides["bounds"] = _csv_list(args.bounds, float)
    if args.workloads is not None:
        overrides["workloads"] = _csv_list(args.workloads, str)
    if args.actuation is not None:
        overrides["actuation"] = {
            "off": [False], "on": [True], "both": [False, True],
        }[args.actuation]
    if args.duration is not None:
        overrides["duration"] = args.duration
    if args.policies:
        overrides["policies"] = list(args.policies)
    if overrides:
        base = grid.describe()
        base.pop("shards", None)
        base.update(overrides)
        grid = SweepGrid.from_dict(base)
    return grid


def _run_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.dashboard import SweepDashboard
    from repro.sweep import SweepError, run_sweep

    grid = _build_sweep_grid(args)
    print(f"sweep {grid.name!r}: {len(grid)} shards, "
          f"{args.workers} workers, out={args.out}"
          + (" (resume)" if args.resume else ""))
    try:
        result = run_sweep(
            grid, args.out,
            workers=args.workers,
            resume=args.resume,
            max_retries=args.retries,
            progress=lambda message: print(f"  {message}"),
        )
    except SweepError as exc:
        print(f"sweep failed to run: {exc}")
        return 2
    print()
    print(SweepDashboard(result.aggregate).render())
    print()
    print(result.stats.describe())
    print(f"aggregate: {result.aggregate_path}")
    return 1 if result.stats.failed else 0


def _run_name(path: str) -> str:
    """A readable candidate name from a run path."""
    import os

    path = os.path.normpath(path)
    base = os.path.basename(path)
    if base == "aggregate.json":
        base = os.path.basename(os.path.dirname(path)) or base
    if base.endswith(".json"):
        base = base[: -len(".json")] or base
    return base


def _load_run(path: str):
    """Load one run: ``(name, data)`` from a dir/aggregate/baseline file."""
    import json
    import os

    name = _run_name(path)
    if os.path.isdir(path):
        path = os.path.join(path, "aggregate.json")
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or not ("shards" in data or "metrics" in data):
        raise ValueError(
            f"{path} is neither a sweep aggregate nor a baseline-format file"
        )
    return name, data


def _run_candidate(name: str, data: dict):
    from repro.evaluate import Candidate

    if "shards" in data:
        return Candidate.from_aggregate(name, data)
    return Candidate(data.get("name", name), data["metrics"])


def _pin_baseline(path: str, name: str, data: dict, tolerance) -> str:
    """Write ``data`` (aggregate or baseline-format) as a baseline file."""
    from repro.evaluate import Baseline

    if "shards" in data:
        baseline = Baseline.from_aggregate(name, data, tolerance=tolerance)
    else:
        baseline = Baseline(
            data.get("name", name), data["metrics"],
            tolerance=tolerance, scenario=data.get("scenario"),
        )
    return baseline.write(path)


def _run_compare(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.evaluate import (
        Baseline,
        RunIndex,
        ToleranceSpec,
        build_scoreboard,
        compare_runs,
        render_comparison,
        render_scoreboard,
        suggest_from_runs,
        write_comparison_html,
    )
    from repro.experiments.report import write_json

    tolerance = None
    if args.tolerance is not None:
        try:
            with open(args.tolerance, "r", encoding="utf-8") as handle:
                tolerance = ToleranceSpec.from_dict(json.load(handle))
        except (OSError, ValueError) as exc:
            print(f"cannot load tolerance spec {args.tolerance!r}: {exc}")
            return 2

    # --scoreboard with no explicit --baseline runs baseline-free; every
    # other invocation gates against the committed default baseline.
    baseline_path = args.baseline
    if baseline_path is None and not args.scoreboard:
        baseline_path = "baselines/twitter.json"
    baseline = None
    if baseline_path is not None and (
        os.path.exists(baseline_path) or args.write_baseline is None
    ):
        try:
            baseline = Baseline.read(baseline_path)
        except (OSError, ValueError) as exc:
            print(f"cannot load baseline {baseline_path!r}: {exc}")
            return 2

    index = None
    if args.index is not None:
        index = RunIndex.scan(args.index)
    loaded = []
    for token in args.runs:
        try:
            path = token
            if not os.path.exists(path) and index is not None:
                path = index.resolve(token)
            loaded.append(_load_run(path))
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot load run {token!r}: {exc}")
            return 2
    candidates = [_run_candidate(name, data) for name, data in loaded]

    scoreboard = None
    if args.scoreboard:
        name, data = loaded[0]
        try:
            scoreboard = build_scoreboard(data)
        except ValueError as exc:
            print(f"cannot build scoreboard from {name!r}: {exc}")
            return 2
        print(f"policy tournament scoreboard ({name}, "
              f"{scoreboard['shards']} shards):")
        print()
        print(render_scoreboard(scoreboard))
        if baseline is not None:
            print()

    failed = False
    suggested = None
    if baseline is not None:
        comparison = compare_runs(baseline, candidates, tolerance=tolerance)
        if args.suggest:
            _, suggested = suggest_from_runs(baseline, candidates)
        print(render_comparison(comparison))
        report = comparison.to_dict(suggest=args.suggest)
        if suggested is not None:
            report["suggested_tolerance"] = suggested
        if scoreboard is not None:
            report["scoreboard"] = scoreboard
        if args.json is not None:
            print(f"comparison: {write_json(args.json, report)}")
        if args.html is not None:
            print(f"report: {write_comparison_html(comparison, args.html)}")
        if suggested is not None:
            print()
            print("suggested tolerance spec (admits every compared run):")
            print(json.dumps(suggested, indent=2, sort_keys=True))
        failed = not comparison.passed
        if failed:
            print()
            print("out-of-tolerance metrics: "
                  + ", ".join(comparison.failed_metrics()))
    elif scoreboard is not None and args.json is not None:
        print(f"scoreboard: {write_json(args.json, scoreboard)}")
    if args.write_baseline is not None:
        name, data = loaded[0]
        pin_tolerance = None
        if tolerance is not None:
            pin_tolerance = tolerance.describe()
        elif args.suggest:
            pinned = _run_candidate(name, data)
            seed = Baseline(name, pinned.metrics) if "shards" not in data else (
                Baseline.from_aggregate(name, data)
            )
            _, pin_tolerance = suggest_from_runs(seed, candidates)
        elif baseline is not None:
            pin_tolerance = baseline.tolerance.describe()
        path = _pin_baseline(args.write_baseline, name, data, pin_tolerance)
        print(f"baseline pinned: {path}")
    return 1 if failed else 0


def _run_runs(args: argparse.Namespace) -> int:
    from repro.evaluate import RunIndex

    index = RunIndex.scan(args.root)
    print(index.render())
    if args.json is not None:
        print(f"index: {index.write(args.json)}")
    return 0


def _run_chaos(args: argparse.Namespace) -> None:
    from repro.builder import PipelineBuilder
    from repro.engine.engine import EngineConfig, StreamProcessingEngine
    from repro.experiments.recording import SeriesRecorder
    from repro.simulation.faults import (
        ActuationFailure,
        MeasurementDropout,
        MigrationFailure,
        ServiceSpike,
        TaskCrash,
        WorkerLoss,
    )
    from repro.simulation.randomness import Gamma
    from repro.workloads.rates import ConstantRate

    stateful = args.stateful or args.migration_fail_at >= 0
    builder = (
        PipelineBuilder("chaos")
        .source(lambda now, rng: rng.random(), rate=ConstantRate(args.rate))
        .map("worker", lambda x: x, service=Gamma(0.004, 0.7), parallelism=(4, 1, 32))
        .sink()
        .constrain(bound=args.bound)
    )
    if stateful:
        builder.stateful("worker")
    if args.policy is not None:
        builder.scale(args.policy)
    if args.crash_at >= 0:
        builder.inject(
            TaskCrash(at=args.crash_at, vertex="worker", restart_delay=args.restart_delay)
        )
    if args.dropout_at >= 0:
        builder.inject(
            MeasurementDropout(at=args.dropout_at, duration=args.dropout_duration)
        )
    if args.spike_at >= 0:
        builder.inject(
            ServiceSpike(
                at=args.spike_at,
                vertex="worker",
                factor=args.spike_factor,
                duration=args.spike_duration,
            )
        )
    if args.worker_loss_at >= 0:
        builder.inject(WorkerLoss(at=args.worker_loss_at, restart_delay=args.restart_delay))
    if args.actuation or stateful:
        # Stateful runs need the reconciler: the migration protocol is
        # its supervised-actuation path.
        builder.actuate()
        if args.actuation and args.actuation_fail_at >= 0:
            builder.inject(
                ActuationFailure(
                    at=args.actuation_fail_at,
                    duration=args.actuation_fail_duration,
                    vertex="worker",
                )
            )
    if args.migration_fail_at >= 0:
        builder.inject(
            MigrationFailure(
                at=args.migration_fail_at,
                duration=args.migration_fail_duration,
                vertex="worker",
            )
        )
    builder.inject(seed=args.fault_seed)
    if args.obs_dir is not None:
        builder.observe(export_dir=args.obs_dir, pin_wall_time=args.pin_wall_time)
    pipeline = builder.build()

    engine = StreamProcessingEngine(EngineConfig(
        elastic=True, seed=args.seed,
        checkpoint_interval=args.checkpoint_interval,
    ))
    recorder = SeriesRecorder(engine, interval=5.0, source_vertex="source",
                              source_profile=ConstantRate(args.rate))
    job = engine.submit(pipeline)
    engine.run(args.duration)

    print(f"chaos run: {args.duration:.0f}s, rate={args.rate:.0f}/s, "
          f"bound={args.bound * 1000:.0f}ms, seed={args.seed}, "
          f"fault-seed={args.fault_seed}")
    print()
    print("fault timeline:")
    if job.fault_injector is None:
        print("  (no faults armed)")
    else:
        for at, kind, target, detail in job.fault_injector.trace():
            print(f"  t={at:7.2f}  {kind:<20s} {target:<16s} {detail}")
    print()
    print("worker parallelism (5 s samples):")
    series = recorder.parallelism_series("worker")
    print("  " + " ".join(f"{p}" for _, p in series))
    scaler = engine.scaler
    if scaler is not None:
        print()
        print(f"scaler: {len(scaler.events)} activations, "
              f"{scaler.skipped_stale} stale constraints skipped, "
              f"{scaler.suppressed_scale_downs} scale-downs suppressed by "
              "recovery cooldown")
    reconciler = engine.reconciler
    if reconciler is not None:
        print()
        print(f"actuation: {reconciler.requests} requests, "
              f"{reconciler.applied} applied, {reconciler.retries} retries, "
              f"{reconciler.give_ups} give-ups, "
              f"{reconciler.escalations} watchdog escalations")
        print(f"  in flight: {len(reconciler.in_flight)}, "
              f"convergence lag: {reconciler.convergence_lag()}, "
              f"abandoned: {reconciler.abandoned}")
    state_manager = engine.state_manager
    if state_manager is not None:
        s = state_manager.summary()
        m = s["migrations"]
        print()
        print(f"state: {m['started']} migrations "
              f"({m['completed']} completed, {m['failed']} failed, "
              f"{m['rolled_back']} rolled back, {m['deferred']} deferred)")
        print(f"  migrated: {s['state_migrated_bytes']} bytes, "
              f"lost to crashes: {s['state_lost_bytes']} bytes")
        print(f"  pauses: migration {s['migration_pause_s']:.3f}s, "
              f"checkpoint {s['checkpoint_pause_s']:.3f}s "
              f"({s['checkpoints']} checkpoints @ {s['checkpoint_interval']:.0f}s)")
        print(f"  crash recoveries: {s['crash_recoveries']}, "
              f"replay charged: {s['recovery_time_s']:.3f}s")
    for tracker in engine.trackers:
        print(f"constraint {tracker.constraint.name}: "
              f"{tracker.fulfillment_ratio * 100:.1f}% fulfilled "
              f"({tracker.violations} violations / {len(tracker.history)} intervals)")
    crashes = {
        name: rv.crashes
        for name, rv in engine.runtime.vertices.items()
        if rv.crashes
    }
    if crashes:
        print(f"crashes by vertex: {crashes}")
    if args.obs_dir is not None:
        paths = engine.export_run()
        print()
        print("exported: " + ", ".join(sorted(paths.values())))


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "info":
        print(f"repro {repro.__version__} — Elastic Stream Processing with "
              "Latency Guarantees (ICDCS 2015)")
        print("experiments: " + ", ".join(EXPERIMENTS))
        print("see DESIGN.md for the paper-to-module map and EXPERIMENTS.md "
              "for paper-vs-measured results")
        return 0
    if args.command == "experiment":
        names = EXPERIMENTS if args.name == "all" else (args.name,)
        for name in names:
            _run_experiment(name, args.quick, args.csv)
        return 0
    if args.command == "run":
        if args.shared_cluster:
            return _run_shared_cluster(args)
        if args.duration is None:
            args.duration = 120.0
        if args.rate is None:
            args.rate = 400.0
        if args.bound is None:
            args.bound = 0.030
        if args.seed is None:
            args.seed = 7
        if args.partitions is not None:
            return _run_partitioned(args)
        _run_obs(args)
        return 0
    if args.command == "bench":
        from repro.bench.core import main as bench_main

        bench_argv = ["--out", args.out]
        if args.quick:
            bench_argv.append("--quick")
        if args.no_macro:
            bench_argv.append("--no-macro")
        if args.check is not None:
            bench_argv.extend(["--check", args.check])
        if args.profile is not None:
            bench_argv.extend(["--profile", args.profile])
        return bench_main(bench_argv)
    if args.command == "chaos":
        _run_chaos(args)
        return 0
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "compare":
        return _run_compare(args)
    if args.command == "runs":
        return _run_runs(args)
    if args.command == "trace":
        if args.check:
            return _trace_check(args.obs_dir)
        if args.trace_command == "show":
            return _trace_show(args.dir, args.last)
        if args.trace_command == "generate":
            trace = generate_diurnal_trace(
                days=args.days,
                base_rate=args.base_rate,
                daily_amplitude=args.amplitude,
                seed=args.seed,
            )
            path = save_trace(args.out, trace)
            print(f"wrote {len(trace)} samples ({args.days} days) to {path}")
            return 0
        if args.trace_command == "info":
            trace = load_trace(args.path)
            rates = [rate for _, rate in trace]
            duration = trace[-1][0]
            print(f"{args.path}: {len(trace)} samples over {duration / 86400:.1f} days")
            print(f"rate min/mean/max: {min(rates):.0f} / "
                  f"{sum(rates) / len(rates):.0f} / {max(rates):.0f} items/s")
            return 0
        parser.parse_args(["trace", "--help"])
        return 2
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
