"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiment {fig3,fig5,fig6,fig8,all}``
    Run a paper-reproduction experiment and print its report
    (``--quick`` for the reduced variant, ``--csv DIR`` to export series).
``chaos``
    Run a deterministic fault-injection scenario against an elastic
    pipeline (task crash, worker loss, measurement dropout, service
    spike) and report how the scaler degraded gracefully.
``trace generate`` / ``trace info``
    Synthesize or inspect rate traces (the stand-in for the paper's
    two-week Twitter replay).
``info``
    Show version and the experiment inventory.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import repro
from repro.workloads.traces import generate_diurnal_trace, load_trace, save_trace

EXPERIMENTS = ("fig3", "fig5", "fig6", "fig8", "sensitivity", "validation", "policies")


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Elastic Stream Processing with Latency Guarantees' (ICDCS 2015)",
    )
    sub = parser.add_subparsers(dest="command")

    exp = sub.add_parser("experiment", help="run a paper experiment")
    exp.add_argument("name", choices=EXPERIMENTS + ("all",))
    exp.add_argument("--quick", action="store_true", help="reduced-scale variant")
    exp.add_argument("--csv", metavar="DIR", help="export series CSVs into DIR")

    chaos = sub.add_parser("chaos", help="run a deterministic fault-injection scenario")
    chaos.add_argument("--duration", type=float, default=120.0, help="virtual seconds to run")
    chaos.add_argument("--rate", type=float, default=400.0, help="source rate (items/s)")
    chaos.add_argument("--bound", type=float, default=0.030, help="latency bound (s)")
    chaos.add_argument("--seed", type=int, default=7, help="engine seed")
    chaos.add_argument("--fault-seed", type=int, default=0, help="victim-selection seed")
    chaos.add_argument("--crash-at", type=float, default=30.0,
                       help="crash one worker task at this time (negative = off)")
    chaos.add_argument("--restart-delay", type=float, default=2.0,
                       help="replacement-task delay after a crash")
    chaos.add_argument("--dropout-at", type=float, default=30.0,
                       help="start a QoS measurement dropout (negative = off)")
    chaos.add_argument("--dropout-duration", type=float, default=20.0)
    chaos.add_argument("--spike-at", type=float, default=-1.0,
                       help="service-time spike start (negative = off)")
    chaos.add_argument("--spike-factor", type=float, default=3.0)
    chaos.add_argument("--spike-duration", type=float, default=10.0)
    chaos.add_argument("--worker-loss-at", type=float, default=-1.0,
                       help="lose one leased worker at this time (negative = off)")

    trace = sub.add_parser("trace", help="rate-trace tooling")
    trace_sub = trace.add_subparsers(dest="trace_command")
    gen = trace_sub.add_parser("generate", help="synthesize a diurnal rate trace")
    gen.add_argument("--days", type=int, default=14)
    gen.add_argument("--base-rate", type=float, default=3000.0)
    gen.add_argument("--amplitude", type=float, default=0.6)
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--out", required=True, metavar="PATH")
    info = trace_sub.add_parser("info", help="summarize a trace CSV")
    info.add_argument("path")

    sub.add_parser("info", help="version and experiment inventory")
    return parser


def _run_experiment(name: str, quick: bool, csv_dir: Optional[str]) -> None:
    import importlib

    modules = {
        "fig3": "repro.experiments.fig3_motivation",
        "fig5": "repro.experiments.fig5_surface",
        "fig6": "repro.experiments.fig6_primetester",
        "fig8": "repro.experiments.fig8_twitter",
        "sensitivity": "repro.experiments.sensitivity",
        "validation": "repro.experiments.validation",
        "policies": "repro.experiments.compare_policies",
    }
    params_classes = {
        "fig3": "Fig3Params",
        "fig6": "Fig6Params",
        "fig8": "Fig8Params",
        "sensitivity": "SensitivityParams",
        "policies": "CompareParams",
    }
    module = importlib.import_module(modules[name])
    if name in params_classes:
        params = module.__dict__[params_classes[name]]()
        if quick:
            params = params.quick()
        result = module.run(params)
    else:
        result = module.run()
    print(result.report())
    if csv_dir:
        path = result.series_csv(f"{csv_dir}/{name}_series.csv")
        print(f"series written to {path}")


def _run_chaos(args: argparse.Namespace) -> None:
    from repro.builder import PipelineBuilder
    from repro.engine.engine import EngineConfig, StreamProcessingEngine
    from repro.experiments.recording import SeriesRecorder
    from repro.simulation.faults import (
        MeasurementDropout,
        ServiceSpike,
        TaskCrash,
        WorkerLoss,
    )
    from repro.simulation.randomness import Gamma
    from repro.workloads.rates import ConstantRate

    builder = (
        PipelineBuilder("chaos")
        .source(lambda now, rng: rng.random(), rate=ConstantRate(args.rate))
        .map("worker", lambda x: x, service=Gamma(0.004, 0.7), parallelism=(4, 1, 32))
        .sink()
        .constrain(bound=args.bound)
    )
    if args.crash_at >= 0:
        builder.inject(
            TaskCrash(at=args.crash_at, vertex="worker", restart_delay=args.restart_delay)
        )
    if args.dropout_at >= 0:
        builder.inject(
            MeasurementDropout(at=args.dropout_at, duration=args.dropout_duration)
        )
    if args.spike_at >= 0:
        builder.inject(
            ServiceSpike(
                at=args.spike_at,
                vertex="worker",
                factor=args.spike_factor,
                duration=args.spike_duration,
            )
        )
    if args.worker_loss_at >= 0:
        builder.inject(WorkerLoss(at=args.worker_loss_at, restart_delay=args.restart_delay))
    builder.inject(seed=args.fault_seed)
    pipeline = builder.build()

    engine = StreamProcessingEngine(EngineConfig(elastic=True, seed=args.seed))
    recorder = SeriesRecorder(engine, interval=5.0, source_vertex="source",
                              source_profile=ConstantRate(args.rate))
    job = pipeline.submit_to(engine)
    engine.run(args.duration)

    print(f"chaos run: {args.duration:.0f}s, rate={args.rate:.0f}/s, "
          f"bound={args.bound * 1000:.0f}ms, seed={args.seed}, "
          f"fault-seed={args.fault_seed}")
    print()
    print("fault timeline:")
    if job.fault_injector is None:
        print("  (no faults armed)")
    else:
        for at, kind, target, detail in job.fault_injector.trace():
            print(f"  t={at:7.2f}  {kind:<20s} {target:<16s} {detail}")
    print()
    print("worker parallelism (5 s samples):")
    series = recorder.parallelism_series("worker")
    print("  " + " ".join(f"{p}" for _, p in series))
    scaler = engine.scaler
    if scaler is not None:
        print()
        print(f"scaler: {len(scaler.events)} activations, "
              f"{scaler.skipped_stale} stale constraints skipped, "
              f"{scaler.suppressed_scale_downs} scale-downs suppressed by "
              "recovery cooldown")
    for tracker in engine.trackers:
        print(f"constraint {tracker.constraint.name}: "
              f"{tracker.fulfillment_ratio * 100:.1f}% fulfilled "
              f"({tracker.violations} violations / {len(tracker.history)} intervals)")
    crashes = {
        name: rv.crashes
        for name, rv in engine.runtime.vertices.items()
        if rv.crashes
    }
    if crashes:
        print(f"crashes by vertex: {crashes}")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "info":
        print(f"repro {repro.__version__} — Elastic Stream Processing with "
              "Latency Guarantees (ICDCS 2015)")
        print("experiments: " + ", ".join(EXPERIMENTS))
        print("see DESIGN.md for the paper-to-module map and EXPERIMENTS.md "
              "for paper-vs-measured results")
        return 0
    if args.command == "experiment":
        names = EXPERIMENTS if args.name == "all" else (args.name,)
        for name in names:
            _run_experiment(name, args.quick, args.csv)
        return 0
    if args.command == "chaos":
        _run_chaos(args)
        return 0
    if args.command == "trace":
        if args.trace_command == "generate":
            trace = generate_diurnal_trace(
                days=args.days,
                base_rate=args.base_rate,
                daily_amplitude=args.amplitude,
                seed=args.seed,
            )
            path = save_trace(args.out, trace)
            print(f"wrote {len(trace)} samples ({args.days} days) to {path}")
            return 0
        if args.trace_command == "info":
            trace = load_trace(args.path)
            rates = [rate for _, rate in trace]
            duration = trace[-1][0]
            print(f"{args.path}: {len(trace)} samples over {duration / 86400:.1f} days")
            print(f"rate min/mean/max: {min(rates):.0f} / "
                  f"{sum(rates) / len(rates):.0f} / {max(rates):.0f} items/s")
            return 0
        parser.parse_args(["trace", "--help"])
        return 2
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
