"""Closed-form queueing results (single- and multi-server stations).

Conventions: ``arrival_rate`` = λ (items/s), ``service_mean`` = E[S]
(seconds), utilization ρ = λ·E[S] (single server) or λ·E[S]/c (``c``
servers). All waiting times are *queue* waits (excluding service), in
seconds; saturated systems return ``inf``.
"""

from __future__ import annotations

import math

INFINITY = float("inf")


def _check(arrival_rate: float, service_mean: float) -> float:
    if arrival_rate < 0 or service_mean < 0:
        raise ValueError("arrival_rate and service_mean must be >= 0")
    return arrival_rate * service_mean


def mm1_waiting_time(arrival_rate: float, service_mean: float) -> float:
    """M/M/1 mean queue wait: ``W_q = ρ / (μ − λ)``."""
    rho = _check(arrival_rate, service_mean)
    if rho >= 1.0:
        return INFINITY
    if rho == 0.0:
        return 0.0
    mu = 1.0 / service_mean
    return rho / (mu - arrival_rate)


def mm1_queue_length(arrival_rate: float, service_mean: float) -> float:
    """M/M/1 mean number in queue: ``L_q = ρ² / (1 − ρ)`` (Little's law)."""
    rho = _check(arrival_rate, service_mean)
    if rho >= 1.0:
        return INFINITY
    return rho * rho / (1.0 - rho)


def md1_waiting_time(arrival_rate: float, service_mean: float) -> float:
    """M/D/1 mean queue wait — exactly half the M/M/1 wait."""
    return mm1_waiting_time(arrival_rate, service_mean) / 2.0


def mg1_waiting_time(
    arrival_rate: float, service_mean: float, service_cv: float
) -> float:
    """M/G/1 mean queue wait (Pollaczek–Khinchine).

    ``W_q = (λ · E[S²]) / (2 (1 − ρ))`` with
    ``E[S²] = (1 + c_S²) · E[S]²``.
    """
    rho = _check(arrival_rate, service_mean)
    if service_cv < 0:
        raise ValueError("service_cv must be >= 0")
    if rho >= 1.0:
        return INFINITY
    if rho == 0.0:
        return 0.0
    second_moment = (1.0 + service_cv ** 2) * service_mean ** 2
    return arrival_rate * second_moment / (2.0 * (1.0 - rho))


def allen_cunneen_waiting_time(
    arrival_rate: float,
    service_mean: float,
    servers: int,
    arrival_cv: float = 1.0,
    service_cv: float = 1.0,
) -> float:
    """Allen–Cunneen GI/G/c approximation.

    ``W_q ≈ W_q(M/M/c) · (c_A² + c_S²) / 2`` — the multi-server
    generalization of Kingman's formula; reduces to it for c = 1 up to
    the M/M/1-vs-heavy-traffic base term.
    """
    if servers < 1:
        raise ValueError("servers must be >= 1")
    base = mmc_waiting_time(arrival_rate, service_mean, servers)
    if base == INFINITY:
        return INFINITY
    return base * (arrival_cv ** 2 + service_cv ** 2) / 2.0


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang C: probability an arrival waits in an M/M/c queue.

    ``offered_load`` is ``a = λ·E[S]`` in Erlangs; requires ``a < c``.
    """
    if servers < 1:
        raise ValueError("servers must be >= 1")
    if offered_load < 0:
        raise ValueError("offered_load must be >= 0")
    if offered_load >= servers:
        return 1.0
    if offered_load == 0.0:
        return 0.0
    # sum_{k=0}^{c-1} a^k / k!  computed iteratively for stability
    term = 1.0
    total = 1.0
    for k in range(1, servers):
        term *= offered_load / k
        total += term
    term *= offered_load / servers
    top = term * servers / (servers - offered_load)
    return top / (total + top)


def mmc_waiting_time(arrival_rate: float, service_mean: float, servers: int) -> float:
    """M/M/c mean queue wait via Erlang C."""
    if servers < 1:
        raise ValueError("servers must be >= 1")
    offered = _check(arrival_rate, service_mean)
    if offered >= servers:
        return INFINITY
    if offered == 0.0:
        return 0.0
    p_wait = erlang_c(servers, offered)
    return p_wait * service_mean / (servers - offered)


def required_servers(
    arrival_rate: float,
    service_mean: float,
    wait_budget: float,
    arrival_cv: float = 1.0,
    service_cv: float = 1.0,
    max_servers: int = 100_000,
) -> int:
    """Smallest ``c`` whose Allen–Cunneen wait fits in ``wait_budget``.

    The analytic counterpart of the paper's ``P_W``; useful for sanity
    checks and initial provisioning before the reactive loop takes over.
    """
    if wait_budget <= 0:
        raise ValueError("wait_budget must be positive")
    offered = _check(arrival_rate, service_mean)
    c = max(1, math.floor(offered) + 1)
    while c <= max_servers:
        if allen_cunneen_waiting_time(arrival_rate, service_mean, c, arrival_cv, service_cv) <= wait_budget:
            return c
        c += 1
    raise ValueError(f"no server count <= {max_servers} meets the budget")
