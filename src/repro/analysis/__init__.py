"""Analytic queueing theory used to reason about (and validate) the engine.

The paper's latency model rests on Kingman's GI/G/1 heavy-traffic
approximation; this subpackage collects the surrounding closed forms —
M/M/1, M/D/1, M/G/1 (Pollaczek–Khinchine), the Allen–Cunneen
approximation, Erlang C for M/M/c — plus helpers to predict end-to-end
latency of a pipeline analytically. The test suite uses these formulas
as ground truth against the discrete-event engine, which is what makes
the substrate trustworthy for reproducing the paper's queueing effects.
"""

from repro.analysis.queueing import (
    mm1_waiting_time,
    mm1_queue_length,
    md1_waiting_time,
    mg1_waiting_time,
    allen_cunneen_waiting_time,
    erlang_c,
    mmc_waiting_time,
    required_servers,
)
from repro.analysis.pipeline import PipelineStage, predict_pipeline_latency, saturation_rate

__all__ = [
    "mm1_waiting_time",
    "mm1_queue_length",
    "md1_waiting_time",
    "mg1_waiting_time",
    "allen_cunneen_waiting_time",
    "erlang_c",
    "mmc_waiting_time",
    "required_servers",
    "PipelineStage",
    "predict_pipeline_latency",
    "saturation_rate",
]
