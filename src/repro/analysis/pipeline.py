"""Analytic end-to-end latency prediction for a linear pipeline.

Combines per-stage queue waits (Allen–Cunneen), service times and
shipping/batching delays into an end-to-end mean-latency estimate — the
closed-form counterpart of what the simulated engine measures. Used for
capacity planning and as an independent cross-check of experiment
results.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.queueing import INFINITY, allen_cunneen_waiting_time


class PipelineStage:
    """One data-parallel stage of a linear pipeline.

    Parameters
    ----------
    name:
        Stage label (for reports).
    service_mean / service_cv:
        Per-item service time distribution parameters.
    parallelism:
        Number of data-parallel tasks; the total input rate is split
        evenly across them (effective round-robin load balancing).
    arrival_cv:
        Coefficient of variation of the per-task arrival process.
    selectivity:
        Output items per input item (e.g. 0.4 for a filter passing 40 %);
        scales the downstream stages' arrival rate.
    """

    def __init__(
        self,
        name: str,
        service_mean: float,
        service_cv: float = 1.0,
        parallelism: int = 1,
        arrival_cv: float = 1.0,
        selectivity: float = 1.0,
    ) -> None:
        if service_mean < 0 or service_cv < 0 or arrival_cv < 0:
            raise ValueError(f"stage {name!r}: parameters must be >= 0")
        if parallelism < 1:
            raise ValueError(f"stage {name!r}: parallelism must be >= 1")
        if selectivity < 0:
            raise ValueError(f"stage {name!r}: selectivity must be >= 0")
        self.name = name
        self.service_mean = service_mean
        self.service_cv = service_cv
        self.parallelism = parallelism
        self.arrival_cv = arrival_cv
        self.selectivity = selectivity

    def waiting_time(self, total_rate: float) -> float:
        """Mean per-item queue wait at this stage for a total input rate.

        Models the stage as ``parallelism`` independent single-server
        stations each receiving ``total_rate / parallelism`` (the same
        view the paper's latency model takes), rather than one shared
        M/M/c queue.
        """
        per_task = total_rate / self.parallelism
        return allen_cunneen_waiting_time(
            per_task, self.service_mean, 1, self.arrival_cv, self.service_cv
        )

    def utilization(self, total_rate: float) -> float:
        """Per-task utilization at a total input rate."""
        return total_rate * self.service_mean / self.parallelism

    def __repr__(self) -> str:
        return (
            f"PipelineStage({self.name!r}, S={self.service_mean}, "
            f"p={self.parallelism})"
        )


def predict_pipeline_latency(
    stages: Sequence[PipelineStage],
    input_rate: float,
    hop_latency: float = 0.0005,
    batching_delay: float = 0.0,
) -> Optional[float]:
    """Analytic mean end-to-end latency of a linear pipeline.

    Sums, per stage: queue wait + service time; plus per hop: network
    latency and a mean output-batching delay. Returns ``None`` when any
    stage is saturated (no steady state exists).
    """
    if input_rate < 0:
        raise ValueError("input_rate must be >= 0")
    total = 0.0
    rate = input_rate
    hops = len(stages) + 0  # one inbound hop per stage
    for stage in stages:
        wait = stage.waiting_time(rate)
        if wait == INFINITY:
            return None
        total += wait + stage.service_mean
        rate *= stage.selectivity
    total += hops * (hop_latency + batching_delay)
    return total


def saturation_rate(stages: Sequence[PipelineStage]) -> float:
    """Largest input rate at which every stage still has steady state."""
    limit = INFINITY
    rate_factor = 1.0
    for stage in stages:
        capacity = stage.parallelism / stage.service_mean if stage.service_mean > 0 else INFINITY
        if rate_factor > 0:
            limit = min(limit, capacity / rate_factor)
        rate_factor *= stage.selectivity
    return limit
