"""The user-facing job graph (paper Sec. II-A1).

A :class:`JobGraph` is a DAG ``JG = (JV, JE)``. Each :class:`JobVertex`
carries a UDF factory and a current / minimum / maximum degree of
parallelism; each :class:`JobEdge` carries a wiring pattern (round-robin,
key-partitioned or broadcast) that determines how the tasks of adjacent
vertices are connected in the runtime graph.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set


class GraphError(ValueError):
    """Raised on malformed job graphs (cycles, duplicate names, ...)."""


class JobVertex:
    """A vertex of the job graph: a UDF plus parallelism bounds.

    Parameters
    ----------
    name:
        Unique name within the job graph.
    udf_factory:
        Zero-argument callable returning a fresh UDF instance (see
        :mod:`repro.engine.udf`) for each runtime task.
    parallelism:
        Initial degree of parallelism ``p_jv``.
    min_parallelism / max_parallelism:
        Bounds ``p_jv^min`` / ``p_jv^max``. A vertex is *elastic* iff
        ``min_parallelism < max_parallelism``.
    """

    def __init__(
        self,
        name: str,
        udf_factory: Callable[[], object],
        parallelism: int = 1,
        min_parallelism: Optional[int] = None,
        max_parallelism: Optional[int] = None,
    ) -> None:
        if parallelism < 1:
            raise GraphError(f"vertex {name!r}: parallelism must be >= 1")
        self.name = name
        self.udf_factory = udf_factory
        self.parallelism = parallelism
        self.min_parallelism = min_parallelism if min_parallelism is not None else parallelism
        self.max_parallelism = max_parallelism if max_parallelism is not None else parallelism
        if not (1 <= self.min_parallelism <= self.max_parallelism):
            raise GraphError(
                f"vertex {name!r}: need 1 <= min <= max parallelism "
                f"(got {self.min_parallelism}, {self.max_parallelism})"
            )
        if not (self.min_parallelism <= parallelism <= self.max_parallelism):
            raise GraphError(
                f"vertex {name!r}: initial parallelism {parallelism} outside "
                f"[{self.min_parallelism}, {self.max_parallelism}]"
            )
        self.inputs: List["JobEdge"] = []
        self.outputs: List["JobEdge"] = []

    @property
    def elastic(self) -> bool:
        """Whether this vertex may be rescaled at runtime."""
        return self.min_parallelism < self.max_parallelism

    def clamp(self, parallelism: int) -> int:
        """Clamp ``parallelism`` into ``[min, max]``."""
        return max(self.min_parallelism, min(self.max_parallelism, parallelism))

    def __repr__(self) -> str:
        return (
            f"JobVertex({self.name!r}, p={self.parallelism}, "
            f"range=[{self.min_parallelism}, {self.max_parallelism}])"
        )


class JobEdge:
    """A directed edge of the job graph with a wiring pattern.

    ``pattern`` is one of ``"round_robin"``, ``"key"`` or ``"broadcast"``;
    ``key_fn`` is required for key partitioning and extracts the partition
    key from a payload.
    """

    PATTERNS = ("round_robin", "key", "broadcast")

    def __init__(
        self,
        source: JobVertex,
        target: JobVertex,
        pattern: str = "round_robin",
        key_fn: Optional[Callable[[object], object]] = None,
        name: Optional[str] = None,
    ) -> None:
        if pattern not in self.PATTERNS:
            raise GraphError(f"unknown wiring pattern {pattern!r}")
        if pattern == "key" and key_fn is None:
            raise GraphError("key partitioning requires a key_fn")
        self.source = source
        self.target = target
        self.pattern = pattern
        self.key_fn = key_fn
        self.name = name or f"{source.name}->{target.name}"

    def __repr__(self) -> str:
        return f"JobEdge({self.name!r}, pattern={self.pattern!r})"


class JobGraph:
    """The user-supplied DAG of job vertices and job edges.

    Example
    -------
    >>> from repro.engine.udf import MapUDF
    >>> jg = JobGraph("example")
    >>> src = jg.add_vertex("source", lambda: MapUDF(lambda x: x))
    >>> snk = jg.add_vertex("sink", lambda: MapUDF(lambda x: x))
    >>> _ = jg.connect(src, snk)
    >>> [v.name for v in jg.topological_order()]
    ['source', 'sink']
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.vertices: Dict[str, JobVertex] = {}
        self.edges: List[JobEdge] = []

    def add_vertex(
        self,
        name: str,
        udf_factory: Callable[[], object],
        parallelism: int = 1,
        min_parallelism: Optional[int] = None,
        max_parallelism: Optional[int] = None,
    ) -> JobVertex:
        """Create a new :class:`JobVertex` and add it to the graph."""
        if name in self.vertices:
            raise GraphError(f"duplicate vertex name {name!r}")
        vertex = JobVertex(name, udf_factory, parallelism, min_parallelism, max_parallelism)
        self.vertices[name] = vertex
        return vertex

    def connect(
        self,
        source: JobVertex,
        target: JobVertex,
        pattern: str = "round_robin",
        key_fn: Optional[Callable[[object], object]] = None,
    ) -> JobEdge:
        """Add a :class:`JobEdge` from ``source`` to ``target``."""
        for vertex in (source, target):
            if self.vertices.get(vertex.name) is not vertex:
                raise GraphError(f"vertex {vertex.name!r} does not belong to this graph")
        if source is target:
            raise GraphError(f"self-loop on vertex {source.name!r}")
        edge = JobEdge(source, target, pattern, key_fn)
        self.edges.append(edge)
        source.outputs.append(edge)
        target.inputs.append(edge)
        self._check_acyclic()
        return edge

    def vertex(self, name: str) -> JobVertex:
        """Look up a vertex by name (raises ``KeyError`` if absent)."""
        return self.vertices[name]

    def edge_between(self, source: str, target: str) -> JobEdge:
        """Look up the edge between two named vertices."""
        for edge in self.edges:
            if edge.source.name == source and edge.target.name == target:
                return edge
        raise KeyError(f"no edge {source!r} -> {target!r}")

    def sources(self) -> List[JobVertex]:
        """Vertices with no inbound edges."""
        return [v for v in self.vertices.values() if not v.inputs]

    def sinks(self) -> List[JobVertex]:
        """Vertices with no outbound edges."""
        return [v for v in self.vertices.values() if not v.outputs]

    def topological_order(self) -> List[JobVertex]:
        """Vertices in a deterministic topological order."""
        import heapq

        order: List[JobVertex] = []
        in_degree = {name: len(v.inputs) for name, v in self.vertices.items()}
        # A name-keyed min-heap yields the same lexicographic-among-ready
        # order the previous sort-per-iteration produced, in O(E log V).
        ready = [name for name, deg in in_degree.items() if deg == 0]
        heapq.heapify(ready)
        while ready:
            name = heapq.heappop(ready)
            vertex = self.vertices[name]
            order.append(vertex)
            for edge in vertex.outputs:
                in_degree[edge.target.name] -= 1
                if in_degree[edge.target.name] == 0:
                    heapq.heappush(ready, edge.target.name)
        if len(order) != len(self.vertices):
            raise GraphError("job graph contains a cycle")
        return order

    def _check_acyclic(self) -> None:
        self.topological_order()

    def downstream_of(self, vertex: JobVertex) -> Set[str]:
        """Names of all vertices reachable from ``vertex``."""
        seen: Set[str] = set()
        frontier: List[JobVertex] = [vertex]
        while frontier:
            current = frontier.pop()
            for edge in current.outputs:
                if edge.target.name not in seen:
                    seen.add(edge.target.name)
                    frontier.append(edge.target)
        return seen

    def validate(self) -> None:
        """Check structural sanity (acyclicity, at least one source/sink)."""
        self._check_acyclic()
        if not self.sources():
            raise GraphError("job graph has no source vertex")
        if not self.sinks():
            raise GraphError("job graph has no sink vertex")

    def __repr__(self) -> str:
        return f"JobGraph({self.name!r}, |JV|={len(self.vertices)}, |JE|={len(self.edges)})"


def iter_edges_between(graph: JobGraph, names: Iterable[str]) -> List[JobEdge]:
    """Edges of ``graph`` whose endpoints are both in ``names``."""
    wanted = set(names)
    return [
        e for e in graph.edges if e.source.name in wanted and e.target.name in wanted
    ]
