"""Stream partitioners (wiring patterns / "stream groupings").

A partitioner maps each emitted payload to one or more target channel
indices. Partitioners are *live* objects owned by a producer task's output
gate: when the downstream vertex is rescaled, the gate rebuilds or resizes
the partitioner, which is the "ad-hoc remapping of stream partitions to
consumer tasks" the paper's elasticity assumption (Sec. IV-A c) requires.
"""

from __future__ import annotations

import zlib
from typing import Callable, List, Optional, Sequence


class Partitioner:
    """Base class: selects target channel indices for a payload."""

    def __init__(self, fanout: int) -> None:
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1 (got {fanout})")
        self.fanout = fanout

    def select(self, payload: object) -> Sequence[int]:
        """Return the indices (into the channel list) to send ``payload`` to."""
        raise NotImplementedError

    def resize(self, fanout: int) -> None:
        """Adapt to a new number of target channels (elastic rescale)."""
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1 (got {fanout})")
        self.fanout = fanout


class RoundRobinPartitioner(Partitioner):
    """Cycles through targets; the paper's default load-balancing pattern.

    Round-robin spreads load evenly regardless of payload content, which
    is what makes the paper's "effective load balancing" assumption hold
    (Sec. IV-A b) and rescaling trivially correct (Sec. IV-A c).
    """

    def __init__(self, fanout: int, start: int = 0) -> None:
        super().__init__(fanout)
        self._next = start % fanout

    def select(self, payload: object) -> Sequence[int]:
        index = self._next
        self._next = (self._next + 1) % self.fanout
        return (index,)

    def resize(self, fanout: int) -> None:
        super().resize(fanout)
        self._next %= fanout


class KeyPartitioner(Partitioner):
    """Hash-partitions payloads by a user-supplied key function.

    Provided for completeness (grouped aggregations); the paper treats
    state migration for key partitioning as out of scope, and so do we —
    resizing simply remaps keys, which is correct only for stateless or
    externally-stated UDFs.
    """

    def __init__(self, fanout: int, key_fn: Callable[[object], object]) -> None:
        super().__init__(fanout)
        if key_fn is None:
            raise ValueError("KeyPartitioner requires a key function")
        self.key_fn = key_fn

    def select(self, payload: object) -> Sequence[int]:
        key = self.key_fn(payload)
        digest = zlib.crc32(repr(key).encode())
        return (digest % self.fanout,)


class BroadcastPartitioner(Partitioner):
    """Replicates every payload to all targets (e.g. HTM → Filter)."""

    def __init__(self, fanout: int) -> None:
        super().__init__(fanout)
        self._all: List[int] = list(range(fanout))

    def select(self, payload: object) -> Sequence[int]:
        return self._all

    def resize(self, fanout: int) -> None:
        super().resize(fanout)
        self._all = list(range(fanout))


def make_partitioner(
    pattern: str,
    fanout: int,
    key_fn: Optional[Callable[[object], object]] = None,
    start: int = 0,
) -> Partitioner:
    """Instantiate the partitioner for a job edge's wiring ``pattern``.

    ``start`` staggers the round-robin origin across producer tasks so the
    first items of many producers do not all land on consumer 0.
    """
    if pattern == "round_robin":
        return RoundRobinPartitioner(fanout, start=start)
    if pattern == "key":
        if key_fn is None:
            raise ValueError("pattern 'key' requires key_fn")
        return KeyPartitioner(fanout, key_fn)
    if pattern == "broadcast":
        return BroadcastPartitioner(fanout)
    raise ValueError(f"unknown wiring pattern {pattern!r}")
