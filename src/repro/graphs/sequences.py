"""Job sequences (paper Sec. II-A4).

A *job sequence* ``js`` is an n-tuple of connected job vertices and job
edges; both the first and last element may be a vertex or an edge. Latency
constraints are declared over job sequences: the constrained quantity is
the sum of task latencies over the sequence's vertices and channel
latencies over its edges.

The paper's two example constraints illustrate both boundary kinds:
``(e4, HT, e5, HTM, e6, F)`` starts and ends with an edge, while a
vertex-bounded sequence such as ``(F, e2, S)`` is equally valid.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

from repro.graphs.job_graph import GraphError, JobEdge, JobGraph, JobVertex

SequenceElement = Union[JobVertex, JobEdge]


class JobSequence:
    """An alternating, connected tuple of job vertices and job edges.

    Parameters
    ----------
    elements:
        The alternating vertices/edges, in flow order. Adjacent elements
        must be incident: an edge must be an output of the preceding
        vertex and an input of the following vertex.

    Example
    -------
    Use :meth:`from_names` to build a sequence from vertex names; edges in
    between are resolved automatically::

        js = JobSequence.from_names(graph, ["Filter", "Sentiment"],
                                    leading_edge=True, trailing_edge=True)
    """

    def __init__(self, elements: Sequence[SequenceElement]) -> None:
        if not elements:
            raise GraphError("job sequence must not be empty")
        self.elements: Tuple[SequenceElement, ...] = tuple(elements)
        self._validate()
        self.vertices: Tuple[JobVertex, ...] = tuple(
            e for e in self.elements if isinstance(e, JobVertex)
        )
        self.edges: Tuple[JobEdge, ...] = tuple(
            e for e in self.elements if isinstance(e, JobEdge)
        )
        if not self.vertices and not self.edges:
            raise GraphError("job sequence must contain at least one element")

    def _validate(self) -> None:
        previous: SequenceElement = self.elements[0]
        for element in self.elements[1:]:
            if isinstance(previous, JobVertex):
                if not isinstance(element, JobEdge):
                    raise GraphError(
                        "job sequence must alternate vertices and edges: "
                        f"two vertices in a row at {element!r}"
                    )
                if element.source is not previous:
                    raise GraphError(
                        f"edge {element.name!r} does not leave vertex {previous.name!r}"
                    )
            else:
                if not isinstance(element, JobVertex):
                    raise GraphError(
                        "job sequence must alternate vertices and edges: "
                        f"two edges in a row at {element!r}"
                    )
                if previous.target is not element:
                    raise GraphError(
                        f"edge {previous.name!r} does not enter vertex {element.name!r}"
                    )
            previous = element

    @classmethod
    def from_names(
        cls,
        graph: JobGraph,
        vertex_names: Sequence[str],
        leading_edge: bool = False,
        trailing_edge: bool = False,
    ) -> "JobSequence":
        """Build a sequence through the named vertices of ``graph``.

        Consecutive named vertices must be connected by exactly one edge.
        ``leading_edge`` / ``trailing_edge`` additionally include the
        (unique) edge entering the first vertex / leaving the last vertex,
        as in the paper's constraints that begin or end on an edge.
        """
        if not vertex_names:
            raise GraphError("need at least one vertex name")
        vertices = [graph.vertex(n) for n in vertex_names]
        elements: List[SequenceElement] = []
        if leading_edge:
            inbound = vertices[0].inputs
            if len(inbound) != 1:
                raise GraphError(
                    f"vertex {vertices[0].name!r} has {len(inbound)} inbound edges; "
                    "leading_edge requires exactly one"
                )
            elements.append(inbound[0])
        for i, vertex in enumerate(vertices):
            elements.append(vertex)
            if i + 1 < len(vertices):
                elements.append(graph.edge_between(vertex.name, vertices[i + 1].name))
        if trailing_edge:
            outbound = vertices[-1].outputs
            if len(outbound) != 1:
                raise GraphError(
                    f"vertex {vertices[-1].name!r} has {len(outbound)} outbound edges; "
                    "trailing_edge requires exactly one"
                )
            elements.append(outbound[0])
        return cls(elements)

    @property
    def name(self) -> str:
        """A human-readable name, e.g. ``(e:TS->F, F, e:F->S, S, e:S->SI)``."""
        parts = []
        for element in self.elements:
            if isinstance(element, JobVertex):
                parts.append(element.name)
            else:
                parts.append(f"e:{element.name}")
        return "(" + ", ".join(parts) + ")"

    def vertex_names(self) -> List[str]:
        """Names of the sequence's vertices, in flow order."""
        return [v.name for v in self.vertices]

    def edge_names(self) -> List[str]:
        """Names of the sequence's edges, in flow order."""
        return [e.name for e in self.edges]

    def elastic_vertices(self) -> List[JobVertex]:
        """The subset of vertices that may be rescaled."""
        return [v for v in self.vertices if v.elastic]

    def __contains__(self, element: SequenceElement) -> bool:
        return element in self.elements

    def __len__(self) -> int:
        return len(self.elements)

    def __repr__(self) -> str:
        return f"JobSequence{self.name}"
