"""Job-graph and runtime-graph model (paper Sec. II-A).

A *job graph* is the user-supplied DAG of :class:`JobVertex` objects (each
carrying a UDF factory and current/min/max degrees of parallelism)
connected by :class:`JobEdge` objects (each carrying a wiring pattern).
At deployment the engine expands it into a *runtime graph* of tasks and
channels (see :mod:`repro.engine`).

A :class:`JobSequence` is an alternating tuple of connected vertices and
edges over which latency constraints are declared.
"""

from repro.graphs.job_graph import JobGraph, JobVertex, JobEdge
from repro.graphs.sequences import JobSequence
from repro.graphs.partitioning import (
    Partitioner,
    RoundRobinPartitioner,
    KeyPartitioner,
    BroadcastPartitioner,
    make_partitioner,
)

__all__ = [
    "JobGraph",
    "JobVertex",
    "JobEdge",
    "JobSequence",
    "Partitioner",
    "RoundRobinPartitioner",
    "KeyPartitioner",
    "BroadcastPartitioner",
    "make_partitioner",
]
