"""Cluster admission control: job accounts, quotas and arbitration.

The paper scales one job; production clusters run many. This module is
the slot-broker between them: every job submitted to an engine gets a
:class:`JobAccount` (identity, quota ceiling, priority, fair-share
weight, usage attribution), and every scale-up must *reserve* its slots
through :meth:`~repro.engine.resources.ResourceManager.request_slots`
before the scheduler may announce new tasks. Reserving at request time
is what makes ``set_parallelism`` honest: it either holds the slots or
reports denial synchronously — the deferred-allocation window in which
``InsufficientResourcesError`` used to escape inside a sim-heap callback
no longer exists.

When the pool cannot cover a request, the configured
:class:`ArbitrationPolicy` decides whether other jobs are preempted:

* :class:`FirstComeArbitration` (``"fcfs"``) — no preemption; whoever
  holds the slots keeps them and the request is denied;
* :class:`StrictPriorityArbitration` (``"priority"``) — jobs with
  strictly lower priority lose reducible tasks to higher-priority
  requesters (lowest priority bleeds first);
* :class:`WeightedFairShareArbitration` (``"fair-share"``) — each job's
  fair share is ``total_slots * weight / sum(weights)``; a requester at
  or under its share may preempt jobs holding more than theirs (most
  over-share bleeds first). A requester already over its own share
  never preempts.

Preemption only ever takes *reducible* tasks: the victim job's
scheduler picks vertices above ``min_parallelism`` and force-stops the
youngest tasks, so a victim is squeezed, never killed. All decisions are
pure functions of the account table — no RNG, no heap events — so
shared-cluster runs stay deterministic and single-job runs are
byte-identical to the pre-admission engine.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional, Tuple

#: arbitration policy names accepted by EngineConfig.admission
ARBITRATION_FCFS = "fcfs"
ARBITRATION_PRIORITY = "priority"
ARBITRATION_FAIR_SHARE = "fair-share"


class AdmissionDecision(NamedTuple):
    """Outcome of one slot request against the admission controller.

    ``preempted`` lists ``(job_name, slots_freed)`` per victim when the
    grant required preemption.
    """

    admitted: bool
    reason: str = ""
    preempted: Tuple[Tuple[str, int], ...] = ()


class JobAccount:
    """Per-job slot attribution and arbitration inputs.

    ``quota`` caps held + reserved slots (None = uncapped); ``priority``
    orders strict-priority arbitration (higher wins); ``weight`` sizes
    the weighted fair share. ``task_seconds`` integrates held slots over
    virtual time, so shared-cluster cost reports can attribute usage to
    the job that consumed it.
    """

    __slots__ = (
        "job_id", "name", "quota", "priority", "weight",
        "held", "reserved", "task_seconds",
        "denials", "preemptions_suffered", "preemptions_inflicted",
        "preempt_hook",
    )

    def __init__(
        self,
        job_id: object,
        name: str,
        quota: Optional[int] = None,
        priority: int = 0,
        weight: float = 1.0,
    ) -> None:
        if quota is not None and quota < 1:
            raise ValueError(f"job quota must be >= 1 (got {quota})")
        if weight <= 0:
            raise ValueError(f"fair-share weight must be > 0 (got {weight})")
        self.job_id = job_id
        self.name = name
        self.quota = quota
        self.priority = int(priority)
        self.weight = float(weight)
        #: slots currently held by live tasks
        self.held = 0
        #: slots reserved for announced-but-unmaterialized tasks
        self.reserved = 0
        #: integral of held slots over virtual time
        self.task_seconds = 0.0
        # lifetime arbitration counters
        self.denials = 0
        self.preemptions_suffered = 0
        self.preemptions_inflicted = 0
        #: callback ``(slots, requester_name) -> freed`` installed by the
        #: deployed job; force-stops reducible tasks and returns how many
        #: slots were actually freed (synchronously)
        self.preempt_hook: Optional[Callable[[int, str], int]] = None

    @property
    def footprint(self) -> int:
        """Slots this job holds or has reserved."""
        return self.held + self.reserved

    def summary(self) -> dict:
        """JSON-serializable account snapshot (manifests, CLI reports)."""
        return {
            "name": self.name,
            "quota": self.quota,
            "priority": self.priority,
            "weight": self.weight,
            "held": self.held,
            "reserved": self.reserved,
            "task_seconds": self.task_seconds,
            "denials": self.denials,
            "preemptions_suffered": self.preemptions_suffered,
            "preemptions_inflicted": self.preemptions_inflicted,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"JobAccount({self.name!r}, held={self.held}, "
            f"reserved={self.reserved}, quota={self.quota})"
        )


class ArbitrationPolicy:
    """Decides which jobs bleed slots when a request exceeds free capacity.

    ``victims`` returns the eligible victim accounts in bleed order for
    a requester needing ``shortfall`` more slots; an empty list denies
    the request. Policies are pure: the actual force-stop happens
    through each victim's ``preempt_hook``.
    """

    name = "arbitration"

    def victims(
        self,
        accounts: List[JobAccount],
        requester: JobAccount,
        shortfall: int,
        total_slots: int,
    ) -> List[JobAccount]:
        raise NotImplementedError


class FirstComeArbitration(ArbitrationPolicy):
    """No preemption: first come, first served; latecomers are denied."""

    name = ARBITRATION_FCFS

    def victims(self, accounts, requester, shortfall, total_slots):
        return []


class StrictPriorityArbitration(ArbitrationPolicy):
    """Strictly lower-priority jobs bleed first (lowest priority first)."""

    name = ARBITRATION_PRIORITY

    def victims(self, accounts, requester, shortfall, total_slots):
        candidates = [
            a for a in accounts
            if a is not requester and a.priority < requester.priority and a.held > 0
        ]
        candidates.sort(key=lambda a: (a.priority, str(a.job_id)))
        return candidates


class WeightedFairShareArbitration(ArbitrationPolicy):
    """Jobs holding more than their weighted fair share bleed first.

    ``share_i = total_slots * w_i / sum(w)`` over registered jobs. Only
    a requester at or under its own share may preempt, and only jobs
    strictly over theirs are eligible — most over-share first, so
    repeated arbitration converges towards the share vector instead of
    thrashing one victim.
    """

    name = ARBITRATION_FAIR_SHARE

    def victims(self, accounts, requester, shortfall, total_slots):
        total_weight = sum(a.weight for a in accounts)
        if total_weight <= 0:  # pragma: no cover - weights validated > 0
            return []

        def share(account: JobAccount) -> float:
            return total_slots * account.weight / total_weight

        if requester.footprint >= share(requester):
            return []  # already at/over its share: no right to preempt
        candidates = [
            a for a in accounts
            if a is not requester and a.held > share(a)
        ]
        candidates.sort(key=lambda a: (-(a.held - share(a)), str(a.job_id)))
        return candidates


_ARBITRATIONS = {
    ARBITRATION_FCFS: FirstComeArbitration,
    ARBITRATION_PRIORITY: StrictPriorityArbitration,
    ARBITRATION_FAIR_SHARE: WeightedFairShareArbitration,
}


def create_arbitration(name: str) -> ArbitrationPolicy:
    """Instantiate an arbitration policy by registry name."""
    try:
        return _ARBITRATIONS[name]()
    except KeyError:
        raise ValueError(
            f"unknown arbitration policy {name!r} "
            f"(have: {', '.join(sorted(_ARBITRATIONS))})"
        ) from None


def jain_fairness(values: List[float]) -> Optional[float]:
    """Jain's fairness index over per-job outcomes (1.0 = perfectly fair).

    ``(sum x)^2 / (n * sum x^2)`` — the scoreboard's fairness metric over
    per-job constraint fulfillment. None for empty/all-zero inputs.
    """
    xs = [float(v) for v in values if v is not None]
    if not xs:
        return None
    square_sum = sum(x * x for x in xs)
    if square_sum == 0:
        return None
    total = sum(xs)
    return (total * total) / (len(xs) * square_sum)


__all__ = [
    "ARBITRATION_FCFS",
    "ARBITRATION_PRIORITY",
    "ARBITRATION_FAIR_SHARE",
    "AdmissionDecision",
    "ArbitrationPolicy",
    "FirstComeArbitration",
    "StrictPriorityArbitration",
    "WeightedFairShareArbitration",
    "JobAccount",
    "create_arbitration",
    "jain_fairness",
]
