"""Key-partitioned operator state, checkpoints and rescale migrations.

The source paper treats operators as stateless, so rescaling is free and
a crash loses nothing. Real windowed aggregations and joins accumulate
per-key state, and both of the failure modes this module adds interact
directly with the latency bound:

* **Rescaling** a stateful vertex repartitions its keys, which means a
  multi-phase migration (quiesce → snapshot → transfer → restore) whose
  pause scales with the migrated bytes. Migrations can fail mid-transfer
  (:class:`~repro.simulation.faults.MigrationFailure`) and roll back to
  the pre-rescale partitioning without state loss.
* **Crashes** lose every byte written since the last periodic
  checkpoint; recovery restores the checkpoint and charges a replay
  delay proportional to the checkpoint's age before the replacement task
  starts, so the checkpoint interval trades steady-state snapshot pauses
  against crash-recovery time.

State *sizes* are modeled, not materialized payloads: each processed
event grows one key drawn from a :class:`~repro.workloads.keys
.ZipfKeySampler` (the same skewed law behind the tweet topics), unless a
stateful UDF attributes real keys itself via
:meth:`StateManager.record`. Everything is deterministic: key draws come
from a dedicated per-vertex ``state:{vertex}`` stream and migration
phase jitter from the shared ``migration`` stream, so same-seed runs
replay byte-identically.
"""

from __future__ import annotations

import random
import zlib
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.latency_model import MigrationCostModel, expected_migration_pause
from repro.simulation.randomness import Gamma
from repro.workloads.keys import ZipfKeySampler


def stable_key_hash(key: object) -> int:
    """Platform- and run-stable hash used to place a key in a partition.

    Python's built-in ``hash`` is salted per process for strings, which
    would break byte-identical replays; CRC-32 over ``repr(key)`` is
    stable everywhere.
    """
    return zlib.crc32(repr(key).encode("utf-8"))


class MigrationPlan:
    """One planned repartitioning of a vertex's keyed state.

    ``moved_keys``/``moved_bytes`` are measured at plan time and drive
    the migration's phase durations. Apply and rollback both rebuild the
    partition layout from the *live* key contents (hash placement is
    deterministic), so they are content-preserving even when a crash
    mutates state mid-migration: a rolled-back migration loses nothing,
    and never resurrects state a concurrent crash legitimately lost.
    """

    __slots__ = ("vertex", "p_from", "p_to", "moved_keys", "moved_bytes",
                 "aborted", "abort_reason")

    def __init__(
        self,
        vertex: str,
        p_from: int,
        p_to: int,
        moved_keys: Tuple[object, ...],
        moved_bytes: int,
    ) -> None:
        self.vertex = vertex
        self.p_from = p_from
        self.p_to = p_to
        self.moved_keys = moved_keys
        self.moved_bytes = moved_bytes
        #: set by the reconciler when a crash lands mid-migration, so the
        #: transfer deterministically rolls back instead of applying
        self.aborted = False
        self.abort_reason = ""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"MigrationPlan({self.vertex}, {self.p_from}->{self.p_to}, "
                f"{len(self.moved_keys)} keys, {self.moved_bytes} B)")


class KeyedState:
    """Per-key state bytes of one vertex, hash-partitioned over tasks.

    Partition ``i`` holds every key with ``stable_key_hash(key) %
    parallelism == i``; partition index corresponds to a task's rank
    among the vertex's active tasks (rank order, not raw subtask index,
    so restarts keep the mapping stable).
    """

    __slots__ = ("vertex", "parallelism", "_partitions")

    def __init__(self, vertex: str, parallelism: int) -> None:
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1 (got {parallelism})")
        self.vertex = vertex
        self.parallelism = int(parallelism)
        self._partitions: List[Dict[object, int]] = [
            {} for _ in range(self.parallelism)
        ]

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def partition_of(self, key: object) -> int:
        return stable_key_hash(key) % self.parallelism

    def add(self, key: object, nbytes: int) -> None:
        """Grow (or shrink, with negative ``nbytes``) one key's state."""
        partition = self._partitions[self.partition_of(key)]
        value = partition.get(key, 0) + int(nbytes)
        if value > 0:
            partition[key] = value
        else:
            partition.pop(key, None)

    @property
    def total_bytes(self) -> int:
        return sum(sum(p.values()) for p in self._partitions)

    @property
    def key_count(self) -> int:
        return sum(len(p) for p in self._partitions)

    def partition_bytes(self, index: int) -> int:
        return sum(self._partitions[index].values())

    def items(self) -> Dict[object, int]:
        """Global ``{key: bytes}`` view (keys are unique across partitions)."""
        out: Dict[object, int] = {}
        for partition in self._partitions:
            out.update(partition)
        return out

    # ------------------------------------------------------------------
    # migration (rescale repartitioning)
    # ------------------------------------------------------------------

    def plan_migration(self, new_parallelism: int) -> MigrationPlan:
        """Plan repartitioning onto ``new_parallelism`` tasks (no mutation)."""
        if new_parallelism < 1:
            raise ValueError(
                f"new_parallelism must be >= 1 (got {new_parallelism})"
            )
        moved_keys: List[object] = []
        moved_bytes = 0
        for index, partition in enumerate(self._partitions):
            for key, nbytes in partition.items():
                if stable_key_hash(key) % new_parallelism != index:
                    moved_keys.append(key)
                    moved_bytes += nbytes
        return MigrationPlan(
            self.vertex, self.parallelism, new_parallelism,
            tuple(moved_keys), moved_bytes,
        )

    def _rebuild(self, new_parallelism: int) -> None:
        partitions: List[Dict[object, int]] = [
            {} for _ in range(new_parallelism)
        ]
        for key, nbytes in self.items().items():
            partitions[stable_key_hash(key) % new_parallelism][key] = nbytes
        self._partitions = partitions
        self.parallelism = new_parallelism

    def apply(self, plan: MigrationPlan) -> None:
        """Adopt the plan's target layout (transfer completed)."""
        self._rebuild(plan.p_to)

    def rollback(self, plan: MigrationPlan) -> None:
        """Restore the pre-migration layout (transfer failed); lossless."""
        self._rebuild(plan.p_from)

    def repartition(self, new_parallelism: int) -> int:
        """Instant plan+apply (non-migrating paths); returns moved bytes."""
        if new_parallelism == self.parallelism:
            return 0
        plan = self.plan_migration(new_parallelism)
        self.apply(plan)
        return plan.moved_bytes

    # ------------------------------------------------------------------
    # checkpoint / crash restore
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[object, int]:
        """A checkpointable copy of the global key map."""
        return self.items()

    def restore_partition(self, index: int, checkpoint: Dict[object, int]) -> int:
        """Reset partition ``index`` to its checkpointed content.

        Keys grown (or born) since the checkpoint lose the delta; keys
        the checkpoint holds but the partition lost keep the checkpoint
        value. Returns the net bytes lost relative to pre-crash.
        """
        if not 0 <= index < self.parallelism:
            raise ValueError(
                f"partition index {index} out of range 0..{self.parallelism - 1}"
            )
        partition = self._partitions[index]
        before = sum(partition.values())
        restored: Dict[object, int] = {}
        for key, nbytes in checkpoint.items():
            if stable_key_hash(key) % self.parallelism == index and nbytes > 0:
                restored[key] = nbytes
        self._partitions[index] = restored
        return before - sum(restored.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"KeyedState({self.vertex}, p={self.parallelism}, "
                f"{self.key_count} keys, {self.total_bytes} B)")


class StatefulVertexSpec:
    """Declarative state model of one vertex (see ``PipelineBuilder.stateful``)."""

    __slots__ = ("n_keys", "zipf_s", "bytes_per_event", "key_fn",
                 "cost", "replay_factor")

    def __init__(
        self,
        n_keys: int = 64,
        zipf_s: float = 1.1,
        bytes_per_event: int = 64,
        key_fn: Optional[Callable[[object], object]] = None,
        cost: Optional[MigrationCostModel] = None,
        replay_factor: float = 0.5,
    ) -> None:
        if n_keys < 1:
            raise ValueError(f"n_keys must be >= 1 (got {n_keys})")
        if bytes_per_event < 0:
            raise ValueError(
                f"bytes_per_event must be >= 0 (got {bytes_per_event})"
            )
        if replay_factor < 0:
            raise ValueError(f"replay_factor must be >= 0 (got {replay_factor})")
        self.n_keys = int(n_keys)
        self.zipf_s = float(zipf_s)
        self.bytes_per_event = int(bytes_per_event)
        #: optional payload → key extractor; when None, keys are sampled
        #: from the Zipf law on the vertex's dedicated state stream
        self.key_fn = key_fn
        self.cost = cost or MigrationCostModel()
        #: replay seconds charged per second of checkpoint age on crash
        self.replay_factor = float(replay_factor)

    def describe(self) -> Dict[str, object]:
        return {
            "n_keys": self.n_keys,
            "zipf_s": self.zipf_s,
            "bytes_per_event": self.bytes_per_event,
            "keyed_by_payload": self.key_fn is not None,
            "replay_factor": self.replay_factor,
            "cost": self.cost.describe(),
        }


class _VertexState:
    """One vertex's live state model inside the manager."""

    __slots__ = ("spec", "state", "sampler", "rng",
                 "checkpoint", "checkpoint_time")

    def __init__(self, vertex: str, spec: StatefulVertexSpec,
                 parallelism: int, rng: random.Random) -> None:
        self.spec = spec
        self.state = KeyedState(vertex, parallelism)
        self.sampler = ZipfKeySampler(spec.n_keys, spec.zipf_s)
        self.rng = rng
        #: last checkpoint: global key map + its capture time (t=0 start
        #: counts as an implicit empty checkpoint)
        self.checkpoint: Dict[object, int] = {}
        self.checkpoint_time = 0.0


class StateManager:
    """Owns every stateful vertex's :class:`KeyedState` plus the fault model.

    Wired by :class:`~repro.engine.engine.DeployedJob` when the pipeline
    declares stateful vertices; absent otherwise, so stateless runs stay
    byte-identical to pre-state behavior.
    """

    def __init__(
        self,
        sim,
        runtime,
        specs: Dict[str, StatefulVertexSpec],
        streams,
        checkpoint_interval: float = 15.0,
        metrics=None,
    ) -> None:
        if checkpoint_interval <= 0:
            raise ValueError(
                f"checkpoint_interval must be positive (got {checkpoint_interval})"
            )
        self.sim = sim
        self.runtime = runtime
        self.checkpoint_interval = float(checkpoint_interval)
        self.metrics = metrics
        self._migration_rng = streams.get("migration")
        self._vertices: Dict[str, _VertexState] = {}
        for name in sorted(specs):
            rv = runtime.vertices[name]
            # Before deploy() the runtime has no tasks yet — fall back
            # to the job vertex's configured initial parallelism.
            parallelism = rv.target_parallelism or rv.job_vertex.parallelism
            self._vertices[name] = _VertexState(
                name, specs[name], parallelism,
                streams.get(f"state:{name}"),
            )
        # counters (all deterministic; surfaced via summary())
        self.migrations_started = 0
        self.migrations_completed = 0
        self.migrations_failed = 0
        self.migrations_rolled_back = 0
        self.migrations_deferred = 0
        self.state_migrated_bytes = 0
        self.state_lost_bytes = 0
        self.recovery_time_s = 0.0
        self.migration_pause_s = 0.0
        self.checkpoints = 0
        self.checkpoint_pause_s = 0.0
        self.crash_recoveries = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def is_stateful(self, vertex: str) -> bool:
        return vertex in self._vertices

    @property
    def vertices(self) -> Tuple[str, ...]:
        return tuple(self._vertices)

    def keyed_state(self, vertex: str) -> KeyedState:
        return self._vertices[vertex].state

    def spec(self, vertex: str) -> StatefulVertexSpec:
        return self._vertices[vertex].spec

    # ------------------------------------------------------------------
    # state growth
    # ------------------------------------------------------------------

    def on_event(self, vertex: str, payload: object = None) -> None:
        """One processed event grows one key of ``vertex``'s state."""
        vs = self._vertices[vertex]
        spec = vs.spec
        if spec.bytes_per_event == 0:
            return
        if spec.key_fn is not None:
            key = spec.key_fn(payload)
        else:
            key = f"k{vs.sampler.sample_index(vs.rng):04d}"
        vs.state.add(key, spec.bytes_per_event)

    def record(self, vertex: str, key: object, nbytes: int) -> None:
        """Direct attribution path for stateful UDFs (real keys/deltas)."""
        self._vertices[vertex].state.add(key, nbytes)

    # ------------------------------------------------------------------
    # periodic checkpoints
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Arm the periodic checkpoint timers (one per stateful vertex)."""
        for name in self._vertices:
            self.sim.every(self.checkpoint_interval, self._checkpoint, name)

    def _checkpoint(self, vertex: str) -> None:
        vs = self._vertices[vertex]
        vs.checkpoint = vs.state.snapshot()
        vs.checkpoint_time = self.sim.now
        self.checkpoints += 1
        if self.metrics is not None:
            self.metrics.counter("state.checkpoints").inc()
        # The synchronous snapshot briefly pauses the vertex — the cost
        # side of the checkpoint-interval tradeoff.
        pause = vs.state.total_bytes / vs.spec.cost.snapshot_bytes_per_s
        if pause > 0:
            self.checkpoint_pause_s += pause
            self._pause_tasks(vertex, pause)

    # ------------------------------------------------------------------
    # crash recovery (checkpoint restore + replay)
    # ------------------------------------------------------------------

    def on_task_failed(self, task) -> float:
        """Checkpoint-restore the crashed task's partition.

        Returns the replay delay (seconds) the scheduler adds on top of
        the restart delay before the replacement task starts — the
        recovery-time side of the checkpoint-interval tradeoff.
        """
        vertex = task.vertex_name
        vs = self._vertices.get(vertex)
        if vs is None:
            return 0.0
        rv = self.runtime.vertices[vertex]
        ranked = sorted(rv.active_tasks(), key=lambda t: t.subtask_index)
        try:
            rank = ranked.index(task)
        except ValueError:  # pragma: no cover - defensive
            rank = 0
        partition = rank % vs.state.parallelism
        lost = vs.state.restore_partition(partition, vs.checkpoint)
        replay = vs.spec.replay_factor * max(
            0.0, self.sim.now - vs.checkpoint_time
        )
        self.state_lost_bytes += max(0, lost)
        self.recovery_time_s += replay
        self.crash_recoveries += 1
        if self.metrics is not None:
            self.metrics.counter("state.crash_recoveries").inc()
            self.metrics.counter("state.lost_bytes").inc(max(0, lost))
        return replay

    # ------------------------------------------------------------------
    # migrations
    # ------------------------------------------------------------------

    def plan_migration(self, vertex: str, target: int) -> MigrationPlan:
        plan = self._vertices[vertex].state.plan_migration(target)
        self.migrations_started += 1
        if self.metrics is not None:
            self.metrics.counter("state.migrations_started").inc()
        return plan

    def sample_phase_times(
        self, vertex: str, moved_bytes: int
    ) -> Tuple[float, float, float, float]:
        """Sampled (quiesce, snapshot, transfer, restore) durations.

        Each phase draws one Gamma sample around the cost model's mean
        from the dedicated ``migration`` stream, so migrations never
        perturb service-time or fault draws.
        """
        cost = self._vertices[vertex].spec.cost
        out = []
        for mean in cost.phase_means(moved_bytes):
            if mean <= 0:
                out.append(0.0)
            elif cost.jitter_cv <= 0:
                out.append(mean)
            else:
                out.append(Gamma(mean, cost.jitter_cv).sample(self._migration_rng))
        return tuple(out)

    def apply_migration(self, plan: MigrationPlan) -> None:
        self._vertices[plan.vertex].state.apply(plan)
        self.migrations_completed += 1
        self.state_migrated_bytes += plan.moved_bytes
        if self.metrics is not None:
            self.metrics.counter("state.migrations_completed").inc()
            self.metrics.counter("state.migrated_bytes").inc(plan.moved_bytes)

    def rollback_migration(self, plan: MigrationPlan) -> None:
        self._vertices[plan.vertex].state.rollback(plan)
        self.migrations_failed += 1
        self.migrations_rolled_back += 1
        if self.metrics is not None:
            self.metrics.counter("state.migrations_rolled_back").inc()

    def sync_parallelism(self, vertex: str) -> int:
        """Repartition instantly to the vertex's current target.

        The non-migrating paths (no reconciler, crash without restart,
        partial scale-downs) land here; a reconciler migration applies
        its plan first, making this a no-op for that rescale. Returns the
        bytes moved.
        """
        vs = self._vertices.get(vertex)
        if vs is None:
            return 0
        target = max(1, self.runtime.vertices[vertex].target_parallelism)
        moved = vs.state.repartition(target)
        if moved:
            self.state_migrated_bytes += moved
            if self.metrics is not None:
                self.metrics.counter("state.migrated_bytes").inc(moved)
        return moved

    def note_migration_pause(self, vertex: str, pause: float) -> None:
        self.migration_pause_s += pause
        self._pause_tasks(vertex, pause)

    def _pause_tasks(self, vertex: str, duration: float) -> None:
        for task in self.runtime.vertices[vertex].active_tasks():
            task.pause(duration)

    # ------------------------------------------------------------------
    # summary
    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """Deterministic digest for the run manifest / shard results."""
        vertices = {
            name: {
                "parallelism": vs.state.parallelism,
                "keys": vs.state.key_count,
                "state_bytes": vs.state.total_bytes,
                "spec": vs.spec.describe(),
            }
            for name, vs in self._vertices.items()
        }
        return {
            "vertices": vertices,
            "checkpoint_interval": self.checkpoint_interval,
            "checkpoints": self.checkpoints,
            "checkpoint_pause_s": round(self.checkpoint_pause_s, 9),
            "migrations": {
                "started": self.migrations_started,
                "completed": self.migrations_completed,
                "failed": self.migrations_failed,
                "rolled_back": self.migrations_rolled_back,
                "deferred": self.migrations_deferred,
            },
            "state_migrated_bytes": self.state_migrated_bytes,
            "state_lost_bytes": self.state_lost_bytes,
            "migration_pause_s": round(self.migration_pause_s, 9),
            "recovery_time_s": round(self.recovery_time_s, 9),
            "crash_recoveries": self.crash_recoveries,
        }


class MigrationAdvisor:
    """The policy-facing view of migration cost (read-only, no RNG).

    Policies ask *what would this rescale pause cost right now* and
    weigh it against the remaining latency headroom; deferrals are
    counted back into the manager so the scoreboard can see them.
    """

    __slots__ = ("_manager",)

    def __init__(self, manager: StateManager) -> None:
        self._manager = manager

    def assess(
        self, vertex: str, p_from: int, p_to: int
    ) -> Optional[Tuple[float, int]]:
        """``(expected_pause_s, moved_bytes)`` of the rescale, or None.

        None means the vertex is stateless or the rescale is a no-op —
        nothing migrates, the gate must not interfere.
        """
        if p_from == p_to or not self._manager.is_stateful(vertex):
            return None
        vs = self._manager._vertices[vertex]
        plan = vs.state.plan_migration(p_to)
        pause = expected_migration_pause(plan.moved_bytes, vs.spec.cost)
        return pause, plan.moved_bytes

    def note_deferred(self, vertex: str) -> None:
        self._manager.migrations_deferred += 1
        metrics = self._manager.metrics
        if metrics is not None:
            metrics.counter("state.migrations_deferred").inc()


__all__ = [
    "KeyedState",
    "MigrationAdvisor",
    "MigrationPlan",
    "StateManager",
    "StatefulVertexSpec",
    "stable_key_hash",
]
