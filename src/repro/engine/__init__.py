"""The simulated Nephele-style stream processing engine (substrate).

This subpackage implements the execution engine the paper's strategy runs
on: a master/worker SPE whose runtime graph consists of tasks (single-
server queueing stations executing UDFs) connected by channels (output
buffers with a pluggable batching strategy, a network delay model and
credit-based backpressure), placed in CPU slots of leased worker nodes.

The facade is :class:`StreamProcessingEngine` configured by
:class:`EngineConfig`; preset configurations mirror the paper's four
motivation configurations (Storm, Nephele-IF, Nephele-16KiB,
Nephele-<deadline>).
"""

from repro.engine.items import DataItem
from repro.engine.udf import (
    UDF,
    SourceUDF,
    MapUDF,
    FilterUDF,
    FlatMapUDF,
    WindowedAggregateUDF,
    SinkUDF,
)
from repro.engine.operators import (
    KeyedAggregateUDF,
    RateEstimatorUDF,
    SampleUDF,
    UnionTagUDF,
    tumbling_count,
    tumbling_mean,
    tumbling_sum,
    tumbling_top_k,
)
from repro.engine.queues import BoundedQueue
from repro.engine.batching import (
    BatchingStrategy,
    InstantFlush,
    FixedSizeBatching,
    AdaptiveDeadlineBatching,
)
from repro.engine.channel import RuntimeChannel, NetworkModel
from repro.engine.task import RuntimeTask
from repro.engine.worker import WorkerNode
from repro.engine.resources import ResourceManager, InsufficientResourcesError
from repro.engine.runtime import RuntimeGraph, RuntimeVertex
from repro.engine.scheduler import Scheduler
from repro.engine.engine import EngineConfig, StreamProcessingEngine

__all__ = [
    "DataItem",
    "UDF",
    "SourceUDF",
    "MapUDF",
    "FilterUDF",
    "FlatMapUDF",
    "WindowedAggregateUDF",
    "SinkUDF",
    "BoundedQueue",
    "KeyedAggregateUDF",
    "RateEstimatorUDF",
    "SampleUDF",
    "UnionTagUDF",
    "tumbling_count",
    "tumbling_mean",
    "tumbling_sum",
    "tumbling_top_k",
    "BatchingStrategy",
    "InstantFlush",
    "FixedSizeBatching",
    "AdaptiveDeadlineBatching",
    "RuntimeChannel",
    "NetworkModel",
    "RuntimeTask",
    "WorkerNode",
    "ResourceManager",
    "InsufficientResourcesError",
    "RuntimeGraph",
    "RuntimeVertex",
    "Scheduler",
    "EngineConfig",
    "StreamProcessingEngine",
]
