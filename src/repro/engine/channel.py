"""Runtime channels: delivery, network, credit-based backpressure.

A :class:`RuntimeChannel` connects one producer task to one consumer
task. *Buffering and batching happen in the producer's output gate*
(one buffer per task per job edge, see
:class:`repro.engine.task.OutputGate`) — mirroring Nephele/Flink, where
the task thread serializes into shared output buffers and the shipping
overhead (syscalls, headers, interrupts) is paid per wire transfer, not
per logical channel. The channel itself is the unit of *flow control*:

* the consumer grants ``capacity`` credits; :meth:`accept` refuses items
  beyond the outstanding-credit limit, blocking the producer;
* shipped batches spend :meth:`NetworkModel.transfer_time` in flight;
* on arrival, items enter the consumer's bounded input queue; when the
  queue is full they park in the channel's pending buffer until space
  frees (queue growth → parked batches → refused accepts → blocked
  producer = the paper's backpressure cascade, Sec. III-C).
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Callable, Deque, List, Optional, Sequence, TYPE_CHECKING

from repro.engine.items import DataItem
from repro.simulation.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.engine.task import RuntimeTask
    from repro.qos.reporter import ChannelReporter


class NetworkModel:
    """Per-batch network delay and producer-side shipping overhead.

    Parameters
    ----------
    base_latency:
        Fixed per-transfer latency in seconds (propagation + switching).
    bandwidth:
        Link bandwidth in bytes/second (default 1 GBit/s).
    per_batch_overhead / per_item_overhead:
        Producer-side CPU cost of shipping one gate flush / one item
        within it, in seconds. These make instant flushing *expensive per
        item* and batching *cheap per item*, reproducing the paper's
        Sec. III-C throughput gap between configurations.
    """

    def __init__(
        self,
        base_latency: float = 0.0005,
        bandwidth: float = 125_000_000.0,
        per_batch_overhead: float = 0.00004,
        per_item_overhead: float = 0.000002,
        connection_setup: float = 0.0,
        cross_worker_penalty: float = 0.0,
    ) -> None:
        if base_latency < 0 or bandwidth <= 0:
            raise ValueError("need base_latency >= 0 and bandwidth > 0")
        if per_batch_overhead < 0 or per_item_overhead < 0:
            raise ValueError("shipping overheads must be >= 0")
        if connection_setup < 0:
            raise ValueError("connection_setup must be >= 0")
        if cross_worker_penalty < 0:
            raise ValueError("cross_worker_penalty must be >= 0")
        self.base_latency = base_latency
        self.bandwidth = bandwidth
        self.per_batch_overhead = per_batch_overhead
        self.per_item_overhead = per_item_overhead
        #: one-off latency of a channel's first transfer (TCP handshake;
        #: the paper: new channels "initially worsen measured channel
        #: latency", part of why scale-ups get an inactivity phase)
        self.connection_setup = connection_setup
        #: extra per-transfer latency charged to channels whose endpoints
        #: sit on different workers (the scheduler stamps it onto such
        #: channels) — makes network-aware placement measurable end to end
        self.cross_worker_penalty = cross_worker_penalty

    def transfer_time(self, batch_bytes: int) -> float:
        """In-flight time for a transfer of ``batch_bytes`` bytes."""
        return self.base_latency + batch_bytes / self.bandwidth

    def shipping_overhead(self, batch_items: int) -> float:
        """Producer CPU time consumed by shipping one gate flush."""
        return self.per_batch_overhead + self.per_item_overhead * batch_items


class RuntimeChannel:
    """A point-to-point channel of the runtime graph (paper Sec. II-A2)."""

    __slots__ = (
        "channel_id", "sim", "producer", "consumer", "network", "edge_name",
        "capacity", "reporter", "_outstanding", "_pending",
        "_pending_listener_armed", "_unblock_waiters", "closed",
        "items_emitted", "items_delivered", "batches_shipped",
        "latency_penalty",
    )

    _ids = 0

    def __init__(
        self,
        sim: Simulator,
        consumer: "RuntimeTask",
        network: NetworkModel,
        edge_name: str,
        capacity: int = 256,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"channel capacity must be >= 1 (got {capacity})")
        RuntimeChannel._ids += 1
        self.channel_id = RuntimeChannel._ids
        self.sim = sim
        self.producer: Optional["RuntimeTask"] = None  # set by the output gate
        self.consumer = consumer
        self.network = network
        self.edge_name = edge_name
        self.capacity = capacity
        self.reporter: Optional["ChannelReporter"] = None

        self._outstanding = 0  # accepted but not yet enqueued at the consumer
        self._pending: Deque[DataItem] = deque()
        self._pending_listener_armed = False
        self._unblock_waiters: List[Callable[[], None]] = []
        self.closed = False
        #: extra per-transfer latency for cross-worker endpoints (0.0 for
        #: co-located tasks; set by the scheduler at wiring time)
        self.latency_penalty = 0.0

        #: lifetime counters for tests and recorders
        self.items_emitted = 0
        self.items_delivered = 0
        self.batches_shipped = 0

    # ------------------------------------------------------------------
    # producer side (called by the output gate)
    # ------------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Items accepted but not yet enqueued at the consumer."""
        return self._outstanding

    def accept(self, item: DataItem) -> bool:
        """Reserve one credit for ``item`` (stamps ``emitted_at``).

        Returns ``False`` when the channel is at its credit limit — the
        producer must block and retry after :meth:`add_unblock_waiter`
        fires. A closed channel accepts (and later drops) everything so
        teardown cannot deadlock producers.
        """
        if self.closed:
            return True
        if self._outstanding >= self.capacity:
            return False
        item.emitted_at = self.sim.now
        self._outstanding += 1
        self.items_emitted += 1
        return True

    def ship(self, items: Sequence[DataItem], batch_bytes: int) -> None:
        """Put a flushed sub-batch on the wire towards the consumer.

        Ownership: the caller hands ``items`` over and must not mutate the
        container afterwards (the gate always passes a fresh tuple/list).
        """
        if self.closed:
            return
        now = self.sim.now
        if self.reporter is not None:
            for item in items:
                if item.sampled:
                    self.reporter.record_output_batch_latency(now - item.emitted_at)
        transfer = self.network.transfer_time(batch_bytes)
        if self.latency_penalty:
            transfer += self.latency_penalty
        if self.batches_shipped == 0:
            transfer += self.network.connection_setup
        self.batches_shipped += 1
        # sim.schedule_fire(transfer, self._arrive, items), inlined:
        # fire-and-forget (never cancelled; _arrive drops on closed channels).
        sim = self.sim
        seq = sim._seq
        sim._seq = seq + 1
        heap = sim._heap
        heappush(heap, (now + transfer, seq, self._arrive, (items,)))
        if len(heap) > sim._max_heap:
            sim._max_heap = len(heap)

    def add_unblock_waiter(self, callback: Callable[[], None]) -> None:
        """Register a one-shot callback fired when credits free up."""
        self._unblock_waiters.append(callback)

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------

    def _arrive(self, items: List[DataItem]) -> None:
        if self.closed:
            return
        self._pending.extend(items)
        self._deliver_pending()

    def _deliver_pending(self) -> None:
        if self.closed:
            self._pending.clear()
            return
        pending = self._pending
        queue = self.consumer.input_queue
        entries = queue._items
        capacity = queue.capacity
        sim = self.sim
        on_item_enqueued = self.consumer.on_item_enqueued
        # on_item_enqueued may synchronously consume (freeing space and
        # re-entering delivery), so every bound below is re-checked per
        # iteration against the shared deque objects.
        while pending:
            if len(entries) >= capacity:
                if not self._pending_listener_armed:
                    self._pending_listener_armed = True
                    queue.add_space_listener(self._on_queue_space)
                return
            item = pending.popleft()
            entries.append((item, self))
            queue.total_enqueued += 1
            item.enqueued_at = sim.now
            self.items_delivered += 1
            # _release_one, inlined (one credit back per delivered item).
            outstanding = self._outstanding
            if outstanding > 0:
                self._outstanding = outstanding = outstanding - 1
            if self._unblock_waiters and outstanding < self.capacity:
                waiters, self._unblock_waiters = self._unblock_waiters, []
                for waiter in waiters:
                    waiter()
            on_item_enqueued(self)

    def _on_queue_space(self) -> None:
        self._pending_listener_armed = False
        self._deliver_pending()

    def _release_one(self) -> None:
        if self._outstanding > 0:
            self._outstanding -= 1
        if self._unblock_waiters and self._outstanding < self.capacity:
            waiters, self._unblock_waiters = self._unblock_waiters, []
            for waiter in waiters:
                waiter()

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Tear the channel down (consumer stopping or producer stopped).

        Parked and in-flight items are discarded; a blocked producer is
        released so draining cannot deadlock.
        """
        if self.closed:
            return
        self.closed = True
        self._pending.clear()
        self._outstanding = 0
        waiters, self._unblock_waiters = self._unblock_waiters, []
        for waiter in waiters:
            waiter()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        producer = self.producer.task_id if self.producer is not None else "?"
        return (
            f"RuntimeChannel(#{self.channel_id}, {producer}->{self.consumer.task_id}, "
            f"edge={self.edge_name!r})"
        )
