"""Worker nodes hosting runtime tasks in CPU slots.

Mirrors the paper's cluster (Appendix A): homogeneous workers with a
fixed number of CPU cores; the engine runs one task per core ("slot"),
so tasks never contend for CPU — the homogeneity assumption of
Sec. IV-A a) holds by construction in the simulation.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.task import RuntimeTask


class WorkerNode:
    """A worker with ``slots`` CPU cores, each hosting at most one task.

    ``speed_factor`` scales the CPU speed relative to the homogeneous
    baseline (1.0): tasks placed here run their service times divided by
    it. The paper *assumes* homogeneous workers (Sec. IV-A a); setting
    factors below 1 deliberately violates that assumption to reproduce
    the hot-spot effect the assumption guards against.
    """

    def __init__(self, worker_id: int, slots: int = 4, speed_factor: float = 1.0) -> None:
        if slots < 1:
            raise ValueError(f"worker needs >= 1 slot (got {slots})")
        if speed_factor <= 0:
            raise ValueError(f"speed_factor must be > 0 (got {speed_factor})")
        self.worker_id = worker_id
        self.slots = slots
        self.speed_factor = speed_factor
        self._tasks: Dict[int, "RuntimeTask"] = {}

    @property
    def used_slots(self) -> int:
        """Number of occupied slots."""
        return len(self._tasks)

    @property
    def free_slots(self) -> int:
        """Number of free slots."""
        return self.slots - len(self._tasks)

    @property
    def is_empty(self) -> bool:
        """Whether no task is hosted (worker can be released)."""
        return not self._tasks

    def hosted_tasks(self) -> list:
        """The hosted tasks in slot order (fault injection, diagnostics)."""
        return [self._tasks[slot] for slot in sorted(self._tasks)]

    def assign(self, task: "RuntimeTask") -> int:
        """Place ``task`` into the lowest free slot; returns the slot index."""
        if self.free_slots == 0:
            raise RuntimeError(f"worker {self.worker_id} has no free slot")
        for slot in range(self.slots):
            if slot not in self._tasks:
                self._tasks[slot] = task
                return slot
        raise AssertionError("unreachable: free_slots > 0 but no slot found")

    def release(self, task: "RuntimeTask") -> None:
        """Free the slot occupied by ``task``."""
        for slot, hosted in list(self._tasks.items()):
            if hosted is task:
                del self._tasks[slot]
                return
        raise KeyError(f"task {task.task_id} not hosted on worker {self.worker_id}")

    def __repr__(self) -> str:
        return f"WorkerNode(#{self.worker_id}, {self.used_slots}/{self.slots} slots)"
