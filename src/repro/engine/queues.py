"""Bounded input queues (producer-consumer substrate, paper Sec. II c).

Each runtime task owns one bounded input queue shared by all its inbound
channels. Bounded capacity is what turns consumer-side overload into
backpressure: when the queue is full, arriving batches are parked in the
channels' pending buffers and, transitively, producers block — mirroring
the paper's description of queues "growing until full" followed by
backpressure throttling.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.engine.items import DataItem


class BoundedQueue:
    """A FIFO of ``(item, source_channel)`` with bounded capacity.

    ``source_channel`` is kept alongside each item so the consumer can
    attribute channel latency to the right channel when it pops the item.
    Space listeners registered via :meth:`add_space_listener` are notified
    (once each, FIFO) when capacity frees up — channels use this to
    deliver parked batches.
    """

    __slots__ = ("capacity", "_items", "_space_listeners", "total_enqueued")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1 (got {capacity})")
        self.capacity = capacity
        self._items: Deque[Tuple[DataItem, object]] = deque()
        self._space_listeners: Deque[Callable[[], None]] = deque()
        #: total items ever enqueued (for tests / recorders)
        self.total_enqueued = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def free_space(self) -> int:
        """Remaining capacity."""
        return self.capacity - len(self._items)

    @property
    def is_full(self) -> bool:
        """Whether the queue is at capacity."""
        return len(self._items) >= self.capacity

    def try_put(self, item: DataItem, source: object) -> bool:
        """Enqueue if space allows; returns whether the item was accepted."""
        items = self._items
        if len(items) >= self.capacity:
            return False
        items.append((item, source))
        self.total_enqueued += 1
        return True

    def get(self) -> Tuple[DataItem, object]:
        """Pop the oldest ``(item, source_channel)`` pair.

        Frees one slot and wakes queued space listeners while space
        remains. Raises ``IndexError`` when empty.
        """
        entry = self._items.popleft()
        if self._space_listeners:
            self._notify_space()
        return entry

    def peek_time(self) -> Optional[float]:
        """Enqueue time of the head item, or ``None`` if empty."""
        if not self._items:
            return None
        return self._items[0][0].enqueued_at

    def add_space_listener(self, callback: Callable[[], None]) -> None:
        """Register a one-shot callback fired when space frees up."""
        self._space_listeners.append(callback)

    def _notify_space(self) -> None:
        # Wake listeners while there is space; each listener may consume
        # space again (delivering a parked batch), so re-check every time.
        while self._space_listeners and not self.is_full:
            listener = self._space_listeners.popleft()
            listener()

    def drain(self) -> List[Tuple[DataItem, object]]:
        """Remove and return everything (used on task teardown)."""
        drained = list(self._items)
        self._items.clear()
        self._notify_space()
        return drained
