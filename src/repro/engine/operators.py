"""A library of ready-made streaming operators on top of the UDF model.

The paper's jobs are built from a handful of recurring operator shapes —
per-item transforms, filters, windowed aggregations, top-k rankings.
This module provides them as reusable, tested UDFs so applications
(and the examples) do not re-implement window/fold plumbing:

* :func:`tumbling_count` / :func:`tumbling_sum` / :func:`tumbling_mean`
  — time-windowed scalar aggregates;
* :func:`tumbling_top_k` — the HotTopics pattern (windowed key counting
  with a top-k snapshot per window);
* :class:`KeyedAggregateUDF` — per-key fold within a time window;
* :class:`SampleUDF` — probabilistic pass-through sampling;
* :class:`RateEstimatorUDF` — emits the window's observed arrival rate;
* :class:`UnionTagUDF` — tags payloads with their origin (for merged
  streams sharing one input queue);
* :class:`StatefulWindowedAggregateUDF` / :class:`KeyedJoinUDF` —
  stateful operator models whose per-key state footprint feeds the
  engine's state manager (migration and checkpoint cost accounting).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.engine.udf import UDF, WindowedAggregateUDF
from repro.simulation.randomness import Distribution


def tumbling_count(window: float, service_dist: Optional[Distribution] = None) -> WindowedAggregateUDF:
    """Emit the number of items consumed in each ``window`` seconds."""
    return WindowedAggregateUDF(
        window,
        create=lambda: 0,
        add=lambda acc, _payload: acc + 1,
        finalize=lambda acc: (acc,),
        service_dist=service_dist,
        emit_empty=True,
    )


def tumbling_sum(
    window: float,
    value_fn: Callable[[object], float] = lambda payload: payload,
    service_dist: Optional[Distribution] = None,
) -> WindowedAggregateUDF:
    """Emit the sum of ``value_fn(payload)`` per window."""
    return WindowedAggregateUDF(
        window,
        create=lambda: 0.0,
        add=lambda acc, payload: acc + value_fn(payload),
        finalize=lambda acc: (acc,),
        service_dist=service_dist,
    )


def tumbling_mean(
    window: float,
    value_fn: Callable[[object], float] = lambda payload: payload,
    service_dist: Optional[Distribution] = None,
) -> WindowedAggregateUDF:
    """Emit the mean of ``value_fn(payload)`` per non-empty window."""

    def finalize(acc: Tuple[float, int]):
        total, count = acc
        if count == 0:
            return ()
        return (total / count,)

    return WindowedAggregateUDF(
        window,
        create=lambda: (0.0, 0),
        add=lambda acc, payload: (acc[0] + value_fn(payload), acc[1] + 1),
        finalize=finalize,
        service_dist=service_dist,
    )


def tumbling_top_k(
    window: float,
    k: int,
    key_fn: Callable[[object], Iterable[object]],
    service_dist: Optional[Distribution] = None,
) -> WindowedAggregateUDF:
    """Emit the window's k most frequent keys with their counts.

    ``key_fn`` extracts the keys a payload counts towards (one payload
    may contribute several, e.g. a tweet's hashtags). This is exactly
    the paper's HotTopics operator shape.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1 (got {k})")

    def add(acc: Dict[object, int], payload: object) -> Dict[object, int]:
        for key in key_fn(payload):
            acc[key] = acc.get(key, 0) + 1
        return acc

    def finalize(acc: Dict[object, int]):
        top = sorted(acc.items(), key=lambda kv: (-kv[1], repr(kv[0])))[:k]
        return (tuple(top),)

    return WindowedAggregateUDF(
        window, create=dict, add=add, finalize=finalize, service_dist=service_dist
    )


class KeyedAggregateUDF(WindowedAggregateUDF):
    """Per-key fold within a tumbling window.

    Each window emits one ``(key, aggregate)`` pair per key observed.
    For correct *global* per-key results under data parallelism, wire
    the inbound job edge with key partitioning on the same key function
    (otherwise each task emits partial per-key aggregates, which a
    downstream merger must combine — the HotTopics/HTM pattern).
    """

    def __init__(
        self,
        window: float,
        key_fn: Callable[[object], object],
        fold_init: Callable[[], object],
        fold: Callable[[object, object], object],
        service_dist: Optional[Distribution] = None,
    ) -> None:
        def create() -> Dict[object, object]:
            return {}

        def add(acc: Dict[object, object], payload: object) -> Dict[object, object]:
            key = key_fn(payload)
            acc[key] = fold(acc.get(key, fold_init()), payload)
            return acc

        def finalize(acc: Dict[object, object]):
            return tuple(sorted(acc.items(), key=lambda kv: repr(kv[0])))

        super().__init__(window, create, add, finalize, service_dist=service_dist)
        self.key_fn = key_fn


class SampleUDF(UDF):
    """Forward each payload with probability ``p`` (load shedding-lite).

    Note: the paper explicitly *avoids* load shedding (its elasticity is
    the alternative); the operator exists for measurement pipelines that
    subsample, not for shedding under overload.
    """

    def __init__(self, probability: float, service_dist: Optional[Distribution] = None) -> None:
        super().__init__(service_dist)
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1] (got {probability})")
        self.probability = probability
        self._rng = random.Random(0x5A17)

    def process(self, payload: object):
        if self._rng.random() < self.probability:
            return (payload,)
        return ()


class RateEstimatorUDF(WindowedAggregateUDF):
    """Emit ``count / window`` — the stream's observed rate — per window."""

    def __init__(self, window: float, service_dist: Optional[Distribution] = None) -> None:
        super().__init__(
            window,
            create=lambda: 0,
            add=lambda acc, _payload: acc + 1,
            finalize=lambda acc: (acc / window,),
            service_dist=service_dist,
            emit_empty=True,
        )


class CountWindowUDF(UDF):
    """Count-based tumbling window: fold every ``size`` items, then emit.

    Unlike the time-based :class:`~repro.engine.udf.WindowedAggregateUDF`
    (flushed by the hosting task's timer), a count window completes
    inside :meth:`process`, so it needs no timer and reports *read-ready*
    latency. A partially filled window is emitted only by an explicit
    :meth:`flush_partial` (the engine does not call it automatically).
    """

    def __init__(
        self,
        size: int,
        create: Callable[[], object],
        add: Callable[[object, object], object],
        finalize: Callable[[object], Iterable[object]],
        service_dist: Optional[Distribution] = None,
    ) -> None:
        super().__init__(service_dist)
        if size < 1:
            raise ValueError(f"size must be >= 1 (got {size})")
        self.size = size
        self._create = create
        self._add = add
        self._finalize = finalize
        self._acc = create()
        self._count = 0

    def process(self, payload: object):
        self._acc = self._add(self._acc, payload)
        self._count += 1
        if self._count >= self.size:
            outputs = tuple(self._finalize(self._acc))
            self._acc = self._create()
            self._count = 0
            return outputs
        return ()

    def flush_partial(self) -> Tuple[object, ...]:
        """Finalize a partially filled window (e.g. at shutdown)."""
        if self._count == 0:
            return ()
        outputs = tuple(self._finalize(self._acc))
        self._acc = self._create()
        self._count = 0
        return outputs


class UnionTagUDF(UDF):
    """Wrap payloads as ``(tag, payload)`` so merged streams stay apart."""

    def __init__(self, tag: object, service_dist: Optional[Distribution] = None) -> None:
        super().__init__(service_dist)
        self.tag = tag

    def process(self, payload: object):
        return ((self.tag, payload),)


class StatefulWindowedAggregateUDF(KeyedAggregateUDF):
    """Per-key windowed fold that reports its state footprint.

    The stateful-operator model: identical to
    :class:`KeyedAggregateUDF`, plus an optional ``state_probe`` hook
    ``(key, delta_bytes)`` invoked on every fold step so the engine's
    :class:`~repro.engine.state.StateManager` can account per-key state
    size (and hence migration/checkpoint cost). With the default
    ``state_probe=None`` the operator behaves exactly like its parent
    and is usable standalone.
    """

    def __init__(
        self,
        window: float,
        key_fn: Callable[[object], object],
        fold_init: Callable[[], object],
        fold: Callable[[object, object], object],
        bytes_per_event: int = 64,
        service_dist: Optional[Distribution] = None,
        state_probe: Optional[Callable[[object, int], None]] = None,
    ) -> None:
        if bytes_per_event < 0:
            raise ValueError(f"bytes_per_event must be >= 0 (got {bytes_per_event})")
        super().__init__(window, key_fn, fold_init, fold, service_dist=service_dist)
        self.bytes_per_event = bytes_per_event
        self.state_probe = state_probe
        inner_add = self._add

        def probed_add(acc, payload):
            if self.state_probe is not None:
                self.state_probe(key_fn(payload), self.bytes_per_event)
            return inner_add(acc, payload)

        self._add = probed_add


class KeyedJoinUDF(UDF):
    """Symmetric hash join over two tagged input streams, keyed.

    Payloads must be ``(tag, item)`` pairs (e.g. produced upstream by
    :class:`UnionTagUDF` with tags ``"left"``/``"right"``). Each item is
    buffered under its join key on its own side and joined against every
    buffered item of the *other* side with the same key, emitting
    ``(key, left_item, right_item)`` tuples. Buffers are count-bounded:
    each side keeps at most ``max_per_key`` items per key (oldest
    evicted first). The optional ``state_probe`` reports buffer growth
    and eviction as byte deltas, like
    :class:`StatefulWindowedAggregateUDF`.
    """

    LEFT = "left"
    RIGHT = "right"

    def __init__(
        self,
        key_fn: Callable[[object], object],
        max_per_key: int = 16,
        bytes_per_event: int = 64,
        service_dist: Optional[Distribution] = None,
        state_probe: Optional[Callable[[object, int], None]] = None,
    ) -> None:
        super().__init__(service_dist)
        if max_per_key < 1:
            raise ValueError(f"max_per_key must be >= 1 (got {max_per_key})")
        if bytes_per_event < 0:
            raise ValueError(f"bytes_per_event must be >= 0 (got {bytes_per_event})")
        self.key_fn = key_fn
        self.max_per_key = max_per_key
        self.bytes_per_event = bytes_per_event
        self.state_probe = state_probe
        self._sides: Dict[str, Dict[object, List[object]]] = {
            self.LEFT: {},
            self.RIGHT: {},
        }

    def _probe(self, key: object, delta: int) -> None:
        if self.state_probe is not None:
            self.state_probe(key, delta)

    def process(self, payload: object):
        tag, item = payload
        if tag not in self._sides:
            raise ValueError(
                f"KeyedJoinUDF payload tag must be {self.LEFT!r} or "
                f"{self.RIGHT!r} (got {tag!r})"
            )
        key = self.key_fn(item)
        mine = self._sides[tag].setdefault(key, [])
        mine.append(item)
        self._probe(key, self.bytes_per_event)
        if len(mine) > self.max_per_key:
            mine.pop(0)
            self._probe(key, -self.bytes_per_event)
        other_tag = self.RIGHT if tag == self.LEFT else self.LEFT
        matches = self._sides[other_tag].get(key, ())
        if tag == self.LEFT:
            return tuple((key, item, m) for m in matches)
        return tuple((key, m, item) for m in matches)

    def buffered_items(self) -> int:
        """Total buffered items across both sides (test/inspection aid)."""
        return sum(
            len(items)
            for side in self._sides.values()
            for items in side.values()
        )
