"""The master-side scheduler: deployment and elastic scaling actions.

The scheduler instantiates the runtime graph from the job graph (one task
per degree of parallelism, channels per wiring pattern), and executes the
scaling actions issued by the elastic scaler:

* **scale-up** — new tasks spawn after a startup delay (the paper reports
  1-2 s for starting tasks via Nephele's scheduler) and are wired into
  the producers' partitioners once running;
* **scale-down** — victims are removed from upstream partitioners
  immediately, then *drain*: they keep processing queued and in-flight
  items and only release their slot once empty (the paper notes
  scale-downs take longer because "intermediate queues need to be
  drained").
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional

from repro.engine.channel import NetworkModel, RuntimeChannel
from repro.engine.batching import BatchingStrategy
from repro.engine.resources import InsufficientResourcesError, ResourceManager
from repro.engine.runtime import RuntimeGraph, RuntimeVertex
from repro.engine.task import OutputGate, RuntimeTask
from repro.graphs.job_graph import JobEdge, JobGraph, JobVertex
from repro.simulation.kernel import Simulator
from repro.simulation.randomness import RandomStreams


class ScalingResult(NamedTuple):
    """Outcome of one :meth:`Scheduler.set_parallelism` call.

    ``requested`` is the signed change towards the (bounds-clamped)
    target; ``applied`` is the signed change actually initiated. They
    differ on scale-down when fewer tasks are drainable than asked
    (tasks below ``min_parallelism`` and still-pending additions are
    never drained) — ``requested < 0`` with ``applied == 0`` means the
    reduction was suppressed entirely.

    A scale-up is only ever reported as applied once the cluster's
    admission controller holds its slots; ``denied`` marks a scale-up
    the admission controller refused (``applied == 0``, ``reason``
    explains why). Denial is retryable — the reconciler re-issues the
    request on later ticks.
    """

    requested: int
    applied: int
    denied: bool = False
    reason: str = ""

    @property
    def clamped(self) -> bool:
        """Whether the action fell short of the requested change."""
        return self.applied != self.requested

    @property
    def partial(self) -> bool:
        """Whether only part of the requested change was initiated.

        The reconciler treats a partial application as unfinished work:
        the vertex's desired parallelism is kept and the remainder is
        re-issued on the next adjustment tick.
        """
        return self.applied != self.requested


class Scheduler:
    """Places tasks in worker slots and executes scaling actions."""

    def __init__(
        self,
        sim: Simulator,
        runtime: RuntimeGraph,
        resources: ResourceManager,
        streams: RandomStreams,
        batching_prototype: BatchingStrategy,
        network: NetworkModel,
        queue_capacity: int = 256,
        channel_capacity: int = 256,
        item_size: int = 256,
        startup_delay: float = 1.5,
        vectorized: bool = True,
        on_task_created: Optional[Callable[[RuntimeTask], None]] = None,
        on_channel_created: Optional[Callable[[RuntimeChannel], None]] = None,
        metrics=None,
        job_id: object = None,
    ) -> None:
        self.sim = sim
        self.runtime = runtime
        self.resources = resources
        self.streams = streams
        self.batching_prototype = batching_prototype
        self.network = network
        self.queue_capacity = queue_capacity
        self.channel_capacity = channel_capacity
        self.item_size = item_size
        self.startup_delay = startup_delay
        self.vectorized = vectorized
        self.on_task_created = on_task_created
        self.on_channel_created = on_channel_created
        #: optional MetricsRegistry; scaling/failure actions are counted
        #: under ``scheduler.*`` when set
        self.metrics = metrics
        #: slot-account identity used for admission requests; None means
        #: the resource manager's anonymous default account
        self.job_id = job_id
        #: optional hook called as ``(task, requester_name)`` right after
        #: a task is force-stopped by cluster arbitration
        self.on_preempted: Optional[Callable[[RuntimeTask, str], None]] = None
        #: optional hook called with the crashing task *before* it fails;
        #: returns extra recovery seconds added to the restart delay
        #: (checkpoint-restore replay — set only for stateful jobs)
        self.on_task_failed: Optional[Callable[[RuntimeTask], float]] = None
        #: optional hook called with the vertex name after any action that
        #: changed its target parallelism (state repartition sync)
        self.on_rescaled: Optional[Callable[[str], None]] = None
        #: log of executed scaling actions: (time, vertex, old_p, new_p)
        self.scaling_log: List[tuple] = []
        #: log of crashed tasks: (time, task_id)
        self.failure_log: List[tuple] = []

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    # ------------------------------------------------------------------
    # deployment
    # ------------------------------------------------------------------

    def deploy(self) -> None:
        """Instantiate the runtime graph at the job graph's initial parallelism."""
        graph = self.runtime.job_graph
        for job_vertex in graph.topological_order():
            rv = self.runtime.vertex(job_vertex.name)
            for _ in range(job_vertex.parallelism):
                self._create_task(rv)
        for edge in graph.edges:
            self._wire_edge_full_mesh(edge)
        for job_vertex in graph.topological_order():
            for task in self.runtime.vertex(job_vertex.name).tasks:
                task.start()
        self._count("scheduler.deploys")

    def _create_task(self, rv: RuntimeVertex) -> RuntimeTask:
        job_vertex = rv.job_vertex
        index = rv.next_subtask_index()
        rng = self.streams.get(f"task:{job_vertex.name}:{index}")
        task = RuntimeTask(
            self.sim,
            job_vertex.name,
            index,
            job_vertex.udf_factory(),
            rng,
            queue_capacity=self.queue_capacity,
            item_size=self.item_size,
            vectorized=self.vectorized,
        )
        profile = getattr(job_vertex, "rate_profile", None)
        if profile is not None:
            task.rate_profile = profile
        task.on_stopped = self._on_task_stopped
        self.resources.allocate_slot(task, self.job_id)
        rv.tasks.append(task)
        # Gates exist from creation so wiring can happen before start().
        for gate_index, edge in enumerate(job_vertex.outputs):
            task.out_gates.append(
                OutputGate(
                    self.sim,
                    task,
                    edge.name,
                    edge.pattern,
                    self.batching_prototype.clone(),
                    self.network,
                    key_fn=edge.key_fn,
                    start=index,
                )
            )
        if self.on_task_created is not None:
            self.on_task_created(task)
        self._count("scheduler.tasks_started")
        return task

    def _wire_edge_full_mesh(self, edge: JobEdge) -> None:
        producers = self.runtime.vertex(edge.source.name).active_tasks()
        consumers = self.runtime.vertex(edge.target.name).active_tasks()
        for producer in producers:
            gate = self._gate_of(producer, edge.name)
            channels = [self._create_channel(producer, consumer, edge) for consumer in consumers]
            gate.set_channels(channels)

    def _gate_of(self, task: RuntimeTask, edge_name: str) -> OutputGate:
        for gate in task.out_gates:
            if gate.edge_name == edge_name:
                return gate
        raise KeyError(f"task {task.task_id} has no gate for edge {edge_name!r}")

    def _create_channel(
        self, producer: RuntimeTask, consumer: RuntimeTask, edge: JobEdge
    ) -> RuntimeChannel:
        channel = RuntimeChannel(
            self.sim,
            consumer,
            self.network,
            edge.name,
            capacity=self.channel_capacity,
        )
        channel.producer = producer
        # Cross-worker edges pay the configured channel-latency penalty
        # (network-aware placement makes co-location visible end to end).
        penalty = getattr(self.network, "cross_worker_penalty", 0.0)
        if penalty:
            pw = self.resources.worker_of(producer)
            cw = self.resources.worker_of(consumer)
            if pw is not None and cw is not None and pw is not cw:
                channel.latency_penalty = penalty
        consumer.in_channels.append(channel)
        self.runtime.register_channel(channel)
        if self.on_channel_created is not None:
            self.on_channel_created(channel)
        return channel

    # ------------------------------------------------------------------
    # scaling actions
    # ------------------------------------------------------------------

    def set_parallelism(self, vertex_name: str, target: int) -> ScalingResult:
        """Scale a vertex towards ``target`` parallelism.

        Returns a :class:`ScalingResult` with the signed change towards
        the clamped target (``requested``) and the signed change actually
        initiated (``applied``). Pending scale-ups count as initiated, so
        repeated calls are idempotent.

        A scale-up first reserves its slots with the cluster's admission
        controller; on denial nothing is announced and the result carries
        ``denied=True`` with the reason. A granted scale-up therefore
        *holds* the slots it will consume when it materializes after the
        startup delay — deferred materialization cannot fail.
        """
        rv = self.runtime.vertex(vertex_name)
        job_vertex = rv.job_vertex
        target = job_vertex.clamp(target)
        current = rv.target_parallelism
        if target > current:
            count = target - current
            grant = self.resources.request_slots(self.job_id, count)
            if not grant.admitted:
                self._count("scheduler.admission_denials")
                return ScalingResult(count, 0, denied=True, reason=grant.reason)
            self._announce_scale_up(rv, count)
            self._notify_rescaled(vertex_name)
            return ScalingResult(count, count)
        if target < current:
            # Never drain tasks that have not materialized yet; reductions
            # apply to live tasks only.
            reducible = min(current - target, rv.parallelism - job_vertex.min_parallelism)
            reducible = max(0, min(reducible, rv.parallelism - 1))
            if reducible > 0:
                self.scale_down(vertex_name, reducible)
                self._notify_rescaled(vertex_name)
            return ScalingResult(target - current, -reducible)
        return ScalingResult(0, 0)

    def _notify_rescaled(self, vertex_name: str) -> None:
        if self.on_rescaled is not None:
            self.on_rescaled(vertex_name)

    def scale_up(self, vertex_name: str, count: int) -> None:
        """Announce ``count`` new tasks; they start after the startup delay.

        Reserves the slots synchronously; raises
        :class:`InsufficientResourcesError` if admission denies them, so
        callers learn about an impossible scale-up *now* rather than via
        an exception escaping a sim-heap callback ``startup_delay`` later.
        """
        if count <= 0:
            return
        grant = self.resources.request_slots(self.job_id, count)
        if not grant.admitted:
            self._count("scheduler.admission_denials")
            raise InsufficientResourcesError(grant.reason)
        self._announce_scale_up(self.runtime.vertex(vertex_name), count)

    def _announce_scale_up(self, rv: RuntimeVertex, count: int) -> None:
        rv.pending_additions += count
        self.sim.schedule(self.startup_delay, self._materialize_scale_up, rv, count)

    def _materialize_scale_up(self, rv: RuntimeVertex, count: int) -> None:
        rv.pending_additions -= count
        # All-or-nothing: the reservation held since request time
        # guarantees this capacity exists. If it somehow does not (a
        # direct caller bypassed admission), abort the whole batch before
        # creating anything — a mid-loop failure would leave some tasks
        # created and gate-wired with pending_additions already settled.
        if self.resources.free_slots_available() < count:
            self.resources.cancel_reservation(self.job_id, count)
            self._count("scheduler.scale_up_aborts")
            self._notify_rescaled(rv.name)
            return
        old_p = rv.parallelism
        new_tasks = [self._create_task(rv) for _ in range(count)]
        job_vertex = rv.job_vertex
        # Wire inbound: every active producer of each inbound edge gains
        # channels to the new tasks.
        for edge in job_vertex.inputs:
            for producer in self.runtime.vertex(edge.source.name).active_tasks():
                gate = self._gate_of(producer, edge.name)
                added = [self._create_channel(producer, task, edge) for task in new_tasks]
                gate.set_channels(list(gate.channels) + added)
        # Wire outbound: the new tasks gain channels to all active consumers.
        for edge in job_vertex.outputs:
            consumers = self.runtime.vertex(edge.target.name).active_tasks()
            for task in new_tasks:
                gate = self._gate_of(task, edge.name)
                gate.set_channels(
                    [self._create_channel(task, consumer, edge) for consumer in consumers]
                )
        for task in new_tasks:
            task.start()
        self.scaling_log.append((self.sim.now, rv.name, old_p, rv.parallelism))
        self._count("scheduler.scale_ups")

    def scale_down(self, vertex_name: str, count: int) -> None:
        """Gracefully remove ``count`` tasks (youngest first)."""
        if count <= 0:
            return
        rv = self.runtime.vertex(vertex_name)
        active = rv.active_tasks()
        count = min(count, len(active) - 1)  # never drain the last task
        if count <= 0:
            return
        victims = sorted(active, key=lambda t: t.subtask_index)[-count:]
        old_p = rv.parallelism
        self._unwire_from_producers(rv, victims)
        for victim in victims:
            victim.begin_drain()
        self.scaling_log.append((self.sim.now, rv.name, old_p, rv.parallelism))
        self._count("scheduler.scale_downs")

    def _unwire_from_producers(self, rv: RuntimeVertex, victims: List[RuntimeTask]) -> None:
        """Remove ``victims`` from all upstream partitioners so no new
        items are routed to them."""
        victim_set = set(id(t) for t in victims)
        for edge in rv.job_vertex.inputs:
            for producer in self.runtime.vertex(edge.source.name).tasks:
                if producer.state == "stopped":
                    continue
                try:
                    gate = self._gate_of(producer, edge.name)
                except KeyError:  # pragma: no cover - defensive
                    continue
                kept = [c for c in gate.channels if id(c.consumer) not in victim_set]
                if len(kept) != len(gate.channels):
                    gate.set_channels(kept)

    # ------------------------------------------------------------------
    # preemption (cluster arbitration)
    # ------------------------------------------------------------------

    def reducible_slots(self) -> int:
        """Slots arbitration could reclaim without violating bounds."""
        total = 0
        for rv in self.runtime.vertices.values():
            total += max(
                0,
                min(rv.parallelism - rv.job_vertex.min_parallelism, rv.parallelism - 1),
            )
        return total

    def preempt_slots(self, count: int, requester: str = "") -> int:
        """Force-stop up to ``count`` reducible tasks for another job.

        Victims are taken from the vertex with the most reducible tasks
        first (ties broken by name), youngest task first — mirroring
        scale-down's choice, but *abruptly*: a preempted task's queued
        work is discarded and its slot is released synchronously, so the
        requester can be granted the slots in the same admission call.
        Returns how many slots were actually freed.
        """
        freed = 0
        while freed < count:
            choice = self._pick_preemption_victim()
            if choice is None:
                break
            rv, victim = choice
            old_p = rv.parallelism
            self._unwire_from_producers(rv, [victim])
            victim.fail()  # releases the slot synchronously via on_stopped
            rv.preemptions += 1
            freed += 1
            self.scaling_log.append((self.sim.now, rv.name, old_p, rv.parallelism))
            self._count("scheduler.preemptions")
            if self.on_preempted is not None:
                self.on_preempted(victim, requester)
            self._notify_rescaled(rv.name)
        return freed

    def _pick_preemption_victim(self):
        best_rv = None
        best_headroom = 0
        for name in sorted(self.runtime.vertices):
            rv = self.runtime.vertices[name]
            headroom = min(
                rv.parallelism - rv.job_vertex.min_parallelism, rv.parallelism - 1
            )
            if headroom > best_headroom:
                best_rv, best_headroom = rv, headroom
        if best_rv is None:
            return None
        victim = max(best_rv.active_tasks(), key=lambda t: t.subtask_index)
        return best_rv, victim

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------

    def fail_task(self, task: RuntimeTask, restart_delay: Optional[float] = None) -> bool:
        """Crash ``task`` abruptly; optionally restart a replacement.

        The crashed task's queued work is lost (:meth:`RuntimeTask.fail`)
        and its slot is reclaimed immediately. With ``restart_delay`` set,
        a replacement task is announced at once (so the vertex's target
        parallelism is unchanged and the scaler does not double-react) and
        materializes after the delay — rewired into all live partitioners
        with a fresh QoS reporter, exactly like an elastic scale-up.
        Returns whether the task was actually live.
        """
        if task.state == "stopped":
            return False
        rv = self.runtime.vertex(task.vertex_name)
        old_p = rv.parallelism
        rv.crashes += 1
        # The state hook sees the task while it is still active (its rank
        # identifies the lost partition) and returns the replay delay of
        # checkpoint-restore recovery.
        recovery_delay = 0.0
        if self.on_task_failed is not None:
            recovery_delay = self.on_task_failed(task)
        task.fail()
        self.failure_log.append((self.sim.now, task.task_id))
        self.scaling_log.append((self.sim.now, rv.name, old_p, rv.parallelism))
        self._count("scheduler.task_failures")
        if restart_delay is not None:
            if restart_delay < 0:
                raise ValueError(f"restart_delay must be >= 0 (got {restart_delay})")
            # The crash just freed a slot, so the reservation is normally
            # granted — unless another job raced it away on a contended
            # pool, in which case the restart is skipped (permanent loss)
            # rather than crashing at materialization time.
            grant = self.resources.request_slots(self.job_id, 1)
            if grant.admitted:
                rv.pending_additions += 1
                self.sim.schedule(
                    restart_delay + recovery_delay, self._materialize_scale_up, rv, 1
                )
                self._count("scheduler.task_restarts")
            else:
                self._count("scheduler.restart_denials")
                self._notify_rescaled(task.vertex_name)
        else:
            # No replacement: the vertex permanently lost a degree of
            # parallelism, so keyed state must repartition onto survivors.
            self._notify_rescaled(task.vertex_name)
        return True

    def fail_worker(
        self, worker, restart_delay: Optional[float] = None
    ) -> List[RuntimeTask]:
        """Crash every task hosted on ``worker`` (worker-node loss).

        Returns the tasks that were crashed. Replacement tasks (when
        ``restart_delay`` is set) are placed by the resource manager and
        may land on other workers.
        """
        victims = [t for t in worker.hosted_tasks() if t.state != "stopped"]
        for task in victims:
            self.fail_task(task, restart_delay)
        return victims

    def _on_task_stopped(self, task: RuntimeTask) -> None:
        self.resources.release_slot(task)
        rv = self.runtime.vertex(task.vertex_name)
        if task in rv.tasks:
            rv.tasks.remove(task)
        # Close and unregister this task's outbound channels.
        for gate in task.out_gates:
            for channel in gate.channels:
                channel.close()
                self.runtime.unregister_channel(channel)
                if channel in channel.consumer.in_channels:
                    channel.consumer.in_channels.remove(channel)
        # Unregister the (already closed) inbound channels.
        for channel in task.in_channels:
            self.runtime.unregister_channel(channel)

    def stop_all(self) -> None:
        """Tear the whole job down (end of experiment)."""
        for task in self.runtime.all_tasks():
            if task.state != "stopped":
                task._finish_stop()
