"""The master-side scheduler: deployment and elastic scaling actions.

The scheduler instantiates the runtime graph from the job graph (one task
per degree of parallelism, channels per wiring pattern), and executes the
scaling actions issued by the elastic scaler:

* **scale-up** — new tasks spawn after a startup delay (the paper reports
  1-2 s for starting tasks via Nephele's scheduler) and are wired into
  the producers' partitioners once running;
* **scale-down** — victims are removed from upstream partitioners
  immediately, then *drain*: they keep processing queued and in-flight
  items and only release their slot once empty (the paper notes
  scale-downs take longer because "intermediate queues need to be
  drained").
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional

from repro.engine.channel import NetworkModel, RuntimeChannel
from repro.engine.batching import BatchingStrategy
from repro.engine.resources import ResourceManager
from repro.engine.runtime import RuntimeGraph, RuntimeVertex
from repro.engine.task import OutputGate, RuntimeTask
from repro.graphs.job_graph import JobEdge, JobGraph, JobVertex
from repro.simulation.kernel import Simulator
from repro.simulation.randomness import RandomStreams


class ScalingResult(NamedTuple):
    """Outcome of one :meth:`Scheduler.set_parallelism` call.

    ``requested`` is the signed change towards the (bounds-clamped)
    target; ``applied`` is the signed change actually initiated. They
    differ on scale-down when fewer tasks are drainable than asked
    (tasks below ``min_parallelism`` and still-pending additions are
    never drained) — ``requested < 0`` with ``applied == 0`` means the
    reduction was suppressed entirely.
    """

    requested: int
    applied: int

    @property
    def clamped(self) -> bool:
        """Whether the action fell short of the requested change."""
        return self.applied != self.requested

    @property
    def partial(self) -> bool:
        """Whether only part of the requested change was initiated.

        The reconciler treats a partial application as unfinished work:
        the vertex's desired parallelism is kept and the remainder is
        re-issued on the next adjustment tick.
        """
        return self.applied != self.requested


class Scheduler:
    """Places tasks in worker slots and executes scaling actions."""

    def __init__(
        self,
        sim: Simulator,
        runtime: RuntimeGraph,
        resources: ResourceManager,
        streams: RandomStreams,
        batching_prototype: BatchingStrategy,
        network: NetworkModel,
        queue_capacity: int = 256,
        channel_capacity: int = 256,
        item_size: int = 256,
        startup_delay: float = 1.5,
        vectorized: bool = True,
        on_task_created: Optional[Callable[[RuntimeTask], None]] = None,
        on_channel_created: Optional[Callable[[RuntimeChannel], None]] = None,
        metrics=None,
    ) -> None:
        self.sim = sim
        self.runtime = runtime
        self.resources = resources
        self.streams = streams
        self.batching_prototype = batching_prototype
        self.network = network
        self.queue_capacity = queue_capacity
        self.channel_capacity = channel_capacity
        self.item_size = item_size
        self.startup_delay = startup_delay
        self.vectorized = vectorized
        self.on_task_created = on_task_created
        self.on_channel_created = on_channel_created
        #: optional MetricsRegistry; scaling/failure actions are counted
        #: under ``scheduler.*`` when set
        self.metrics = metrics
        #: optional hook called with the crashing task *before* it fails;
        #: returns extra recovery seconds added to the restart delay
        #: (checkpoint-restore replay — set only for stateful jobs)
        self.on_task_failed: Optional[Callable[[RuntimeTask], float]] = None
        #: optional hook called with the vertex name after any action that
        #: changed its target parallelism (state repartition sync)
        self.on_rescaled: Optional[Callable[[str], None]] = None
        #: log of executed scaling actions: (time, vertex, old_p, new_p)
        self.scaling_log: List[tuple] = []
        #: log of crashed tasks: (time, task_id)
        self.failure_log: List[tuple] = []

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    # ------------------------------------------------------------------
    # deployment
    # ------------------------------------------------------------------

    def deploy(self) -> None:
        """Instantiate the runtime graph at the job graph's initial parallelism."""
        graph = self.runtime.job_graph
        for job_vertex in graph.topological_order():
            rv = self.runtime.vertex(job_vertex.name)
            for _ in range(job_vertex.parallelism):
                self._create_task(rv)
        for edge in graph.edges:
            self._wire_edge_full_mesh(edge)
        for job_vertex in graph.topological_order():
            for task in self.runtime.vertex(job_vertex.name).tasks:
                task.start()
        self._count("scheduler.deploys")

    def _create_task(self, rv: RuntimeVertex) -> RuntimeTask:
        job_vertex = rv.job_vertex
        index = rv.next_subtask_index()
        rng = self.streams.get(f"task:{job_vertex.name}:{index}")
        task = RuntimeTask(
            self.sim,
            job_vertex.name,
            index,
            job_vertex.udf_factory(),
            rng,
            queue_capacity=self.queue_capacity,
            item_size=self.item_size,
            vectorized=self.vectorized,
        )
        profile = getattr(job_vertex, "rate_profile", None)
        if profile is not None:
            task.rate_profile = profile
        task.on_stopped = self._on_task_stopped
        self.resources.allocate_slot(task)
        rv.tasks.append(task)
        # Gates exist from creation so wiring can happen before start().
        for gate_index, edge in enumerate(job_vertex.outputs):
            task.out_gates.append(
                OutputGate(
                    self.sim,
                    task,
                    edge.name,
                    edge.pattern,
                    self.batching_prototype.clone(),
                    self.network,
                    key_fn=edge.key_fn,
                    start=index,
                )
            )
        if self.on_task_created is not None:
            self.on_task_created(task)
        self._count("scheduler.tasks_started")
        return task

    def _wire_edge_full_mesh(self, edge: JobEdge) -> None:
        producers = self.runtime.vertex(edge.source.name).active_tasks()
        consumers = self.runtime.vertex(edge.target.name).active_tasks()
        for producer in producers:
            gate = self._gate_of(producer, edge.name)
            channels = [self._create_channel(producer, consumer, edge) for consumer in consumers]
            gate.set_channels(channels)

    def _gate_of(self, task: RuntimeTask, edge_name: str) -> OutputGate:
        for gate in task.out_gates:
            if gate.edge_name == edge_name:
                return gate
        raise KeyError(f"task {task.task_id} has no gate for edge {edge_name!r}")

    def _create_channel(
        self, producer: RuntimeTask, consumer: RuntimeTask, edge: JobEdge
    ) -> RuntimeChannel:
        channel = RuntimeChannel(
            self.sim,
            consumer,
            self.network,
            edge.name,
            capacity=self.channel_capacity,
        )
        channel.producer = producer
        consumer.in_channels.append(channel)
        self.runtime.register_channel(channel)
        if self.on_channel_created is not None:
            self.on_channel_created(channel)
        return channel

    # ------------------------------------------------------------------
    # scaling actions
    # ------------------------------------------------------------------

    def set_parallelism(self, vertex_name: str, target: int) -> ScalingResult:
        """Scale a vertex towards ``target`` parallelism.

        Returns a :class:`ScalingResult` with the signed change towards
        the clamped target (``requested``) and the signed change actually
        initiated (``applied``). Pending scale-ups count as initiated, so
        repeated calls are idempotent.
        """
        rv = self.runtime.vertex(vertex_name)
        job_vertex = rv.job_vertex
        target = job_vertex.clamp(target)
        current = rv.target_parallelism
        if target > current:
            self.scale_up(vertex_name, target - current)
            self._notify_rescaled(vertex_name)
            return ScalingResult(target - current, target - current)
        if target < current:
            # Never drain tasks that have not materialized yet; reductions
            # apply to live tasks only.
            reducible = min(current - target, rv.parallelism - job_vertex.min_parallelism)
            reducible = max(0, min(reducible, rv.parallelism - 1))
            if reducible > 0:
                self.scale_down(vertex_name, reducible)
                self._notify_rescaled(vertex_name)
            return ScalingResult(target - current, -reducible)
        return ScalingResult(0, 0)

    def _notify_rescaled(self, vertex_name: str) -> None:
        if self.on_rescaled is not None:
            self.on_rescaled(vertex_name)

    def scale_up(self, vertex_name: str, count: int) -> None:
        """Announce ``count`` new tasks; they start after the startup delay."""
        if count <= 0:
            return
        rv = self.runtime.vertex(vertex_name)
        rv.pending_additions += count
        self.sim.schedule(self.startup_delay, self._materialize_scale_up, rv, count)

    def _materialize_scale_up(self, rv: RuntimeVertex, count: int) -> None:
        rv.pending_additions -= count
        old_p = rv.parallelism
        new_tasks = [self._create_task(rv) for _ in range(count)]
        job_vertex = rv.job_vertex
        # Wire inbound: every active producer of each inbound edge gains
        # channels to the new tasks.
        for edge in job_vertex.inputs:
            for producer in self.runtime.vertex(edge.source.name).active_tasks():
                gate = self._gate_of(producer, edge.name)
                added = [self._create_channel(producer, task, edge) for task in new_tasks]
                gate.set_channels(list(gate.channels) + added)
        # Wire outbound: the new tasks gain channels to all active consumers.
        for edge in job_vertex.outputs:
            consumers = self.runtime.vertex(edge.target.name).active_tasks()
            for task in new_tasks:
                gate = self._gate_of(task, edge.name)
                gate.set_channels(
                    [self._create_channel(task, consumer, edge) for consumer in consumers]
                )
        for task in new_tasks:
            task.start()
        self.scaling_log.append((self.sim.now, rv.name, old_p, rv.parallelism))
        self._count("scheduler.scale_ups")

    def scale_down(self, vertex_name: str, count: int) -> None:
        """Gracefully remove ``count`` tasks (youngest first)."""
        if count <= 0:
            return
        rv = self.runtime.vertex(vertex_name)
        active = rv.active_tasks()
        count = min(count, len(active) - 1)  # never drain the last task
        if count <= 0:
            return
        victims = sorted(active, key=lambda t: t.subtask_index)[-count:]
        old_p = rv.parallelism
        victim_set = set(id(t) for t in victims)
        # Remove victims from all upstream partitioners first so no new
        # items are routed to them, then start draining.
        for edge in rv.job_vertex.inputs:
            for producer in self.runtime.vertex(edge.source.name).tasks:
                if producer.state == "stopped":
                    continue
                try:
                    gate = self._gate_of(producer, edge.name)
                except KeyError:  # pragma: no cover - defensive
                    continue
                kept = [c for c in gate.channels if id(c.consumer) not in victim_set]
                if len(kept) != len(gate.channels):
                    gate.set_channels(kept)
        for victim in victims:
            victim.begin_drain()
        self.scaling_log.append((self.sim.now, rv.name, old_p, rv.parallelism))
        self._count("scheduler.scale_downs")

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------

    def fail_task(self, task: RuntimeTask, restart_delay: Optional[float] = None) -> bool:
        """Crash ``task`` abruptly; optionally restart a replacement.

        The crashed task's queued work is lost (:meth:`RuntimeTask.fail`)
        and its slot is reclaimed immediately. With ``restart_delay`` set,
        a replacement task is announced at once (so the vertex's target
        parallelism is unchanged and the scaler does not double-react) and
        materializes after the delay — rewired into all live partitioners
        with a fresh QoS reporter, exactly like an elastic scale-up.
        Returns whether the task was actually live.
        """
        if task.state == "stopped":
            return False
        rv = self.runtime.vertex(task.vertex_name)
        old_p = rv.parallelism
        rv.crashes += 1
        # The state hook sees the task while it is still active (its rank
        # identifies the lost partition) and returns the replay delay of
        # checkpoint-restore recovery.
        recovery_delay = 0.0
        if self.on_task_failed is not None:
            recovery_delay = self.on_task_failed(task)
        task.fail()
        self.failure_log.append((self.sim.now, task.task_id))
        self.scaling_log.append((self.sim.now, rv.name, old_p, rv.parallelism))
        self._count("scheduler.task_failures")
        if restart_delay is not None:
            if restart_delay < 0:
                raise ValueError(f"restart_delay must be >= 0 (got {restart_delay})")
            rv.pending_additions += 1
            self.sim.schedule(
                restart_delay + recovery_delay, self._materialize_scale_up, rv, 1
            )
            self._count("scheduler.task_restarts")
        else:
            # No replacement: the vertex permanently lost a degree of
            # parallelism, so keyed state must repartition onto survivors.
            self._notify_rescaled(task.vertex_name)
        return True

    def fail_worker(
        self, worker, restart_delay: Optional[float] = None
    ) -> List[RuntimeTask]:
        """Crash every task hosted on ``worker`` (worker-node loss).

        Returns the tasks that were crashed. Replacement tasks (when
        ``restart_delay`` is set) are placed by the resource manager and
        may land on other workers.
        """
        victims = [t for t in worker.hosted_tasks() if t.state != "stopped"]
        for task in victims:
            self.fail_task(task, restart_delay)
        return victims

    def _on_task_stopped(self, task: RuntimeTask) -> None:
        self.resources.release_slot(task)
        rv = self.runtime.vertex(task.vertex_name)
        if task in rv.tasks:
            rv.tasks.remove(task)
        # Close and unregister this task's outbound channels.
        for gate in task.out_gates:
            for channel in gate.channels:
                channel.close()
                self.runtime.unregister_channel(channel)
                if channel in channel.consumer.in_channels:
                    channel.consumer.in_channels.remove(channel)
        # Unregister the (already closed) inbound channels.
        for channel in task.in_channels:
            self.runtime.unregister_channel(channel)

    def stop_all(self) -> None:
        """Tear the whole job down (end of experiment)."""
        for task in self.runtime.all_tasks():
            if task.state != "stopped":
                task._finish_stop()
