"""User-defined functions (UDFs) executed by runtime tasks.

The engine treats UDFs as opaque (paper Sec. II): the only contracts are

* :meth:`UDF.process` — consume one payload, return output payloads;
* :attr:`UDF.latency_mode` — ``"RR"`` (read-ready) or ``"RW"``
  (read-write), telling the measurement layer which task-latency
  definition applies (paper Sec. II-A3);
* :meth:`UDF.service_time` — the simulated compute cost per item, drawn
  from a :class:`~repro.simulation.randomness.Distribution`.

Windowed UDFs (:class:`WindowedAggregateUDF`) additionally expose a
window length; the hosting task flushes them periodically and reports
read-write latencies for the items consumed since the last flush.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, List, Optional, Tuple

from repro.simulation.randomness import (
    DEFAULT_BLOCK_SIZE,
    BlockSampler,
    Deterministic,
    Distribution,
)

#: latency measurement modes (paper Sec. II-A3)
READ_READY = "RR"
READ_WRITE = "RW"


class Emit:
    """Directs one output payload to a specific output gate.

    By default a UDF's outputs are replicated to *all* output gates (this
    matches e.g. the paper's TweetSource, which forwards each tweet both
    to HotTopics and to Filter). Wrapping a payload in ``Emit(gate,
    payload)`` restricts it to a single gate.
    """

    __slots__ = ("gate", "payload")

    def __init__(self, gate: int, payload: object) -> None:
        self.gate = gate
        self.payload = payload


class UDF:
    """Base class for all user-defined functions.

    Parameters
    ----------
    service_dist:
        Distribution of the simulated per-item compute time. Defaults to
        zero cost (pure forwarding).
    """

    latency_mode = READ_READY

    def __init__(self, service_dist: Optional[Distribution] = None) -> None:
        self.service_dist = service_dist if service_dist is not None else Deterministic(0.0)

    def open(self, task: object) -> None:
        """Called once when the hosting task starts; ``task`` is the host."""

    def close(self) -> None:
        """Called once when the hosting task stops."""

    def service_time(self, payload: object, rng: random.Random) -> float:
        """Simulated compute time for one item (may depend on the payload)."""
        return self.service_dist.sample(rng)

    def make_service_sampler(
        self, rng: random.Random, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> Optional[Callable[[object], float]]:
        """Return a ``payload -> seconds`` fast path for :meth:`service_time`.

        The returned callable must consume ``rng`` exactly as per-item
        :meth:`service_time` calls would (block pre-draws are fine: the
        task is the stream's only consumer, so order is preserved).
        Returning ``None`` disables the fast path — the default for
        subclasses that override :meth:`service_time`, since the engine
        cannot know what their draws depend on.
        """
        if type(self).service_time is not UDF.service_time:
            return None
        dist = self.service_dist
        if isinstance(dist, Deterministic):
            value = dist.value
            return lambda payload: value
        sampler = BlockSampler(dist, rng, block_size)
        next_sample = sampler.next
        return lambda payload: next_sample()

    def process(self, payload: object) -> Iterable[object]:
        """Consume one payload and return output payloads (or :class:`Emit`)."""
        raise NotImplementedError

    @property
    def is_windowed(self) -> bool:
        """Whether the hosting task must schedule periodic window flushes."""
        return False


class SourceUDF(UDF):
    """A source: generates payloads instead of consuming them.

    Subclasses (or users of the functional constructor) implement
    :meth:`generate`; the hosting source task calls it at the rate
    dictated by the vertex's rate profile.
    """

    def __init__(
        self,
        generator: Optional[Callable[[float, random.Random], object]] = None,
        service_dist: Optional[Distribution] = None,
    ) -> None:
        super().__init__(service_dist)
        self._generator = generator

    def generate(self, now: float, rng: random.Random) -> object:
        """Produce the next payload at virtual time ``now``."""
        if self._generator is None:
            raise NotImplementedError("provide a generator callable or override generate()")
        return self._generator(now, rng)

    def process(self, payload: object) -> Iterable[object]:  # pragma: no cover
        raise TypeError("source UDFs do not consume items")


class MapUDF(UDF):
    """Applies ``fn`` to every payload (1-in / 1-out, read-ready)."""

    def __init__(self, fn: Callable[[object], object], service_dist: Optional[Distribution] = None) -> None:
        super().__init__(service_dist)
        self.fn = fn

    def process(self, payload: object) -> Iterable[object]:
        return (self.fn(payload),)


class FilterUDF(UDF):
    """Forwards payloads for which ``predicate`` is true (read-ready)."""

    def __init__(
        self,
        predicate: Callable[[object], bool],
        service_dist: Optional[Distribution] = None,
    ) -> None:
        super().__init__(service_dist)
        self.predicate = predicate

    def process(self, payload: object) -> Iterable[object]:
        if self.predicate(payload):
            return (payload,)
        return ()


class FlatMapUDF(UDF):
    """Applies ``fn`` returning zero or more outputs per payload."""

    def __init__(
        self,
        fn: Callable[[object], Iterable[object]],
        service_dist: Optional[Distribution] = None,
    ) -> None:
        super().__init__(service_dist)
        self.fn = fn

    def process(self, payload: object) -> Iterable[object]:
        return tuple(self.fn(payload))


class WindowedAggregateUDF(UDF):
    """Time-window aggregation (read-write latency; paper Sec. II-A3).

    Items are folded into an accumulator; every ``window`` seconds the
    hosting task calls :meth:`flush`, which finalizes the accumulator into
    zero or more output payloads. The task latency of each consumed item
    is read-write: time from its consumption to the next write, which the
    hosting task measures using :meth:`consume_times_and_clear`.

    Parameters
    ----------
    window:
        Window length in (virtual) seconds, e.g. 0.2 for the paper's
        HotTopics 200 ms windows.
    create / add / finalize:
        Classic fold triple. ``finalize`` returns an iterable of outputs
        (possibly empty, in which case nothing is emitted for the window).
    emit_empty:
        If true, :meth:`flush` runs ``finalize`` even for windows that
        received no items (needed by aggregators that must emit
        heartbeats).
    """

    latency_mode = READ_WRITE

    def __init__(
        self,
        window: float,
        create: Callable[[], object],
        add: Callable[[object, object], object],
        finalize: Callable[[object], Iterable[object]],
        service_dist: Optional[Distribution] = None,
        emit_empty: bool = False,
    ) -> None:
        super().__init__(service_dist)
        if window <= 0:
            raise ValueError(f"window must be positive (got {window})")
        self.window = window
        self._create = create
        self._add = add
        self._finalize = finalize
        self.emit_empty = emit_empty
        self._acc = create()
        self._count = 0
        self._consume_times: List[float] = []

    @property
    def is_windowed(self) -> bool:
        return True

    def process(self, payload: object) -> Iterable[object]:
        """Fold the payload into the window; nothing is emitted here."""
        self._acc = self._add(self._acc, payload)
        self._count += 1
        return ()

    def record_consume(self, now: float) -> None:
        """Called by the host task after each consume, for RW latency."""
        self._consume_times.append(now)

    def flush(self) -> Tuple[object, ...]:
        """Finalize the current window and start a new one."""
        if self._count == 0 and not self.emit_empty:
            return ()
        outputs = tuple(self._finalize(self._acc))
        self._acc = self._create()
        self._count = 0
        return outputs

    def consume_times_and_clear(self) -> List[float]:
        """Consume-timestamps of the closed window (for RW latency)."""
        times = self._consume_times
        self._consume_times = []
        return times


class SinkUDF(UDF):
    """Terminal consumer; outputs nothing.

    ``on_item`` (if given) observes each payload — experiment recorders
    hook end-to-end latency sampling here.
    """

    def __init__(
        self,
        on_item: Optional[Callable[[object], None]] = None,
        service_dist: Optional[Distribution] = None,
    ) -> None:
        super().__init__(service_dist)
        self.on_item = on_item
        self.consumed = 0

    def process(self, payload: object) -> Iterable[object]:
        self.consumed += 1
        if self.on_item is not None:
            self.on_item(payload)
        return ()
