"""Cluster resource management: leasing workers and accounting.

The paper's Nephele scheduler "interfaces with Nephele's own resource
manager that leases and releases worker nodes as required"; this module
plays that role. It also keeps the resource-consumption metrics the
evaluation reports: *task hours* (integral of running tasks over time)
and *worker hours* (integral of leased workers over time).
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.engine.worker import WorkerNode
from repro.simulation.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.task import RuntimeTask


class InsufficientResourcesError(RuntimeError):
    """Raised when the worker pool cannot satisfy a slot request.

    The paper's prescription for this case (Sec. IV-E) is to inform the
    user; the elastic scaler catches this error and records an
    "unresolvable" event instead of crashing the job.
    """


#: placement strategies for :class:`ResourceManager`
PLACEMENT_PACK = "pack"
PLACEMENT_SPREAD = "spread"


class ResourceManager:
    """Leases workers from a bounded pool and accounts usage over time.

    ``placement`` selects where new tasks land:

    * ``"pack"`` (default) — fill the first leased worker with a free
      slot; minimizes the number of leased workers (and worker-hours);
    * ``"spread"`` — place on the leased worker with the most free
      slots, leasing a new worker once every leased one is at least
      half full; trades worker-hours for less per-node co-location.

    Operator placement is orthogonal to the paper's strategy (Sec. VI);
    both strategies satisfy its homogeneity assumption.
    """

    def __init__(
        self,
        sim: Simulator,
        pool_size: int = 130,
        slots_per_worker: int = 4,
        placement: str = PLACEMENT_PACK,
        speed_factors: Optional[List[float]] = None,
    ) -> None:
        if pool_size < 1 or slots_per_worker < 1:
            raise ValueError("pool_size and slots_per_worker must be >= 1")
        if placement not in (PLACEMENT_PACK, PLACEMENT_SPREAD):
            raise ValueError(f"unknown placement strategy {placement!r}")
        self.sim = sim
        self.pool_size = pool_size
        self.slots_per_worker = slots_per_worker
        self.placement = placement
        #: per-worker CPU speed factors (cycled); default: homogeneous
        self.speed_factors = list(speed_factors) if speed_factors else [1.0]
        if any(f <= 0 for f in self.speed_factors):
            raise ValueError("speed factors must be > 0")
        self._workers: List[WorkerNode] = []
        self._task_worker: Dict[int, WorkerNode] = {}
        self._next_worker_id = 0
        # usage integrals
        self._task_seconds = 0.0
        self._worker_seconds = 0.0
        self._last_change = 0.0
        self._active_tasks = 0

    @property
    def total_slots(self) -> int:
        """Slot capacity of the whole pool."""
        return self.pool_size * self.slots_per_worker

    @property
    def leased_workers(self) -> int:
        """Currently leased (non-empty or reserved) workers."""
        return len(self._workers)

    @property
    def active_tasks(self) -> int:
        """Tasks currently holding a slot."""
        return self._active_tasks

    def _advance_clock(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_change
        if elapsed > 0:
            self._task_seconds += self._active_tasks * elapsed
            self._worker_seconds += len(self._workers) * elapsed
            self._last_change = now

    def allocate_slot(self, task: "RuntimeTask") -> WorkerNode:
        """Place ``task`` on a worker, leasing a new one if needed."""
        self._advance_clock()
        worker = self._find_free_worker()
        if worker is None:
            if len(self._workers) >= self.pool_size:
                raise InsufficientResourcesError(
                    f"worker pool exhausted ({self.pool_size} workers, "
                    f"{self.total_slots} slots)"
                )
            speed = self.speed_factors[self._next_worker_id % len(self.speed_factors)]
            worker = WorkerNode(self._next_worker_id, self.slots_per_worker, speed)
            self._next_worker_id += 1
            self._workers.append(worker)
        worker.assign(task)
        self._task_worker[task.uid] = worker
        self._active_tasks += 1
        if hasattr(task, "speed_factor"):
            task.speed_factor = worker.speed_factor
        return worker

    def leased_worker_list(self) -> List[WorkerNode]:
        """Snapshot of the currently leased workers (lease order)."""
        return list(self._workers)

    def worker_of(self, task: "RuntimeTask") -> Optional[WorkerNode]:
        """The worker hosting ``task`` (``None`` if it holds no slot)."""
        return self._task_worker.get(task.uid)

    def free_slots_available(self) -> int:
        """Total slots that could still be allocated without error."""
        free = sum(w.free_slots for w in self._workers)
        free += (self.pool_size - len(self._workers)) * self.slots_per_worker
        return free

    def _find_free_worker(self) -> Optional[WorkerNode]:
        candidates = [w for w in self._workers if w.free_slots > 0]
        if not candidates:
            return None
        if self.placement == PLACEMENT_SPREAD:
            best = max(candidates, key=lambda w: w.free_slots)
            # Lease a fresh worker instead once everything is half full.
            if (
                best.free_slots < (self.slots_per_worker + 1) // 2
                and len(self._workers) < self.pool_size
            ):
                return None
            return best
        return candidates[0]

    def release_slot(self, task: "RuntimeTask") -> None:
        """Free the slot held by ``task``; empty workers are released."""
        self._advance_clock()
        worker = self._task_worker.pop(task.uid, None)
        if worker is None:
            raise KeyError(f"task {task.task_id} holds no slot")
        worker.release(task)
        self._active_tasks -= 1
        if worker.is_empty:
            self._workers.remove(worker)

    def task_hours(self) -> float:
        """Task-hours consumed so far (paper's resource metric, Fig. 6)."""
        self._advance_clock()
        return self._task_seconds / 3600.0

    def worker_hours(self) -> float:
        """Worker-hours consumed so far."""
        self._advance_clock()
        return self._worker_seconds / 3600.0

    def task_seconds(self) -> float:
        """Task-seconds consumed so far (scale-free variant of task hours)."""
        self._advance_clock()
        return self._task_seconds
