"""Cluster resource management: leasing workers, admission and accounting.

The paper's Nephele scheduler "interfaces with Nephele's own resource
manager that leases and releases worker nodes as required"; this module
plays that role. It also keeps the resource-consumption metrics the
evaluation reports: *task hours* (integral of running tasks over time)
and *worker hours* (integral of leased workers over time).

Beyond the paper's single job, the manager is the shared cluster's
admission controller (see :mod:`repro.engine.admission`): jobs register
a :class:`~repro.engine.admission.JobAccount` (quota, priority,
fair-share weight), every scale-up *reserves* its slots synchronously
through :meth:`request_slots` before any task is announced, and a
request the pool cannot cover is either satisfied by preempting
reducible tasks of other jobs (per the arbitration policy) or denied on
the spot. Reservations make deferred scale-ups safe by construction:
the slots a granted request will consume ``startup_delay`` later are
already held, so materialization can never fail on a contended pool.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Set, TYPE_CHECKING

from repro.engine.admission import (
    AdmissionDecision,
    ArbitrationPolicy,
    JobAccount,
    create_arbitration,
)
from repro.engine.worker import WorkerNode
from repro.simulation.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.task import RuntimeTask


class InsufficientResourcesError(RuntimeError):
    """Raised when the worker pool cannot satisfy a slot request.

    The paper's prescription for this case (Sec. IV-E) is to inform the
    user; the elastic scaler catches this error and records an
    "unresolvable" event instead of crashing the job.
    """


#: placement strategies for :class:`ResourceManager`
PLACEMENT_PACK = "pack"
PLACEMENT_SPREAD = "spread"
PLACEMENT_NETWORK = "network"

PLACEMENTS = (PLACEMENT_PACK, PLACEMENT_SPREAD, PLACEMENT_NETWORK)


class ResourceManager:
    """Leases workers from a bounded pool and accounts usage over time.

    ``placement`` selects where new tasks land:

    * ``"pack"`` (default) — fill the first leased worker with a free
      slot; minimizes the number of leased workers (and worker-hours);
    * ``"spread"`` — place on the leased worker with the most free
      slots, leasing a new worker once every leased one is at least
      half full; trades worker-hours for less per-node co-location;
    * ``"network"`` — co-locate connected vertices: prefer the leased
      worker hosting the most tasks of the new task's graph neighbors
      (its job's upstream/downstream vertices), falling back to pack.
      Combined with ``NetworkModel.cross_worker_penalty`` this charges
      cross-worker edges a channel-latency penalty, so placement
      actually shows up in end-to-end latency.

    Operator placement is orthogonal to the paper's strategy (Sec. VI);
    all strategies satisfy its homogeneity assumption by default.

    ``admission`` names the arbitration policy consulted when a
    reservation request exceeds free capacity (see
    :mod:`repro.engine.admission`); the default first-come policy never
    preempts, which preserves the historical shared-pool behavior.
    """

    def __init__(
        self,
        sim: Simulator,
        pool_size: int = 130,
        slots_per_worker: int = 4,
        placement: str = PLACEMENT_PACK,
        speed_factors: Optional[List[float]] = None,
        admission: str = "fcfs",
    ) -> None:
        if pool_size < 1 or slots_per_worker < 1:
            raise ValueError("pool_size and slots_per_worker must be >= 1")
        if placement not in PLACEMENTS:
            raise ValueError(f"unknown placement strategy {placement!r}")
        self.sim = sim
        self.pool_size = pool_size
        self.slots_per_worker = slots_per_worker
        self.placement = placement
        #: per-worker CPU speed factors, keyed by the worker's *stable*
        #: index in the pool (``worker_id % len``); default: homogeneous
        self.speed_factors = list(speed_factors) if speed_factors else [1.0]
        if any(f <= 0 for f in self.speed_factors):
            raise ValueError("speed factors must be > 0")
        self._workers: List[WorkerNode] = []
        self._task_worker: Dict[int, WorkerNode] = {}
        self._next_worker_id = 0
        #: released worker ids, reused lowest-first so a worker's id (and
        #: hence its speed factor) is a stable pool index rather than a
        #: function of lease history — same-seed runs agree regardless of
        #: the order slots were released in
        self._free_worker_ids: List[int] = []
        # usage integrals
        self._task_seconds = 0.0
        self._worker_seconds = 0.0
        self._last_change = 0.0
        self._active_tasks = 0
        # --- admission control -------------------------------------------
        self.arbitration: ArbitrationPolicy = create_arbitration(admission)
        #: job accounts by job id (None = the anonymous default account
        #: used by schedulers that never registered a job)
        self._accounts: Dict[object, JobAccount] = {}
        self._task_job: Dict[int, object] = {}
        #: per-job neighbor lookup for network-aware placement:
        #: ``vertex_name -> set of connected vertex names``
        self._neighbor_maps: Dict[object, Dict[str, Set[str]]] = {}
        #: outstanding reserved slots across all accounts
        self._reserved_total = 0
        # lifetime admission counters
        self.admission_denials = 0
        self.preempted_tasks = 0

    # ------------------------------------------------------------------
    # capacity arithmetic
    # ------------------------------------------------------------------

    @property
    def total_slots(self) -> int:
        """Slot capacity of the whole pool."""
        return self.pool_size * self.slots_per_worker

    @property
    def leased_workers(self) -> int:
        """Currently leased (non-empty or reserved) workers."""
        return len(self._workers)

    @property
    def active_tasks(self) -> int:
        """Tasks currently holding a slot."""
        return self._active_tasks

    @property
    def reserved_slots(self) -> int:
        """Slots reserved for granted-but-unmaterialized scale-ups."""
        return self._reserved_total

    def free_slots_available(self) -> int:
        """Physically free slots (ignores reservations).

        This is raw capacity; a new *request* can only take
        :meth:`allocatable_slots`, which subtracts slots already promised
        to granted scale-ups that have not materialized yet.
        """
        free = sum(w.free_slots for w in self._workers)
        free += (self.pool_size - len(self._workers)) * self.slots_per_worker
        return free

    def allocatable_slots(self) -> int:
        """Slots a new request could actually be granted right now."""
        return max(0, self.free_slots_available() - self._reserved_total)

    def _advance_clock(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_change
        if elapsed > 0:
            self._task_seconds += self._active_tasks * elapsed
            self._worker_seconds += len(self._workers) * elapsed
            for account in self._accounts.values():
                if account.held:
                    account.task_seconds += account.held * elapsed
            self._last_change = now

    # ------------------------------------------------------------------
    # job accounts (shared-cluster multi-tenancy)
    # ------------------------------------------------------------------

    def register_job(
        self,
        job_id: object,
        name: str,
        quota: Optional[int] = None,
        priority: int = 0,
        weight: float = 1.0,
    ) -> JobAccount:
        """Open a slot account for a job (quota/priority/weight)."""
        if job_id in self._accounts:
            raise ValueError(f"job {job_id!r} is already registered")
        account = JobAccount(job_id, name, quota=quota, priority=priority, weight=weight)
        self._accounts[job_id] = account
        return account

    def account(self, job_id: object) -> Optional[JobAccount]:
        """The registered account of a job (None if unregistered)."""
        return self._accounts.get(job_id)

    def _account_for(self, job_id: object) -> JobAccount:
        account = self._accounts.get(job_id)
        if account is None:
            # Anonymous default account: direct ResourceManager users and
            # pre-multi-tenancy call sites share one uncapped account.
            account = JobAccount(job_id, name=str(job_id) if job_id is not None else "default")
            self._accounts[job_id] = account
        return account

    def set_preemption_hook(
        self, job_id: object, hook: Callable[[int, str], int]
    ) -> None:
        """Install the job's ``(slots, requester) -> freed`` force-stop hook."""
        self._account_for(job_id).preempt_hook = hook

    def set_neighbor_map(self, job_id: object, neighbors: Dict[str, Set[str]]) -> None:
        """Register the job's vertex adjacency for network-aware placement."""
        self._neighbor_maps[job_id] = {k: set(v) for k, v in neighbors.items()}

    def job_summaries(self) -> Dict[str, dict]:
        """Deterministic per-job account snapshots (registered jobs only)."""
        self._advance_clock()
        out: Dict[str, dict] = {}
        for job_id in sorted(self._accounts, key=str):
            account = self._accounts[job_id]
            out[account.name] = account.summary()
        return out

    # ------------------------------------------------------------------
    # admission (reserve at request time)
    # ------------------------------------------------------------------

    def request_slots(self, job_id: object, count: int) -> AdmissionDecision:
        """Reserve ``count`` slots for a job's scale-up, or deny it.

        The decision is synchronous and final: an admitted request holds
        its slots until :meth:`allocate_slot` consumes them (or
        :meth:`cancel_reservation` returns them), so the deferred
        materialization can never fail. A request the free pool cannot
        cover consults the arbitration policy, which may free slots by
        preempting other jobs' reducible tasks; whatever still falls
        short is denied.
        """
        if count <= 0:
            return AdmissionDecision(True)
        account = self._account_for(job_id)
        if account.quota is not None and account.footprint + count > account.quota:
            account.denials += 1
            self.admission_denials += 1
            return AdmissionDecision(
                False,
                f"quota exceeded: {account.footprint}+{count} > {account.quota}",
            )
        shortfall = count - self.allocatable_slots()
        preempted: List[tuple] = []
        if shortfall > 0:
            freed = self._arbitrate(account, shortfall, preempted)
            shortfall -= freed
        if shortfall > 0:
            account.denials += 1
            self.admission_denials += 1
            return AdmissionDecision(
                False,
                f"insufficient cluster capacity: need {count}, "
                f"allocatable {self.allocatable_slots()}",
                tuple(preempted),
            )
        account.reserved += count
        self._reserved_total += count
        return AdmissionDecision(True, preempted=tuple(preempted))

    def _arbitrate(
        self, requester: JobAccount, shortfall: int, preempted: List[tuple]
    ) -> int:
        """Free up to ``shortfall`` slots by preempting eligible victims."""
        accounts = [self._accounts[k] for k in sorted(self._accounts, key=str)]
        victims = self.arbitration.victims(
            accounts, requester, shortfall, self.total_slots
        )
        freed_total = 0
        for victim in victims:
            if freed_total >= shortfall:
                break
            if victim.preempt_hook is None:
                continue
            freed = victim.preempt_hook(shortfall - freed_total, requester.name)
            if freed > 0:
                victim.preemptions_suffered += freed
                requester.preemptions_inflicted += freed
                self.preempted_tasks += freed
                freed_total += freed
                preempted.append((victim.name, freed))
        return freed_total

    def cancel_reservation(self, job_id: object, count: int) -> None:
        """Return ``count`` unused reserved slots (aborted scale-up)."""
        if count <= 0:
            return
        account = self._account_for(job_id)
        returned = min(count, account.reserved)
        account.reserved -= returned
        self._reserved_total -= returned

    # ------------------------------------------------------------------
    # slot allocation
    # ------------------------------------------------------------------

    def allocate_slot(self, task: "RuntimeTask", job_id: object = None) -> WorkerNode:
        """Place ``task`` on a worker, leasing a new one if needed.

        When the job holds a reservation (granted scale-up), one reserved
        slot is consumed; otherwise this is a direct allocation (initial
        deployment) that raises :class:`InsufficientResourcesError` on an
        exhausted pool.
        """
        self._advance_clock()
        account = self._account_for(job_id)
        worker = self._find_free_worker(task, job_id)
        if worker is None:
            if len(self._workers) >= self.pool_size:
                raise InsufficientResourcesError(
                    f"worker pool exhausted ({self.pool_size} workers, "
                    f"{self.total_slots} slots)"
                )
            worker = self._lease_worker()
        worker.assign(task)
        self._task_worker[task.uid] = worker
        self._task_job[task.uid] = job_id
        self._active_tasks += 1
        account.held += 1
        if account.reserved > 0:
            account.reserved -= 1
            self._reserved_total -= 1
        if hasattr(task, "speed_factor"):
            task.speed_factor = worker.speed_factor
        return worker

    def _lease_worker(self) -> WorkerNode:
        if self._free_worker_ids:
            worker_id = heapq.heappop(self._free_worker_ids)
        else:
            worker_id = self._next_worker_id
            self._next_worker_id += 1
        speed = self.speed_factors[worker_id % len(self.speed_factors)]
        worker = WorkerNode(worker_id, self.slots_per_worker, speed)
        self._workers.append(worker)
        return worker

    def leased_worker_list(self) -> List[WorkerNode]:
        """Snapshot of the currently leased workers (lease order)."""
        return list(self._workers)

    def worker_of(self, task: "RuntimeTask") -> Optional[WorkerNode]:
        """The worker hosting ``task`` (``None`` if it holds no slot)."""
        return self._task_worker.get(task.uid)

    def _find_free_worker(
        self, task: Optional["RuntimeTask"] = None, job_id: object = None
    ) -> Optional[WorkerNode]:
        candidates = [w for w in self._workers if w.free_slots > 0]
        if not candidates:
            return None
        if self.placement == PLACEMENT_SPREAD:
            best = max(candidates, key=lambda w: w.free_slots)
            # Lease a fresh worker instead once everything is half full.
            if (
                best.free_slots < (self.slots_per_worker + 1) // 2
                and len(self._workers) < self.pool_size
            ):
                return None
            return best
        if self.placement == PLACEMENT_NETWORK and task is not None:
            neighbors = self._neighbor_maps.get(job_id, {}).get(
                getattr(task, "vertex_name", None), ()
            )
            if neighbors:
                best, best_count = None, 0
                for worker in candidates:
                    count = sum(
                        1
                        for hosted in worker.hosted_tasks()
                        if hosted.vertex_name in neighbors
                        and self._task_job.get(hosted.uid) == job_id
                    )
                    if count > best_count:
                        best, best_count = worker, count
                if best is not None:
                    return best
            # no co-location opportunity: fall through to pack
        return candidates[0]

    def release_slot(self, task: "RuntimeTask") -> None:
        """Free the slot held by ``task``; empty workers are released."""
        self._advance_clock()
        worker = self._task_worker.pop(task.uid, None)
        if worker is None:
            raise KeyError(f"task {task.task_id} holds no slot")
        worker.release(task)
        self._active_tasks -= 1
        job_id = self._task_job.pop(task.uid, None)
        account = self._accounts.get(job_id)
        if account is not None and account.held > 0:
            account.held -= 1
        if worker.is_empty:
            self._workers.remove(worker)
            heapq.heappush(self._free_worker_ids, worker.worker_id)

    # ------------------------------------------------------------------
    # usage metrics
    # ------------------------------------------------------------------

    def task_hours(self) -> float:
        """Task-hours consumed so far (paper's resource metric, Fig. 6)."""
        self._advance_clock()
        return self._task_seconds / 3600.0

    def worker_hours(self) -> float:
        """Worker-hours consumed so far."""
        self._advance_clock()
        return self._worker_seconds / 3600.0

    def task_seconds(self) -> float:
        """Task-seconds consumed so far (scale-free variant of task hours)."""
        self._advance_clock()
        return self._task_seconds
