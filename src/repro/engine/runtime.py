"""The runtime graph: parallelized instantiation of the job graph.

``G = (V, E)`` (paper Sec. II-A2): each :class:`RuntimeVertex` tracks the
live task set of one job vertex, and the graph keeps a per-job-edge
registry of live channels. Draining tasks still process residual items
but no longer count towards the vertex's degree of parallelism.
"""

from __future__ import annotations

from typing import Dict, List

from repro.engine.channel import RuntimeChannel
from repro.engine.task import DRAINING, RUNNING, RuntimeTask
from repro.graphs.job_graph import JobGraph, JobVertex


class RuntimeVertex:
    """Live task set of one job vertex."""

    def __init__(self, job_vertex: JobVertex) -> None:
        self.job_vertex = job_vertex
        self.name = job_vertex.name
        self.tasks: List[RuntimeTask] = []
        #: scale-ups announced but not yet started (startup delay)
        self.pending_additions = 0
        #: lifetime count of crashed (fault-injected) tasks
        self.crashes = 0
        #: lifetime count of tasks force-stopped by cluster arbitration
        self.preemptions = 0
        self._next_subtask_index = 0

    def next_subtask_index(self) -> int:
        """Monotonically increasing subtask index for new tasks."""
        index = self._next_subtask_index
        self._next_subtask_index += 1
        return index

    def active_tasks(self) -> List[RuntimeTask]:
        """Tasks that count towards the degree of parallelism."""
        return [t for t in self.tasks if t.state == RUNNING or t.state == "created"]

    def draining_tasks(self) -> List[RuntimeTask]:
        """Tasks being gracefully stopped."""
        return [t for t in self.tasks if t.state == DRAINING]

    @property
    def parallelism(self) -> int:
        """Current effective degree of parallelism (excludes draining)."""
        return len(self.active_tasks())

    @property
    def target_parallelism(self) -> int:
        """Parallelism including announced-but-not-started tasks."""
        return self.parallelism + self.pending_additions

    def __repr__(self) -> str:
        return f"RuntimeVertex({self.name!r}, p={self.parallelism})"


class RuntimeGraph:
    """Tracks the live tasks and channels of a deployed job."""

    def __init__(self, job_graph: JobGraph) -> None:
        self.job_graph = job_graph
        self.vertices: Dict[str, RuntimeVertex] = {
            name: RuntimeVertex(v) for name, v in job_graph.vertices.items()
        }
        #: live channels per job edge name
        self.edge_channels: Dict[str, List[RuntimeChannel]] = {
            e.name: [] for e in job_graph.edges
        }

    def vertex(self, name: str) -> RuntimeVertex:
        """Runtime vertex by job-vertex name."""
        return self.vertices[name]

    def parallelism(self, name: str) -> int:
        """Effective degree of parallelism of a job vertex."""
        return self.vertices[name].parallelism

    def all_tasks(self) -> List[RuntimeTask]:
        """Every live (running or draining) task."""
        tasks: List[RuntimeTask] = []
        for vertex in self.vertices.values():
            tasks.extend(vertex.tasks)
        return tasks

    def register_channel(self, channel: RuntimeChannel) -> None:
        """Add a channel to the per-edge registry."""
        self.edge_channels.setdefault(channel.edge_name, []).append(channel)

    def unregister_channel(self, channel: RuntimeChannel) -> None:
        """Remove a closed channel from the registry."""
        channels = self.edge_channels.get(channel.edge_name)
        if channels is not None and channel in channels:
            channels.remove(channel)

    def channels_of_edge(self, edge_name: str) -> List[RuntimeChannel]:
        """Live channels instantiating a job edge."""
        return list(self.edge_channels.get(edge_name, ()))

    def total_parallelism(self) -> int:
        """Sum of effective parallelism across all vertices."""
        return sum(v.parallelism for v in self.vertices.values())

    def __repr__(self) -> str:
        parts = ", ".join(f"{v.name}:{v.parallelism}" for v in self.vertices.values())
        return f"RuntimeGraph({parts})"
