"""Output-batching strategies (paper Sec. III-B configurations).

Each runtime channel serializes emitted items into an output buffer and
ships the buffer as one batch. *When* the buffer is shipped is the
batching strategy:

* :class:`InstantFlush` — ship every item immediately (Storm /
  Nephele-IF: lowest latency, highest per-item shipping overhead);
* :class:`FixedSizeBatching` — ship only when the buffer holds a fixed
  number of bytes (Nephele-16KiB: maximum throughput, seconds of latency
  at low rates);
* :class:`AdaptiveDeadlineBatching` — ship when the *oldest* buffered
  item has waited a configurable deadline, or when the buffer fills
  (Nephele-<ℓ>ms: the paper's adaptive output batching [16], whose
  deadline the QoS managers re-tune every adjustment interval).
"""

from __future__ import annotations

from typing import Optional


class BatchingStrategy:
    """Decides when a channel's output buffer is shipped."""

    def should_flush_on_emit(self, buffered_items: int, buffered_bytes: int) -> bool:
        """Whether to ship immediately after an item was buffered."""
        raise NotImplementedError

    def flush_deadline(self) -> Optional[float]:
        """Max seconds the oldest item may wait before a timer flush.

        ``None`` disables the timer (size-only flushing).
        """
        return None

    def clone(self) -> "BatchingStrategy":
        """Fresh instance for a new channel (strategies may be stateful)."""
        raise NotImplementedError


class InstantFlush(BatchingStrategy):
    """Ship every data item individually, immediately."""

    def should_flush_on_emit(self, buffered_items: int, buffered_bytes: int) -> bool:
        return True

    def clone(self) -> "InstantFlush":
        return InstantFlush()

    def __repr__(self) -> str:
        return "InstantFlush()"


class FixedSizeBatching(BatchingStrategy):
    """Ship only when the buffer reaches ``buffer_bytes`` (default 16 KiB).

    No timer: at low rates the buffer can take seconds to fill, which is
    exactly the multi-second warm-up latency of Nephele-16KiB in Fig. 3.
    """

    def __init__(self, buffer_bytes: int = 16 * 1024) -> None:
        if buffer_bytes < 1:
            raise ValueError(f"buffer_bytes must be >= 1 (got {buffer_bytes})")
        self.buffer_bytes = buffer_bytes

    def should_flush_on_emit(self, buffered_items: int, buffered_bytes: int) -> bool:
        return buffered_bytes >= self.buffer_bytes

    def clone(self) -> "FixedSizeBatching":
        return FixedSizeBatching(self.buffer_bytes)

    def __repr__(self) -> str:
        return f"FixedSizeBatching({self.buffer_bytes})"


class AdaptiveDeadlineBatching(BatchingStrategy):
    """Deadline-driven batching with a size cap (adaptive output batching).

    The per-channel ``deadline`` bounds the output-batch latency of the
    oldest buffered item; QoS managers overwrite it every adjustment
    interval with the budget computed by
    :class:`repro.core.batching_policy.AdaptiveBatchingPolicy`. The size
    cap keeps single batches within one network buffer.
    """

    def __init__(
        self,
        initial_deadline: float = 0.001,
        buffer_bytes: int = 16 * 1024,
        min_deadline: float = 0.0,
        max_deadline: float = 0.5,
    ) -> None:
        if buffer_bytes < 1:
            raise ValueError(f"buffer_bytes must be >= 1 (got {buffer_bytes})")
        if not 0.0 <= min_deadline <= max_deadline:
            raise ValueError("need 0 <= min_deadline <= max_deadline")
        self.buffer_bytes = buffer_bytes
        self.min_deadline = min_deadline
        self.max_deadline = max_deadline
        self._deadline = self._clamp(initial_deadline)

    def _clamp(self, value: float) -> float:
        return max(self.min_deadline, min(self.max_deadline, value))

    @property
    def deadline(self) -> float:
        """Current flush deadline in seconds."""
        return self._deadline

    def set_deadline(self, deadline: float) -> None:
        """Re-tune the deadline (clamped into ``[min, max]``)."""
        self._deadline = self._clamp(deadline)

    def should_flush_on_emit(self, buffered_items: int, buffered_bytes: int) -> bool:
        if self._deadline <= 0.0:
            return True
        return buffered_bytes >= self.buffer_bytes

    def flush_deadline(self) -> Optional[float]:
        if self._deadline <= 0.0:
            return None
        return self._deadline

    def clone(self) -> "AdaptiveDeadlineBatching":
        return AdaptiveDeadlineBatching(
            self._deadline, self.buffer_bytes, self.min_deadline, self.max_deadline
        )

    def __repr__(self) -> str:
        return f"AdaptiveDeadlineBatching(deadline={self._deadline:.6f})"
