"""Data items flowing through the runtime graph.

A :class:`DataItem` wraps a payload with the timestamps the measurement
architecture needs: ``created_at`` (set once, at the source, for
end-to-end ground truth) and ``emitted_at`` (set per hop when the item is
written into a channel's output buffer, used for channel and output-batch
latency). Items are cloned per target channel so per-hop timestamps never
alias across broadcast copies.
"""

from __future__ import annotations

from typing import Optional, Tuple

#: positional layout of :meth:`DataItem.to_record` tuples
RECORD_FIELDS = ("payload", "created_at", "size", "emitted_at", "enqueued_at", "sampled")


class DataItem:
    """One data item in flight on a single channel hop."""

    __slots__ = ("payload", "created_at", "size", "emitted_at", "enqueued_at", "sampled")

    def __init__(
        self,
        payload: object,
        created_at: float,
        size: int = 256,
        sampled: bool = True,
    ) -> None:
        self.payload = payload
        #: virtual time the item was first emitted by a source task
        self.created_at = created_at
        #: serialized size in bytes (drives buffer fill and network time)
        self.size = size
        #: virtual time the item was written into the current channel's
        #: output buffer (per-hop, reset by :meth:`hop_copy`)
        self.emitted_at: Optional[float] = None
        #: virtual time the item entered the consumer's input queue
        self.enqueued_at: Optional[float] = None
        #: whether this item participates in latency sampling
        self.sampled = sampled

    def hop_copy(self) -> "DataItem":
        """Clone for the next hop, preserving provenance fields only."""
        return DataItem(self.payload, self.created_at, self.size, self.sampled)

    def to_record(self) -> Tuple:
        """The item's compact record form: a plain tuple (see RECORD_FIELDS).

        Records are what batched hot paths pass around instead of objects
        — no per-item ``__dict__``/slot descriptor overhead, C-speed
        construction, and trivially picklable for partition workers.
        :meth:`from_record` restores an equal item (all fields, including
        per-hop timestamps — unlike :meth:`hop_copy`, which resets them).
        """
        return (self.payload, self.created_at, self.size,
                self.emitted_at, self.enqueued_at, self.sampled)

    @classmethod
    def from_record(cls, record: Tuple) -> "DataItem":
        """Rebuild a :class:`DataItem` equal to the one ``to_record`` saw."""
        payload, created_at, size, emitted_at, enqueued_at, sampled = record
        item = cls(payload, created_at, size, sampled)
        item.emitted_at = emitted_at
        item.enqueued_at = enqueued_at
        return item

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DataItem(created_at={self.created_at:.6f}, size={self.size})"
