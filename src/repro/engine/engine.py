"""Engine facade: configuration presets and the master-node control loop.

:class:`EngineConfig` bundles every tunable of the simulated SPE; its
presets mirror the paper's four motivation configurations (Sec. III-B):
``storm_like``, ``nephele_instant_flush``, ``nephele_fixed_buffer`` and
``nephele_adaptive`` (the latter optionally *elastic*, i.e. running the
paper's reactive scaling strategy).

:class:`StreamProcessingEngine` wires everything together: it deploys a
job graph, attaches QoS reporters/managers, and runs the master's control
loop — measurement ticks (reporter → manager), adjustment ticks (partial
summaries → global summary → constraint tracking → adaptive batching →
elastic scaler).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.actuation.config import ActuationConfig
from repro.actuation.reconciler import ReconciliationController
from repro.core.batching_policy import AdaptiveBatchingPolicy
from repro.core.constraints import ConstraintTracker, LatencyConstraint
from repro.core.elastic_scaler import ElasticScaler
from repro.core.policy import (
    DEFAULT_POLICY,
    PolicyContext,
    PolicySpec,
    parse_policy_spec,
)
from repro.engine.batching import (
    AdaptiveDeadlineBatching,
    BatchingStrategy,
    FixedSizeBatching,
    InstantFlush,
)
from repro.engine.channel import NetworkModel, RuntimeChannel
from repro.engine.resources import ResourceManager
from repro.engine.runtime import RuntimeGraph
from repro.engine.scheduler import Scheduler
from repro.engine.state import MigrationAdvisor, StateManager, StatefulVertexSpec
from repro.engine.task import RuntimeTask
from repro.graphs.job_graph import JobGraph
from repro.obs.config import ObservabilityConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.sampling import MetricsSampler, SamplingClock
from repro.obs.trace import DecisionTrace
from repro.qos.manager import QoSManager
from repro.qos.reporter import ChannelReporter, TaskReporter
from repro.qos.summary import GlobalSummary, merge_partial_summaries
from repro.simulation.faults import FaultInjector, FaultPlan
from repro.simulation.kernel import Simulator
from repro.simulation.randomness import RandomStreams


@dataclass
class EngineConfig:
    """All tunables of the simulated engine in one place."""

    #: output-batching strategy prototype, cloned per channel
    batching: BatchingStrategy = field(default_factory=InstantFlush)
    #: per-batch network latency model and shipping overheads
    base_latency: float = 0.0005
    bandwidth: float = 125_000_000.0
    per_batch_overhead: float = 0.00004
    per_item_overhead: float = 0.000002
    #: one-off first-transfer latency per channel (TCP setup; 0 = off)
    connection_setup: float = 0.0
    #: bounded input queue capacity per task (items)
    queue_capacity: int = 256
    #: per-channel outstanding-item capacity (credit limit)
    channel_capacity: int = 256
    #: serialized item size in bytes
    item_size: int = 256
    #: QoS measurement interval (paper: 1 s)
    measurement_interval: float = 1.0
    #: master adjustment interval (paper: 5 s)
    adjustment_interval: float = 5.0
    #: sliding window of past measurements pooled into summaries (Eq. 2)
    summary_window: int = 5
    #: number of QoS managers the tasks/channels are partitioned over
    qos_managers: int = 4
    #: whether the elastic scaler runs (the paper's strategy)
    elastic: bool = False
    #: scaling policy spec — a registry name with optional knobs, e.g.
    #: ``"scale-reactively"`` or ``"drs:target_fraction=0.9"`` (see
    #: :mod:`repro.core.policy`); None = the paper's default policy
    policy: Optional[str] = None
    #: queue-wait share of the constraint slack (paper: 20 %)
    w_fraction: float = 0.2
    #: bottleneck utilization threshold (a value close to 1)
    rho_max: float = 0.9
    #: adjustment intervals of post-scale-up inactivity (paper: 2)
    inactivity_intervals: int = 2
    #: refuse scaling on measurements older than this (seconds; None = off)
    staleness_threshold: Optional[float] = 10.0
    #: post-fault cooldown on scale-downs (seconds; fault injection)
    recovery_cooldown: float = 15.0
    #: actuation supervision (None = synchronous, infallible rescaling;
    #: see :class:`repro.actuation.ActuationConfig`)
    actuation: Optional[ActuationConfig] = None
    #: periodic checkpoint interval for stateful vertices (seconds).
    #: Shorter intervals cost more snapshot pauses but shrink the replay
    #: window charged to latency after a task crash (cost/recovery
    #: tradeoff; ignored by stateless jobs)
    checkpoint_interval: float = 15.0
    #: task startup delay in seconds (paper: 1-2 s)
    startup_delay: float = 1.5
    #: clamp for the fitting coefficient e_jv
    e_bounds: Tuple[float, float] = (0.05, 200.0)
    #: adaptive-batching share of the slack (paper: 80 %)
    batch_fraction: float = 0.8
    #: converts mean-obl budget into a flush deadline (at low per-gate
    #: rates most batches are single items that wait the full deadline,
    #: so the factor stays slightly below 1)
    deadline_factor: float = 0.9
    #: cluster size (paper: 130 workers x 4 cores)
    worker_pool: int = 130
    slots_per_worker: int = 4
    #: task placement strategy: "pack", "spread" or "network"
    #: (network-aware: co-locate connected vertices of the same job)
    placement: str = "pack"
    #: slot arbitration when jobs compete for a full pool: "fcfs" (no
    #: preemption), "priority" or "fair-share" (see repro.engine.admission)
    admission: str = "fcfs"
    #: extra per-transfer latency charged to channels whose endpoints sit
    #: on different workers (0 = off; pairs with placement="network")
    cross_worker_penalty: float = 0.0
    #: per-worker CPU speed factors, cycled over leased workers; the
    #: default (None) keeps the paper's homogeneity assumption — pass
    #: e.g. (1.0, 1.0, 1.0, 0.5) to inject hot-spot workers
    worker_speed_factors: Optional[Tuple[float, ...]] = None
    #: root RNG seed for reproducibility
    seed: int = 7
    #: block pre-draw of per-task service times (numpy-vectorized where
    #: the distribution allows; bit-identical to scalar draws, so this
    #: only changes speed — the toggle exists for the determinism tests)
    vectorized_sampling: bool = True

    # ------------------------------------------------------------------
    # presets mirroring the paper's configurations (Sec. III-B)
    # ------------------------------------------------------------------

    @classmethod
    def storm_like(cls, **overrides) -> "EngineConfig":
        """Apache-Storm-style: instant flushing, slightly higher overheads."""
        config = cls(batching=InstantFlush())
        config.per_batch_overhead = 0.00005
        return replace(config, **overrides)

    @classmethod
    def nephele_instant_flush(cls, **overrides) -> "EngineConfig":
        """Nephele-IF: instant flushing."""
        return replace(cls(batching=InstantFlush()), **overrides)

    @classmethod
    def nephele_fixed_buffer(cls, buffer_bytes: int = 16 * 1024, **overrides) -> "EngineConfig":
        """Nephele-16KiB: fixed output buffers, throughput-optimized."""
        return replace(cls(batching=FixedSizeBatching(buffer_bytes)), **overrides)

    @classmethod
    def nephele_adaptive(cls, elastic: bool = False, **overrides) -> "EngineConfig":
        """Nephele-<ℓ>ms: adaptive output batching, optionally elastic."""
        config = cls(batching=AdaptiveDeadlineBatching(), elastic=elastic)
        return replace(config, **overrides)


def _vertex_neighbors(job_graph: JobGraph) -> Dict[str, set]:
    """Vertex adjacency of a job graph (for network-aware placement)."""
    neighbors: Dict[str, set] = {name: set() for name in job_graph.vertices}
    for edge in job_graph.edges:
        neighbors[edge.source.name].add(edge.target.name)
        neighbors[edge.target.name].add(edge.source.name)
    return neighbors


class DeployedJob:
    """One deployed job's full state: runtime graph, QoS plumbing, scaler.

    Several jobs may share one engine (and hence one worker pool) — the
    elasticity story's natural setting: no job needs permanent peak
    provisioning, so the pool is shared and leased on demand.
    """

    _ids = 0

    def __init__(
        self,
        engine: "StreamProcessingEngine",
        job_graph: JobGraph,
        constraints: Sequence[LatencyConstraint],
        vertex_probes: Dict[str, Callable[[float, object], None]],
        fault_plan: Optional[FaultPlan] = None,
        actuation: Optional[ActuationConfig] = None,
        policy: Optional[object] = None,
        stateful: Optional[Dict[str, StatefulVertexSpec]] = None,
        quota: Optional[int] = None,
        priority: int = 0,
        weight: float = 1.0,
    ) -> None:
        DeployedJob._ids += 1
        self.job_id = DeployedJob._ids
        self.engine = engine
        self.job_graph = job_graph
        config = engine.config
        # Open the job's slot account before any allocation so deployment
        # and every later scale-up are attributed (and quota-checked).
        account_name = job_graph.name or f"job{self.job_id}"
        if any(a.name == account_name for a in engine.resources._accounts.values()):
            account_name = f"{account_name}#job{self.job_id}"
        self.account = engine.resources.register_job(
            self.job_id, account_name, quota=quota, priority=priority, weight=weight
        )
        engine.resources.set_preemption_hook(self.job_id, self._preempt_slots)
        engine.resources.set_neighbor_map(self.job_id, _vertex_neighbors(job_graph))
        # Metric keys: the first job to claim a vertex name keeps the bare
        # key; later jobs reusing the name get job-qualified keys so two
        # jobs never silently mix metric rows.
        self._metric_keys: Dict[str, str] = {}
        for name in job_graph.vertices:
            owner = engine._vertex_key_owner.setdefault(name, self.job_id)
            self._metric_keys[name] = (
                name if owner == self.job_id else f"{name}#job{self.job_id}"
            )
        self.constraints: List[LatencyConstraint] = list(constraints)
        self.trackers: List[ConstraintTracker] = [ConstraintTracker(c) for c in self.constraints]
        self.runtime = RuntimeGraph(job_graph)
        self._managers: List[QoSManager] = [
            QoSManager(i, config.summary_window, metrics=engine.metrics)
            for i in range(config.qos_managers)
        ]
        self._next_manager = 0
        self._vertex_probes = dict(vertex_probes)
        self._sink_samples: Dict[str, List[Tuple[float, float]]] = {}
        #: latest merged global summary (refreshed every adjustment interval)
        self.last_summary: Optional[GlobalSummary] = None
        #: full history of (timestamp, GlobalSummary)
        self.summary_history: List[Tuple[float, GlobalSummary]] = []
        self._batching_policy: Optional[AdaptiveBatchingPolicy] = None
        if self.constraints and isinstance(config.batching, AdaptiveDeadlineBatching):
            self._batching_policy = AdaptiveBatchingPolicy(
                self.constraints,
                batch_fraction=config.batch_fraction,
                deadline_factor=config.deadline_factor,
            )
        # The first job uses the engine's root streams directly (keeps
        # single-job runs bit-identical to pre-multi-job behaviour);
        # later jobs fork independent streams.
        job_index = len(engine.jobs)
        job_streams = engine.streams if job_index == 0 else engine.streams.fork(job_index)
        self.scheduler = Scheduler(
            engine.sim,
            self.runtime,
            engine.resources,
            job_streams,
            batching_prototype=config.batching,
            network=engine.network,
            queue_capacity=config.queue_capacity,
            channel_capacity=config.channel_capacity,
            item_size=config.item_size,
            startup_delay=config.startup_delay,
            vectorized=config.vectorized_sampling,
            on_task_created=self._on_task_created,
            on_channel_created=self._on_channel_created,
            metrics=engine.metrics,
            job_id=self.job_id,
        )
        self.scheduler.on_preempted = self._on_task_preempted
        obs = engine.observability
        #: structured scaler decision log (None when tracing is off)
        self.trace: Optional[DecisionTrace] = None
        if obs is not None and obs.trace:
            self.trace = DecisionTrace()
        # Per-job policy (from the pipeline builder / submit) wins over
        # the engine-wide EngineConfig.policy; both are registry specs.
        # A job-level policy implies elasticity for this job even when
        # the engine default is unelastic — `.scale(...)` means "scale".
        effective_policy = policy if policy is not None else config.policy
        #: the scaling-policy spec this job runs (None = unelastic job)
        self.policy_spec: Optional[PolicySpec] = None
        self.scaler: Optional[ElasticScaler] = None
        wants_scaler = (config.elastic or policy is not None) and (
            self.constraints or effective_policy is not None
        )
        if wants_scaler:
            spec = parse_policy_spec(
                effective_policy if effective_policy is not None else DEFAULT_POLICY
            )
            self.policy_spec = spec
            context = PolicyContext.for_job(job_graph, self.constraints, config)
            self.scaler = ElasticScaler(
                engine.sim,
                self.scheduler,
                self.runtime,
                spec.build(context),
                adjustment_interval=config.adjustment_interval,
                inactivity_intervals=config.inactivity_intervals,
                recovery_cooldown=config.recovery_cooldown,
            )
            self.scaler.trace_sink = self.trace
        #: actuation supervision (None = synchronous rescaling). The
        #: per-job setting (from the pipeline builder) wins over the
        #: engine-wide EngineConfig.actuation default.
        self.reconciler: Optional[ReconciliationController] = None
        effective_actuation = actuation if actuation is not None else config.actuation
        if effective_actuation is not None and effective_actuation.enabled:
            self.reconciler = ReconciliationController(
                engine.sim,
                self.scheduler,
                self.runtime,
                effective_actuation,
                job_streams,
                metrics=engine.metrics,
                trace_sink=self.trace,
                job_name=job_graph.name,
            )
            if self.scaler is not None:
                self.scaler.reconciler = self.reconciler
        #: keyed-state manager (None = stateless job). Wired before
        #: deploy so the state probes reach every task, including later
        #: scale-ups.
        self.state_manager: Optional[StateManager] = None
        if stateful:
            manager = StateManager(
                engine.sim,
                self.runtime,
                stateful,
                job_streams,
                checkpoint_interval=config.checkpoint_interval,
                metrics=engine.metrics,
            )
            self.state_manager = manager
            for name in manager.vertices:
                previous = self._vertex_probes.get(name)

                def _state_probe(latency, payload, _name=name, _prev=previous):
                    if _prev is not None:
                        _prev(latency, payload)
                    manager.on_event(_name, payload)

                self._vertex_probes[name] = _state_probe
            # Every rescale path (reconciler migrations, synchronous
            # scaler calls, crash-without-restart shrinks) converges the
            # key partitioning to the new parallelism; crash recovery
            # restores the crashed partition from its last checkpoint
            # and charges the replay time to the restart delay.
            self.scheduler.on_rescaled = manager.sync_parallelism
            self.scheduler.on_task_failed = self._on_stateful_task_failed
            if self.reconciler is not None:
                self.reconciler.state_manager = manager
            if self.scaler is not None and hasattr(
                type(self.scaler.policy), "migration_advisor"
            ):
                self.scaler.policy.migration_advisor = MigrationAdvisor(manager)
        self.scheduler.deploy()
        if self.state_manager is not None:
            self.state_manager.start()
        #: armed fault injector (None for fault-free runs)
        self.fault_injector: Optional[FaultInjector] = None
        if fault_plan is not None and fault_plan:
            self.fault_injector = FaultInjector(fault_plan, self).arm()
        # Measurement ticks strictly precede the adjustment tick sharing
        # the same instant (epsilon offset keeps the ordering stable
        # across periodic re-scheduling).
        self._measurement_process = engine.sim.every(
            config.measurement_interval, self._measurement_tick
        )
        self._adjustment_process = engine.sim.every(
            config.adjustment_interval,
            self._adjustment_tick,
            start_delay=config.adjustment_interval + 1e-6,
        )
        self._stopped = False

    # ------------------------------------------------------------------
    # wiring hooks
    # ------------------------------------------------------------------

    def _on_task_created(self, task: RuntimeTask) -> None:
        reporter = TaskReporter(task.vertex_name, task.task_id)
        task.reporter = reporter
        self._pick_manager().attach_task(task, reporter)
        if self.engine.metrics is not None:
            key = self._metric_keys.get(task.vertex_name, task.vertex_name)
            task.service_histogram = self.engine.metrics.histogram(
                f"service_time.{key}"
            )
        job_vertex = self.job_graph.vertices[task.vertex_name]
        if not job_vertex.outputs:
            samples = self._sink_samples.setdefault(task.vertex_name, [])
            task.process_probe = lambda latency, payload, s=samples: s.append(
                (self.engine.sim.now, latency)
            )
        extra = self._vertex_probes.get(task.vertex_name)
        if extra is not None:
            previous = task.process_probe
            if previous is None:
                task.process_probe = extra
            else:
                def chained(latency, payload, first=previous, second=extra):
                    first(latency, payload)
                    second(latency, payload)

                task.process_probe = chained

    def _preempt_slots(self, slots: int, requester: str) -> int:
        """Arbitration hook: force-stop up to ``slots`` reducible tasks."""
        return self.scheduler.preempt_slots(slots, requester)

    def _on_task_preempted(self, task: RuntimeTask, requester: str) -> None:
        if self.trace is not None:
            from repro.obs.trace import BRANCH_PREEMPTED, TraceRecord

            rv = self.runtime.vertex(task.vertex_name)
            self.trace.append(TraceRecord(
                self.engine.sim.now, "*", BRANCH_PREEMPTED,
                vertex=task.vertex_name,
                job=self.job_graph.name,
                p_before=rv.parallelism + 1,
                p_applied=rv.parallelism,
                detail=f"preempted in favor of {requester}" if requester
                else "preempted by cluster arbitration",
            ))

    def _on_stateful_task_failed(self, task: RuntimeTask) -> float:
        """Crash hook: abort in-transfer migrations, run checkpoint restore.

        Returns the replay time (seconds) added to the task's restart
        delay — the latency cost of re-processing events since the last
        checkpoint.
        """
        manager = self.state_manager
        if manager is None or not manager.is_stateful(task.vertex_name):
            return 0.0
        if self.reconciler is not None:
            self.reconciler.abort_migrations(
                task.vertex_name, "task crash during state transfer"
            )
        return manager.on_task_failed(task)

    def _on_channel_created(self, channel: RuntimeChannel) -> None:
        reporter = ChannelReporter(channel.edge_name, channel.channel_id)
        channel.reporter = reporter
        self._pick_manager().attach_channel(channel, reporter)

    def _pick_manager(self) -> QoSManager:
        manager = self._managers[self._next_manager % len(self._managers)]
        self._next_manager += 1
        return manager

    # ------------------------------------------------------------------
    # master control loop
    # ------------------------------------------------------------------

    def _measurement_tick(self) -> None:
        now = self.engine.sim.now
        for manager in self._managers:
            manager.collect(now)

    def _adjustment_tick(self) -> None:
        now = self.engine.sim.now
        partials = [m.partial_summary(now) for m in self._managers]
        summary = merge_partial_summaries(now, partials)
        self.last_summary = summary
        self.summary_history.append((now, summary))
        for tracker in self.trackers:
            tracker.observe(now, summary)
        if self._batching_policy is not None:
            targets = self._batching_policy.compute_targets(summary)
            for manager in self._managers:
                manager.apply_batching_deadlines(targets)
        if self.scaler is not None:
            self.scaler.on_global_summary(summary)
        if self.reconciler is not None:
            violated = any(
                tracker.history and tracker.history[-1][2]
                for tracker in self.trackers
            )
            self.reconciler.on_adjustment_tick(violated)

    # ------------------------------------------------------------------
    # results and lifecycle
    # ------------------------------------------------------------------

    def parallelism(self, vertex_name: str) -> int:
        """Effective parallelism of a job vertex."""
        return self.runtime.parallelism(vertex_name)

    def drain_sink_samples(self, vertex_name: str) -> List[Tuple[float, float]]:
        """Take the (time, e2e latency) samples of a sink vertex.

        The backing list is cleared in place — sink-task probes hold a
        reference to it, so it must never be replaced.
        """
        samples = self._sink_samples.get(vertex_name)
        if samples is None:
            return []
        drained = list(samples)
        samples.clear()
        return drained

    def tracker_for(self, constraint: LatencyConstraint) -> ConstraintTracker:
        """The fulfillment tracker of one of this job's constraints."""
        for tracker in self.trackers:
            if tracker.constraint is constraint:
                return tracker
        raise KeyError(f"constraint {constraint.name!r} not submitted with this job")

    def check_assumptions(self, **checker_kwargs) -> list:
        """Check the paper's Sec. IV-A runtime assumptions for this job."""
        from repro.qos.diagnostics import AssumptionChecker, collect_per_task_measurements

        service, arrivals = collect_per_task_measurements(self._managers)
        return AssumptionChecker(**checker_kwargs).check(service, arrivals)

    def stop(self) -> None:
        """Tear this job down (releases its slots, stops its control loop)."""
        if self._stopped:
            return
        self._stopped = True
        self._measurement_process.stop()
        self._adjustment_process.stop()
        self.scheduler.stop_all()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DeployedJob(#{self.job_id}, {self.job_graph.name!r})"


class StreamProcessingEngine:
    """Facade: deploy jobs, run the master control loop, expose results.

    Multiple jobs may be submitted to one engine; they share the worker
    pool (and the simulated cluster). For convenience, the single-job
    accessors (``runtime``, ``scheduler``, ``trackers``, ...) delegate to
    the *first* submitted job; use the :class:`DeployedJob` handle
    returned by :meth:`submit` to address later jobs explicitly.
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        observability: Optional[ObservabilityConfig] = None,
    ) -> None:
        self.config = config or EngineConfig()
        #: observability opt-in (None = fully off; may also be adopted
        #: from a submitted BuiltPipeline's ``observe(...)`` setting)
        self.observability = observability
        #: metrics registry (None while metrics collection is off)
        self.metrics: Optional[MetricsRegistry] = None
        self._metrics_sampler: Optional[MetricsSampler] = None
        self._sampling_clocks: Dict[float, SamplingClock] = {}
        self._wall_start = time.monotonic()
        self.sim = Simulator()
        self.streams = RandomStreams(self.config.seed)
        self.network = NetworkModel(
            base_latency=self.config.base_latency,
            bandwidth=self.config.bandwidth,
            per_batch_overhead=self.config.per_batch_overhead,
            per_item_overhead=self.config.per_item_overhead,
            connection_setup=self.config.connection_setup,
            cross_worker_penalty=self.config.cross_worker_penalty,
        )
        self.resources = ResourceManager(
            self.sim,
            self.config.worker_pool,
            self.config.slots_per_worker,
            placement=self.config.placement,
            speed_factors=(
                list(self.config.worker_speed_factors)
                if self.config.worker_speed_factors
                else None
            ),
            admission=self.config.admission,
        )
        #: all deployed jobs, in submission order
        self.jobs: List[DeployedJob] = []
        #: which job first claimed each bare vertex name for metric keys
        #: (later jobs reusing the name get job-qualified keys)
        self._vertex_key_owner: Dict[str, int] = {}
        #: probes to install on the next submitted job's vertices
        self._pending_probes: Dict[str, Callable[[float, object], None]] = {}
        if self.observability is not None and self.observability.metrics:
            self._enable_metrics()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def sampling_clock(self, interval: float) -> SamplingClock:
        """The shared per-interval sampling clock (created on first use).

        All periodic observers (metrics sampler, series recorders) using
        the same interval share one clock, so they sample the same
        instants and the event heap carries one timer per interval.
        """
        clock = self._sampling_clocks.get(interval)
        if clock is None:
            clock = SamplingClock(self.sim, interval)
            self._sampling_clocks[interval] = clock
        return clock

    def _enable_metrics(self) -> None:
        if self.metrics is not None:
            return
        self.metrics = MetricsRegistry()
        interval = (
            self.observability.sample_interval
            if self.observability is not None
            else 5.0
        )
        self._metrics_sampler = MetricsSampler(
            self, self.metrics, self.sampling_clock(interval)
        )

    @property
    def wall_time_s(self) -> float:
        """Wall-clock seconds since this engine was constructed."""
        return time.monotonic() - self._wall_start

    def export_run(self, directory: Optional[str] = None, job: Optional[DeployedJob] = None) -> Dict[str, str]:
        """Write manifest.json (+ metrics/trace JSONL) for a job's run.

        ``directory`` defaults to the observability config's export dir;
        ``job`` defaults to the first submitted job. Returns the written
        paths keyed by kind.
        """
        from repro.obs.manifest import export_run as _export_run

        if directory is None:
            directory = (
                self.observability.export_dir if self.observability is not None else None
            )
        if directory is None:
            raise ValueError(
                "no export directory: pass directory= or set "
                "ObservabilityConfig.export_dir"
            )
        return _export_run(job if job is not None else self._primary(), directory)

    # ------------------------------------------------------------------
    # deployment
    # ------------------------------------------------------------------

    def add_vertex_probe(self, vertex_name: str, probe: Callable[[float, object], None]) -> None:
        """Install a probe fired with (elapsed, payload) per processed item.

        Applies to the *next* :meth:`submit` call, so every task of the
        vertex (including later scale-ups) carries the probe.
        """
        self._pending_probes[vertex_name] = probe

    def submit(
        self,
        job_graph,
        constraints: Sequence[LatencyConstraint] = (),
        fault_plan: Optional[FaultPlan] = None,
        actuation: Optional[ActuationConfig] = None,
        policy: Optional[object] = None,
        stateful: Optional[Dict[str, StatefulVertexSpec]] = None,
        quota: Optional[int] = None,
        priority: int = 0,
        weight: float = 1.0,
    ) -> DeployedJob:
        """Deploy a job and start its master control loop.

        Accepts either a bare :class:`~repro.graphs.job_graph.JobGraph`
        (with explicit ``constraints``/``fault_plan``) or a
        :class:`~repro.builder.BuiltPipeline`, which carries its own
        constraints, fault plan and observability settings — the builder
        path; ``BuiltPipeline.submit_to(engine)`` delegates here.

        ``fault_plan`` arms a deterministic chaos scenario against the
        job (see :mod:`repro.simulation.faults`); the armed injector is
        available as ``DeployedJob.fault_injector``.

        ``policy`` selects the job's scaling policy — a registry spec
        string (``"drs:target_fraction=0.9"``) or a
        :class:`~repro.core.policy.PolicySpec`. Passing one implies
        elasticity for this job; None keeps the engine config's policy
        (the paper's ScaleReactively by default).

        ``quota``/``priority``/``weight`` parameterize the job's slot
        account for shared-cluster admission (quota ceiling, strict
        priority, weighted fair share — see
        :mod:`repro.engine.admission`); the defaults leave the job
        unconstrained under first-come arbitration.
        """
        from repro.builder import BuiltPipeline

        if isinstance(job_graph, BuiltPipeline):
            pipeline = job_graph
            if (
                constraints or fault_plan is not None or actuation is not None
                or policy is not None or stateful is not None
            ):
                raise TypeError(
                    "submit(pipeline) takes no separate constraints/fault_plan/"
                    "actuation/policy/stateful — they are part of the BuiltPipeline"
                )
            if self.observability is None and pipeline.observability is not None:
                self.observability = pipeline.observability
                if self.observability.metrics:
                    self._enable_metrics()
            job_graph = pipeline.graph
            constraints = pipeline.constraints
            fault_plan = pipeline.fault_plan
            actuation = pipeline.actuation
            policy = pipeline.policy
            stateful = pipeline.stateful or None
            share = getattr(pipeline, "share", None)
            if share is not None:
                quota, priority, weight = share
        for job in self.jobs:
            if job.job_graph is job_graph:
                raise RuntimeError("this job graph is already deployed")
        job_graph.validate()
        probes, self._pending_probes = self._pending_probes, {}
        job = DeployedJob(
            self, job_graph, constraints, probes,
            fault_plan=fault_plan, actuation=actuation, policy=policy,
            stateful=stateful, quota=quota, priority=priority, weight=weight,
        )
        self.jobs.append(job)
        return job

    # ------------------------------------------------------------------
    # single-job conveniences (delegate to the first job)
    # ------------------------------------------------------------------

    def _primary(self) -> DeployedJob:
        if not self.jobs:
            raise RuntimeError("no job submitted to this engine yet")
        return self.jobs[0]

    @property
    def runtime(self) -> Optional[RuntimeGraph]:
        """Runtime graph of the first job (None before submit)."""
        return self.jobs[0].runtime if self.jobs else None

    @property
    def scheduler(self) -> Optional[Scheduler]:
        """Scheduler of the first job (None before submit)."""
        return self.jobs[0].scheduler if self.jobs else None

    @property
    def scaler(self) -> Optional[ElasticScaler]:
        """Elastic scaler of the first job (None if unelastic)."""
        return self.jobs[0].scaler if self.jobs else None

    @property
    def fault_injector(self) -> Optional[FaultInjector]:
        """Fault injector of the first job (None if fault-free)."""
        return self.jobs[0].fault_injector if self.jobs else None

    @property
    def reconciler(self) -> Optional[ReconciliationController]:
        """Reconciliation controller of the first job (None if unsupervised)."""
        return self.jobs[0].reconciler if self.jobs else None

    @property
    def state_manager(self) -> Optional[StateManager]:
        """Keyed-state manager of the first job (None if stateless)."""
        return self.jobs[0].state_manager if self.jobs else None

    @property
    def constraints(self) -> List[LatencyConstraint]:
        """Constraints of the first job."""
        return self.jobs[0].constraints if self.jobs else []

    @property
    def trackers(self) -> List[ConstraintTracker]:
        """Constraint trackers of the first job."""
        return self.jobs[0].trackers if self.jobs else []

    @property
    def last_summary(self) -> Optional[GlobalSummary]:
        """Latest global summary of the first job."""
        return self.jobs[0].last_summary if self.jobs else None

    @property
    def summary_history(self) -> List[Tuple[float, GlobalSummary]]:
        """Summary history of the first job."""
        return self.jobs[0].summary_history if self.jobs else []

    @property
    def _managers(self) -> List[QoSManager]:
        return self.jobs[0]._managers if self.jobs else []

    def parallelism(self, vertex_name: str) -> int:
        """Effective parallelism of a vertex of the first job."""
        return self._primary().parallelism(vertex_name)

    def drain_sink_samples(self, vertex_name: str) -> List[Tuple[float, float]]:
        """Take the first job's (time, e2e latency) sink samples."""
        if not self.jobs:
            return []
        return self.jobs[0].drain_sink_samples(vertex_name)

    def check_assumptions(self, **checker_kwargs) -> list:
        """Check the Sec. IV-A runtime assumptions for the first job."""
        return self._primary().check_assumptions(**checker_kwargs)

    def tracker_for(self, constraint: LatencyConstraint) -> ConstraintTracker:
        """The fulfillment tracker of a submitted constraint (any job)."""
        for job in self.jobs:
            for tracker in job.trackers:
                if tracker.constraint is constraint:
                    return tracker
        raise KeyError(f"constraint {constraint.name!r} not submitted to this engine")

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, duration: float) -> None:
        """Advance the simulation by ``duration`` virtual seconds."""
        self.sim.run(until=self.sim.now + duration)

    def stop(self) -> None:
        """Tear all jobs down (finalizes resource accounting)."""
        for job in self.jobs:
            job.stop()

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.sim.now
